#include "storage/admission.h"

#include "util/metrics.h"

namespace ctxpref::storage {

namespace {

/// Process-wide admission metrics, aggregated across controllers (a
/// server normally runs exactly one; per-controller exactness lives in
/// `GetStats`).
struct AdmissionMetrics {
  Counter& admitted;
  Counter& shed_capacity;
  Counter& shed_maintenance;
  Counter& shed_deadline;
  Gauge& in_flight;

  static AdmissionMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static AdmissionMetrics* m = new AdmissionMetrics{
        reg.GetCounter("ctxpref_serving_admitted_total",
                       "Requests admitted by AdmissionController"),
        reg.GetCounter("ctxpref_serving_shed_capacity_total",
                       "Requests shed: total in-flight limit reached"),
        reg.GetCounter("ctxpref_serving_shed_maintenance_total",
                       "Requests shed: maintenance slice exhausted"),
        reg.GetCounter("ctxpref_serving_shed_deadline_total",
                       "Requests shed: deadline already expired at admission"),
        reg.GetGauge("ctxpref_serving_in_flight",
                     "Currently admitted requests, all controllers"),
    };
    return *m;
  }
};

}  // namespace

const char* QueryPriorityToString(QueryPriority p) {
  switch (p) {
    case QueryPriority::kInteractive:
      return "interactive";
    case QueryPriority::kMaintenance:
      return "maintenance";
  }
  return "unknown";
}

const char* AdmissionDecisionToString(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmitted:
      return "admitted";
    case AdmissionDecision::kShedCapacity:
      return "shed-capacity";
    case AdmissionDecision::kShedMaintenance:
      return "shed-maintenance";
    case AdmissionDecision::kShedDeadline:
      return "shed-deadline";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionPolicy policy)
    : policy_(policy) {}

AdmissionController::Ticket AdmissionController::Admit(
    QueryPriority priority, const util::Deadline& deadline) {
  AdmissionMetrics& metrics = AdmissionMetrics::Get();
  if (deadline.Expired()) {
    {
      util::MutexLock lock(mu_);
      ++shed_deadline_total_;
    }
    metrics.shed_deadline.Increment();
    return Ticket(nullptr, priority, AdmissionDecision::kShedDeadline);
  }
  AdmissionDecision decision;
  {
    util::MutexLock lock(mu_);
    if (in_flight_ >= policy_.max_in_flight) {
      decision = AdmissionDecision::kShedCapacity;
      ++shed_capacity_total_;
    } else if (priority == QueryPriority::kMaintenance &&
               maintenance_in_flight_ >= policy_.maintenance_max_in_flight) {
      decision = AdmissionDecision::kShedMaintenance;
      ++shed_maintenance_total_;
    } else {
      decision = AdmissionDecision::kAdmitted;
      ++in_flight_;
      if (priority == QueryPriority::kMaintenance) ++maintenance_in_flight_;
      if (in_flight_ > in_flight_highwater_) in_flight_highwater_ = in_flight_;
      ++admitted_total_;
    }
  }
  switch (decision) {
    case AdmissionDecision::kAdmitted:
      metrics.admitted.Increment();
      metrics.in_flight.Add(1);
      return Ticket(this, priority, decision);
    case AdmissionDecision::kShedCapacity:
      metrics.shed_capacity.Increment();
      break;
    case AdmissionDecision::kShedMaintenance:
      metrics.shed_maintenance.Increment();
      break;
    case AdmissionDecision::kShedDeadline:
      break;  // Handled above.
  }
  return Ticket(nullptr, priority, decision);
}

void AdmissionController::ReleaseSlot(QueryPriority priority) {
  {
    util::MutexLock lock(mu_);
    --in_flight_;
    if (priority == QueryPriority::kMaintenance) --maintenance_in_flight_;
  }
  AdmissionMetrics::Get().in_flight.Add(-1);
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(priority_);
    controller_ = nullptr;
  }
}

AdmissionController::Stats AdmissionController::GetStats() const {
  util::MutexLock lock(mu_);
  Stats s;
  s.in_flight = in_flight_;
  s.maintenance_in_flight = maintenance_in_flight_;
  s.in_flight_highwater = in_flight_highwater_;
  s.admitted_total = admitted_total_;
  s.shed_capacity_total = shed_capacity_total_;
  s.shed_maintenance_total = shed_maintenance_total_;
  s.shed_deadline_total = shed_deadline_total_;
  return s;
}

}  // namespace ctxpref::storage
