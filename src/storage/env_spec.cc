#include "storage/env_spec.h"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "context/validate.h"
#include "util/string_util.h"

namespace ctxpref::storage {

namespace {

/// Splits "Athens(Plaka, Kifisia)" into parent + children. A bare name
/// (no parens) yields an empty child list.
Status ParseGroup(std::string_view text, HierarchyBuilder::Group* out) {
  size_t open = text.find('(');
  if (open == std::string_view::npos) {
    out->parent = std::string(Trim(text));
    out->children.clear();
    if (out->parent.empty()) {
      return Status::Corruption("empty group name");
    }
    return Status::OK();
  }
  if (text.back() != ')') {
    return Status::Corruption("unbalanced '(' in group '" +
                              std::string(text) + "'");
  }
  out->parent = std::string(Trim(text.substr(0, open)));
  if (out->parent.empty()) {
    return Status::Corruption("group with empty parent: '" +
                              std::string(text) + "'");
  }
  std::string_view inner = text.substr(open + 1, text.size() - open - 2);
  out->children.clear();
  for (const std::string& child : SplitAndTrim(inner, ',')) {
    if (child.empty()) {
      return Status::Corruption("empty child in group '" + std::string(text) +
                                "'");
    }
    out->children.push_back(child);
  }
  if (out->children.empty()) {
    return Status::Corruption("group '" + out->parent + "' has no children");
  }
  return Status::OK();
}

/// Splits a level body on top-level commas (commas inside parentheses
/// belong to a group's child list).
std::vector<std::string> SplitTopLevel(std::string_view s) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == ',' && depth == 0)) {
      out.emplace_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    } else if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')') {
      --depth;
    }
  }
  return out;
}

}  // namespace

StatusOr<EnvironmentPtr> ParseEnvironmentSpec(std::string_view text) {
  std::map<std::string, HierarchyPtr, std::less<>> hierarchies;
  std::vector<ContextParameter> parameters;
  bool saw_environment = false;

  enum class Section { kNone, kHierarchy, kEnvironment };
  Section section = Section::kNone;
  std::unique_ptr<HierarchyBuilder> builder;
  std::string builder_name;
  bool builder_has_detailed = false;

  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;

    auto fail = [&](const std::string& why) {
      return Status::Corruption("env spec line " + std::to_string(line_no) +
                                ": " + why);
    };

    if (StartsWith(line, "hierarchy")) {
      if (section != Section::kNone) {
        return fail("'hierarchy' inside another block");
      }
      builder_name = std::string(Trim(line.substr(9)));
      if (builder_name.empty()) return fail("hierarchy needs a name");
      if (hierarchies.contains(builder_name)) {
        return Status::InvalidArgument("duplicate hierarchy '" +
                                       builder_name + "'");
      }
      builder = std::make_unique<HierarchyBuilder>(builder_name);
      builder_has_detailed = false;
      section = Section::kHierarchy;
      continue;
    }
    if (line == "environment") {
      if (section != Section::kNone) {
        return fail("'environment' inside another block");
      }
      if (saw_environment) return fail("second 'environment' block");
      saw_environment = true;
      section = Section::kEnvironment;
      continue;
    }
    if (line == "end") {
      if (section == Section::kHierarchy) {
        StatusOr<HierarchyPtr> h = builder->Build();
        if (!h.ok()) return h.status();
        hierarchies.emplace(builder_name, std::move(*h));
        builder.reset();
      } else if (section != Section::kEnvironment) {
        return fail("'end' outside a block");
      }
      section = Section::kNone;
      continue;
    }

    switch (section) {
      case Section::kNone:
        return fail("statement outside a block: '" + std::string(line) + "'");

      case Section::kHierarchy: {
        if (!StartsWith(line, "level")) {
          return fail("expected 'level <Name>: ...'");
        }
        std::string_view rest = Trim(line.substr(5));
        size_t colon = rest.find(':');
        if (colon == std::string_view::npos) {
          return fail("level is missing ':'");
        }
        std::string level_name(Trim(rest.substr(0, colon)));
        if (level_name.empty()) return fail("level needs a name");
        std::string_view body = Trim(rest.substr(colon + 1));
        if (!builder_has_detailed) {
          std::vector<std::string> values;
          for (const std::string& v : SplitAndTrim(body, ',')) {
            if (v.empty()) return fail("empty value in detailed level");
            values.push_back(v);
          }
          builder->AddDetailedLevel(level_name, std::move(values));
          builder_has_detailed = true;
        } else {
          std::vector<HierarchyBuilder::Group> groups;
          for (const std::string& g : SplitTopLevel(body)) {
            HierarchyBuilder::Group group;
            Status st = ParseGroup(g, &group);
            if (!st.ok()) return fail(st.message());
            if (group.children.empty()) {
              return fail("group '" + group.parent +
                          "' of a non-detailed level needs children");
            }
            groups.push_back(std::move(group));
          }
          builder->AddLevel(level_name, std::move(groups));
        }
        break;
      }

      case Section::kEnvironment: {
        if (!StartsWith(line, "parameter")) {
          return fail("expected 'parameter <name> uses <hierarchy>'");
        }
        std::vector<std::string> words;
        for (const std::string& w : SplitAndTrim(line, ' ')) {
          if (!w.empty()) words.push_back(w);
        }
        if (words.size() != 4 || words[2] != "uses") {
          return fail("expected 'parameter <name> uses <hierarchy>'");
        }
        auto it = hierarchies.find(words[3]);
        if (it == hierarchies.end()) {
          return Status::InvalidArgument("parameter '" + words[1] +
                                         "' uses unknown hierarchy '" +
                                         words[3] + "'");
        }
        parameters.emplace_back(words[1], it->second);
        break;
      }
    }
  }
  if (section != Section::kNone) {
    return Status::Corruption("env spec: unterminated block (missing 'end')");
  }
  if (!saw_environment) {
    return Status::Corruption("env spec: no 'environment' block");
  }
  StatusOr<EnvironmentPtr> env =
      ContextEnvironment::Create(std::move(parameters));
  if (!env.ok()) return env.status();
  // Defense in depth: loaded models must satisfy every hierarchy
  // invariant before they serve queries.
  CTXPREF_RETURN_IF_ERROR(ValidateEnvironment(**env));
  return env;
}

std::string EnvironmentSpecToText(const ContextEnvironment& env) {
  std::string out = "# ctxpref environment spec\n";
  // Hierarchies may be shared between parameters; emit each once.
  std::vector<const Hierarchy*> emitted;
  for (const ContextParameter& p : env.parameters()) {
    const Hierarchy& h = p.hierarchy();
    bool seen = false;
    for (const Hierarchy* e : emitted) {
      if (e == &h) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    emitted.push_back(&h);

    out += "hierarchy " + h.name() + "\n";
    // Detailed level: plain value list.
    out += "  level " + h.level_name(0) + ":";
    for (size_t i = 0; i < h.level_size(0); ++i) {
      out += (i == 0 ? " " : ", ");
      out += h.value_name(ValueRef{0, static_cast<ValueId>(i)});
    }
    out += "\n";
    // Declared upper levels (all but ALL): groups.
    for (LevelIndex l = 1; l + 1 < h.num_levels(); ++l) {
      out += "  level " + h.level_name(l) + ":";
      for (size_t i = 0; i < h.level_size(l); ++i) {
        ValueRef parent{l, static_cast<ValueId>(i)};
        out += (i == 0 ? " " : ", ");
        out += h.value_name(parent) + "(";
        std::vector<ValueRef> kids = h.Desc(parent, l - 1);
        for (size_t k = 0; k < kids.size(); ++k) {
          if (k > 0) out += ", ";
          out += h.value_name(kids[k]);
        }
        out += ")";
      }
      out += "\n";
    }
    out += "end\n\n";
  }

  out += "environment\n";
  for (const ContextParameter& p : env.parameters()) {
    out += "  parameter " + p.name() + " uses " + p.hierarchy().name() + "\n";
  }
  out += "end\n";
  return out;
}

StatusOr<EnvironmentPtr> ReadEnvironmentSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return ParseEnvironmentSpec(ss.str());
}

Status WriteEnvironmentSpecFile(const ContextEnvironment& env,
                                const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << EnvironmentSpecToText(env);
  return out ? Status::OK() : Status::Internal("short write to '" + path + "'");
}

}  // namespace ctxpref::storage
