#include "storage/profile_store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "preference/replicated_query_cache.h"
#include "storage/profile_io.h"
#include "util/metrics.h"

namespace ctxpref::storage {

namespace fs = std::filesystem;

namespace {

/// Serving-layer metrics (docs/observability.md). The live-snapshot
/// gauge is maintained by `ProfileSnapshot`'s ctor/dtor so it counts
/// every snapshot still pinned anywhere, not just the current ones.
struct ServingMetrics {
  Counter& swaps;
  Gauge& live_snapshots;
  Gauge& snapshot_age;
  Gauge& users;

  static ServingMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static ServingMetrics* m = new ServingMetrics{
        reg.GetCounter("ctxpref_profile_swaps_total",
                       "Profile snapshots published (create + update + "
                       "reload)"),
        reg.GetGauge("ctxpref_profile_live_snapshots",
                     "ProfileSnapshot objects alive (current + pinned)"),
        reg.GetGauge("ctxpref_profile_snapshot_age_ns",
                     "Serving age of the snapshot most recently replaced "
                     "(publish-to-replacement, ns)"),
        reg.GetGauge("ctxpref_profile_store_users",
                     "Users currently in the ProfileStore"),
    };
    return *m;
  }
};

}  // namespace

ProfileSnapshot::ProfileSnapshot(std::string user_id, uint64_t serving_version,
                                 std::shared_ptr<const Profile> profile,
                                 std::shared_ptr<const ProfileTree> tree,
                                 std::shared_ptr<const FlatProfileTree> flat)
    : user_id_(std::move(user_id)),
      serving_version_(serving_version),
      profile_(std::move(profile)),
      tree_(std::move(tree)),
      flat_(std::move(flat)),
      publish_nanos_(MonotonicNanos()) {
  ServingMetrics::Get().live_snapshots.Add(1);
}

ProfileSnapshot::~ProfileSnapshot() {
  ServingMetrics::Get().live_snapshots.Add(-1);
}

ProfileStore::ProfileStore(EnvironmentPtr env) : env_(std::move(env)) {}

ProfileStore::~ProfileStore() {
  if (!users_.empty()) {
    ServingMetrics::Get().users.Add(-static_cast<int64_t>(users_.size()));
  }
}

ProfileStore::ProfileStore(ProfileStore&& other) noexcept
    : env_(std::move(other.env_)), users_(std::move(other.users_)) {
  version_counter_.store(other.version_counter_.load());
  cache_.store(other.cache_.load());
  coherence_log_.store(other.coherence_log_.load());
  other.users_.clear();
  other.cache_.store(nullptr);
  other.coherence_log_.store(nullptr);
}

ProfileStore& ProfileStore::operator=(ProfileStore&& other) noexcept {
  if (this == &other) return *this;
  if (!users_.empty()) {
    ServingMetrics::Get().users.Add(-static_cast<int64_t>(users_.size()));
  }
  env_ = std::move(other.env_);
  users_ = std::move(other.users_);
  version_counter_.store(other.version_counter_.load());
  cache_.store(other.cache_.load());
  coherence_log_.store(other.coherence_log_.load());
  other.users_.clear();
  other.cache_.store(nullptr);
  other.coherence_log_.store(nullptr);
  return *this;
}

Status ProfileStore::ValidateUserId(const std::string& user_id) {
  if (user_id.empty()) {
    return Status::InvalidArgument("empty user id");
  }
  if (user_id == "." || user_id == ".." ||
      user_id.find('/') != std::string::npos ||
      user_id.find('\\') != std::string::npos) {
    return Status::InvalidArgument("user id '" + user_id +
                                   "' cannot name a file");
  }
  return Status::OK();
}

size_t ProfileStore::size() const {
  util::ReaderLock lock(users_mu_);
  return users_.size();
}

Status ProfileStore::BuildAndPublish(User& user, const std::string& user_id,
                                     Profile profile) {
  // Build the tree off to the side: readers keep serving the current
  // snapshot through any build failure.
  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  if (!tree.ok()) return tree.status();
  auto tree_ptr = std::make_shared<const ProfileTree>(std::move(*tree));
  // Flatten into the read-optimized arena while still off to the side
  // — publish cost, not query cost. The pointer tree stays in the
  // snapshot as the mutation-friendly reference form.
  auto flat = std::make_shared<const FlatProfileTree>(
      FlatProfileTree::Build(*tree_ptr));
  const uint64_t version =
      version_counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto snapshot = std::make_shared<const ProfileSnapshot>(
      user_id, version,
      std::make_shared<const Profile>(std::move(profile)),
      std::move(tree_ptr), std::move(flat));
  SnapshotPtr old = user.Swap(std::move(snapshot));
  ServingMetrics& metrics = ServingMetrics::Get();
  metrics.swaps.Increment();
  if (old != nullptr) {
    metrics.snapshot_age.Set(
        static_cast<int64_t>(MonotonicNanos() - old->publish_nanos()));
  }
  // Invalidation, log-based when a coherence log is attached: the
  // writer appends one `{user, serving_version}` record — touching only
  // its own log buffer, never a cache lock — and replicated caches
  // drain it on their own schedule (docs/coherence.md). Either way a
  // lookup racing ahead cannot be served stale data: entries are
  // version-tagged and the new serving version never equals the old.
  if (CoherenceLog* log = coherence_log_.load(std::memory_order_acquire)) {
    log->Append(user_id, version);
    return Status::OK();
  }
  // Eager invalidation: entries computed from the retired snapshot are
  // dropped now rather than lingering until touched.
  // In retain-stale mode the old entries are deliberately KEPT: they
  // are the degradation ladder's bounded-staleness rung (version tags
  // keep fresh serving correct, LRU bounds the memory). A *removed*
  // user is still invalidated unconditionally — see RemoveUser.
  if (ContextQueryTree* cache = cache_.load(std::memory_order_acquire)) {
    if (!cache->retain_stale()) cache->InvalidateUser(user_id);
  }
  return Status::OK();
}

Status ProfileStore::CreateUser(const std::string& user_id) {
  return CreateUser(user_id, Profile(env_));
}

Status ProfileStore::CreateUser(const std::string& user_id, Profile initial) {
  CTXPREF_RETURN_IF_ERROR(ValidateUserId(user_id));
  if (&initial.env() != env_.get()) {
    return Status::InvalidArgument(
        "profile for user '" + user_id +
        "' was built over a different context environment");
  }
  util::WriterLock lock(users_mu_);
  auto [it, inserted] = users_.try_emplace(user_id);
  if (!inserted) {
    return Status::AlreadyExists("user '" + user_id + "' already exists");
  }
  it->second = std::make_unique<User>();
  User& user = *it->second;
  Status published;
  {
    // Uncontended (the exclusive map lock above hides the new user),
    // taken so BuildAndPublish has one uniform writer-lock contract.
    util::MutexLock write_lock(user.write_mu);
    published = BuildAndPublish(user, user_id, std::move(initial));
  }
  if (!published.ok()) {
    users_.erase(it);  // Creation is all-or-nothing.
    return published;
  }
  ServingMetrics::Get().users.Add(1);
  return Status::OK();
}

StatusOr<SnapshotPtr> ProfileStore::GetSnapshot(
    const std::string& user_id) const {
  util::ReaderLock lock(users_mu_);
  auto it = users_.find(user_id);
  if (it == users_.end()) {
    return Status::NotFound("no user '" + user_id + "'");
  }
  return it->second->Pin();
}

StatusOr<const Profile*> ProfileStore::GetProfile(
    const std::string& user_id) const {
  StatusOr<SnapshotPtr> snapshot = GetSnapshot(user_id);
  if (!snapshot.ok()) return snapshot.status();
  // The store keeps the current snapshot alive until the next publish,
  // so handing out the raw pointer honors the documented lifetime.
  return &(*snapshot)->profile();
}

StatusOr<const ProfileTree*> ProfileStore::GetTree(
    const std::string& user_id) const {
  StatusOr<SnapshotPtr> snapshot = GetSnapshot(user_id);
  if (!snapshot.ok()) return snapshot.status();
  return &(*snapshot)->tree();
}

Status ProfileStore::UpdateUser(const std::string& user_id,
                                const std::function<Status(Profile&)>& edit) {
  util::ReaderLock lock(users_mu_);
  // as_const: the shared map lock licenses reads only, so go through
  // the const find (the User itself is guarded by its own locks).
  auto it = std::as_const(users_).find(user_id);
  if (it == users_.cend()) {
    return Status::NotFound("no user '" + user_id + "'");
  }
  User& user = *it->second;
  util::MutexLock write_lock(user.write_mu);
  // Copy-on-write: mutate a private copy; readers keep the current
  // snapshot until the publish below.
  SnapshotPtr current = user.Pin();
  Profile draft = current->profile();
  CTXPREF_RETURN_IF_ERROR(edit(draft));
  return BuildAndPublish(user, user_id, std::move(draft));
}

Status ProfileStore::PublishProfile(const std::string& user_id,
                                    Profile profile) {
  if (&profile.env() != env_.get()) {
    return Status::InvalidArgument(
        "profile for user '" + user_id +
        "' was built over a different context environment");
  }
  util::ReaderLock lock(users_mu_);
  auto it = std::as_const(users_).find(user_id);
  if (it == users_.cend()) {
    return Status::NotFound("no user '" + user_id + "'");
  }
  User& user = *it->second;
  util::MutexLock write_lock(user.write_mu);
  return BuildAndPublish(user, user_id, std::move(profile));
}

Status ProfileStore::ReloadUser(const std::string& user_id,
                                const std::string& dir) {
  // Parse fully before touching the live snapshot: any Load error
  // returns here with readers unaffected.
  StatusOr<Profile> loaded =
      ReadProfileFile(env_, dir + "/" + user_id + ".profile");
  if (!loaded.ok()) return loaded.status();
  return PublishProfile(user_id, std::move(*loaded));
}

Status ProfileStore::RemoveUser(const std::string& user_id) {
  {
    util::WriterLock lock(users_mu_);
    if (users_.erase(user_id) == 0) {
      return Status::NotFound("no user '" + user_id + "'");
    }
  }
  ServingMetrics::Get().users.Add(-1);
  // Drop the removed user's cached results; a later user with the same
  // id gets fresh serving versions anyway (the counter never reuses
  // values), so this is hygiene, not correctness. With a coherence log
  // attached, the removal becomes a `drop_all` record — replicas drop
  // every entry of the user when they consume it, staleness window
  // notwithstanding.
  if (CoherenceLog* log = coherence_log_.load(std::memory_order_acquire)) {
    log->Append(user_id, serving_version(), /*drop_all=*/true);
  } else if (ContextQueryTree* cache =
                 cache_.load(std::memory_order_acquire)) {
    cache->InvalidateUser(user_id);
  }
  return Status::OK();
}

std::vector<std::string> ProfileStore::UserIds() const {
  util::ReaderLock lock(users_mu_);
  std::vector<std::string> out;
  out.reserve(users_.size());
  for (const auto& [id, user] : users_) out.push_back(id);
  return out;
}

Status ProfileStore::SaveAll(const std::string& dir) const {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument("'" + dir + "' is not a directory");
  }
  // Snapshot the id list, then save each user's pinned snapshot without
  // holding the map lock across file I/O.
  for (const std::string& id : UserIds()) {
    StatusOr<SnapshotPtr> snapshot = GetSnapshot(id);
    if (!snapshot.ok()) continue;  // Removed concurrently; skip.
    CTXPREF_RETURN_IF_ERROR(WriteProfileFile((*snapshot)->profile(),
                                             dir + "/" + id + ".profile"));
  }
  return Status::OK();
}

StatusOr<ProfileStore> ProfileStore::LoadDir(EnvironmentPtr env,
                                             const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("'" + dir + "' is not a directory");
  }
  ProfileStore store(env);
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".profile") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::Internal("error listing '" + dir + "': " + ec.message());
  }
  std::sort(files.begin(), files.end());  // Deterministic load order.
  for (const fs::path& file : files) {
    StatusOr<Profile> profile = ReadProfileFile(env, file.string());
    if (!profile.ok()) return profile.status();
    CTXPREF_RETURN_IF_ERROR(
        store.CreateUser(file.stem().string(), std::move(*profile)));
  }
  return store;
}

}  // namespace ctxpref::storage
