#include "storage/profile_store.h"

#include <algorithm>
#include <filesystem>

#include "storage/profile_io.h"
#include "util/string_util.h"

namespace ctxpref::storage {

namespace fs = std::filesystem;

Status ProfileStore::ValidateUserId(const std::string& user_id) {
  if (user_id.empty()) {
    return Status::InvalidArgument("empty user id");
  }
  if (user_id == "." || user_id == ".." ||
      user_id.find('/') != std::string::npos ||
      user_id.find('\\') != std::string::npos) {
    return Status::InvalidArgument("user id '" + user_id +
                                   "' cannot name a file");
  }
  return Status::OK();
}

Status ProfileStore::CreateUser(const std::string& user_id) {
  return CreateUser(user_id, Profile(env_));
}

Status ProfileStore::CreateUser(const std::string& user_id, Profile initial) {
  CTXPREF_RETURN_IF_ERROR(ValidateUserId(user_id));
  if (&initial.env() != env_.get()) {
    return Status::InvalidArgument(
        "profile for user '" + user_id +
        "' was built over a different context environment");
  }
  auto [it, inserted] = users_.try_emplace(user_id);
  if (!inserted) {
    return Status::AlreadyExists("user '" + user_id + "' already exists");
  }
  it->second.profile = std::make_unique<Profile>(std::move(initial));
  return Status::OK();
}

StatusOr<Profile*> ProfileStore::GetProfile(const std::string& user_id) {
  auto it = users_.find(user_id);
  if (it == users_.end()) {
    return Status::NotFound("no user '" + user_id + "'");
  }
  return it->second.profile.get();
}

StatusOr<const ProfileTree*> ProfileStore::GetTree(
    const std::string& user_id) {
  auto it = users_.find(user_id);
  if (it == users_.end()) {
    return Status::NotFound("no user '" + user_id + "'");
  }
  User& user = it->second;
  if (!user.tree.has_value() ||
      user.tree_version != user.profile->version()) {
    StatusOr<ProfileTree> tree = ProfileTree::Build(*user.profile);
    if (!tree.ok()) return tree.status();
    user.tree.emplace(std::move(*tree));
    user.tree_version = user.profile->version();
  }
  return &*user.tree;
}

Status ProfileStore::RemoveUser(const std::string& user_id) {
  if (users_.erase(user_id) == 0) {
    return Status::NotFound("no user '" + user_id + "'");
  }
  return Status::OK();
}

std::vector<std::string> ProfileStore::UserIds() const {
  std::vector<std::string> out;
  out.reserve(users_.size());
  for (const auto& [id, user] : users_) out.push_back(id);
  return out;
}

Status ProfileStore::SaveAll(const std::string& dir) const {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument("'" + dir + "' is not a directory");
  }
  for (const auto& [id, user] : users_) {
    CTXPREF_RETURN_IF_ERROR(
        WriteProfileFile(*user.profile, dir + "/" + id + ".profile"));
  }
  return Status::OK();
}

StatusOr<ProfileStore> ProfileStore::LoadDir(EnvironmentPtr env,
                                             const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("'" + dir + "' is not a directory");
  }
  ProfileStore store(env);
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".profile") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::Internal("error listing '" + dir + "': " + ec.message());
  }
  std::sort(files.begin(), files.end());  // Deterministic load order.
  for (const fs::path& file : files) {
    StatusOr<Profile> profile = ReadProfileFile(env, file.string());
    if (!profile.ok()) return profile.status();
    CTXPREF_RETURN_IF_ERROR(
        store.CreateUser(file.stem().string(), std::move(*profile)));
  }
  return store;
}

Status ProfileStore::ReloadUser(const std::string& user_id,
                                const std::string& dir) {
  auto it = users_.find(user_id);
  if (it == users_.end()) {
    return Status::NotFound("no user '" + user_id + "'");
  }
  // Parse fully before touching the live profile: any Load error
  // returns here with the in-memory state unchanged.
  StatusOr<Profile> loaded =
      ReadProfileFile(env_, dir + "/" + user_id + ".profile");
  if (!loaded.ok()) return loaded.status();
  // Swap contents in place so pointers handed out by GetProfile stay
  // valid. Drop the cached tree outright: the loaded profile's version
  // counter restarts and could collide with the cached one.
  *it->second.profile = std::move(*loaded);
  it->second.tree.reset();
  return Status::OK();
}

}  // namespace ctxpref::storage
