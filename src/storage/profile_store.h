#ifndef CTXPREF_STORAGE_PROFILE_STORE_H_
#define CTXPREF_STORAGE_PROFILE_STORE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "preference/profile.h"
#include "preference/profile_tree.h"
#include "util/status.h"

namespace ctxpref::storage {

/// A multi-user profile repository over one shared context
/// environment — the server-side shape of the paper's system (§5.1
/// runs 10 users against one POI database; each user owns a profile
/// and thus a profile tree).
///
/// Profiles are owned by the store; per-user profile trees are built
/// lazily on first use and invalidated automatically when the user's
/// profile version moves. Persistence maps each user to
/// `<dir>/<user_id>.profile` in the binary format of `profile_io.h`.
class ProfileStore {
 public:
  explicit ProfileStore(EnvironmentPtr env) : env_(std::move(env)) {}

  ProfileStore(ProfileStore&&) = default;
  ProfileStore& operator=(ProfileStore&&) = default;

  const ContextEnvironment& env() const { return *env_; }
  size_t size() const { return users_.size(); }

  /// Creates a user with an empty profile. AlreadyExists if taken;
  /// InvalidArgument for ids that cannot name a file (empty, '/', "..").
  Status CreateUser(const std::string& user_id);

  /// Creates a user seeded with `initial` (e.g. a default profile,
  /// §5.1). The profile must be over this store's environment.
  Status CreateUser(const std::string& user_id, Profile initial);

  /// The user's mutable profile; NotFound for unknown users. The
  /// pointer stays valid until the user is removed.
  StatusOr<Profile*> GetProfile(const std::string& user_id);

  /// The user's profile tree, built (or rebuilt, if the profile
  /// changed) on demand. Valid until the next mutation of that user's
  /// profile or user removal.
  StatusOr<const ProfileTree*> GetTree(const std::string& user_id);

  Status RemoveUser(const std::string& user_id);

  /// All user ids, sorted.
  std::vector<std::string> UserIds() const;

  /// Writes every profile to `<dir>/<user_id>.profile` (the directory
  /// must exist).
  Status SaveAll(const std::string& dir) const;

  /// Loads every `*.profile` file in `dir` into a fresh store.
  static StatusOr<ProfileStore> LoadDir(EnvironmentPtr env,
                                        const std::string& dir);

  /// Re-reads `<dir>/<user_id>.profile` and replaces the user's
  /// in-memory profile with the file's contents. Atomic with respect
  /// to failure: the file is parsed and validated *before* the swap,
  /// so a missing, corrupt, or mismatched file leaves the current
  /// profile (and any `GetProfile` pointer) untouched and serving.
  /// NotFound for unknown users.
  Status ReloadUser(const std::string& user_id, const std::string& dir);

 private:
  struct User {
    std::unique_ptr<Profile> profile;
    std::optional<ProfileTree> tree;
    uint64_t tree_version = 0;
  };

  static Status ValidateUserId(const std::string& user_id);

  EnvironmentPtr env_;
  std::map<std::string, User> users_;
};

}  // namespace ctxpref::storage

#endif  // CTXPREF_STORAGE_PROFILE_STORE_H_
