#ifndef CTXPREF_STORAGE_PROFILE_STORE_H_
#define CTXPREF_STORAGE_PROFILE_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "preference/flat_profile_tree.h"
#include "preference/profile.h"
#include "preference/profile_tree.h"
#include "preference/query_cache.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ctxpref {
class CoherenceLog;
}

namespace ctxpref::storage {

/// One immutable published version of a user's profile: the profile
/// itself, its built `ProfileTree`, and the store-wide *serving
/// version* it was published under. Snapshots are handed out as
/// `std::shared_ptr<const ProfileSnapshot>`; a reader that pins one
/// keeps ranking against exactly this version no matter how many
/// newer versions writers publish meanwhile (RCU-style copy-on-write;
/// see docs/serving.md).
///
/// The serving version is owned by the `ProfileStore`, strictly
/// monotone across *all* users and *never reused* — unlike
/// `Profile::version()`, which is a per-object mutation counter that
/// restarts when a profile is reloaded from disk and can therefore
/// collide across a swap (the stale-cache bug this type exists to
/// fix).
class ProfileSnapshot {
 public:
  ProfileSnapshot(std::string user_id, uint64_t serving_version,
                  std::shared_ptr<const Profile> profile,
                  std::shared_ptr<const ProfileTree> tree,
                  std::shared_ptr<const FlatProfileTree> flat = nullptr);
  ~ProfileSnapshot();

  ProfileSnapshot(const ProfileSnapshot&) = delete;
  ProfileSnapshot& operator=(const ProfileSnapshot&) = delete;

  const std::string& user_id() const { return user_id_; }
  /// Store-wide monotone version; the tag `ContextQueryTree` entries
  /// computed from this snapshot carry.
  uint64_t serving_version() const { return serving_version_; }
  const Profile& profile() const { return *profile_; }
  const ProfileTree& tree() const { return *tree_; }
  const std::shared_ptr<const Profile>& profile_ptr() const {
    return profile_;
  }
  const std::shared_ptr<const ProfileTree>& tree_ptr() const { return tree_; }
  /// The arena-flattened read-optimized form of `tree()`, built once at
  /// publish time; the serving layer resolves against it (see
  /// docs/serving.md). Null only for snapshots constructed manually
  /// without one — `ProfileStore` always publishes with the arena.
  /// Immutable after publish like everything else in the snapshot, so
  /// readers need no lock (and it introduces no lock rank).
  const FlatProfileTree* flat_tree() const { return flat_.get(); }
  const std::shared_ptr<const FlatProfileTree>& flat_tree_ptr() const {
    return flat_;
  }
  /// `MonotonicNanos()` at construction (= publish time); the basis of
  /// the snapshot-age gauge.
  uint64_t publish_nanos() const { return publish_nanos_; }

 private:
  std::string user_id_;
  uint64_t serving_version_;
  std::shared_ptr<const Profile> profile_;
  std::shared_ptr<const ProfileTree> tree_;
  std::shared_ptr<const FlatProfileTree> flat_;
  uint64_t publish_nanos_;
};

using SnapshotPtr = std::shared_ptr<const ProfileSnapshot>;

/// A multi-user profile repository over one shared context
/// environment — the server-side shape of the paper's system (§5.1
/// runs 10 users against one POI database; each user owns a profile
/// and thus a profile tree).
///
/// Serving model (copy-on-write, see docs/serving.md): every user has
/// a *current* `ProfileSnapshot` published through a mutex-guarded
/// pointer slot (held only for the pointer copy or swap, never across
/// real work). Readers (`GetSnapshot`) pin the current snapshot in
/// O(1) and rank against it with no lock held; writers (`UpdateUser`,
/// `PublishProfile`, `ReloadUser`) copy the current profile off to the
/// side, mutate the copy, build its tree, and publish the result with
/// one pointer swap.
/// In-flight readers keep their pinned version; the retired snapshot
/// is freed when the last reader drops it. Writers to the *same* user
/// serialize on a per-user mutex; writers to different users proceed
/// in parallel.
///
/// When a `ContextQueryTree` is attached (`AttachQueryCache`), every
/// publish and removal eagerly invalidates that user's cached entries,
/// and all entries written on behalf of a snapshot are tagged with its
/// serving version — so a cached result can never outlive the profile
/// version that produced it.
///
/// Persistence maps each user to `<dir>/<user_id>.profile` in the
/// binary format of `profile_io.h`.
///
/// Thread safety: all methods are safe to call concurrently, except
/// that the store must not be moved, destroyed, or re-assigned while
/// any other thread is using it.
class ProfileStore {
 public:
  explicit ProfileStore(EnvironmentPtr env);
  ~ProfileStore();

  /// Moves are for construction-time hand-off (`LoadDir` returns a
  /// store by value); they are not thread-safe against concurrent use
  /// of either store — which is why they opt out of the analysis.
  ProfileStore(ProfileStore&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  ProfileStore& operator=(ProfileStore&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS;

  const ContextEnvironment& env() const { return *env_; }
  size_t size() const;

  /// Creates a user with an empty profile (published as snapshot
  /// version `next serving version`). AlreadyExists if taken;
  /// InvalidArgument for ids that cannot name a file (empty, '/',
  /// "..").
  Status CreateUser(const std::string& user_id);

  /// Creates a user seeded with `initial` (e.g. a default profile,
  /// §5.1). The profile must be over this store's environment.
  Status CreateUser(const std::string& user_id, Profile initial);

  /// Pins the user's current snapshot: O(1) — the per-user slot mutex
  /// is held only for the pointer copy, never across a publish or a
  /// tree build. The snapshot (profile + tree + serving version) stays
  /// valid and immutable for as long as the caller holds the pointer,
  /// across any number of concurrent publishes. NotFound for unknown
  /// users.
  StatusOr<SnapshotPtr> GetSnapshot(const std::string& user_id) const;

  /// The user's current profile, read-only. The pointer is a view into
  /// the current snapshot: it stays valid until the *next* publish for
  /// this user (or user removal) — for anything longer-lived, pin the
  /// snapshot with `GetSnapshot`. NotFound for unknown users.
  StatusOr<const Profile*> GetProfile(const std::string& user_id) const;

  /// The user's current profile tree (always built — publishing a
  /// snapshot builds it eagerly). Same lifetime contract as
  /// `GetProfile`.
  StatusOr<const ProfileTree*> GetTree(const std::string& user_id) const;

  /// Copy-on-write edit: copies the user's current profile, applies
  /// `edit` to the copy, builds the new tree, and publishes the result
  /// as a new snapshot. Nothing is published — and concurrent readers
  /// observe nothing — if `edit` returns an error or the tree build
  /// fails. `edit` runs under the user's writer lock: it must not call
  /// back into this store. This is the entry point for feedback-driven
  /// rescoring and programmatic edits.
  Status UpdateUser(const std::string& user_id,
                    const std::function<Status(Profile&)>& edit);

  /// Wholesale replacement: publishes `profile` (over this store's
  /// environment) as the user's new snapshot.
  Status PublishProfile(const std::string& user_id, Profile profile);

  /// Re-reads `<dir>/<user_id>.profile` and publishes the file's
  /// contents as a new snapshot. Atomic with respect to failure: the
  /// file is parsed and validated *before* the swap, so a missing,
  /// corrupt, or mismatched file leaves the current snapshot serving.
  /// Readers holding the old snapshot keep it. NotFound for unknown
  /// users.
  Status ReloadUser(const std::string& user_id, const std::string& dir);

  /// Removes the user and invalidates their cached query results.
  /// Readers holding the user's snapshot keep it.
  Status RemoveUser(const std::string& user_id);

  /// All user ids, sorted.
  std::vector<std::string> UserIds() const;

  /// Writes every profile to `<dir>/<user_id>.profile` (the directory
  /// must exist). Concurrent publishes may or may not be included;
  /// each user's file is internally consistent (one snapshot).
  Status SaveAll(const std::string& dir) const;

  /// Loads every `*.profile` file in `dir` into a fresh store.
  static StatusOr<ProfileStore> LoadDir(EnvironmentPtr env,
                                        const std::string& dir);

  /// Attaches the query cache this store invalidates on publish and
  /// removal. The cache must outlive the store (or be detached first);
  /// pass nullptr to detach. Entries the serving layer writes through
  /// `CachedRankCS` are tagged `{user_id, serving version}`, so
  /// invalidation is eager *and* version tags make any straggler
  /// lookups miss.
  void AttachQueryCache(ContextQueryTree* cache) {
    cache_.store(cache, std::memory_order_release);
  }
  ContextQueryTree* query_cache() const {
    return cache_.load(std::memory_order_acquire);
  }

  /// Attaches a coherence log (`preference/replicated_query_cache.h`):
  /// publishes and removals then *append* one invalidation record
  /// instead of eagerly pruning an attached cache — the log-based
  /// scheme replicated caches consume on their own schedule
  /// (docs/coherence.md). When both a cache and a log are attached the
  /// log wins: the writer takes no cache lock at all, and a directly
  /// attached shared cache would go stale (version tags still make its
  /// exact-match lookups miss). The log must outlive the store (or be
  /// detached first); pass nullptr to detach.
  void AttachCoherenceLog(CoherenceLog* log) {
    coherence_log_.store(log, std::memory_order_release);
  }
  CoherenceLog* coherence_log() const {
    return coherence_log_.load(std::memory_order_acquire);
  }

  /// The store-wide serving-version counter's current value (the
  /// version of the most recent publish; 0 = nothing published yet).
  uint64_t serving_version() const {
    return version_counter_.load(std::memory_order_acquire);
  }

 private:
  struct User {
    /// Serializes writers to this user (rank `kPerUserWrite`): held
    /// across the whole copy-edit-rebuild, around the slot swap and
    /// the cache invalidation below it in the hierarchy.
    util::Mutex write_mu{util::LockRank::kPerUserWrite,
                         "ProfileStore.User.write_mu"};
    /// Guards only the `current` pointer slot (rank `kStoreSlot`).
    /// Held for a shared_ptr copy (readers) or swap (publish) —
    /// nanoseconds — and kept separate from `write_mu`, which writers
    /// hold across the whole copy-edit-rebuild, so readers never wait
    /// on a profile build.
    /// (Not `std::atomic<shared_ptr>`: libstdc++'s `_Sp_atomic::load`
    /// releases its internal lock bit with a relaxed RMW, which leaves
    /// the pointer read formally unordered against a later `exchange`
    /// — TSan flags it, correctly per the abstract machine.)
    mutable util::Mutex snap_mu{util::LockRank::kStoreSlot,
                                "ProfileStore.User.snap_mu"};
    /// The published snapshot readers pin.
    SnapshotPtr current GUARDED_BY(snap_mu);

    SnapshotPtr Pin() const EXCLUDES(snap_mu) {
      util::MutexLock lock(snap_mu);
      return current;
    }
    /// Installs `next` and returns the retired snapshot.
    SnapshotPtr Swap(SnapshotPtr next) EXCLUDES(snap_mu) {
      util::MutexLock lock(snap_mu);
      current.swap(next);
      return next;
    }
  };

  static Status ValidateUserId(const std::string& user_id);

  /// Builds `profile`'s tree, wraps everything into a snapshot with a
  /// fresh serving version, stores it into `user.current`, and
  /// invalidates `user_id`'s cache entries. The writer lock is the
  /// publish serialization point; creation takes it too (uncontended —
  /// the exclusive map lock hides the new user) so the contract is
  /// uniform and machine-checkable.
  Status BuildAndPublish(User& user, const std::string& user_id,
                         Profile profile) REQUIRES(user.write_mu);

  EnvironmentPtr env_;
  /// Guards the user map's *shape* only (find/insert/erase), never the
  /// snapshots: readers and writers take it shared and briefly;
  /// CreateUser/RemoveUser take it unique. First lock on every store
  /// path (rank `kUserMap`).
  mutable util::SharedMutex users_mu_{util::LockRank::kUserMap,
                                      "ProfileStore.users_mu"};
  std::map<std::string, std::unique_ptr<User>> users_ GUARDED_BY(users_mu_);
  /// Store-wide monotone serving version; see `ProfileSnapshot`.
  std::atomic<uint64_t> version_counter_{0};
  std::atomic<ContextQueryTree*> cache_{nullptr};
  std::atomic<CoherenceLog*> coherence_log_{nullptr};
};

}  // namespace ctxpref::storage

#endif  // CTXPREF_STORAGE_PROFILE_STORE_H_
