#include "storage/serving.h"

#include "preference/replicated_query_cache.h"
#include "preference/resolution.h"
#include "util/metrics.h"

namespace ctxpref::storage {

namespace {

LatencyHistogram& ReaderPinHistogram() {
  static LatencyHistogram* h = &MetricsRegistry::Global().GetHistogram(
      "ctxpref_profile_reader_pin_ns",
      "How long readers keep a ProfileSnapshot pinned");
  return *h;
}

/// Degradation-ladder outcome mix for `ServeQueryResilient` (the
/// admission decisions themselves are counted in admission.cc).
struct ServingMetrics {
  Counter& requests;
  Counter& fresh;
  Counter& stale;
  Counter& truncated;
  Counter& unavailable;
  Counter& deadline_hits;

  static ServingMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static ServingMetrics* m = new ServingMetrics{
        reg.GetCounter("ctxpref_serving_requests_total",
                       "ServeQueryResilient requests"),
        reg.GetCounter("ctxpref_serving_fresh_total",
                       "Answers served by full evaluation"),
        reg.GetCounter("ctxpref_serving_stale_total",
                       "Answers served from the bounded-staleness cache rung"),
        reg.GetCounter("ctxpref_serving_truncated_total",
                       "Answers served by the truncated top-k rung"),
        reg.GetCounter("ctxpref_serving_unavailable_total",
                       "Requests that fell off the ladder (kUnavailable)"),
        reg.GetCounter("ctxpref_serving_deadline_hits_total",
                       "Requests pushed down the ladder by deadline expiry"),
    };
    return *m;
  }
};

}  // namespace

const char* ServedViaToString(ServedVia v) {
  switch (v) {
    case ServedVia::kFresh:
      return "fresh";
    case ServedVia::kStale:
      return "stale";
    case ServedVia::kTruncated:
      return "truncated";
    case ServedVia::kShed:
      return "shed";
  }
  return "unknown";
}

std::string ServingProvenance::ToString() const {
  switch (via) {
    case ServedVia::kStale:
      return "stale-v" + std::to_string(served_version);
    case ServedVia::kFresh:
    case ServedVia::kTruncated:
    case ServedVia::kShed:
      return ServedViaToString(via);
  }
  return "unknown";
}

SnapshotPin::SnapshotPin(SnapshotPtr snapshot)
    : snapshot_(std::move(snapshot)),
      start_nanos_(MetricsRegistry::TimingEnabled() ? MonotonicNanos() : 0) {}

SnapshotPin::~SnapshotPin() {
  if (start_nanos_ != 0 && snapshot_ != nullptr) {
    ReaderPinHistogram().Record(MonotonicNanos() - start_nanos_);
  }
}

StatusOr<QueryResult> ServeQuery(const ProfileSnapshot& snapshot,
                                 const db::Relation& relation,
                                 const ContextualQuery& query,
                                 ContextQueryTree* cache,
                                 const QueryOptions& options,
                                 AccessCounter* counter) {
  // Resolve against the snapshot's arena-flattened tree when it has
  // one (ProfileStore always publishes with it); the pointer tree is
  // the fallback for manually-built snapshots. Both produce identical
  // results — the differential tests pin that down — so this is purely
  // a hot-path choice. `options.prefer_flat = false` (the harness's
  // `flat = off` ablation) forces the pointer-tree fallback.
  const FlatProfileTree* flat =
      options.prefer_flat ? snapshot.flat_tree() : nullptr;
  if (flat != nullptr) {
    FlatResolver resolver(flat);
    if (cache != nullptr) {
      // Tag entries with the snapshot's own identity, never
      // options.cache_user / Profile::version(): the serving version is
      // unique across swaps, so a stale entry can never be mistaken for
      // a current one.
      return CachedRankCS(relation, query, resolver, snapshot.user_id(),
                          snapshot.serving_version(), *cache, options,
                          counter);
    }
    return RankCS(relation, query, resolver, options, counter);
  }
  TreeResolver resolver(&snapshot.tree());
  if (cache != nullptr) {
    return CachedRankCS(relation, query, resolver, snapshot.user_id(),
                        snapshot.serving_version(), *cache, options, counter);
  }
  return RankCS(relation, query, resolver, options, counter);
}

StatusOr<ServedQuery> ServeQuery(const ProfileStore& store,
                                 const std::string& user_id,
                                 const db::Relation& relation,
                                 const ContextualQuery& query,
                                 ContextQueryTree* cache,
                                 const QueryOptions& options,
                                 AccessCounter* counter) {
  StatusOr<SnapshotPtr> snapshot = store.GetSnapshot(user_id);
  if (!snapshot.ok()) return snapshot.status();
  SnapshotPin pin(*snapshot);
  StatusOr<QueryResult> result =
      ServeQuery(*pin, relation, query, cache, options, counter);
  if (!result.ok()) return result.status();
  return ServedQuery{std::move(*result), pin.snapshot(), ServingProvenance{}};
}

namespace {

/// Ladder rung 1: a cached answer with every query state at ONE
/// consistent older serving version — mixed versions would be exactly
/// the torn answer the serving layer promises never to produce. The
/// merge replicates CachedRankCS's (selections re-applied, associative
/// combine, top-k last), so the result is bit-identical to a direct
/// ServeQuery pinned at that version — the differential test's
/// property.
bool TryServeStale(const std::string& user_id, const db::Relation& relation,
                   const ContextualQuery& query,
                   const std::vector<ContextState>& states,
                   ContextQueryTree& cache, uint64_t current_version,
                   uint64_t max_stale_versions, const QueryOptions& options,
                   AccessCounter* counter, QueryResult* out,
                   uint64_t* served_version) {
  if (states.empty()) return false;
  // Same associativity rule as CachedRankCS: per-state lists only
  // merge correctly under kMax/kMin.
  if (options.combine != db::CombinePolicy::kMax &&
      options.combine != db::CombinePolicy::kMin) {
    return false;
  }
  const uint64_t min_version = current_version > max_stale_versions
                                   ? current_version - max_stale_versions
                                   : 0;
  // The first state picks the consistent version V (newest available
  // within the window); every other state must then hit exactly V.
  uint64_t version = 0;
  std::vector<std::shared_ptr<const ContextQueryTree::Entry>> entries;
  entries.reserve(states.size());
  std::shared_ptr<const ContextQueryTree::Entry> first = cache.LookupAtOrBefore(
      user_id, states[0], current_version, min_version, &version, counter);
  if (first == nullptr) return false;
  entries.push_back(std::move(first));
  for (size_t i = 1; i < states.size(); ++i) {
    std::shared_ptr<const ContextQueryTree::Entry> e = cache.LookupAtOrBefore(
        user_id, states[i], version, version, nullptr, counter);
    if (e == nullptr) return false;
    entries.push_back(std::move(e));
  }

  QueryResult result;
  db::Ranker ranker(options.combine);
  for (size_t i = 0; i < states.size(); ++i) {
    for (const db::ScoredTuple& t : entries[i]->tuples) {
      bool eligible = true;
      for (const db::Predicate& sel : query.selections) {
        if (!sel.Eval(relation.row(t.row_id))) {
          eligible = false;
          break;
        }
      }
      if (eligible) ranker.Add(t.row_id, t.score);
    }
    result.traces.push_back(QueryResult::Trace{
        states[i], entries[i]->candidates != nullptr
                       ? *entries[i]->candidates
                       : std::vector<CandidatePath>{}});
  }
  result.tuples =
      options.top_k > 0 ? ranker.TopK(options.top_k) : ranker.Ranked();
  *out = std::move(result);
  *served_version = version;
  return true;
}

}  // namespace

StatusOr<ServedQuery> ServeQueryResilient(const ProfileStore& store,
                                          const std::string& user_id,
                                          const db::Relation& relation,
                                          const ContextualQuery& query,
                                          ContextQueryTree* cache,
                                          const ServeOptions& opts,
                                          AccessCounter* counter) {
  ServingMetrics& metrics = ServingMetrics::Get();
  metrics.requests.Increment();

  // Pinning is O(1) and the ladder's stale rung needs the pinned
  // version anyway, so the snapshot is pinned before admission.
  StatusOr<SnapshotPtr> snapshot = store.GetSnapshot(user_id);
  if (!snapshot.ok()) return snapshot.status();
  SnapshotPin pin(*snapshot);

  ServingProvenance provenance;
  provenance.current_version = pin->serving_version();

  // Front door: admit or shed, never queue. An expired deadline sheds
  // here too (kShedDeadline) — one clock read instead of a full pin +
  // first-cancellation-point round trip.
  AdmissionController::Ticket ticket;
  bool admitted = true;
  if (opts.admission != nullptr) {
    ticket = opts.admission->Admit(opts.priority, opts.query.deadline);
    provenance.admission = ticket.decision();
    admitted = ticket.admitted();
    if (ticket.decision() == AdmissionDecision::kShedDeadline) {
      provenance.deadline_hit = true;
    }
  } else if (opts.query.deadline.Expired()) {
    provenance.admission = AdmissionDecision::kShedDeadline;
    provenance.deadline_hit = true;
    admitted = false;
  }

  // Rung 0: full evaluation at the pinned version, deadline-checked at
  // every cancellation point along the way.
  if (admitted) {
    StatusOr<QueryResult> result =
        ServeQuery(*pin, relation, query, cache, opts.query, counter);
    if (result.ok()) {
      metrics.fresh.Increment();
      provenance.via = ServedVia::kFresh;
      provenance.served_version = pin->serving_version();
      return ServedQuery{std::move(*result), pin.snapshot(), provenance};
    }
    if (!result.status().IsDeadlineExceeded()) {
      return result.status();  // A bug, not overload: surface it.
    }
    provenance.deadline_hit = true;
    metrics.deadline_hits.Increment();
  } else if (provenance.deadline_hit) {
    metrics.deadline_hits.Increment();
  }

  // The ladder needs the enumerated query states (the stale rung joins
  // per-state cache entries; the truncated rung keeps only the first).
  const ContextEnvironment& env = pin->tree().env();
  std::vector<ContextState> states = query.context.EnumerateStates(env);
  if (states.empty()) states.push_back(ContextState::AllState(env));
  for (const ContextState& s : states) {
    CTXPREF_RETURN_IF_ERROR(s.Validate(env));
  }

  // Rung 1: bounded-staleness cached answer at one older version.
  if (cache != nullptr && opts.allow_stale && opts.max_stale_versions > 0) {
    QueryResult stale;
    uint64_t served_version = 0;
    if (TryServeStale(user_id, relation, query, states, *cache,
                      pin->serving_version(), opts.max_stale_versions,
                      opts.query, counter, &stale, &served_version)) {
      metrics.stale.Increment();
      provenance.via = ServedVia::kStale;
      provenance.served_version = served_version;
      return ServedQuery{std::move(stale), pin.snapshot(), provenance};
    }
  }

  // Rung 2: truncated answer — first state only, reduced top-k, no
  // cache writes. Keeps the request's deadline: if it is already gone,
  // the first cancellation point aborts this rung too.
  if (opts.allow_truncated) {
    StatusOr<CompositeDescriptor> first_cod =
        CompositeDescriptor::ForState(env, states[0]);
    if (first_cod.ok()) {
      ContextualQuery truncated_query{
          ExtendedDescriptor::FromComposite(std::move(*first_cod)),
          query.selections};
      QueryOptions truncated_options = opts.query;
      truncated_options.top_k = opts.truncated_top_k;
      truncated_options.num_threads = 1;
      truncated_options.pool = nullptr;
      StatusOr<QueryResult> result =
          ServeQuery(*pin, relation, truncated_query, /*cache=*/nullptr,
                     truncated_options, counter);
      if (result.ok()) {
        metrics.truncated.Increment();
        provenance.via = ServedVia::kTruncated;
        provenance.served_version = pin->serving_version();
        return ServedQuery{std::move(*result), pin.snapshot(), provenance};
      }
      if (!result.status().IsDeadlineExceeded()) return result.status();
    }
  }

  // Off the ladder.
  metrics.unavailable.Increment();
  return Status::Unavailable(
      std::string("serving: request shed (") +
      AdmissionDecisionToString(provenance.admission) +
      (provenance.deadline_hit ? ", deadline expired" : "") +
      "), no degraded answer available");
}

StatusOr<ServedQuery> ServeQueryReplicated(const ProfileStore& store,
                                           const std::string& user_id,
                                           const db::Relation& relation,
                                           const ContextualQuery& query,
                                           ReplicatedQueryCache& replicas,
                                           const QueryOptions& options,
                                           AccessCounter* counter,
                                           size_t replica) {
  StatusOr<SnapshotPtr> snapshot = store.GetSnapshot(user_id);
  if (!snapshot.ok()) return snapshot.status();
  SnapshotPin pin(*snapshot);
  const uint64_t pinned_version = pin->serving_version();

  const size_t r =
      replica == kAnyReplica ? replicas.ReplicaForThisThread() : replica;
  if (replicas.options().mode ==
      ReplicatedQueryCache::ConsumeMode::kInlineAtLookup) {
    replicas.Consume(r);
  }
  // The coherence gate. `Covers` reads the clock with acquire, pairing
  // with the consume step's release store: a covered replica has
  // applied every invalidation record at or below the pinned version
  // (modulo appends still in flight — harmless, their versions exceed
  // any tag a hit could match; see docs/coherence.md).
  ContextQueryTree* tree = nullptr;
  if (replicas.Covers(r, pinned_version)) {
    tree = &replicas.replica(r);
  } else {
    ReplicatedQueryCache::RecordStaleRefuse();
  }
  StatusOr<QueryResult> result =
      ServeQuery(*pin, relation, query, tree, options, counter);
  if (!result.ok()) return result.status();
  ServingProvenance provenance;
  provenance.via = ServedVia::kFresh;
  provenance.served_version = pinned_version;
  provenance.current_version = pinned_version;
  return ServedQuery{std::move(*result), pin.snapshot(), provenance};
}

}  // namespace ctxpref::storage
