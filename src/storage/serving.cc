#include "storage/serving.h"

#include "preference/resolution.h"
#include "util/metrics.h"

namespace ctxpref::storage {

namespace {

LatencyHistogram& ReaderPinHistogram() {
  static LatencyHistogram* h = &MetricsRegistry::Global().GetHistogram(
      "ctxpref_profile_reader_pin_ns",
      "How long readers keep a ProfileSnapshot pinned");
  return *h;
}

}  // namespace

SnapshotPin::SnapshotPin(SnapshotPtr snapshot)
    : snapshot_(std::move(snapshot)),
      start_nanos_(MetricsRegistry::TimingEnabled() ? MonotonicNanos() : 0) {}

SnapshotPin::~SnapshotPin() {
  if (start_nanos_ != 0 && snapshot_ != nullptr) {
    ReaderPinHistogram().Record(MonotonicNanos() - start_nanos_);
  }
}

StatusOr<QueryResult> ServeQuery(const ProfileSnapshot& snapshot,
                                 const db::Relation& relation,
                                 const ContextualQuery& query,
                                 ContextQueryTree* cache,
                                 const QueryOptions& options,
                                 AccessCounter* counter) {
  // Resolve against the snapshot's arena-flattened tree when it has
  // one (ProfileStore always publishes with it); the pointer tree is
  // the fallback for manually-built snapshots. Both produce identical
  // results — the differential tests pin that down — so this is purely
  // a hot-path choice.
  if (const FlatProfileTree* flat = snapshot.flat_tree()) {
    FlatResolver resolver(flat);
    if (cache != nullptr) {
      // Tag entries with the snapshot's own identity, never
      // options.cache_user / Profile::version(): the serving version is
      // unique across swaps, so a stale entry can never be mistaken for
      // a current one.
      return CachedRankCS(relation, query, resolver, snapshot.user_id(),
                          snapshot.serving_version(), *cache, options,
                          counter);
    }
    return RankCS(relation, query, resolver, options, counter);
  }
  TreeResolver resolver(&snapshot.tree());
  if (cache != nullptr) {
    return CachedRankCS(relation, query, resolver, snapshot.user_id(),
                        snapshot.serving_version(), *cache, options, counter);
  }
  return RankCS(relation, query, resolver, options, counter);
}

StatusOr<ServedQuery> ServeQuery(const ProfileStore& store,
                                 const std::string& user_id,
                                 const db::Relation& relation,
                                 const ContextualQuery& query,
                                 ContextQueryTree* cache,
                                 const QueryOptions& options,
                                 AccessCounter* counter) {
  StatusOr<SnapshotPtr> snapshot = store.GetSnapshot(user_id);
  if (!snapshot.ok()) return snapshot.status();
  SnapshotPin pin(*snapshot);
  StatusOr<QueryResult> result =
      ServeQuery(*pin, relation, query, cache, options, counter);
  if (!result.ok()) return result.status();
  return ServedQuery{std::move(*result), pin.snapshot()};
}

}  // namespace ctxpref::storage
