#ifndef CTXPREF_STORAGE_ENV_SPEC_H_
#define CTXPREF_STORAGE_ENV_SPEC_H_

#include <string>
#include <string_view>

#include "context/environment.h"
#include "util/status.h"

namespace ctxpref::storage {

/// Human-editable text format for hierarchies and environments, so a
/// deployment can define its context model in a config file instead of
/// code. Example (the paper's Fig. 2 environment):
///
///   # hierarchies bottom-up; the first level is the detailed one.
///   hierarchy location
///     level Region: Plaka, Kifisia, Perama
///     level City: Athens(Plaka, Kifisia), Ioannina(Perama)
///     level Country: Greece(Athens, Ioannina)
///   end
///
///   hierarchy weather
///     level Conditions: freezing, cold, mild, warm, hot
///     level Characterization: bad(freezing, cold), good(mild, warm, hot)
///   end
///
///   environment
///     parameter location uses location
///     parameter temperature uses weather
///   end
///
/// The ALL level is implicit (appended by the hierarchy builder).
/// Lines starting with '#' are comments. Value and level names use the
/// descriptor-parser alphabet (alphanumerics, '_', '-', '.').

/// Parses a full spec (any number of hierarchies + one environment
/// block). Errors with Corruption on malformed syntax, InvalidArgument
/// on semantic errors (unknown hierarchy, duplicate parameter, ...).
StatusOr<EnvironmentPtr> ParseEnvironmentSpec(std::string_view text);

/// Serializes `env` back to the spec format; ParseEnvironmentSpec on
/// the output reconstructs an equivalent environment.
std::string EnvironmentSpecToText(const ContextEnvironment& env);

/// File wrappers.
StatusOr<EnvironmentPtr> ReadEnvironmentSpecFile(const std::string& path);
Status WriteEnvironmentSpecFile(const ContextEnvironment& env,
                                const std::string& path);

}  // namespace ctxpref::storage

#endif  // CTXPREF_STORAGE_ENV_SPEC_H_
