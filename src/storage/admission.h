#ifndef CTXPREF_STORAGE_ADMISSION_H_
#define CTXPREF_STORAGE_ADMISSION_H_

#include <cstddef>
#include <cstdint>

#include "util/deadline.h"
#include "util/mutex.h"

namespace ctxpref::storage {

/// Priority class of a serving request. Interactive queries are what
/// the deadline budget protects; maintenance work (profile rebuilds,
/// cache warmers, batch re-ranks) gets a smaller in-flight slice so a
/// backfill can never starve user-facing traffic.
enum class QueryPriority { kInteractive, kMaintenance };

const char* QueryPriorityToString(QueryPriority p);

/// Why a request was (not) admitted. Every non-admitted outcome is a
/// deterministic function of controller state — no queueing, no
/// randomness — so overload behavior is reproducible in tests.
enum class AdmissionDecision {
  kAdmitted,
  kShedCapacity,     ///< Total in-flight limit reached.
  kShedMaintenance,  ///< Maintenance slice exhausted (interactive ok).
  kShedDeadline,     ///< Deadline already expired at the front door.
};

const char* AdmissionDecisionToString(AdmissionDecision d);

/// Static policy knobs; plain data so tests and the bench harness can
/// sweep them.
struct AdmissionPolicy {
  /// Upper bound on concurrently admitted requests of any class.
  size_t max_in_flight = 64;
  /// Upper bound on the maintenance subset of `max_in_flight`.
  size_t maintenance_max_in_flight = 16;
};

/// Admission control for the serving path: the front door that decides
/// — without ever blocking — whether a request may proceed. A request
/// that cannot be admitted is *shed* immediately (the caller falls
/// down the degradation ladder, see docs/robustness.md) instead of
/// queueing behind work that will also miss its deadline. LIFO-under-
/// overload lives in `util::ThreadPool`'s dequeue order, not here:
/// this class deliberately has no queue.
///
/// Thread-safe. The mutex ranks `kAdmission`, outermost in the
/// hierarchy: admission happens before any store/cache/pool lock and
/// ticket release acquires nothing else.
class AdmissionController {
 public:
  /// RAII admission slot. A default ticket is "not admitted"; an
  /// admitted one returns its slot on destruction. Move-only.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : controller_(other.controller_),
          priority_(other.priority_),
          decision_(other.decision_) {
      // Moved-from == default: it must not report itself admitted
      // while the slot now belongs to the new ticket.
      other.controller_ = nullptr;
      other.decision_ = AdmissionDecision::kShedCapacity;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        priority_ = other.priority_;
        decision_ = other.decision_;
        other.controller_ = nullptr;
        other.decision_ = AdmissionDecision::kShedCapacity;
      }
      return *this;
    }
    ~Ticket() { Release(); }

    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool admitted() const {
      return decision_ == AdmissionDecision::kAdmitted;
    }
    AdmissionDecision decision() const { return decision_; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, QueryPriority priority,
           AdmissionDecision decision)
        : controller_(controller), priority_(priority), decision_(decision) {}

    void Release();

    /// Non-null only while holding a slot.
    AdmissionController* controller_ = nullptr;
    QueryPriority priority_ = QueryPriority::kInteractive;
    AdmissionDecision decision_ = AdmissionDecision::kShedCapacity;
  };

  /// Point-in-time occupancy counters.
  struct Stats {
    size_t in_flight = 0;
    size_t maintenance_in_flight = 0;
    size_t in_flight_highwater = 0;
    uint64_t admitted_total = 0;
    uint64_t shed_capacity_total = 0;
    uint64_t shed_maintenance_total = 0;
    uint64_t shed_deadline_total = 0;
  };

  explicit AdmissionController(AdmissionPolicy policy = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  const AdmissionPolicy& policy() const { return policy_; }

  /// Admit-or-shed, never blocks. An already-expired `deadline` is
  /// shed at the door (`kShedDeadline`) without consuming a slot —
  /// cheaper than letting the query path discover it one cancellation
  /// point later.
  Ticket Admit(QueryPriority priority,
               const util::Deadline& deadline = {}) EXCLUDES(mu_);

  Stats GetStats() const EXCLUDES(mu_);

 private:
  void ReleaseSlot(QueryPriority priority) EXCLUDES(mu_);

  const AdmissionPolicy policy_;  ///< Set once at construction.

  mutable util::Mutex mu_{util::LockRank::kAdmission,
                          "AdmissionController.mu"};
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  size_t maintenance_in_flight_ GUARDED_BY(mu_) = 0;
  size_t in_flight_highwater_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_total_ GUARDED_BY(mu_) = 0;
  uint64_t shed_capacity_total_ GUARDED_BY(mu_) = 0;
  uint64_t shed_maintenance_total_ GUARDED_BY(mu_) = 0;
  uint64_t shed_deadline_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace ctxpref::storage

#endif  // CTXPREF_STORAGE_ADMISSION_H_
