#ifndef CTXPREF_STORAGE_SERVING_H_
#define CTXPREF_STORAGE_SERVING_H_

#include <memory>
#include <string>
#include <utility>

#include "preference/contextual_query.h"
#include "preference/query_cache.h"
#include "storage/admission.h"
#include "storage/profile_store.h"
#include "util/counters.h"
#include "util/status.h"

namespace ctxpref {
class ReplicatedQueryCache;
}

namespace ctxpref::storage {

/// RAII pin on a `ProfileSnapshot`: holds the snapshot alive for the
/// duration of a read (one or more ranked queries) and records the pin
/// duration into `ctxpref_profile_reader_pin_ns` on release — the
/// histogram that tells an operator how long retired snapshots can
/// stay referenced (and thus how much memory a churning writer can
/// pin). The duration is recorded only while
/// `MetricsRegistry::TimingEnabled()`.
class SnapshotPin {
 public:
  explicit SnapshotPin(SnapshotPtr snapshot);
  ~SnapshotPin();

  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;
  SnapshotPin(SnapshotPin&& other) noexcept
      : snapshot_(std::move(other.snapshot_)),
        start_nanos_(other.start_nanos_) {
    other.start_nanos_ = 0;
  }

  const ProfileSnapshot& operator*() const { return *snapshot_; }
  const ProfileSnapshot* operator->() const { return snapshot_.get(); }
  const SnapshotPtr& snapshot() const { return snapshot_; }

 private:
  SnapshotPtr snapshot_;
  uint64_t start_nanos_;  ///< 0 = untimed (or moved-from).
};

/// How an answer was produced, mirroring PR 3's per-parameter
/// acquisition report at the whole-query level: callers (and the
/// differential tests) can tell a full fresh answer from every rung of
/// the degradation ladder.
enum class ServedVia {
  kFresh,      ///< Full evaluation at the pinned snapshot version.
  kStale,      ///< Cached answer at an older consistent serving version.
  kTruncated,  ///< First-state-only, reduced top-k evaluation.
  kShed,       ///< Nothing served (paired with kUnavailable status).
};

const char* ServedViaToString(ServedVia v);

struct ServingProvenance {
  ServedVia via = ServedVia::kFresh;
  /// Serving version the answer's data reflects (== `current_version`
  /// for fresh/truncated; older for stale; 0 for shed).
  uint64_t served_version = 0;
  /// Serving version pinned at request time.
  uint64_t current_version = 0;
  /// Front-door outcome (kAdmitted when no controller was involved).
  AdmissionDecision admission = AdmissionDecision::kAdmitted;
  /// True when a deadline expiry (at admission or mid-evaluation)
  /// pushed the request down the ladder.
  bool deadline_hit = false;

  /// "fresh" | "stale-v<served_version>" | "truncated" | "shed".
  std::string ToString() const;
};

/// A ranked answer plus the exact snapshot it was computed from, so
/// callers can attribute every tuple and trace to one published
/// profile version (the zero-torn-reads property bench_serving and the
/// concurrency tests check). `provenance` is filled by
/// `ServeQueryResilient`; the plain `ServeQuery` always serves fresh.
struct ServedQuery {
  QueryResult result;
  SnapshotPtr snapshot;
  ServingProvenance provenance;
};

/// The multi-user serving entry point: pins `user_id`'s current
/// snapshot, ranks `query` against that one immutable profile-tree
/// version, and returns the answer together with the snapshot it came
/// from. With `cache` non-null the per-state results go through
/// `CachedRankCS`, tagged `{user_id, serving version}` — safe across
/// concurrent profile swaps (see docs/serving.md); with `cache` null
/// it is a plain uncached `RankCS`. `options.cache_user` is ignored:
/// the snapshot's user id is authoritative here.
StatusOr<ServedQuery> ServeQuery(const ProfileStore& store,
                                 const std::string& user_id,
                                 const db::Relation& relation,
                                 const ContextualQuery& query,
                                 ContextQueryTree* cache = nullptr,
                                 const QueryOptions& options = {},
                                 AccessCounter* counter = nullptr);

/// Ranks against an already-pinned snapshot — the form for callers
/// that run several queries against one consistent version.
StatusOr<QueryResult> ServeQuery(const ProfileSnapshot& snapshot,
                                 const db::Relation& relation,
                                 const ContextualQuery& query,
                                 ContextQueryTree* cache = nullptr,
                                 const QueryOptions& options = {},
                                 AccessCounter* counter = nullptr);

/// Overload-protection knobs for `ServeQueryResilient`.
struct ServeOptions {
  /// The underlying query options; `query.deadline` is the request's
  /// cancellation budget (checked at admission and at every query-path
  /// cancellation point).
  QueryOptions query;
  /// Front door; null = always admitted (deadline still enforced).
  AdmissionController* admission = nullptr;
  QueryPriority priority = QueryPriority::kInteractive;
  /// Ladder rung 1: serve a cached answer at an older serving version.
  /// Requires a cache in retain-stale mode to be useful, an associative
  /// combine (kMax/kMin, same rule as CachedRankCS), and every query
  /// state cached at ONE consistent version — mixed versions would be a
  /// torn answer, the thing this whole layer exists to prevent.
  bool allow_stale = true;
  /// How far back (in serving versions) rung 1 may reach.
  uint64_t max_stale_versions = 8;
  /// Ladder rung 2: evaluate only the first query state, top-k
  /// truncated, no cache writes.
  bool allow_truncated = true;
  size_t truncated_top_k = 10;
};

/// `ServeQuery` wrapped in the overload-protection ladder
/// (docs/robustness.md "Serving under overload"):
///
///   admission -> full evaluation -> stale-at-version -> truncated
///   -> kUnavailable
///
/// A request that is shed by the `AdmissionController` or runs out of
/// deadline mid-evaluation falls to the next rung instead of failing;
/// every answer carries a `ServingProvenance` saying which rung served
/// it. Errors other than deadline/shed (unknown user, bad predicate)
/// return unchanged — the ladder only absorbs overload, not bugs.
StatusOr<ServedQuery> ServeQueryResilient(const ProfileStore& store,
                                          const std::string& user_id,
                                          const db::Relation& relation,
                                          const ContextualQuery& query,
                                          ContextQueryTree* cache = nullptr,
                                          const ServeOptions& opts = {},
                                          AccessCounter* counter = nullptr);

/// "Pick the replica by thread" sentinel for `ServeQueryReplicated`.
inline constexpr size_t kAnyReplica = ~static_cast<size_t>(0);

/// `ServeQuery` through one replica of a `ReplicatedQueryCache` kept
/// coherent by the log-based scheme (docs/coherence.md). The flow:
///
///   1. Pin `user_id`'s current snapshot (version V).
///   2. Pick a replica — `replica` if given, else a stable hash of the
///      calling thread (`kAnyReplica`).
///   3. In `kInlineAtLookup` mode, run the replica's consume step so
///      its clock catches up to the append watermark.
///   4. **Gate**: if the replica's clock covers V, serve through the
///      replica's tree (exact-version hits; misses recompute and Put).
///      Otherwise count a stale refuse and serve *uncached* — the miss
///      path — rather than read through a replica that may still hold
///      entries the log says are dead beyond the staleness window.
///
/// Either branch ranks against the same pinned snapshot, so the answer
/// is byte-identical to a single-cache or uncached `ServeQuery` at the
/// same serving version (the differential suite's property); the gate
/// only decides whether the replica's cache may *participate*.
StatusOr<ServedQuery> ServeQueryReplicated(const ProfileStore& store,
                                           const std::string& user_id,
                                           const db::Relation& relation,
                                           const ContextualQuery& query,
                                           ReplicatedQueryCache& replicas,
                                           const QueryOptions& options = {},
                                           AccessCounter* counter = nullptr,
                                           size_t replica = kAnyReplica);

}  // namespace ctxpref::storage

#endif  // CTXPREF_STORAGE_SERVING_H_
