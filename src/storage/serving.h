#ifndef CTXPREF_STORAGE_SERVING_H_
#define CTXPREF_STORAGE_SERVING_H_

#include <memory>
#include <string>
#include <utility>

#include "preference/contextual_query.h"
#include "preference/query_cache.h"
#include "storage/profile_store.h"
#include "util/counters.h"
#include "util/status.h"

namespace ctxpref::storage {

/// RAII pin on a `ProfileSnapshot`: holds the snapshot alive for the
/// duration of a read (one or more ranked queries) and records the pin
/// duration into `ctxpref_profile_reader_pin_ns` on release — the
/// histogram that tells an operator how long retired snapshots can
/// stay referenced (and thus how much memory a churning writer can
/// pin). The duration is recorded only while
/// `MetricsRegistry::TimingEnabled()`.
class SnapshotPin {
 public:
  explicit SnapshotPin(SnapshotPtr snapshot);
  ~SnapshotPin();

  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;
  SnapshotPin(SnapshotPin&& other) noexcept
      : snapshot_(std::move(other.snapshot_)),
        start_nanos_(other.start_nanos_) {
    other.start_nanos_ = 0;
  }

  const ProfileSnapshot& operator*() const { return *snapshot_; }
  const ProfileSnapshot* operator->() const { return snapshot_.get(); }
  const SnapshotPtr& snapshot() const { return snapshot_; }

 private:
  SnapshotPtr snapshot_;
  uint64_t start_nanos_;  ///< 0 = untimed (or moved-from).
};

/// A ranked answer plus the exact snapshot it was computed from, so
/// callers can attribute every tuple and trace to one published
/// profile version (the zero-torn-reads property bench_serving and the
/// concurrency tests check).
struct ServedQuery {
  QueryResult result;
  SnapshotPtr snapshot;
};

/// The multi-user serving entry point: pins `user_id`'s current
/// snapshot, ranks `query` against that one immutable profile-tree
/// version, and returns the answer together with the snapshot it came
/// from. With `cache` non-null the per-state results go through
/// `CachedRankCS`, tagged `{user_id, serving version}` — safe across
/// concurrent profile swaps (see docs/serving.md); with `cache` null
/// it is a plain uncached `RankCS`. `options.cache_user` is ignored:
/// the snapshot's user id is authoritative here.
StatusOr<ServedQuery> ServeQuery(const ProfileStore& store,
                                 const std::string& user_id,
                                 const db::Relation& relation,
                                 const ContextualQuery& query,
                                 ContextQueryTree* cache = nullptr,
                                 const QueryOptions& options = {},
                                 AccessCounter* counter = nullptr);

/// Ranks against an already-pinned snapshot — the form for callers
/// that run several queries against one consistent version.
StatusOr<QueryResult> ServeQuery(const ProfileSnapshot& snapshot,
                                 const db::Relation& relation,
                                 const ContextualQuery& query,
                                 ContextQueryTree* cache = nullptr,
                                 const QueryOptions& options = {},
                                 AccessCounter* counter = nullptr);

}  // namespace ctxpref::storage

#endif  // CTXPREF_STORAGE_SERVING_H_
