#ifndef CTXPREF_STORAGE_PROFILE_IO_H_
#define CTXPREF_STORAGE_PROFILE_IO_H_

#include <string>
#include <string_view>

#include "preference/profile.h"
#include "util/status.h"

namespace ctxpref::storage {

/// Binary on-disk profile format (version 1):
///
///   magic "CPF1" (4 bytes)
///   payload:
///     u64 preference count
///     per preference:
///       u32 part count
///       per parameter descriptor:
///         u32 parameter index
///         u8  kind (0 equals, 1 set, 2 range)
///         u32 value count
///         per value: u16 level, u32 id
///       clause: string attribute, u8 op, u8 value-type + payload
///       f64 score
///   u32 CRC-32 of the payload
///
/// All integers little-endian. `Deserialize` validates the magic, the
/// checksum, every index against the environment, and re-runs conflict
/// detection, so a corrupted or foreign file yields `Corruption` /
/// `InvalidArgument` rather than a malformed profile.

/// Serializes `profile` to the binary format.
std::string SerializeProfile(const Profile& profile);

/// Parses a serialized profile against `env`.
StatusOr<Profile> DeserializeProfile(EnvironmentPtr env,
                                     std::string_view bytes);

/// Convenience file wrappers (whole-file read/write).
Status WriteProfileFile(const Profile& profile, const std::string& path);
StatusOr<Profile> ReadProfileFile(EnvironmentPtr env,
                                  const std::string& path);

}  // namespace ctxpref::storage

#endif  // CTXPREF_STORAGE_PROFILE_IO_H_
