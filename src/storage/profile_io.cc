#include "storage/profile_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/crc32.h"

namespace ctxpref::storage {

namespace {

constexpr char kMagic[4] = {'C', 'P', 'F', '1'};

// ---- little-endian encoders ----

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU16(std::string& out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutF64(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

void PutValue(std::string& out, const db::Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case db::ColumnType::kInt64:
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    case db::ColumnType::kDouble:
      PutF64(out, v.AsDouble());
      break;
    case db::ColumnType::kString:
      PutString(out, v.AsString());
      break;
    case db::ColumnType::kBool:
      PutU8(out, v.AsBool() ? 1 : 0);
      break;
  }
}

// ---- reader with bounds checking ----

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status Read(void* out, size_t n) {
    if (remaining() < n) {
      return Status::Corruption("profile file truncated");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  StatusOr<uint8_t> U8() {
    uint8_t v;
    CTXPREF_RETURN_IF_ERROR(Read(&v, 1));
    return v;
  }
  StatusOr<uint16_t> U16() {
    uint8_t b[2];
    CTXPREF_RETURN_IF_ERROR(Read(b, 2));
    return static_cast<uint16_t>(b[0] | (b[1] << 8));
  }
  StatusOr<uint32_t> U32() {
    uint8_t b[4];
    CTXPREF_RETURN_IF_ERROR(Read(b, 4));
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
  }
  StatusOr<uint64_t> U64() {
    uint64_t v = 0;
    uint8_t b[8];
    CTXPREF_RETURN_IF_ERROR(Read(b, 8));
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  StatusOr<double> F64() {
    StatusOr<uint64_t> bits = U64();
    if (!bits.ok()) return bits.status();
    double v;
    uint64_t raw = *bits;
    std::memcpy(&v, &raw, sizeof(v));
    return v;
  }
  StatusOr<std::string> String() {
    StatusOr<uint32_t> len = U32();
    if (!len.ok()) return len.status();
    if (remaining() < *len) {
      return Status::Corruption("profile file truncated in string");
    }
    std::string out(data_.substr(pos_, *len));
    pos_ += *len;
    return out;
  }
  StatusOr<db::Value> Value() {
    StatusOr<uint8_t> type = U8();
    if (!type.ok()) return type.status();
    switch (static_cast<db::ColumnType>(*type)) {
      case db::ColumnType::kInt64: {
        StatusOr<uint64_t> v = U64();
        if (!v.ok()) return v.status();
        return db::Value(static_cast<int64_t>(*v));
      }
      case db::ColumnType::kDouble: {
        StatusOr<double> v = F64();
        if (!v.ok()) return v.status();
        return db::Value(*v);
      }
      case db::ColumnType::kString: {
        StatusOr<std::string> v = String();
        if (!v.ok()) return v.status();
        return db::Value(std::move(*v));
      }
      case db::ColumnType::kBool: {
        StatusOr<uint8_t> v = U8();
        if (!v.ok()) return v.status();
        return db::Value(*v != 0);
      }
    }
    return Status::Corruption("unknown value type tag " +
                              std::to_string(*type));
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeProfile(const Profile& profile) {
  std::string payload;
  PutU64(payload, profile.size());
  for (const ContextualPreference& pref : profile.preferences()) {
    const CompositeDescriptor& cod = pref.descriptor();
    PutU32(payload, static_cast<uint32_t>(cod.parts().size()));
    for (const ParameterDescriptor& pd : cod.parts()) {
      PutU32(payload, static_cast<uint32_t>(pd.param_index()));
      PutU8(payload, static_cast<uint8_t>(pd.kind()));
      PutU32(payload, static_cast<uint32_t>(pd.ContextOf().size()));
      for (ValueRef v : pd.ContextOf()) {
        PutU16(payload, v.level);
        PutU32(payload, v.id);
      }
    }
    PutString(payload, pref.clause().attribute);
    PutU8(payload, static_cast<uint8_t>(pref.clause().op));
    PutValue(payload, pref.clause().value);
    PutF64(payload, pref.score());
  }

  std::string out(kMagic, sizeof(kMagic));
  out += payload;
  PutU32(out, Crc32(payload));
  return out;
}

StatusOr<Profile> DeserializeProfile(EnvironmentPtr env,
                                     std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a ctxpref profile file (bad magic)");
  }
  std::string_view payload =
      bytes.substr(sizeof(kMagic), bytes.size() - sizeof(kMagic) - 4);
  // Verify the trailing checksum first.
  {
    Reader tail(bytes.substr(bytes.size() - 4));
    StatusOr<uint32_t> stored = tail.U32();
    if (!stored.ok()) return stored.status();
    if (*stored != Crc32(payload)) {
      return Status::Corruption("profile checksum mismatch");
    }
  }

  Reader r(payload);
  StatusOr<uint64_t> count = r.U64();
  if (!count.ok()) return count.status();

  Profile profile(env);
  for (uint64_t p = 0; p < *count; ++p) {
    StatusOr<uint32_t> num_parts = r.U32();
    if (!num_parts.ok()) return num_parts.status();
    std::vector<ParameterDescriptor> parts;
    for (uint32_t i = 0; i < *num_parts; ++i) {
      StatusOr<uint32_t> param = r.U32();
      if (!param.ok()) return param.status();
      StatusOr<uint8_t> kind = r.U8();
      if (!kind.ok()) return kind.status();
      StatusOr<uint32_t> num_values = r.U32();
      if (!num_values.ok()) return num_values.status();
      if (*num_values == 0) {
        return Status::Corruption("descriptor with zero values");
      }
      std::vector<ValueRef> values;
      values.reserve(*num_values);
      for (uint32_t v = 0; v < *num_values; ++v) {
        StatusOr<uint16_t> level = r.U16();
        if (!level.ok()) return level.status();
        StatusOr<uint32_t> id = r.U32();
        if (!id.ok()) return id.status();
        values.push_back(ValueRef{*level, *id});
      }
      auto make_pd = [&]() -> StatusOr<ParameterDescriptor> {
        switch (static_cast<ParameterDescriptor::Kind>(*kind)) {
          case ParameterDescriptor::Kind::kEquals:
            if (values.size() != 1) {
              return Status::Corruption("equals descriptor with " +
                                        std::to_string(values.size()) +
                                        " values");
            }
            return ParameterDescriptor::Equals(*env, *param, values[0]);
          case ParameterDescriptor::Kind::kSet:
            return ParameterDescriptor::Set(*env, *param, std::move(values));
          case ParameterDescriptor::Kind::kRange:
            return ParameterDescriptor::Range(*env, *param, values.front(),
                                              values.back());
        }
        return Status::Corruption("unknown descriptor kind tag " +
                                  std::to_string(*kind));
      };
      StatusOr<ParameterDescriptor> pd = make_pd();
      if (!pd.ok()) return pd.status();
      parts.push_back(std::move(*pd));
    }
    StatusOr<CompositeDescriptor> cod =
        CompositeDescriptor::Create(*env, std::move(parts));
    if (!cod.ok()) return cod.status();

    StatusOr<std::string> attr = r.String();
    if (!attr.ok()) return attr.status();
    StatusOr<uint8_t> op = r.U8();
    if (!op.ok()) return op.status();
    if (*op > static_cast<uint8_t>(db::CompareOp::kGe)) {
      return Status::Corruption("unknown compare op tag");
    }
    StatusOr<db::Value> value = r.Value();
    if (!value.ok()) return value.status();
    StatusOr<double> score = r.F64();
    if (!score.ok()) return score.status();

    StatusOr<ContextualPreference> pref = ContextualPreference::Create(
        std::move(*cod),
        AttributeClause{std::move(*attr), static_cast<db::CompareOp>(*op),
                        std::move(*value)},
        *score);
    if (!pref.ok()) return pref.status();
    CTXPREF_RETURN_IF_ERROR(profile.Insert(std::move(*pref)));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes after last preference");
  }
  return profile;
}

Status WriteProfileFile(const Profile& profile, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  std::string bytes = SerializeProfile(profile);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

StatusOr<Profile> ReadProfileFile(EnvironmentPtr env,
                                  const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string bytes = ss.str();
  return DeserializeProfile(std::move(env), bytes);
}

}  // namespace ctxpref::storage
