#ifndef CTXPREF_WORKLOAD_POI_DATASET_H_
#define CTXPREF_WORKLOAD_POI_DATASET_H_

#include <string>
#include <vector>

#include "context/environment.h"
#include "db/relation.h"
#include "util/status.h"

namespace ctxpref::workload {

/// The paper's reference example (§2, Fig. 2), materialized:
///
///  * context environment {location, temperature, accompanying_people}
///    with the exact hierarchy shapes of Fig. 2 — location: Region ≺
///    City ≺ Country ≺ ALL (extended with Thessaloniki for the §5.1
///    study), temperature: Conditions ≺ Weather_Characterization ≺ ALL,
///    accompanying_people: Relationship ≺ ALL;
///  * a Points_of_Interest relation with the paper's schema
///    (pid, name, type, location, open_air, hours, admission).
///
/// The paper's study used a proprietary POI database of Athens and
/// Thessaloniki; this synthetic stand-in preserves schema, geography
/// and the type mix (see DESIGN.md, substitution notes).

/// Region names per city, used by both the environment and the POIs.
const std::vector<std::string>& AthensRegions();
const std::vector<std::string>& ThessalonikiRegions();
const std::vector<std::string>& IoanninaRegions();

/// POI categories ("type" attribute values).
const std::vector<std::string>& PoiTypes();

/// Weather conditions at the detailed level, in domain (cold-to-hot)
/// order: freezing, cold, mild, warm, hot.
const std::vector<std::string>& WeatherConditions();

/// Companions: friends, family, alone.
const std::vector<std::string>& Companions();

/// Builds the Fig. 2 context environment. Parameter order:
/// 0 = location, 1 = temperature, 2 = accompanying_people.
StatusOr<EnvironmentPtr> MakePaperEnvironment();

/// A generated POI database bound to its environment.
struct PoiDatabase {
  EnvironmentPtr env;
  db::Relation relation;
};

/// Generates `num_pois` POIs spread over the regions of Athens and
/// Thessaloniki (plus a few landmark POIs with fixed names such as
/// Acropolis). Deterministic in `seed`.
StatusOr<PoiDatabase> MakePoiDatabase(size_t num_pois, uint64_t seed);

/// The POI schema: (pid:int64, name:string, type:string,
/// location:string, open_air:bool, hours:string, admission:double).
StatusOr<db::Schema> MakePoiSchema();

}  // namespace ctxpref::workload

#endif  // CTXPREF_WORKLOAD_POI_DATASET_H_
