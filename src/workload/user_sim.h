#ifndef CTXPREF_WORKLOAD_USER_SIM_H_
#define CTXPREF_WORKLOAD_USER_SIM_H_

#include <vector>

#include "db/relation.h"
#include "preference/profile.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/default_profiles.h"
#include "workload/poi_dataset.h"

namespace ctxpref::workload {

/// Simulation of the paper's §5.1 user study (Table 1).
///
/// The original study used 10 human users over a proprietary POI
/// database; here each user is simulated: they carry a *hidden ground
/// truth* — a per-user scoring function over (context, POI) built from
/// seeded affinity tables — receive one of the 12 default profiles,
/// edit it toward their ground truth (insert / update / delete,
/// proportionally to a per-user diligence), and then rate the system:
/// for each query class we compare the system's top-20 against the
/// ground truth's top-20 (precision, as in the paper: "the percentage
/// of the results returned that belong to the results given by the
/// user"). See DESIGN.md, substitution notes.

/// A user's hidden taste model. All tables are seeded and deterministic.
class GroundTruth {
 public:
  GroundTruth(const ContextEnvironment& env, uint64_t seed);

  /// Interest of `row` (a POI tuple) under context `state` ∈ [0, 1].
  /// Components at non-detailed levels are marginalized (averaged over
  /// detailed descendants).
  double Score(const ContextEnvironment& env, const db::Relation& relation,
               db::RowId row, const ContextState& state) const;

  /// Affinity of a POI type under a companion (detailed indices).
  double TypeAffinity(size_t type_idx, size_t companion_idx) const {
    return type_affinity_[type_idx][companion_idx];
  }
  /// Affinity of open-air={false,true} under a weather condition.
  double OpenAirAffinity(bool open_air, size_t condition_idx) const {
    return openair_weather_[open_air ? 1 : 0][condition_idx];
  }

  /// Mean type affinity over all (type, companion) cells — the user's
  /// baseline enthusiasm, used to calibrate single-factor scores.
  double MeanTypeAffinity() const;

 private:
  std::vector<std::vector<double>> type_affinity_;  // [type][companion]
  double openair_weather_[2][5];
  std::vector<double> city_affinity_;  // [city]
};

/// One Table 1 row.
struct UserStudyRow {
  int user_id = 0;
  AgeGroup age;
  Sex sex;
  Taste taste;
  int num_updates = 0;
  double update_minutes = 0.0;
  /// Top-20 precision per query class (percent); negative means the
  /// class produced no measurable queries for this user's profile.
  double exact_pct = 0.0;
  double one_cover_pct = 0.0;
  double multi_cover_hierarchy_pct = 0.0;
  double multi_cover_jaccard_pct = 0.0;
  /// Share (percent) of sensed parameters served degraded — stale,
  /// lifted, breaker-open, or absent — across this user's queries.
  /// Zero when `sensor_dropout` is 0 (perfect sensing, no rig).
  double degraded_param_pct = 0.0;
};

struct UserStudyConfig {
  size_t num_users = 10;
  size_t num_pois = 150;
  size_t queries_per_class = 20;
  size_t top_k = 20;
  uint64_t seed = 2026;
  /// Probability that one backend sensor read fails. When > 0, the
  /// *implicit* query context (§4.1) is acquired through a
  /// `ResilientSource` rig — retries, last-known-good, hierarchy
  /// lifting — so the system may query a coarser or staler state than
  /// the ground truth's, and precision reflects the gap. 0 keeps the
  /// historical perfect-sensing behavior bit-for-bit.
  double sensor_dropout = 0.0;
};

/// Runs the simulated study end to end and returns one row per user.
StatusOr<std::vector<UserStudyRow>> RunUserStudy(const UserStudyConfig& config);

}  // namespace ctxpref::workload

#endif  // CTXPREF_WORKLOAD_USER_SIM_H_
