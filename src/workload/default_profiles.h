#ifndef CTXPREF_WORKLOAD_DEFAULT_PROFILES_H_
#define CTXPREF_WORKLOAD_DEFAULT_PROFILES_H_

#include <string>
#include <vector>

#include "preference/profile.h"
#include "util/status.h"

namespace ctxpref::workload {

/// The paper's §5.1 default-profile scheme: 12 profiles spanned by
/// (a) age — below 30, 30-50, above 50; (b) sex; (c) taste —
/// mainstream or out-of-the-beaten-track. New users are assigned one
/// of these and then modify it.
enum class AgeGroup { kUnder30, k30To50, kOver50 };
enum class Sex { kMale, kFemale };
enum class Taste { kMainstream, kOffbeat };

const char* AgeGroupToString(AgeGroup a);
const char* SexToString(Sex s);
const char* TasteToString(Taste t);

/// Builds the default profile for one demographic cell over the paper
/// environment (`MakePaperEnvironment()`): ~15-20 rule-based contextual
/// preferences on the `type`, `open_air` and `name` attributes of the
/// POI relation, expressed at mixed hierarchy levels (companion-only
/// descriptors, weather-characterization descriptors, city-level
/// location descriptors).
StatusOr<Profile> MakeDefaultProfile(EnvironmentPtr env, AgeGroup age,
                                     Sex sex, Taste taste);

/// All 12 default profiles, indexed age-major, then sex, then taste.
StatusOr<std::vector<Profile>> AllDefaultProfiles(EnvironmentPtr env);

}  // namespace ctxpref::workload

#endif  // CTXPREF_WORKLOAD_DEFAULT_PROFILES_H_
