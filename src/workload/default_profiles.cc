#include "workload/default_profiles.h"

#include "context/parser.h"

namespace ctxpref::workload {

const char* AgeGroupToString(AgeGroup a) {
  switch (a) {
    case AgeGroup::kUnder30:
      return "under30";
    case AgeGroup::k30To50:
      return "30to50";
    case AgeGroup::kOver50:
      return "over50";
  }
  return "?";
}

const char* SexToString(Sex s) {
  switch (s) {
    case Sex::kMale:
      return "male";
    case Sex::kFemale:
      return "female";
  }
  return "?";
}

const char* TasteToString(Taste t) {
  switch (t) {
    case Taste::kMainstream:
      return "mainstream";
    case Taste::kOffbeat:
      return "offbeat";
  }
  return "?";
}

namespace {

/// Adds `cod_text => attr = value : score` to `profile`.
Status AddPref(Profile& profile, const std::string& cod_text,
               const std::string& attr, db::Value value, double score) {
  StatusOr<CompositeDescriptor> cod =
      ParseCompositeDescriptor(profile.env(), cod_text);
  if (!cod.ok()) return cod.status();
  StatusOr<ContextualPreference> pref = ContextualPreference::Create(
      std::move(*cod),
      AttributeClause{attr, db::CompareOp::kEq, std::move(value)}, score);
  if (!pref.ok()) return pref.status();
  return profile.Insert(std::move(*pref));
}

Status AddTypePref(Profile& p, const std::string& cod,
                   const std::string& type, double score) {
  return AddPref(p, cod, "type", db::Value(type), score);
}

}  // namespace

StatusOr<Profile> MakeDefaultProfile(EnvironmentPtr env, AgeGroup age,
                                     Sex sex, Taste taste) {
  Profile p(std::move(env));

  // ---- Weather-driven open-air preferences (shared by everyone) ----
  CTXPREF_RETURN_IF_ERROR(
      AddPref(p, "temperature = good", "open_air", db::Value(true), 0.8));
  CTXPREF_RETURN_IF_ERROR(
      AddPref(p, "temperature = bad", "open_air", db::Value(false), 0.75));
  CTXPREF_RETURN_IF_ERROR(
      AddPref(p, "temperature = hot", "open_air", db::Value(true), 0.9));
  CTXPREF_RETURN_IF_ERROR(
      AddPref(p, "temperature = freezing", "open_air", db::Value(false), 0.9));

  // ---- Companion-driven type preferences ----
  CTXPREF_RETURN_IF_ERROR(
      AddTypePref(p, "accompanying_people = family", "zoo", 0.85));
  CTXPREF_RETURN_IF_ERROR(
      AddTypePref(p, "accompanying_people = family", "park", 0.8));
  CTXPREF_RETURN_IF_ERROR(
      AddTypePref(p, "accompanying_people = family", "museum", 0.7));
  CTXPREF_RETURN_IF_ERROR(
      AddTypePref(p, "accompanying_people = alone", "gallery", 0.65));
  CTXPREF_RETURN_IF_ERROR(
      AddTypePref(p, "accompanying_people = alone", "museum", 0.75));

  // ---- Age-driven ----
  switch (age) {
    case AgeGroup::kUnder30:
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "accompanying_people = friends", "brewery", 0.9));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "accompanying_people = friends", "cafeteria", 0.8));
      CTXPREF_RETURN_IF_ERROR(AddTypePref(p, "temperature = good", "park", 0.7));
      break;
    case AgeGroup::k30To50:
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "accompanying_people = friends", "theater", 0.8));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "accompanying_people = friends", "cafeteria", 0.75));
      CTXPREF_RETURN_IF_ERROR(AddTypePref(p, "*", "museum", 0.6));
      break;
    case AgeGroup::kOver50:
      CTXPREF_RETURN_IF_ERROR(AddTypePref(p, "*", "museum", 0.85));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "temperature = good", "archaeological_site", 0.85));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "accompanying_people = friends", "theater", 0.75));
      break;
  }

  // ---- Taste-driven ----
  switch (taste) {
    case Taste::kMainstream:
      CTXPREF_RETURN_IF_ERROR(AddPref(p, "location = Athens", "name",
                                      db::Value("Acropolis"), 0.95));
      CTXPREF_RETURN_IF_ERROR(AddPref(p, "location = Thessaloniki", "name",
                                      db::Value("White_Tower"), 0.9));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "location = Greece", "archaeological_site", 0.8));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "location = Greece", "monument", 0.7));
      break;
    case Taste::kOffbeat:
      CTXPREF_RETURN_IF_ERROR(AddTypePref(p, "location = Greece", "market", 0.8));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "location = Greece", "gallery", 0.75));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "location = Ladadika", "brewery", 0.85));
      CTXPREF_RETURN_IF_ERROR(
          AddTypePref(p, "location = Exarchia", "cafeteria", 0.8));
      break;
  }

  // ---- Sex is a mild modifier in this synthetic scheme ----
  switch (sex) {
    case Sex::kMale:
      CTXPREF_RETURN_IF_ERROR(AddTypePref(
          p, "accompanying_people = friends and temperature = good",
          "market", 0.55));
      break;
    case Sex::kFemale:
      CTXPREF_RETURN_IF_ERROR(AddTypePref(
          p, "accompanying_people = friends and temperature = good",
          "gallery", 0.6));
      break;
  }

  return p;
}

StatusOr<std::vector<Profile>> AllDefaultProfiles(EnvironmentPtr env) {
  std::vector<Profile> out;
  for (AgeGroup age :
       {AgeGroup::kUnder30, AgeGroup::k30To50, AgeGroup::kOver50}) {
    for (Sex sex : {Sex::kMale, Sex::kFemale}) {
      for (Taste taste : {Taste::kMainstream, Taste::kOffbeat}) {
        StatusOr<Profile> p = MakeDefaultProfile(env, age, sex, taste);
        if (!p.ok()) return p.status();
        out.push_back(std::move(*p));
      }
    }
  }
  return out;
}

}  // namespace ctxpref::workload
