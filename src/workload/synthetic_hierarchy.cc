#include "workload/synthetic_hierarchy.h"

#include <vector>

namespace ctxpref::workload {

StatusOr<HierarchyPtr> MakeSyntheticHierarchy(const std::string& name,
                                              size_t detailed_size,
                                              size_t num_levels, size_t fan) {
  if (num_levels == 0) {
    return Status::InvalidArgument("num_levels must be >= 1");
  }
  if (detailed_size == 0) {
    return Status::InvalidArgument("detailed_size must be >= 1");
  }
  if (num_levels > 1 && fan < 2) {
    return Status::InvalidArgument("fan must be >= 2 for multi-level");
  }

  auto value_name = [&](size_t level, size_t i) {
    return name + "." + std::to_string(level) + "." + std::to_string(i);
  };

  HierarchyBuilder b(name);
  std::vector<std::string> detailed;
  detailed.reserve(detailed_size);
  for (size_t i = 0; i < detailed_size; ++i) {
    detailed.push_back(value_name(0, i));
  }
  b.AddDetailedLevel("L0", detailed);

  size_t below_size = detailed_size;
  for (size_t l = 1; l < num_levels; ++l) {
    const size_t this_size = (below_size + fan - 1) / fan;
    if (this_size == 0 || this_size == below_size) {
      return Status::InvalidArgument(
          "hierarchy '" + name + "' collapses at level " + std::to_string(l) +
          "; reduce num_levels or fan");
    }
    std::vector<HierarchyBuilder::Group> groups;
    groups.reserve(this_size);
    for (size_t g = 0; g < this_size; ++g) {
      HierarchyBuilder::Group group;
      group.parent = value_name(l, g);
      for (size_t c = g * fan; c < std::min((g + 1) * fan, below_size); ++c) {
        group.children.push_back(value_name(l - 1, c));
      }
      groups.push_back(std::move(group));
    }
    b.AddLevel("L" + std::to_string(l), std::move(groups));
    below_size = this_size;
  }
  return b.Build();
}

}  // namespace ctxpref::workload
