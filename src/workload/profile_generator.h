#ifndef CTXPREF_WORKLOAD_PROFILE_GENERATOR_H_
#define CTXPREF_WORKLOAD_PROFILE_GENERATOR_H_

#include <string>
#include <vector>

#include "preference/profile.h"
#include "util/random.h"
#include "util/status.h"

namespace ctxpref::workload {

/// Specification of one synthetic context parameter (paper §5.2).
struct SyntheticParam {
  std::string name;
  size_t detailed_size = 50;   ///< |dom(Ci)| at the detailed level.
  size_t num_levels = 2;       ///< Declared levels (ALL is extra).
  size_t fan = 8;              ///< Per-level grouping factor.
  /// Skew of value draws: 0 = uniform, otherwise zipf(a) over the
  /// detailed domain (the paper uses a = 1.5 and a sweep 0..3.5).
  double zipf_a = 0.0;
};

/// Specification of a synthetic profile.
struct SyntheticProfileSpec {
  std::vector<SyntheticParam> params;
  size_t num_preferences = 1000;
  /// Probability that a drawn context value is lifted from the detailed
  /// level to a random upper level (including ALL): preferences
  /// expressed at mixed granularity, which is what makes non-exact
  /// (cover) resolution meaningful. 0 = all-detailed preferences.
  double lift_probability = 0.3;
  /// Probability a parameter is omitted from a preference's descriptor
  /// entirely (= the value `all`, paper Def. 4).
  double omit_probability = 0.05;
  /// Size of the pool of distinct attribute-clause values; smaller
  /// pools create more leaf sharing (and more potential conflicts,
  /// which the generator redraws around).
  size_t clause_pool = 200;
  uint64_t seed = 42;
};

/// A generated workload: the environment plus the profile.
struct SyntheticProfile {
  EnvironmentPtr env;
  Profile profile;
};

/// Generates a conflict-free profile per `spec`. Each preference draws
/// one context value per (non-omitted) parameter — detailed value by
/// uniform/zipf, then possibly lifted — a clause `attr = v<k>` from the
/// pool, and a score in {0.0, 0.05, ..., 1.0}. Conflicting draws are
/// redrawn (bounded retries), so the result always satisfies Def. 7.
StatusOr<SyntheticProfile> GenerateSyntheticProfile(
    const SyntheticProfileSpec& spec);

/// The "real" profile of the paper's §5.2 experiments, reconstructed to
/// spec: 522 preferences over three parameters with active detailed
/// domains of 4 (accompanying_people), 17 (time) and 100 (location),
/// skewed draws, mixed-granularity descriptors. See DESIGN.md for the
/// substitution note.
StatusOr<SyntheticProfile> MakeRealLikeProfile(uint64_t seed = 7);

}  // namespace ctxpref::workload

#endif  // CTXPREF_WORKLOAD_PROFILE_GENERATOR_H_
