#ifndef CTXPREF_WORKLOAD_SYNTHETIC_HIERARCHY_H_
#define CTXPREF_WORKLOAD_SYNTHETIC_HIERARCHY_H_

#include <cstddef>
#include <string>

#include "context/hierarchy.h"
#include "util/status.h"

namespace ctxpref::workload {

/// Builds a linear hierarchy with `num_levels` declared levels (the ALL
/// level is appended on top by the builder) over `detailed_size`
/// detailed values. Level l+1 groups level l's values into contiguous
/// runs of `fan`, so level sizes are detailed_size, ⌈detailed_size/fan⌉,
/// ⌈detailed_size/fan²⌉, ... Contiguous grouping keeps the anc
/// functions monotone (paper §3.1 condition 3).
///
/// Values are named "<name>.<level>.<i>" — e.g. "loc.0.42" — so they
/// are unique across levels and parseable in profiles.
///
/// Errors with InvalidArgument if `num_levels` == 0, `fan` < 2, or an
/// upper level would collapse below one value before the last declared
/// level.
StatusOr<HierarchyPtr> MakeSyntheticHierarchy(const std::string& name,
                                              size_t detailed_size,
                                              size_t num_levels, size_t fan);

}  // namespace ctxpref::workload

#endif  // CTXPREF_WORKLOAD_SYNTHETIC_HIERARCHY_H_
