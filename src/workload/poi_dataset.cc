#include "workload/poi_dataset.h"

#include "util/random.h"

namespace ctxpref::workload {

const std::vector<std::string>& AthensRegions() {
  static const std::vector<std::string>* kRegions = new std::vector<std::string>{
      "Plaka",      "Kifisia",  "Monastiraki", "Kolonaki",
      "Exarchia",   "Koukaki",  "Glyfada",     "Piraeus",
  };
  return *kRegions;
}

const std::vector<std::string>& ThessalonikiRegions() {
  static const std::vector<std::string>* kRegions = new std::vector<std::string>{
      "Ladadika", "AnoPoli", "Kalamaria", "Toumba", "Panorama",
  };
  return *kRegions;
}

const std::vector<std::string>& IoanninaRegions() {
  static const std::vector<std::string>* kRegions = new std::vector<std::string>{
      "Perama", "Kastro",
  };
  return *kRegions;
}

const std::vector<std::string>& PoiTypes() {
  static const std::vector<std::string>* kTypes = new std::vector<std::string>{
      "museum",    "monument", "archaeological_site", "zoo",    "park",
      "cafeteria", "brewery",  "theater",             "market", "gallery",
  };
  return *kTypes;
}

const std::vector<std::string>& WeatherConditions() {
  static const std::vector<std::string>* kConditions =
      new std::vector<std::string>{"freezing", "cold", "mild", "warm", "hot"};
  return *kConditions;
}

const std::vector<std::string>& Companions() {
  static const std::vector<std::string>* kCompanions =
      new std::vector<std::string>{"friends", "family", "alone"};
  return *kCompanions;
}

StatusOr<EnvironmentPtr> MakePaperEnvironment() {
  // location: Region ≺ City ≺ Country ≺ ALL (Fig. 1/2, extended with
  // Thessaloniki for the user study's two cities).
  HierarchyBuilder loc("location");
  std::vector<std::string> regions;
  for (const auto& r : AthensRegions()) regions.push_back(r);
  for (const auto& r : ThessalonikiRegions()) regions.push_back(r);
  for (const auto& r : IoanninaRegions()) regions.push_back(r);
  loc.AddDetailedLevel("Region", regions);
  loc.AddLevel("City",
               {{"Athens", AthensRegions()},
                {"Thessaloniki", ThessalonikiRegions()},
                {"Ioannina", IoanninaRegions()}});
  loc.AddLevel("Country", {{"Greece", {"Athens", "Thessaloniki", "Ioannina"}}});
  StatusOr<HierarchyPtr> location = loc.Build();
  if (!location.ok()) return location.status();

  // temperature: Conditions ≺ Weather_Characterization ≺ ALL (Fig. 2):
  // bad = {freezing, cold}, good = {mild, warm, hot}.
  HierarchyBuilder temp("temperature");
  temp.AddDetailedLevel("Conditions", WeatherConditions());
  temp.AddLevel("Weather_Characterization",
                {{"bad", {"freezing", "cold"}}, {"good", {"mild", "warm", "hot"}}});
  StatusOr<HierarchyPtr> temperature = temp.Build();
  if (!temperature.ok()) return temperature.status();

  // accompanying_people: Relationship ≺ ALL (Fig. 2).
  HierarchyBuilder comp("accompanying_people");
  comp.AddDetailedLevel("Relationship", Companions());
  StatusOr<HierarchyPtr> companions = comp.Build();
  if (!companions.ok()) return companions.status();

  std::vector<ContextParameter> params;
  params.emplace_back("location", std::move(*location));
  params.emplace_back("temperature", std::move(*temperature));
  params.emplace_back("accompanying_people", std::move(*companions));
  return ContextEnvironment::Create(std::move(params));
}

StatusOr<db::Schema> MakePoiSchema() {
  return db::Schema::Create({
      {"pid", db::ColumnType::kInt64},
      {"name", db::ColumnType::kString},
      {"type", db::ColumnType::kString},
      {"location", db::ColumnType::kString},
      {"open_air", db::ColumnType::kBool},
      {"hours", db::ColumnType::kString},
      {"admission", db::ColumnType::kDouble},
  });
}

StatusOr<PoiDatabase> MakePoiDatabase(size_t num_pois, uint64_t seed) {
  StatusOr<EnvironmentPtr> env = MakePaperEnvironment();
  if (!env.ok()) return env.status();
  StatusOr<db::Schema> schema = MakePoiSchema();
  if (!schema.ok()) return schema.status();
  db::Relation relation(std::move(*schema));

  // A handful of landmarks with fixed names (the paper's examples).
  struct Landmark {
    const char* name;
    const char* type;
    const char* region;
    bool open_air;
    double admission;
  };
  static constexpr Landmark kLandmarks[] = {
      {"Acropolis", "archaeological_site", "Plaka", true, 20.0},
      {"Archaeological_Museum", "museum", "Exarchia", false, 12.0},
      {"White_Tower", "monument", "Ladadika", true, 6.0},
      {"Attica_Zoo", "zoo", "Glyfada", true, 18.0},
      {"National_Garden", "park", "Kolonaki", true, 0.0},
  };

  int64_t pid = 0;
  for (const Landmark& lm : kLandmarks) {
    CTXPREF_RETURN_IF_ERROR(relation.Append({
        db::Value(pid++),
        db::Value(lm.name),
        db::Value(lm.type),
        db::Value(lm.region),
        db::Value(lm.open_air),
        db::Value("09:00-20:00"),
        db::Value(lm.admission),
    }));
  }

  // Synthetic POIs across the two study cities (Athens, Thessaloniki).
  std::vector<std::string> regions;
  for (const auto& r : AthensRegions()) regions.push_back(r);
  for (const auto& r : ThessalonikiRegions()) regions.push_back(r);

  Rng rng(seed);
  const auto& types = PoiTypes();
  while (static_cast<size_t>(pid) < num_pois) {
    const std::string& type = types[rng.Uniform(types.size())];
    const std::string& region = regions[rng.Uniform(regions.size())];
    // Open-air correlates with type: parks/sites/zoos are open air,
    // museums/theaters are not, the rest mixed.
    bool open_air;
    if (type == "park" || type == "archaeological_site" || type == "zoo" ||
        type == "monument") {
      open_air = true;
    } else if (type == "museum" || type == "theater" || type == "gallery") {
      open_air = false;
    } else {
      open_air = rng.Bernoulli(0.5);
    }
    const double admission =
        (type == "park" || type == "market")
            ? 0.0
            : static_cast<double>(rng.Uniform(5)) * 5.0;  // 0..20 in 5s
    const std::string name =
        type + "_" + region + "_" + std::to_string(pid);
    CTXPREF_RETURN_IF_ERROR(relation.Append({
        db::Value(pid),
        db::Value(name),
        db::Value(type),
        db::Value(region),
        db::Value(open_air),
        db::Value(rng.Bernoulli(0.3) ? "10:00-18:00" : "09:00-22:00"),
        db::Value(admission),
    }));
    ++pid;
  }
  return PoiDatabase{std::move(*env), std::move(relation)};
}

}  // namespace ctxpref::workload
