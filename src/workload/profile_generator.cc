#include "workload/profile_generator.h"

#include <optional>

#include "workload/synthetic_hierarchy.h"

namespace ctxpref::workload {

namespace {

/// Draws one context value for parameter `p`: a detailed value from the
/// per-parameter distribution, possibly lifted to an upper level.
ValueRef DrawValue(const Hierarchy& h, const std::optional<ZipfDistribution>& zipf,
                   double lift_probability, Rng& rng) {
  ValueId detailed_id =
      zipf.has_value()
          ? static_cast<ValueId>(zipf->Sample(rng))
          : static_cast<ValueId>(rng.Uniform(h.level_size(0)));
  ValueRef v{0, detailed_id};
  if (h.num_levels() > 1 && rng.Bernoulli(lift_probability)) {
    // Lift to a uniformly random upper level (possibly ALL).
    const LevelIndex target = static_cast<LevelIndex>(
        1 + rng.Uniform(h.num_levels() - 1));
    v = h.Anc(v, target);
  }
  return v;
}

}  // namespace

StatusOr<SyntheticProfile> GenerateSyntheticProfile(
    const SyntheticProfileSpec& spec) {
  if (spec.params.empty()) {
    return Status::InvalidArgument("spec has no parameters");
  }
  // Build hierarchies and the environment.
  std::vector<ContextParameter> params;
  std::vector<std::optional<ZipfDistribution>> zipfs;
  for (const SyntheticParam& p : spec.params) {
    StatusOr<HierarchyPtr> h =
        MakeSyntheticHierarchy(p.name, p.detailed_size, p.num_levels, p.fan);
    if (!h.ok()) return h.status();
    params.emplace_back(p.name, std::move(*h));
    if (p.zipf_a > 0.0) {
      zipfs.emplace_back(ZipfDistribution(p.detailed_size, p.zipf_a));
    } else {
      zipfs.emplace_back(std::nullopt);
    }
  }
  StatusOr<EnvironmentPtr> env = ContextEnvironment::Create(std::move(params));
  if (!env.ok()) return env.status();

  Rng rng(spec.seed);
  Profile profile(*env);
  const size_t n = (*env)->size();
  size_t attempts = 0;
  const size_t max_attempts = spec.num_preferences * 50 + 1000;

  while (profile.size() < spec.num_preferences && attempts < max_attempts) {
    ++attempts;
    std::vector<ParameterDescriptor> parts;
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(spec.omit_probability)) continue;  // -> all
      const Hierarchy& h = (*env)->parameter(i).hierarchy();
      ValueRef v = DrawValue(h, zipfs[i], spec.lift_probability, rng);
      StatusOr<ParameterDescriptor> pd =
          ParameterDescriptor::Equals(**env, i, v);
      if (!pd.ok()) return pd.status();
      parts.push_back(std::move(*pd));
    }
    StatusOr<CompositeDescriptor> cod =
        CompositeDescriptor::Create(**env, std::move(parts));
    if (!cod.ok()) return cod.status();

    AttributeClause clause{
        "attr", db::CompareOp::kEq,
        db::Value("v" + std::to_string(rng.Uniform(spec.clause_pool)))};
    // Scores quantized to a 0.05 grid, as a user-facing UI would offer.
    const double score = static_cast<double>(rng.Uniform(21)) * 0.05;

    StatusOr<ContextualPreference> pref = ContextualPreference::Create(
        std::move(*cod), std::move(clause), score);
    if (!pref.ok()) return pref.status();

    Status st = profile.Insert(std::move(*pref));
    if (st.ok()) continue;
    if (st.IsConflict() || st.IsAlreadyExists()) continue;  // Redraw.
    return st;
  }
  if (profile.size() < spec.num_preferences) {
    return Status::Internal(
        "could not generate " + std::to_string(spec.num_preferences) +
        " conflict-free preferences after " + std::to_string(attempts) +
        " attempts; enlarge domains or clause pool");
  }
  return SyntheticProfile{*env, std::move(profile)};
}

StatusOr<SyntheticProfile> MakeRealLikeProfile(uint64_t seed) {
  SyntheticProfileSpec spec;
  // accompanying_people: 4 values, single level + ALL.
  spec.params.push_back(
      SyntheticParam{"accompanying_people", 4, 1, 2, /*zipf_a=*/0.0});
  // time: 17 values (e.g. hours-of-week buckets), 2 levels + ALL,
  // skewed toward popular outing times.
  spec.params.push_back(SyntheticParam{"time", 17, 2, 6, /*zipf_a=*/0.9});
  // location: 100 regions, 3 levels + ALL, skewed toward city centers.
  spec.params.push_back(SyntheticParam{"location", 100, 3, 6, /*zipf_a=*/1.2});
  spec.num_preferences = 522;
  spec.lift_probability = 0.3;
  spec.omit_probability = 0.05;
  spec.clause_pool = 150;
  spec.seed = seed;
  return GenerateSyntheticProfile(spec);
}

}  // namespace ctxpref::workload
