#ifndef CTXPREF_WORKLOAD_QUERY_GENERATOR_H_
#define CTXPREF_WORKLOAD_QUERY_GENERATOR_H_

#include <vector>

#include "context/state.h"
#include "preference/profile.h"
#include "util/random.h"

namespace ctxpref::workload {

/// Query workloads for the Fig. 7 experiments: 50 query states whose
/// parameters take values from different hierarchy levels.

/// A query state guaranteed to have an exact match: a state drawn
/// uniformly from the states stored in `profile`.
ContextState ExactQuery(const Profile& profile, Rng& rng);

/// A random query state: each component drawn uniformly from the
/// detailed domain, then lifted to a random level with probability
/// `lift_probability`. May or may not have covering preferences.
ContextState RandomQuery(const ContextEnvironment& env, Rng& rng,
                         double lift_probability = 0.3);

/// A batch of `count` exact queries.
std::vector<ContextState> ExactQueryBatch(const Profile& profile, size_t count,
                                          uint64_t seed);

/// A batch of `count` random (generally non-exact) queries.
std::vector<ContextState> RandomQueryBatch(const ContextEnvironment& env,
                                           size_t count, uint64_t seed,
                                           double lift_probability = 0.3);

}  // namespace ctxpref::workload

#endif  // CTXPREF_WORKLOAD_QUERY_GENERATOR_H_
