#include "workload/query_generator.h"

namespace ctxpref::workload {

ContextState ExactQuery(const Profile& profile, Rng& rng) {
  assert(!profile.empty());
  // Pick a random preference, then a random state of its descriptor.
  const ContextualPreference& pref =
      profile.preference(rng.Uniform(profile.size()));
  std::vector<ContextState> states = pref.States(profile.env());
  return states[rng.Uniform(states.size())];
}

ContextState RandomQuery(const ContextEnvironment& env, Rng& rng,
                         double lift_probability) {
  std::vector<ValueRef> values;
  values.reserve(env.size());
  for (size_t i = 0; i < env.size(); ++i) {
    const Hierarchy& h = env.parameter(i).hierarchy();
    ValueRef v{0, static_cast<ValueId>(rng.Uniform(h.level_size(0)))};
    if (h.num_levels() > 1 && rng.Bernoulli(lift_probability)) {
      v = h.Anc(v, static_cast<LevelIndex>(1 + rng.Uniform(h.num_levels() - 1)));
    }
    values.push_back(v);
  }
  return ContextState(std::move(values));
}

std::vector<ContextState> ExactQueryBatch(const Profile& profile, size_t count,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<ContextState> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(ExactQuery(profile, rng));
  return out;
}

std::vector<ContextState> RandomQueryBatch(const ContextEnvironment& env,
                                           size_t count, uint64_t seed,
                                           double lift_probability) {
  Rng rng(seed);
  std::vector<ContextState> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(RandomQuery(env, rng, lift_probability));
  }
  return out;
}

}  // namespace ctxpref::workload
