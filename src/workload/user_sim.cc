#include "workload/user_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "context/resilient_source.h"
#include "preference/contextual_query.h"
#include "preference/profile_tree.h"
#include "preference/resolution.h"
#include "preference/sequential_store.h"
#include "workload/query_generator.h"

namespace ctxpref::workload {

namespace {

constexpr size_t kLocationParam = 0;
constexpr size_t kTemperatureParam = 1;
constexpr size_t kCompanionParam = 2;

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Scores are quantized to the 0.05 grid a preference UI would offer.
double Round05(double v) { return std::round(Clamp01(v) * 20.0) / 20.0; }

size_t IndexOfOrDie(const std::vector<std::string>& pool,
                    const std::string& v) {
  for (size_t i = 0; i < pool.size(); ++i) {
    if (pool[i] == v) return i;
  }
  return pool.size();  // Unknown: callers treat as "no affinity".
}

}  // namespace

GroundTruth::GroundTruth(const ContextEnvironment& env, uint64_t seed) {
  Rng rng(seed);
  const size_t num_types = PoiTypes().size();
  const size_t num_companions = Companions().size();

  type_affinity_.assign(num_types, std::vector<double>(num_companions));
  for (size_t t = 0; t < num_types; ++t) {
    // Each type has a base appeal plus per-companion variation.
    const double base = 0.2 + 0.6 * rng.NextDouble();
    for (size_t c = 0; c < num_companions; ++c) {
      type_affinity_[t][c] = Clamp01(base + 0.35 * (rng.NextDouble() - 0.5));
    }
  }

  // Open-air appeal rises with temperature; indoor falls. Conditions
  // are ordered freezing(0) .. hot(4).
  for (size_t cond = 0; cond < 5; ++cond) {
    const double warmth = static_cast<double>(cond) / 4.0;
    openair_weather_[1][cond] =
        Clamp01(0.15 + 0.7 * warmth + 0.1 * (rng.NextDouble() - 0.5));
    openair_weather_[0][cond] =
        Clamp01(0.85 - 0.6 * warmth + 0.1 * (rng.NextDouble() - 0.5));
  }

  const size_t num_cities =
      env.parameter(kLocationParam).hierarchy().level_size(1);
  city_affinity_.resize(num_cities);
  for (double& a : city_affinity_) a = 0.4 + 0.6 * rng.NextDouble();
}

double GroundTruth::MeanTypeAffinity() const {
  double sum = 0;
  size_t n = 0;
  for (const auto& row : type_affinity_) {
    for (double a : row) {
      sum += a;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.5;
}

double GroundTruth::Score(const ContextEnvironment& env,
                          const db::Relation& relation, db::RowId row,
                          const ContextState& state) const {
  const db::Tuple& tuple = relation.row(row);
  const std::string& type = tuple[2].AsString();
  const std::string& region = tuple[3].AsString();
  const bool open_air = tuple[4].AsBool();

  // ---- type × companion, marginalizing non-detailed companions ----
  const size_t type_idx = IndexOfOrDie(PoiTypes(), type);
  double type_factor = 0.5;
  if (type_idx < type_affinity_.size()) {
    const ValueRef comp = state.value(kCompanionParam);
    if (comp.level == 0) {
      type_factor = type_affinity_[type_idx][comp.id];
    } else {
      double sum = 0;
      for (double a : type_affinity_[type_idx]) sum += a;
      type_factor = sum / static_cast<double>(type_affinity_[type_idx].size());
    }
  }

  // ---- open-air × weather, marginalizing via detailed descendants ----
  const Hierarchy& weather = env.parameter(kTemperatureParam).hierarchy();
  const ValueRef cond = state.value(kTemperatureParam);
  double weather_factor;
  if (cond.level == 0) {
    weather_factor = openair_weather_[open_air ? 1 : 0][cond.id];
  } else {
    double sum = 0;
    std::vector<ValueRef> conds = weather.Desc(cond, 0);
    for (ValueRef c : conds) sum += openair_weather_[open_air ? 1 : 0][c.id];
    weather_factor = sum / static_cast<double>(conds.size());
  }

  // ---- location: city affinity + coverage proximity ----
  const Hierarchy& loc = env.parameter(kLocationParam).hierarchy();
  double loc_factor = 0.5;
  StatusOr<ValueRef> region_ref = loc.Find(0, region);
  if (region_ref.ok()) {
    const size_t city = loc.Anc(*region_ref, 1).id;
    const double aff =
        city < city_affinity_.size() ? city_affinity_[city] : 0.5;
    const ValueRef q = state.value(kLocationParam);
    const bool nearby = loc.IsAncestorOrSelf(q, *region_ref) ||
                        loc.IsAncestorOrSelf(*region_ref, q);
    loc_factor = 0.5 * aff + 0.5 * (nearby ? 1.0 : 0.35);
  }

  return Clamp01(0.55 * type_factor + 0.35 * weather_factor +
                 0.1 * loc_factor);
}

namespace {

/// Builds a composite descriptor denoting exactly `state` (Equals per
/// non-`all` component; `all` components omitted, per Def. 4).
StatusOr<CompositeDescriptor> DescriptorForState(const ContextEnvironment& env,
                                                 const ContextState& state) {
  std::vector<ParameterDescriptor> parts;
  for (size_t i = 0; i < env.size(); ++i) {
    if (state.value(i) == env.parameter(i).hierarchy().AllValue()) continue;
    StatusOr<ParameterDescriptor> pd =
        ParameterDescriptor::Equals(env, i, state.value(i));
    if (!pd.ok()) return pd.status();
    parts.push_back(std::move(*pd));
  }
  return CompositeDescriptor::Create(env, std::move(parts));
}

/// Inserts a ground-truth-aligned preference; on conflict rescores the
/// conflicting preference instead (modeling a user correcting the
/// default profile). Returns true if the profile changed.
StatusOr<bool> InsertOrCorrect(Profile& profile, CompositeDescriptor cod,
                               AttributeClause clause, double score) {
  StatusOr<ContextualPreference> pref =
      ContextualPreference::Create(std::move(cod), clause, score);
  if (!pref.ok()) return pref.status();
  Status st = profile.Insert(std::move(*pref));
  if (st.ok()) return true;
  if (st.IsAlreadyExists()) return false;
  if (!st.IsConflict()) return st;
  // Find a preference with the same clause and rescore it.
  for (size_t i = 0; i < profile.size(); ++i) {
    if (profile.preference(i).clause() == clause &&
        profile.preference(i).score() != score) {
      Status up = profile.UpdateScore(i, score);
      if (up.ok()) return true;
      return false;
    }
  }
  return false;
}

struct EditStats {
  int updates = 0;
};

/// What a user would actually type as the interest score of a
/// single-factor preference: the ground-truth *overall* interest with
/// the unknown factors at their marginal means (weights mirror
/// GroundTruth::Score: 0.55 type + 0.35 weather + 0.1 location).
double CalibratedTypeScore(const GroundTruth& gt, size_t type_idx,
                           double companion_marginal_affinity) {
  (void)gt;
  (void)type_idx;
  return 0.55 * companion_marginal_affinity + 0.35 * 0.5 + 0.1 * 0.7;
}

double CalibratedOpenAirScore(const GroundTruth& gt, double oa_affinity) {
  return 0.35 * oa_affinity + 0.55 * gt.MeanTypeAffinity() + 0.1 * 0.7;
}

/// Simulates the user editing `profile` toward `gt` with `num_edits`
/// attempted modifications.
Status EditProfile(Profile& profile, const GroundTruth& gt, size_t num_edits,
                   Rng& rng, EditStats* stats) {
  const ContextEnvironment& env = profile.env();
  const Hierarchy& weather = env.parameter(kTemperatureParam).hierarchy();
  const Hierarchy& companions = env.parameter(kCompanionParam).hierarchy();

  for (size_t e = 0; e < num_edits; ++e) {
    const double roll = rng.NextDouble();
    if (roll < 0.6) {
      // Insert a GT-aligned preference.
      if (rng.Bernoulli(2.0 / 3.0)) {
        // companion -> type
        const size_t c = rng.Uniform(Companions().size());
        const size_t t = rng.Uniform(PoiTypes().size());
        StatusOr<ParameterDescriptor> pd = ParameterDescriptor::Equals(
            env, kCompanionParam, ValueRef{0, static_cast<ValueId>(c)});
        if (!pd.ok()) return pd.status();
        std::vector<ParameterDescriptor> parts;
        parts.push_back(std::move(*pd));
        StatusOr<CompositeDescriptor> cod =
            CompositeDescriptor::Create(env, std::move(parts));
        if (!cod.ok()) return cod.status();
        StatusOr<bool> changed = InsertOrCorrect(
            profile, std::move(*cod),
            AttributeClause{"type", db::CompareOp::kEq,
                            db::Value(PoiTypes()[t])},
            Round05(CalibratedTypeScore(gt, t, gt.TypeAffinity(t, c))));
        if (!changed.ok()) return changed.status();
        if (*changed) ++stats->updates;
      } else {
        // weather -> open_air, at the Conditions or Characterization level.
        const bool open_air = rng.Bernoulli(0.5);
        ValueRef w;
        double ideal;
        if (rng.Bernoulli(0.6)) {
          w = ValueRef{0, static_cast<ValueId>(rng.Uniform(5))};
          ideal = gt.OpenAirAffinity(open_air, w.id);
        } else {
          w = ValueRef{1, static_cast<ValueId>(rng.Uniform(
                              weather.level_size(1)))};
          double sum = 0;
          std::vector<ValueRef> conds = weather.Desc(w, 0);
          for (ValueRef cd : conds) sum += gt.OpenAirAffinity(open_air, cd.id);
          ideal = sum / static_cast<double>(conds.size());
        }
        StatusOr<ParameterDescriptor> pd =
            ParameterDescriptor::Equals(env, kTemperatureParam, w);
        if (!pd.ok()) return pd.status();
        std::vector<ParameterDescriptor> parts;
        parts.push_back(std::move(*pd));
        StatusOr<CompositeDescriptor> cod =
            CompositeDescriptor::Create(env, std::move(parts));
        if (!cod.ok()) return cod.status();
        StatusOr<bool> changed = InsertOrCorrect(
            profile, std::move(*cod),
            AttributeClause{"open_air", db::CompareOp::kEq,
                            db::Value(open_air)},
            Round05(CalibratedOpenAirScore(gt, ideal)));
        if (!changed.ok()) return changed.status();
        if (*changed) ++stats->updates;
      }
    } else if (roll < 0.85 && !profile.empty()) {
      // Update: rescore a random preference toward ground truth.
      const size_t i = rng.Uniform(profile.size());
      const ContextualPreference& pref = profile.preference(i);
      double ideal = -1.0;
      if (pref.clause().attribute == "type") {
        const size_t t = IndexOfOrDie(PoiTypes(), pref.clause().value.AsString());
        if (t < PoiTypes().size()) {
          // Marginal over companions if no companion condition; there is
          // no cheap way to read the descriptor's companion here, so use
          // the first state's companion component.
          std::vector<ContextState> states = pref.States(env);
          const ValueRef comp = states.front().value(kCompanionParam);
          double affinity;
          if (comp.level == 0) {
            affinity = gt.TypeAffinity(t, comp.id);
          } else {
            double sum = 0;
            for (size_t c = 0; c < Companions().size(); ++c) {
              sum += gt.TypeAffinity(t, c);
            }
            affinity = sum / static_cast<double>(Companions().size());
          }
          ideal = CalibratedTypeScore(gt, t, affinity);
        }
      } else if (pref.clause().attribute == "open_air") {
        const bool open_air = pref.clause().value.AsBool();
        std::vector<ContextState> states = pref.States(env);
        const ValueRef w = states.front().value(kTemperatureParam);
        double sum = 0;
        std::vector<ValueRef> conds = weather.Desc(w, 0);
        for (ValueRef cd : conds) sum += gt.OpenAirAffinity(open_air, cd.id);
        ideal = CalibratedOpenAirScore(
            gt, sum / static_cast<double>(conds.size()));
      }
      if (ideal >= 0.0 && Round05(ideal) != pref.score()) {
        Status st = profile.UpdateScore(i, Round05(ideal));
        if (st.ok()) ++stats->updates;
      }
    } else if (!profile.empty()) {
      // Delete a preference the user disagrees with (score far from
      // anything GT would assign — proxy: extreme scores on unknown
      // clauses or random dissatisfaction).
      const size_t i = rng.Uniform(profile.size());
      if (rng.Bernoulli(0.5)) {
        Status st = profile.Remove(i);
        if (st.ok()) ++stats->updates;
      }
    }
  }
  (void)companions;
  return Status::OK();
}

/// Top-k prefix of `scored` (already sorted descending), extended
/// through ties at the k-th score — the paper's top-20 convention.
template <typename GetScore>
size_t TieExtendedPrefix(size_t k, size_t n, GetScore score) {
  if (n <= k) return n;
  size_t end = k;
  while (end < n && score(end) == score(k - 1)) ++end;
  return end;
}

/// Precision of the system's top-k under `kind` for one query state.
///
/// Protocol (paper §5.1): users were asked to rank *the results of
/// each contextual query*; we report the percentage of the system's
/// top-20 that also appears in the user's top-20. Accordingly the
/// ground truth re-ranks the query's result pool (every tuple any
/// applicable preference scored), not the whole database.
///
/// `query` is what the *system* sees (possibly a degraded sensor
/// acquisition); `truth` is the context the user actually stands in —
/// their ranking is always relative to the real world, which is how
/// degraded sensing costs precision. With perfect sensing both are the
/// same state.
/// Returns negative if the system answer is empty (sample skipped).
StatusOr<double> QueryPrecision(const GroundTruth& gt,
                                const ContextEnvironment& env,
                                const db::Relation& relation,
                                const TreeResolver& resolver,
                                const ContextState& query,
                                const ContextState& truth, DistanceKind kind,
                                size_t k) {
  StatusOr<CompositeDescriptor> cod = DescriptorForState(env, query);
  if (!cod.ok()) return cod.status();
  ContextualQuery cq;
  cq.context = ExtendedDescriptor::FromComposite(std::move(*cod));
  QueryOptions options;
  options.resolution.distance = kind;
  options.top_k = 0;  // Full pool; top-20 sliced below.
  // Tuples matched by several applicable clauses (e.g. a type clause
  // and an open-air clause) combine by averaging — the "appropriate
  // combining function" the paper posits (§3.2), and the one that lets
  // multi-factor preferences jointly order the results.
  options.combine = db::CombinePolicy::kAvg;
  StatusOr<QueryResult> result = RankCS(relation, cq, resolver, options);
  if (!result.ok()) return result.status();
  const std::vector<db::ScoredTuple>& pool = result->tuples;
  if (pool.empty()) return -1.0;

  // System top-k. The pool is sorted by descending score; the cut is
  // at exactly k (the system presents a 20-item page), while the
  // user's acceptance set below is tie-extended per the paper's rule.
  const size_t sys_end = std::min(k, pool.size());

  // The simulated user re-ranks the same pool by ground truth. Human
  // rankings are indifferent below coarse score differences, so the
  // user's scores are quantized to a 0.1 grid — which also produces
  // the ties the paper's top-20 rule talks about.
  std::vector<std::pair<double, db::RowId>> user_ranked;
  user_ranked.reserve(pool.size());
  for (const db::ScoredTuple& t : pool) {
    const double s = gt.Score(env, relation, t.row_id, truth);
    user_ranked.emplace_back(std::round(s * 10.0) / 10.0, t.row_id);
  }
  std::sort(user_ranked.begin(), user_ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const size_t user_end = TieExtendedPrefix(
      k, user_ranked.size(), [&](size_t i) { return user_ranked[i].first; });

  std::unordered_set<db::RowId> user_top;
  for (size_t i = 0; i < user_end; ++i) user_top.insert(user_ranked[i].second);
  size_t hit = 0;
  for (size_t i = 0; i < sys_end; ++i) {
    if (user_top.contains(pool[i].row_id)) ++hit;
  }
  return 100.0 * static_cast<double>(hit) / static_cast<double>(sys_end);
}

}  // namespace

StatusOr<std::vector<UserStudyRow>> RunUserStudy(
    const UserStudyConfig& config) {
  StatusOr<PoiDatabase> poi = MakePoiDatabase(config.num_pois, config.seed);
  if (!poi.ok()) return poi.status();
  const ContextEnvironment& env = *poi->env;

  std::vector<UserStudyRow> rows;
  Rng master(config.seed);

  for (size_t u = 0; u < config.num_users; ++u) {
    UserStudyRow row;
    row.user_id = static_cast<int>(u + 1);
    row.age = static_cast<AgeGroup>(master.Uniform(3));
    row.sex = static_cast<Sex>(master.Uniform(2));
    row.taste = static_cast<Taste>(master.Uniform(2));

    const uint64_t user_seed = master.Next();
    Rng rng(user_seed);
    GroundTruth gt(env, user_seed);

    StatusOr<Profile> profile =
        MakeDefaultProfile(poi->env, row.age, row.sex, row.taste);
    if (!profile.ok()) return profile.status();

    // Diligence drives how many edits this user performs (paper: 12-38).
    const double diligence = rng.NextDouble();
    const size_t num_edits = 12 + static_cast<size_t>(diligence * 28.0);
    EditStats stats;
    CTXPREF_RETURN_IF_ERROR(
        EditProfile(*profile, gt, num_edits, rng, &stats));
    row.num_updates = stats.updates;
    // Modeled wall-clock: onboarding + per-edit cost + noise (minutes).
    row.update_minutes = std::round(8.0 + 0.9 * static_cast<double>(num_edits) +
                                    4.0 * rng.NextDouble());

    StatusOr<ProfileTree> tree = ProfileTree::Build(*profile);
    if (!tree.ok()) return tree.status();
    TreeResolver resolver(&*tree);
    SequentialStore store = SequentialStore::Build(*profile);

    // ---- Sensed-context rig (engaged only under dropout) ----
    // The system does not get the query state for free: each parameter
    // is read through a ResilientSource wrapping a flaky sensor that
    // tracks the user's true context. Failed reads retry, then serve
    // the previous query's value (stale), lifting it toward `all` as
    // it ages on the fake clock.
    FakeClock clock;
    CurrentContext sensed(poi->env);
    std::vector<NoisySensorSource*> sensors;
    if (config.sensor_dropout > 0.0) {
      SourcePolicy policy;
      policy.max_attempts = 2;
      policy.backoff_initial_micros = 1'000;
      policy.failure_threshold = 8;
      policy.open_cooldown_micros = 3'000'000;
      policy.stale_ttl_micros = 2'000'000;
      policy.lift_window_micros = 2'000'000;
      for (size_t pi = 0; pi < env.size(); ++pi) {
        auto sensor = std::make_unique<NoisySensorSource>(
            env, pi, env.parameter(pi).hierarchy().AllValue(),
            /*coarseness=*/0.0, config.sensor_dropout,
            user_seed ^ (0x9e3779b97f4a7c15ull * (pi + 1)));
        sensors.push_back(sensor.get());
        CTXPREF_RETURN_IF_ERROR(sensed.AddSource(
            std::make_unique<ResilientSource>(env, std::move(sensor), policy,
                                              &clock, user_seed + pi)));
      }
    }
    uint64_t degraded_params = 0;
    uint64_t sensed_queries = 0;
    // Acquires the system's view of `truth`: points the sensors at it,
    // lets a second of fake time pass, and snapshots through the rig.
    auto Sense = [&](const ContextState& truth) {
      if (sensors.empty()) return truth;
      for (size_t i = 0; i < sensors.size(); ++i) {
        sensors[i]->set_true_value(truth.value(i));
      }
      clock.Advance(1'000'000);
      SnapshotReport report = sensed.SnapshotWithReport();
      degraded_params += report.degraded_count();
      ++sensed_queries;
      return report.state;
    };

    // ---- Sample queries per class and measure precision ----
    // Class 0: exact match — queries drawn from stored states.
    // Class 1: exactly one covering state (and no exact match).
    // Class 2: several covering states, measured under both distances.
    double sums[4] = {0, 0, 0, 0};
    size_t counts[4] = {0, 0, 0, 0};

    // Exact class.
    for (size_t attempts = 0;
         attempts < 2000 && counts[0] < config.queries_per_class;
         ++attempts) {
      ContextState q = workload::ExactQuery(*profile, rng);
      ContextState sq = Sense(q);
      StatusOr<double> pct =
          QueryPrecision(gt, env, poi->relation, resolver, sq, q,
                         DistanceKind::kHierarchy, config.top_k);
      if (!pct.ok()) return pct.status();
      if (*pct < 0.0) continue;
      sums[0] += *pct;
      ++counts[0];
    }

    // Cover classes, from random near-detailed queries.
    for (size_t attempts = 0;
         attempts < 8000 && (counts[1] < config.queries_per_class ||
                             counts[2] < config.queries_per_class);
         ++attempts) {
      ContextState q = workload::RandomQuery(env, rng, 0.3);
      if (!store.SearchExact(q).empty()) continue;  // Exact class.
      const size_t covers = store.SearchCovering(q).size();
      if (covers == 0) continue;
      const size_t cls = covers == 1 ? 1 : 2;
      if (counts[cls] >= config.queries_per_class) continue;

      ContextState sq = Sense(q);
      StatusOr<double> hier =
          QueryPrecision(gt, env, poi->relation, resolver, sq, q,
                         DistanceKind::kHierarchy, config.top_k);
      if (!hier.ok()) return hier.status();
      if (*hier < 0.0) continue;
      if (cls == 1) {
        sums[1] += *hier;
        ++counts[1];
      } else {
        StatusOr<double> jacc =
            QueryPrecision(gt, env, poi->relation, resolver, sq, q,
                           DistanceKind::kJaccard, config.top_k);
        if (!jacc.ok()) return jacc.status();
        if (*jacc < 0.0) continue;
        sums[2] += *hier;
        sums[3] += *jacc;
        ++counts[2];
        ++counts[3];
      }
    }
    row.exact_pct = counts[0] > 0 ? sums[0] / counts[0] : -1.0;
    row.one_cover_pct = counts[1] > 0 ? sums[1] / counts[1] : -1.0;
    row.multi_cover_hierarchy_pct = counts[2] > 0 ? sums[2] / counts[2] : -1.0;
    row.multi_cover_jaccard_pct = counts[3] > 0 ? sums[3] / counts[3] : -1.0;
    row.degraded_param_pct =
        sensed_queries > 0
            ? 100.0 * static_cast<double>(degraded_params) /
                  static_cast<double>(sensed_queries * env.size())
            : 0.0;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace ctxpref::workload
