#include "harness/workload_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "context/descriptor.h"
#include "context/resilient_source.h"
#include "context/source.h"
#include "context/state.h"
#include "preference/contextual_query.h"
#include "preference/ordering.h"
#include "preference/preference.h"
#include "preference/profile.h"
#include "preference/query_cache.h"
#include "preference/replicated_query_cache.h"
#include "storage/admission.h"
#include "storage/profile_store.h"
#include "storage/serving.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/deadline.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/poi_dataset.h"
#include "workload/query_generator.h"

namespace ctxpref::harness {

namespace {

// Seed mixers, so the profile/chaos/workload streams never collide.
constexpr uint64_t kProfileSeedMix = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kMigrationSeedMix = 0xda3e39cb94b95bdbull;
constexpr uint64_t kChaosSeedOffset = 17;

// Build with +=, not operator+ on a literal (GCC 12 -Wrestrict misfire,
// see bench_serving.cc).
std::string UserName(size_t u) {
  std::string name = "user";
  name += std::to_string(u);
  return name;
}

/// Scores on the paper's 0.05 grid, never 0.
double GridScore(Rng& rng) {
  return 0.05 * static_cast<double>(1 + rng.Uniform(20));
}

StatusOr<CompositeDescriptor> DescriptorForState(const ContextEnvironment& env,
                                                 const ContextState& state) {
  std::vector<ParameterDescriptor> parts;
  for (size_t i = 0; i < env.size(); ++i) {
    if (state.value(i) == env.parameter(i).hierarchy().AllValue()) continue;
    StatusOr<ParameterDescriptor> pd =
        ParameterDescriptor::Equals(env, i, state.value(i));
    if (!pd.ok()) return pd.status();
    parts.push_back(std::move(*pd));
  }
  if (parts.empty()) return CompositeDescriptor();
  return CompositeDescriptor::Create(env, std::move(parts));
}

/// Generates one user profile over the POI (Fig. 2) environment per the
/// scenario's shape knobs: `profile_size` preferences whose context
/// values are drawn uniform or zipf-skewed over each parameter's
/// detailed domain (§5.2), lifted to an upper level with
/// `lift_probability`, with clauses over the POI `type` / `open_air`
/// attributes and scores on the 0.05 grid. Conflicting or duplicate
/// draws are redrawn (bounded retries), so the result satisfies Def. 7.
StatusOr<Profile> BuildUserProfile(const EnvironmentPtr& env_ptr,
                                   const ScenarioConfig& cfg, uint64_t seed) {
  const ContextEnvironment& env = *env_ptr;
  Rng rng(seed);
  Profile profile(env_ptr);
  std::vector<ZipfDistribution> zipf;
  if (cfg.profile_skew == SkewKind::kZipf) {
    zipf.reserve(env.size());
    for (size_t i = 0; i < env.size(); ++i) {
      zipf.emplace_back(env.parameter(i).hierarchy().level_size(0),
                        cfg.profile_zipf_a);
    }
  }
  const std::vector<std::string>& types = workload::PoiTypes();
  const size_t budget = 50 * cfg.profile_size + 100;
  for (size_t attempt = 0;
       profile.size() < cfg.profile_size && attempt < budget; ++attempt) {
    std::vector<ValueRef> values;
    values.reserve(env.size());
    bool contextual = false;
    for (size_t i = 0; i < env.size(); ++i) {
      const Hierarchy& h = env.parameter(i).hierarchy();
      const ValueId detailed =
          cfg.profile_skew == SkewKind::kZipf
              ? static_cast<ValueId>(zipf[i].Sample(rng))
              : static_cast<ValueId>(rng.Uniform(h.level_size(0)));
      ValueRef v{0, detailed};
      if (h.num_levels() > 1 && rng.Bernoulli(cfg.lift_probability)) {
        v = h.Anc(v,
                  static_cast<LevelIndex>(1 + rng.Uniform(h.num_levels() - 1)));
      }
      if (v != h.AllValue()) contextual = true;
      values.push_back(v);
    }
    if (!contextual) continue;  // (all, ..., all): redraw.
    StatusOr<CompositeDescriptor> cod =
        DescriptorForState(env, ContextState(std::move(values)));
    if (!cod.ok()) return cod.status();
    const double score = GridScore(rng);
    StatusOr<ContextualPreference> pref =
        rng.Bernoulli(0.2)
            ? ContextualPreference::Create(
                  std::move(*cod),
                  AttributeClause{"open_air", db::CompareOp::kEq,
                                  db::Value(rng.Bernoulli(0.5))},
                  score)
            : ContextualPreference::Create(
                  std::move(*cod),
                  AttributeClause{"type", db::CompareOp::kEq,
                                  db::Value(types[rng.Uniform(types.size())])},
                  score);
    if (!pref.ok()) return pref.status();
    Status st = profile.Insert(std::move(*pref));
    if (!st.ok() && !st.IsAlreadyExists() && !st.IsConflict()) return st;
  }
  if (profile.empty()) {
    return Status::InvalidArgument(
        "profile generation drew only conflicting preferences; "
        "loosen the scenario's profile knobs");
  }
  return profile;
}

/// Top-k row ids of `result`, in rank order.
std::vector<db::RowId> TopIds(const QueryResult& result, size_t k) {
  std::vector<db::RowId> ids;
  ids.reserve(std::min(k, result.tuples.size()));
  for (size_t i = 0; i < result.tuples.size() && i < k; ++i) {
    ids.push_back(result.tuples[i].row_id);
  }
  return ids;
}

double Overlap(const std::vector<db::RowId>& truth,
               const std::vector<db::RowId>& got) {
  if (truth.empty()) return 0.0;
  size_t hits = 0;
  for (const db::RowId r : got) {
    if (std::find(truth.begin(), truth.end(), r) != truth.end()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

uint64_t Percentile(std::vector<uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

std::string U64(uint64_t v) { return std::to_string(v); }

}  // namespace

std::string ScenarioResult::CsvHeader() {
  return "scenario,variant,ops,queries,updates,migrations,fresh,stale,"
         "truncated,shed,deadline_hits,good_ops,cache_hits,cache_misses,"
         "degraded_params,rank_agreement_ppm,scored_queries,result_crc,"
         "virtual_micros";
}

std::string ScenarioResult::CsvRow() const {
  std::string row;
  row += scenario;
  row += ',';
  row += variant;
  for (const uint64_t v :
       {ops, queries, updates, migrations, served_fresh, served_stale,
        served_truncated, served_shed, deadline_hits, good_ops, cache_hits,
        cache_misses, degraded_params, rank_agreement_ppm, scored_queries,
        static_cast<uint64_t>(result_crc),
        static_cast<uint64_t>(virtual_micros)}) {
    row += ',';
    row += U64(v);
  }
  return row;
}

std::string ScenarioResult::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"scenario\": \"%s\", \"variant\": \"%s\", \"ops\": %llu, "
      "\"queries\": %llu, \"updates\": %llu, \"migrations\": %llu, "
      "\"fresh\": %llu, \"stale\": %llu, \"truncated\": %llu, "
      "\"shed\": %llu, \"deadline_hits\": %llu, \"good_ops\": %llu, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu, "
      "\"degraded_params\": %llu, \"rank_agreement_ppm\": %llu, "
      "\"scored_queries\": %llu, \"result_crc\": %lu, "
      "\"virtual_micros\": %lld, \"wall_seconds\": %.3f, "
      "\"wall_ns_per_op\": %.1f, \"p50_ns\": %.0f, \"p99_ns\": %.0f, "
      "\"virtual_ns_per_op\": %.1f, \"virtual_ns_per_good_op\": %.1f}",
      scenario.c_str(), variant.c_str(),
      static_cast<unsigned long long>(ops),
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(updates),
      static_cast<unsigned long long>(migrations),
      static_cast<unsigned long long>(served_fresh),
      static_cast<unsigned long long>(served_stale),
      static_cast<unsigned long long>(served_truncated),
      static_cast<unsigned long long>(served_shed),
      static_cast<unsigned long long>(deadline_hits),
      static_cast<unsigned long long>(good_ops),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(degraded_params),
      static_cast<unsigned long long>(rank_agreement_ppm),
      static_cast<unsigned long long>(scored_queries),
      static_cast<unsigned long>(result_crc),
      static_cast<long long>(virtual_micros), wall_seconds, wall_ns_per_op,
      p50_ns, p99_ns, virtual_ns_per_op, virtual_ns_per_good_op);
  return buf;
}

StatusOr<ScenarioResult> WorkloadRunner::Run(std::string_view variant) const {
  const ScenarioConfig& cfg = cfg_;
  ScenarioResult res;
  res.scenario = cfg.name;
  res.variant = std::string(variant);

  StatusOr<workload::PoiDatabase> poi =
      workload::MakePoiDatabase(cfg.pois, cfg.seed);
  if (!poi.ok()) return poi.status();
  const ContextEnvironment& env = *poi->env;

  storage::ProfileStore store(poi->env);
  for (size_t u = 0; u < cfg.users; ++u) {
    StatusOr<Profile> profile =
        BuildUserProfile(poi->env, cfg, cfg.seed ^ (kProfileSeedMix * (u + 1)));
    if (!profile.ok()) return profile.status();
    Status st = store.CreateUser(UserName(u), std::move(*profile));
    if (!st.ok()) return st;
  }

  // cache=off: serve uncached. Retain-stale mode keeps superseded
  // entries so the resilient ladder's stale rung has something to find.
  //
  // coherence=on (the default): the cache is a ReplicatedQueryCache
  // kept coherent by the log-based scheme — the store appends one
  // invalidation record per publish instead of touching cache locks,
  // and each query drains the log into its replica (inline consume)
  // before serving through that replica's tree. Queries round-robin
  // across `coherence_replicas` deterministically, so the CSV contract
  // holds; with 1 replica the hit stream matches the single shared
  // cache. coherence=off: the pre-log eager-invalidation wiring.
  std::optional<ContextQueryTree> cache;
  std::optional<ReplicatedQueryCache> replicas;
  if (cfg.ablation.cache) {
    if (cfg.ablation.coherence) {
      ReplicatedQueryCache::Options ropt;
      ropt.num_replicas = cfg.coherence_replicas;
      ropt.capacity_per_replica = cfg.cache_capacity;
      // Retention matches the resilient ladder's default stale reach,
      // so consume-step reclamation never drops an entry the stale
      // rung could still serve.
      ropt.staleness_window = storage::ServeOptions{}.max_stale_versions;
      ropt.mode = ReplicatedQueryCache::ConsumeMode::kInlineAtLookup;
      replicas.emplace(poi->env, Ordering::Identity(env.size()), ropt);
      store.AttachCoherenceLog(&replicas->log());
    } else {
      cache.emplace(poi->env, Ordering::Identity(env.size()),
                    cfg.cache_capacity);
      cache->SetRetainStale(true);
      store.AttachQueryCache(&*cache);
    }
  }
  ContextQueryTree* cache_ptr = cache.has_value() ? &*cache : nullptr;

  // parallel=off: single-threaded evaluation, no shared pool.
  const bool parallel = cfg.ablation.parallel && cfg.threads > 1;
  std::optional<ThreadPool> pool;
  if (parallel) pool.emplace(cfg.threads);

  storage::AdmissionController admission(
      storage::AdmissionPolicy{.max_in_flight = cfg.max_in_flight});

  QueryOptions base;
  base.resolution.distance = cfg.distance;
  // tie_break=off: pre-erratum Jaccard tie handling.
  base.resolution.jaccard_tie_break = cfg.ablation.tie_break;
  base.combine = db::CombinePolicy::kMax;  // Stale rung needs kMax/kMin.
  base.top_k = cfg.top_k;
  base.num_threads = parallel ? cfg.threads : 1;
  base.pool = parallel ? &*pool : nullptr;
  // flat=off: resolve on the pointer tree instead of the arena.
  base.prefer_flat = cfg.ablation.flat;

  // Sensor rig (bench_availability's failing-prefix scripting). With
  // resilience=off a failed read degrades the parameter to `all`
  // directly — no retries, breaker, or stale/lift ladder.
  const bool sensors =
      cfg.sensor_dropout > 0.0 || cfg.outage_fraction > 0.0;
  FakeClock acq_clock;
  SourcePolicy policy;
  policy.max_attempts = 2;
  policy.failure_threshold = 6;
  policy.open_cooldown_micros = 3'000'000;
  policy.stale_ttl_micros = 2'000'000;
  policy.lift_window_micros = 2'000'000;
  std::optional<CurrentContext> current;
  std::vector<FaultInjectingSource*> faults;
  if (sensors && cfg.ablation.resilience) {
    current.emplace(poi->env);
    for (size_t pi = 0; pi < env.size(); ++pi) {
      auto fault = std::make_unique<FaultInjectingSource>(
          pi, env.parameter(pi).hierarchy().AllValue(), &acq_clock);
      faults.push_back(fault.get());
      Status st = current->AddSource(std::make_unique<ResilientSource>(
          env, std::move(fault), policy, &acq_clock,
          cfg.seed ^ (1000 * pi + 7)));
      if (!st.ok()) return st;
    }
  }

  // The virtual-time queue model: requests arrive open-loop at
  // `arrival_rate_qps` (or back-to-back when 0), a full evaluation
  // occupies the server for `service_micros` of virtual time and a
  // degraded (ladder) serve for `degraded_service_micros`. Deadlines
  // live on the same FakeClock, so overload behavior — backlog, door
  // shedding, goodput collapse — is bit-for-bit reproducible.
  FakeClock serve_clock(1'000'000);
  const int64_t t0 = serve_clock.NowMicros();
  int64_t server_free_at = t0;

  // Chaos draws come from their own stream so toggling `resilience`
  // (which changes how many draws each failure consumes) cannot shift
  // the workload stream.
  Rng rng(cfg.seed);
  Rng chaos(cfg.seed + kChaosSeedOffset);

  std::optional<ZipfDistribution> user_zipf;
  if (cfg.user_zipf_a > 0.0 && cfg.users > 1) {
    user_zipf.emplace(cfg.users, cfg.user_zipf_a);
  }

  auto in_window = [ops = cfg.ops](size_t op, double fraction) {
    if (fraction <= 0.0) return false;
    const double pos =
        (static_cast<double>(op) + 0.5) / static_cast<double>(ops);
    return pos >= 0.5 - fraction / 2 && pos < 0.5 + fraction / 2;
  };

  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& m_ops =
      reg.GetCounter("ctxpref_scenario_ops_total", "Scenario harness ops");
  Counter& m_fresh = reg.GetCounter("ctxpref_scenario_served_fresh_total",
                                    "Scenario answers served fresh");
  Counter& m_degraded =
      reg.GetCounter("ctxpref_scenario_served_degraded_total",
                     "Scenario answers served stale/truncated/shed");
  Counter& m_good = reg.GetCounter("ctxpref_scenario_good_ops_total",
                                   "Fresh scenario answers within deadline");
  LatencyHistogram& m_lat = reg.GetHistogram(
      "ctxpref_scenario_op_latency_ns", "Scenario per-op wall latency");

  std::vector<uint64_t> latencies;
  latencies.reserve(cfg.ops);
  uint32_t crc = 0;
  auto fold = [&crc](const QueryResult& result, storage::ServedVia via) {
    char buf[17];
    for (const db::ScoredTuple& t : result.tuples) {
      uint64_t row = t.row_id;
      uint64_t bits = 0;
      std::memcpy(&bits, &t.score, sizeof(bits));
      std::memcpy(buf, &row, sizeof(row));
      std::memcpy(buf + 8, &bits, sizeof(bits));
      buf[16] = static_cast<char>(via);
      crc = Crc32(std::string_view(buf, sizeof(buf)), crc);
    }
  };
  double agreement_sum = 0.0;

  const uint64_t wall_start = MonotonicNanos();
  for (size_t op = 0; op < cfg.ops; ++op) {
    const bool flash = in_window(op, cfg.flash_crowd_fraction);
    const bool outage = in_window(op, cfg.outage_fraction);
    const bool migration = in_window(op, cfg.migration_fraction);
    ++res.ops;
    m_ops.Increment();

    // Profile-migration wave: the op also republishes one user's
    // profile wholesale (round-robin), modeling a re-onboarding sweep.
    if (migration) {
      StatusOr<Profile> fresh = BuildUserProfile(
          poi->env, cfg, cfg.seed ^ (kMigrationSeedMix * (op + 1)));
      if (!fresh.ok()) return fresh.status();
      Status st =
          store.PublishProfile(UserName(op % cfg.users), std::move(*fresh));
      if (!st.ok()) return st;
      ++res.migrations;
    }

    const size_t u = flash ? 0
                     : user_zipf.has_value()
                         ? static_cast<size_t>(user_zipf->Sample(rng))
                         : static_cast<size_t>(rng.Uniform(cfg.users));
    const std::string uid = UserName(u);

    if (cfg.update_rate > 0.0 && rng.Bernoulli(cfg.update_rate)) {
      // Profile update (churn). Draw the edit up front so cow=on and
      // cow=off consume identical randomness.
      ++res.updates;
      StatusOr<const Profile*> pp = store.GetProfile(uid);
      if (!pp.ok()) return pp.status();
      const size_t psize = (*pp)->size();
      if (psize == 0) continue;
      const size_t idx = rng.Uniform(psize);
      const double score = GridScore(rng);
      if (cfg.ablation.cow) {
        Status st = store.UpdateUser(uid, [idx, score](Profile& p) {
          if (idx < p.size()) {
            // A conflicting rescore keeps the old score; the publish
            // still happens (same as the cow=off arm).
            (void)p.UpdateScore(idx, score);
          }
          return Status::OK();
        });
        if (!st.ok()) return st;
      } else {
        // cow=off: the pre-COW write path — copy the whole profile,
        // publish it wholesale, and clobber the entire query cache
        // instead of relying on per-user version-tagged invalidation.
        Profile copy = **pp;
        if (idx < copy.size()) (void)copy.UpdateScore(idx, score);
        Status st = store.PublishProfile(uid, std::move(copy));
        if (!st.ok()) return st;
        if (cache_ptr != nullptr) cache_ptr->InvalidateAll();
        if (replicas.has_value()) {
          for (size_t r = 0; r < replicas->num_replicas(); ++r) {
            replicas->replica(r).InvalidateAll();
          }
        }
      }
      continue;  // Updates ride the writer, not the serving queue.
    }

    // ---- Query op ---------------------------------------------------
    ++res.queries;
    StatusOr<const Profile*> pp = store.GetProfile(uid);
    if (!pp.ok()) return pp.status();

    std::vector<ContextState> truth_states;
    truth_states.reserve(cfg.states_per_query);
    for (size_t s = 0; s < cfg.states_per_query; ++s) {
      const bool exact = !(*pp)->empty() && rng.Bernoulli(cfg.exact_fraction);
      truth_states.push_back(
          exact ? workload::ExactQuery(**pp, rng)
                : workload::RandomQuery(env, rng, cfg.lift_probability));
    }

    std::vector<ContextState> acquired = truth_states;
    if (sensors) {
      const double rate = outage ? 1.0 : cfg.sensor_dropout;
      for (ContextState& state : acquired) {
        if (cfg.ablation.resilience) {
          for (size_t pi = 0; pi < faults.size(); ++pi) {
            faults[pi]->set_value(state.value(pi));
            uint32_t fails = 0;
            while (fails < policy.max_attempts &&
                   chaos.NextDouble() < rate) {
              ++fails;
            }
            faults[pi]->FailNext(fails);
          }
          acq_clock.Advance(1'000'000);  // One second between readings.
          SnapshotReport report = current->SnapshotWithReport();
          res.degraded_params += report.degraded_count();
          state = report.state;
        } else {
          for (size_t pi = 0; pi < env.size(); ++pi) {
            if (chaos.NextDouble() < rate) {
              state.set_value(pi, env.parameter(pi).hierarchy().AllValue());
              ++res.degraded_params;
            }
          }
        }
      }
    }

    std::vector<CompositeDescriptor> disjuncts;
    disjuncts.reserve(acquired.size());
    for (const ContextState& s : acquired) {
      StatusOr<CompositeDescriptor> cod = DescriptorForState(env, s);
      if (!cod.ok()) return cod.status();
      disjuncts.push_back(std::move(*cod));
    }
    ContextualQuery cq;
    cq.context = ExtendedDescriptor(std::move(disjuncts));

    // Virtual-time bookkeeping: arrival, queueing, the door deadline.
    const int64_t arrival =
        cfg.arrival_rate_qps > 0.0
            ? t0 + static_cast<int64_t>(
                       static_cast<double>(res.queries - 1) * 1e6 /
                       cfg.arrival_rate_qps)
            : std::max(server_free_at, serve_clock.NowMicros());
    const int64_t start_service = std::max(arrival, server_free_at);
    if (start_service > serve_clock.NowMicros()) {
      serve_clock.Advance(start_service - serve_clock.NowMicros());
    }
    const int64_t deadline_at =
        cfg.deadline_micros > 0 ? arrival + cfg.deadline_micros : 0;
    // Deadline-aware admission: a request whose remaining budget cannot
    // cover a full evaluation is doomed — with shedding on it is pushed
    // down the ladder at the door (expired deadline) instead of
    // grinding through a full evaluation nobody will wait for.
    const bool doomed =
        deadline_at > 0 && start_service + cfg.service_micros > deadline_at;

    // Replicated serving: queries round-robin across replicas; the
    // inline consume step drains the coherence log into this replica
    // (advancing its clock past every published version) before the
    // serve reads through its tree — the harness-shaped form of
    // ServeQueryReplicated's consume-then-gate flow, kept deterministic
    // by indexing on the query count instead of the thread.
    ContextQueryTree* qcache = cache_ptr;
    if (replicas.has_value()) {
      const size_t r = (res.queries - 1) % replicas->num_replicas();
      replicas->Consume(r);
      qcache = &replicas->replica(r);
    }

    // Cache-stat deltas across this serve, for the hit-aware virtual
    // cost below. Per-query states are distinct, so the counts are
    // deterministic even with a worker pool.
    const CacheStats cache_before =
        qcache != nullptr ? qcache->Stats() : CacheStats{};

    const uint64_t q_start = MonotonicNanos();
    storage::ServedVia via = storage::ServedVia::kShed;
    std::optional<storage::ServedQuery> held;
    if (cfg.ablation.shed) {
      storage::ServeOptions so;
      so.query = base;
      if (deadline_at > 0) {
        so.query.deadline = util::Deadline::AtMicros(
            doomed ? start_service : deadline_at, &serve_clock);
      }
      so.admission = &admission;
      so.truncated_top_k = cfg.top_k;
      StatusOr<storage::ServedQuery> served = storage::ServeQueryResilient(
          store, uid, poi->relation, cq, qcache, so);
      if (served.ok()) {
        via = served->provenance.via;
        if (served->provenance.deadline_hit) ++res.deadline_hits;
        held = std::move(*served);
      } else if (served.status().IsUnavailable()) {
        via = storage::ServedVia::kShed;  // Fell off the ladder.
        // The Unavailable status carries no provenance, so a request
        // the deadline pushed off the whole ladder (doomed at the door,
        // no stale entry, truncated rung aborted) would silently skip
        // the deadline_hits column while the registry counter ticks —
        // recover the fact from the deadline itself, which is still
        // expired on the unchanged virtual clock.
        if (so.query.deadline.Expired()) ++res.deadline_hits;
      } else {
        return served.status();
      }
    } else {
      // shed=off: no admission, no deadline — every request grinds
      // through a full evaluation even when its deadline has passed.
      StatusOr<storage::ServedQuery> served =
          storage::ServeQuery(store, uid, poi->relation, cq, qcache, base);
      if (!served.ok()) return served.status();
      via = storage::ServedVia::kFresh;
      held = std::move(*served);
    }
    const QueryResult* answer =
        held.has_value() ? &held->result : nullptr;
    const uint64_t q_ns = MonotonicNanos() - q_start;
    latencies.push_back(q_ns);
    if (MetricsRegistry::TimingEnabled()) m_lat.Record(q_ns);
    if (answer != nullptr) fold(*answer, via);

    // Virtual cost of this serve. A fresh answer costs a full
    // evaluation, except that states served out of the query cache are
    // charged `cache_hit_service_micros` instead (interpolated by hit
    // fraction) — so the cache ablation shows up in virtual time, not
    // just in the (noisy, advisory) wall clock.
    int64_t cost = cfg.degraded_service_micros;
    if (via == storage::ServedVia::kFresh) {
      cost = cfg.service_micros;
      if (qcache != nullptr && cfg.cache_hit_service_micros > 0) {
        const CacheStats after = qcache->Stats();
        const uint64_t lookups = after.lookups - cache_before.lookups;
        const uint64_t hits = after.hits - cache_before.hits;
        if (lookups > 0) {
          cost = static_cast<int64_t>(
              (hits * static_cast<uint64_t>(cfg.cache_hit_service_micros) +
               (lookups - hits) *
                   static_cast<uint64_t>(cfg.service_micros)) /
              lookups);
        }
      }
    }
    server_free_at = start_service + cost;
    if (server_free_at > serve_clock.NowMicros()) {
      serve_clock.Advance(server_free_at - serve_clock.NowMicros());
    }
    const bool on_time = deadline_at == 0 || server_free_at <= deadline_at;
    switch (via) {
      case storage::ServedVia::kFresh:
        ++res.served_fresh;
        m_fresh.Increment();
        break;
      case storage::ServedVia::kStale:
        ++res.served_stale;
        m_degraded.Increment();
        break;
      case storage::ServedVia::kTruncated:
        ++res.served_truncated;
        m_degraded.Increment();
        break;
      case storage::ServedVia::kShed:
        ++res.served_shed;
        m_degraded.Increment();
        break;
    }
    if (via == storage::ServedVia::kFresh && on_time) {
      ++res.good_ops;
      m_good.Increment();
    }

    // Rank agreement vs the true (undegraded) context, bench_
    // availability's headline number — scored only on sensor scenarios.
    if (sensors) {
      StatusOr<storage::SnapshotPtr> snap = store.GetSnapshot(uid);
      if (!snap.ok()) return snap.status();
      std::vector<CompositeDescriptor> truth_parts;
      truth_parts.reserve(truth_states.size());
      for (const ContextState& s : truth_states) {
        StatusOr<CompositeDescriptor> cod = DescriptorForState(env, s);
        if (!cod.ok()) return cod.status();
        truth_parts.push_back(std::move(*cod));
      }
      ContextualQuery truth_q;
      truth_q.context = ExtendedDescriptor(std::move(truth_parts));
      QueryOptions truth_opt = base;
      truth_opt.pool = nullptr;  // Keep the truth probe off the pool and
      truth_opt.num_threads = 1;  // out of the cache.
      StatusOr<QueryResult> truth = storage::ServeQuery(
          **snap, poi->relation, truth_q, nullptr, truth_opt);
      if (!truth.ok()) return truth.status();
      const std::vector<db::RowId> want = TopIds(*truth, cfg.top_k);
      if (!want.empty()) {
        agreement_sum += Overlap(
            want, answer != nullptr ? TopIds(*answer, cfg.top_k)
                                    : std::vector<db::RowId>());
        ++res.scored_queries;
      }
    }
  }
  const uint64_t wall_ns = MonotonicNanos() - wall_start;

  res.virtual_micros = serve_clock.NowMicros() - t0;
  if (cache_ptr != nullptr) {
    const CacheStats stats = cache_ptr->Stats();
    res.cache_hits = stats.hits;
    res.cache_misses = stats.misses;
  } else if (replicas.has_value()) {
    const CacheStats stats = replicas->Stats();
    res.cache_hits = stats.hits;
    res.cache_misses = stats.misses;
  }
  if (res.scored_queries > 0) {
    res.rank_agreement_ppm = static_cast<uint64_t>(std::llround(
        1e6 * agreement_sum / static_cast<double>(res.scored_queries)));
  }
  res.result_crc = crc;

  res.wall_seconds = static_cast<double>(wall_ns) / 1e9;
  res.wall_ns_per_op =
      res.ops > 0 ? static_cast<double>(wall_ns) / static_cast<double>(res.ops)
                  : 0.0;
  std::sort(latencies.begin(), latencies.end());
  res.p50_ns = static_cast<double>(Percentile(latencies, 0.50));
  res.p99_ns = static_cast<double>(Percentile(latencies, 0.99));
  res.virtual_ns_per_op =
      1000.0 * static_cast<double>(res.virtual_micros) /
      static_cast<double>(std::max<uint64_t>(1, res.ops));
  res.virtual_ns_per_good_op =
      1000.0 * static_cast<double>(res.virtual_micros) /
      static_cast<double>(std::max<uint64_t>(1, res.good_ops));
  return res;
}

}  // namespace ctxpref::harness
