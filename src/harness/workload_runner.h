#ifndef CTXPREF_HARNESS_WORKLOAD_RUNNER_H_
#define CTXPREF_HARNESS_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "harness/scenario_config.h"
#include "util/status.h"

namespace ctxpref::harness {

/// The outcome of one scenario run. Split into two kinds of fields:
///
///   * Deterministic fields — derived only from the seeded Rng, the
///     virtual clock, and the answers themselves. These are what
///     `CsvRow` emits; two runs of the same config + seed produce
///     bit-identical CSV (the determinism test and the CI
///     scenario-matrix job both assert this).
///   * Wall-clock fields (`wall_*`, `p50_ns`, `p99_ns`) — advisory
///     timings for humans and dashboards; they go to stdout and the
///     metrics JSON, never to the CSV.
struct ScenarioResult {
  std::string scenario;
  std::string variant;  ///< "base", or "<flag>_on"/"<flag>_off".

  // Deterministic.
  uint64_t ops = 0;
  uint64_t queries = 0;
  uint64_t updates = 0;
  uint64_t migrations = 0;
  uint64_t served_fresh = 0;
  uint64_t served_stale = 0;
  uint64_t served_truncated = 0;
  uint64_t served_shed = 0;  ///< kUnavailable — nothing served.
  uint64_t deadline_hits = 0;
  uint64_t good_ops = 0;  ///< Fresh answers that met their deadline.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t degraded_params = 0;  ///< Context parameters not served fresh.
  /// Mean top-k overlap vs the true (undegraded) context, in parts per
  /// million; only scored when the scenario exercises sensor faults.
  uint64_t rank_agreement_ppm = 0;
  uint64_t scored_queries = 0;  ///< Queries entering the agreement mean.
  uint32_t result_crc = 0;      ///< CRC32 over every served tuple.
  int64_t virtual_micros = 0;   ///< Virtual time consumed by the run.

  // Wall-clock (advisory; never in the CSV).
  double wall_seconds = 0.0;
  double wall_ns_per_op = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  /// Virtual nanoseconds per op — deterministic cost figure the cache
  /// ablation gate compares (sensitive to the hit rate via
  /// `cache_hit_service_micros`). A ratio, so it goes to the bench
  /// JSON rather than the CSV.
  double virtual_ns_per_op = 0.0;
  /// Virtual nanoseconds per good op — the goodput figure the shed
  /// ablation gate compares. Deterministic, but a ratio, so it goes to
  /// the bench JSON rather than the CSV.
  double virtual_ns_per_good_op = 0.0;

  static std::string CsvHeader();
  std::string CsvRow() const;  ///< Deterministic fields only.
  std::string ToJson() const;  ///< All fields.
};

/// Executes one `ScenarioConfig` deterministically: builds the POI
/// database, the user profiles and the `ProfileStore`, then drives
/// `ops` operations (queries, updates, event windows) through
/// `storage::ServeQuery` / `ServeQueryResilient`, honoring every
/// ablation flag. All randomness comes from one seeded `util::Rng`;
/// all scheduling (arrivals, deadlines, backlog) runs on a
/// `util::FakeClock`, so the deterministic half of the result is a
/// pure function of the config. Progress metrics are also ticked into
/// `MetricsRegistry::Global()` under `ctxpref_scenario_*`.
class WorkloadRunner {
 public:
  explicit WorkloadRunner(ScenarioConfig cfg) : cfg_(std::move(cfg)) {}

  const ScenarioConfig& config() const { return cfg_; }

  /// Runs the scenario once. `variant` labels the result row (the
  /// ablation driver runs the same scenario as "<flag>_on" /
  /// "<flag>_off" pairs).
  StatusOr<ScenarioResult> Run(std::string_view variant = "base") const;

 private:
  ScenarioConfig cfg_;
};

}  // namespace ctxpref::harness

#endif  // CTXPREF_HARNESS_WORKLOAD_RUNNER_H_
