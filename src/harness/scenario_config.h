#ifndef CTXPREF_HARNESS_SCENARIO_CONFIG_H_
#define CTXPREF_HARNESS_SCENARIO_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "context/distance.h"
#include "util/status.h"

namespace ctxpref::harness {

/// The ablation switches a scenario can toggle, each disabling one
/// subsystem so its contribution is measurable in isolation (the
/// rdma-dm-sim `index.ablations.*` pattern, ROADMAP item 5). The
/// X-macro is the single source of truth: the config parser, the
/// `--ablate` CLI flag, and scripts/lint.py's docs-sync check all
/// derive the flag list from it. docs/scenarios.md documents the
/// semantics of each flag; every name listed here must appear there.
#define CTXPREF_ABLATION_FLAGS(X) \
  X(cache)                        \
  X(parallel)                     \
  X(cow)                          \
  X(tie_break)                    \
  X(resilience)                   \
  X(flat)                         \
  X(shed)                         \
  X(coherence)

/// One bool per ablation flag, all on by default (the full system).
/// `ablation.<flag> = off` in a config file turns a subsystem off.
struct AblationFlags {
#define CTXPREF_HARNESS_DECLARE_FLAG(name) bool name = true;
  CTXPREF_ABLATION_FLAGS(CTXPREF_HARNESS_DECLARE_FLAG)
#undef CTXPREF_HARNESS_DECLARE_FLAG

  /// Sets flag `flag` (e.g. "cache") to `on`. InvalidArgument for an
  /// unknown flag name.
  Status Set(std::string_view flag, bool on);

  /// The value of flag `flag`; InvalidArgument for unknown names.
  StatusOr<bool> Get(std::string_view flag) const;

  /// All declared flag names, in declaration order.
  static const std::vector<std::string>& Names();

  friend bool operator==(const AblationFlags&, const AblationFlags&) = default;
};

/// How per-preference context values are drawn when generating user
/// profiles (paper §5.2: uniform vs zipf-skewed detailed domains).
enum class SkewKind {
  kUniform,
  kZipf,
};

const char* SkewKindToString(SkewKind kind);
StatusOr<SkewKind> SkewKindFromString(std::string_view text);

/// A declarative scenario: population, profile shape, query mix,
/// churn, sensor faults, the (virtual-time) overload model, and the
/// ablation switches. Parsed from a `key = value` text format (one
/// assignment per line, `#` comments); `FormatScenarioConfig`
/// round-trips through `ParseScenarioConfig` exactly. docs/scenarios.md
/// has the full knob table.
struct ScenarioConfig {
  /// Scenario name, used in output labels (`SC_<name>_...`) and file
  /// names. Must be non-empty, [A-Za-z0-9_-] only.
  std::string name = "scenario";

  // ---- Population / data --------------------------------------------
  size_t users = 4;           ///< Number of user profiles in the store.
  size_t pois = 200;          ///< Rows in the POI relation (§5.1 data).
  size_t profile_size = 50;   ///< Preferences per user profile.
  SkewKind profile_skew = SkewKind::kUniform;  ///< Detailed-value draws.
  double profile_zipf_a = 1.5;   ///< Zipf exponent when skew = zipf.
  double lift_probability = 0.3; ///< P(value lifted to an upper level).

  // ---- Traffic ------------------------------------------------------
  size_t ops = 1000;           ///< Operations (queries + updates) to run.
  double user_zipf_a = 0.0;    ///< Zipf exponent for per-op user draws
                               ///< (0 = uniform across users).
  double exact_fraction = 0.5; ///< P(query state drawn from the profile
                               ///< — an exact match) vs a random state.
  size_t states_per_query = 1; ///< Disjuncts in each query descriptor.
  double update_rate = 0.0;    ///< P(an op is a profile update).
  size_t top_k = 10;           ///< Result size (also the truncated rung).

  // ---- Context acquisition ------------------------------------------
  double sensor_dropout = 0.0; ///< Per-attempt sensor failure rate.

  // ---- Resolution ---------------------------------------------------
  DistanceKind distance = DistanceKind::kHierarchy;  ///< hierarchy|jaccard.

  // ---- Serving / overload model (virtual time) ----------------------
  double arrival_rate_qps = 0.0;  ///< Open-loop arrival rate; 0 = closed
                                  ///< loop (back-to-back requests).
  int64_t deadline_micros = 0;    ///< Per-request deadline; 0 = none.
  int64_t service_micros = 1000;  ///< Modeled cost of a full evaluation.
  int64_t degraded_service_micros = 100;  ///< Modeled cost of a ladder
                                          ///< (stale/truncated/shed) serve.
  /// Modeled cost of a fresh answer whose states all hit the query
  /// cache (0 = same as `service_micros`, i.e. hits are not modeled as
  /// cheaper). A partially-hit query interpolates by hit fraction. The
  /// cache ablation gate compares virtual ns/op, which this knob makes
  /// sensitive to the achieved hit rate — deterministically, unlike
  /// wall time.
  int64_t cache_hit_service_micros = 0;
  size_t max_in_flight = 64;      ///< Admission policy when shed is on.

  // ---- Cache --------------------------------------------------------
  size_t cache_capacity = 0;  ///< Entries; 0 = unbounded. Bounded
                              ///< capacities + parallel=on can make
                              ///< eviction order (and hence hit counts)
                              ///< nondeterministic — see docs/scenarios.md.
  /// Query-cache replicas when `ablation.coherence` is on: the runner
  /// builds a `ReplicatedQueryCache` with this many replicas kept
  /// coherent by the log-based scheme (docs/coherence.md), serving each
  /// query through replica `query_index % coherence_replicas` with an
  /// inline consume step — deterministic, so the CSV contract holds.
  /// 1 behaves like the single shared cache (same hits, same /vop).
  size_t coherence_replicas = 1;

  // ---- Event windows ------------------------------------------------
  // Each is a fraction of `ops` occupied by the event, centered on the
  // middle of the run (0 = event disabled). During a flash crowd all
  // query traffic targets one hot user; during an outage every sensor
  // read fails (correlated outage); during a migration wave each op
  // also republishes one user's profile wholesale.
  double flash_crowd_fraction = 0.0;
  double outage_fraction = 0.0;
  double migration_fraction = 0.0;

  // ---- Execution ----------------------------------------------------
  size_t threads = 4;    ///< Pool size when ablation.parallel is on.
  uint64_t seed = 42;    ///< Master seed; same config + seed => same CSV.

  AblationFlags ablation;

  friend bool operator==(const ScenarioConfig&,
                         const ScenarioConfig&) = default;
};

/// Parses the `key = value` scenario format. Strict: unknown keys, bad
/// enum values, out-of-range rates (negative, or probability > 1),
/// zero where a positive value is required, and duplicate keys are all
/// InvalidArgument with the offending line number.
StatusOr<ScenarioConfig> ParseScenarioConfig(std::string_view text);

/// Reads and parses a scenario file. NotFound if unreadable.
StatusOr<ScenarioConfig> LoadScenarioConfig(const std::string& path);

/// Serializes `cfg` so that `ParseScenarioConfig(FormatScenarioConfig(
/// cfg)) == cfg` (doubles via `FormatDoubleRoundTrip`).
std::string FormatScenarioConfig(const ScenarioConfig& cfg);

}  // namespace ctxpref::harness

#endif  // CTXPREF_HARNESS_SCENARIO_CONFIG_H_
