#include "harness/scenario_config.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace ctxpref::harness {

namespace {

bool ValidName(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

Status BadValue(size_t lineno, std::string_view key, std::string_view value,
                std::string_view why) {
  return Status::InvalidArgument(
      "scenario config line " + std::to_string(lineno) + ": " +
      std::string(key) + " = " + std::string(value) + ": " + std::string(why));
}

/// Assignment targets, so the big key dispatch below stays table-like.
struct SizeKey {
  const char* key;
  size_t* out;
  size_t min;  ///< Smallest accepted value.
};
struct RateKey {
  const char* key;
  double* out;
  double max;  ///< 1.0 for probabilities, +inf for rates/exponents.
};
struct MicrosKey {
  const char* key;
  int64_t* out;
  int64_t min;
};

}  // namespace

Status AblationFlags::Set(std::string_view flag, bool on) {
#define CTXPREF_HARNESS_SET_FLAG(name) \
  if (flag == #name) {                 \
    this->name = on;                   \
    return Status::OK();               \
  }
  CTXPREF_ABLATION_FLAGS(CTXPREF_HARNESS_SET_FLAG)
#undef CTXPREF_HARNESS_SET_FLAG
  return Status::InvalidArgument("unknown ablation flag: " +
                                 std::string(flag));
}

StatusOr<bool> AblationFlags::Get(std::string_view flag) const {
#define CTXPREF_HARNESS_GET_FLAG(name) \
  if (flag == #name) return this->name;
  CTXPREF_ABLATION_FLAGS(CTXPREF_HARNESS_GET_FLAG)
#undef CTXPREF_HARNESS_GET_FLAG
  return Status::InvalidArgument("unknown ablation flag: " +
                                 std::string(flag));
}

const std::vector<std::string>& AblationFlags::Names() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>;
#define CTXPREF_HARNESS_NAME_FLAG(name) v->push_back(#name);
    CTXPREF_ABLATION_FLAGS(CTXPREF_HARNESS_NAME_FLAG)
#undef CTXPREF_HARNESS_NAME_FLAG
    return v;
  }();
  return *names;
}

const char* SkewKindToString(SkewKind kind) {
  switch (kind) {
    case SkewKind::kUniform:
      return "uniform";
    case SkewKind::kZipf:
      return "zipf";
  }
  return "unknown";
}

StatusOr<SkewKind> SkewKindFromString(std::string_view text) {
  if (text == "uniform") return SkewKind::kUniform;
  if (text == "zipf") return SkewKind::kZipf;
  return Status::InvalidArgument("unknown skew kind: " + std::string(text));
}

StatusOr<ScenarioConfig> ParseScenarioConfig(std::string_view text) {
  ScenarioConfig cfg;

  const SizeKey size_keys[] = {
      {"users", &cfg.users, 1},
      {"pois", &cfg.pois, 1},
      {"profile_size", &cfg.profile_size, 1},
      {"ops", &cfg.ops, 1},
      {"states_per_query", &cfg.states_per_query, 1},
      {"top_k", &cfg.top_k, 1},
      {"max_in_flight", &cfg.max_in_flight, 1},
      {"cache_capacity", &cfg.cache_capacity, 0},
      {"coherence_replicas", &cfg.coherence_replicas, 1},
      {"threads", &cfg.threads, 1},
  };
  const RateKey rate_keys[] = {
      {"profile_zipf_a", &cfg.profile_zipf_a, 1e9},
      {"lift_probability", &cfg.lift_probability, 1.0},
      {"user_zipf_a", &cfg.user_zipf_a, 1e9},
      {"exact_fraction", &cfg.exact_fraction, 1.0},
      {"update_rate", &cfg.update_rate, 1.0},
      {"sensor_dropout", &cfg.sensor_dropout, 1.0},
      {"arrival_rate_qps", &cfg.arrival_rate_qps, 1e9},
      {"flash_crowd_fraction", &cfg.flash_crowd_fraction, 1.0},
      {"outage_fraction", &cfg.outage_fraction, 1.0},
      {"migration_fraction", &cfg.migration_fraction, 1.0},
  };
  const MicrosKey micros_keys[] = {
      {"deadline_micros", &cfg.deadline_micros, 0},
      {"service_micros", &cfg.service_micros, 1},
      {"degraded_service_micros", &cfg.degraded_service_micros, 1},
      {"cache_hit_service_micros", &cfg.cache_hit_service_micros, 0},
  };

  std::vector<std::string> seen;
  size_t lineno = 0;
  for (const std::string& raw : SplitAndTrim(text, '\n')) {
    ++lineno;
    const std::string_view line = Trim(
        std::string_view(raw).substr(0, std::string_view(raw).find('#')));
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("scenario config line " +
                                     std::to_string(lineno) +
                                     ": expected 'key = value': " + raw);
    }
    const std::string key(Trim(line.substr(0, eq)));
    const std::string value(Trim(line.substr(eq + 1)));
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument("scenario config line " +
                                     std::to_string(lineno) +
                                     ": empty key or value: " + raw);
    }
    for (const std::string& s : seen) {
      if (s == key) {
        return Status::InvalidArgument("scenario config line " +
                                       std::to_string(lineno) +
                                       ": duplicate key: " + key);
      }
    }
    seen.push_back(key);

    if (key == "name") {
      if (!ValidName(value)) {
        return BadValue(lineno, key, value,
                        "name must be non-empty [A-Za-z0-9_-]");
      }
      cfg.name = value;
      continue;
    }
    if (key == "profile_skew") {
      StatusOr<SkewKind> kind = SkewKindFromString(value);
      if (!kind.ok()) {
        return BadValue(lineno, key, value, "expected uniform|zipf");
      }
      cfg.profile_skew = *kind;
      continue;
    }
    if (key == "distance") {
      if (value == "hierarchy") {
        cfg.distance = DistanceKind::kHierarchy;
      } else if (value == "jaccard") {
        cfg.distance = DistanceKind::kJaccard;
      } else {
        return BadValue(lineno, key, value, "expected hierarchy|jaccard");
      }
      continue;
    }
    if (key == "seed") {
      int64_t v = 0;
      if (!ParseInt64(value, &v) || v < 0) {
        return BadValue(lineno, key, value, "expected a non-negative integer");
      }
      cfg.seed = static_cast<uint64_t>(v);
      continue;
    }
    if (StartsWith(key, "ablation.")) {
      const std::string_view flag = std::string_view(key).substr(9);
      bool on = false;
      if (value == "on") {
        on = true;
      } else if (value != "off") {
        return BadValue(lineno, key, value, "expected on|off");
      }
      Status st = cfg.ablation.Set(flag, on);
      if (!st.ok()) return BadValue(lineno, key, value, st.message());
      continue;
    }

    bool handled = false;
    for (const SizeKey& k : size_keys) {
      if (key != k.key) continue;
      int64_t v = 0;
      if (!ParseInt64(value, &v) || v < 0) {
        return BadValue(lineno, key, value, "expected a non-negative integer");
      }
      if (static_cast<size_t>(v) < k.min) {
        return BadValue(lineno, key, value,
                        "must be >= " + std::to_string(k.min));
      }
      *k.out = static_cast<size_t>(v);
      handled = true;
      break;
    }
    if (handled) continue;
    for (const RateKey& k : rate_keys) {
      if (key != k.key) continue;
      double v = 0.0;
      if (!ParseDouble(value, &v)) {
        return BadValue(lineno, key, value, "expected a number");
      }
      if (v < 0.0) return BadValue(lineno, key, value, "must be >= 0");
      if (v > k.max) {
        return BadValue(lineno, key, value, "must be <= 1 (a probability)");
      }
      *k.out = v;
      handled = true;
      break;
    }
    if (handled) continue;
    for (const MicrosKey& k : micros_keys) {
      if (key != k.key) continue;
      int64_t v = 0;
      if (!ParseInt64(value, &v)) {
        return BadValue(lineno, key, value, "expected an integer");
      }
      if (v < k.min) {
        return BadValue(lineno, key, value,
                        "must be >= " + std::to_string(k.min));
      }
      *k.out = v;
      handled = true;
      break;
    }
    if (handled) continue;

    return Status::InvalidArgument("scenario config line " +
                                   std::to_string(lineno) +
                                   ": unknown key: " + key);
  }
  return cfg;
}

StatusOr<ScenarioConfig> LoadScenarioConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open scenario config: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  StatusOr<ScenarioConfig> cfg = ParseScenarioConfig(buf.str());
  if (!cfg.ok()) {
    return Status::InvalidArgument(path + ": " + cfg.status().message());
  }
  return cfg;
}

std::string FormatScenarioConfig(const ScenarioConfig& cfg) {
  std::string out;
  auto emit = [&out](std::string_view key, const std::string& value) {
    out += key;
    out += " = ";
    out += value;
    out += "\n";
  };
  emit("name", cfg.name);
  emit("users", std::to_string(cfg.users));
  emit("pois", std::to_string(cfg.pois));
  emit("profile_size", std::to_string(cfg.profile_size));
  emit("profile_skew", SkewKindToString(cfg.profile_skew));
  emit("profile_zipf_a", FormatDoubleRoundTrip(cfg.profile_zipf_a));
  emit("lift_probability", FormatDoubleRoundTrip(cfg.lift_probability));
  emit("ops", std::to_string(cfg.ops));
  emit("user_zipf_a", FormatDoubleRoundTrip(cfg.user_zipf_a));
  emit("exact_fraction", FormatDoubleRoundTrip(cfg.exact_fraction));
  emit("states_per_query", std::to_string(cfg.states_per_query));
  emit("update_rate", FormatDoubleRoundTrip(cfg.update_rate));
  emit("top_k", std::to_string(cfg.top_k));
  emit("sensor_dropout", FormatDoubleRoundTrip(cfg.sensor_dropout));
  emit("distance",
       cfg.distance == DistanceKind::kJaccard ? "jaccard" : "hierarchy");
  emit("arrival_rate_qps", FormatDoubleRoundTrip(cfg.arrival_rate_qps));
  emit("deadline_micros", std::to_string(cfg.deadline_micros));
  emit("service_micros", std::to_string(cfg.service_micros));
  emit("degraded_service_micros",
       std::to_string(cfg.degraded_service_micros));
  emit("cache_hit_service_micros",
       std::to_string(cfg.cache_hit_service_micros));
  emit("max_in_flight", std::to_string(cfg.max_in_flight));
  emit("cache_capacity", std::to_string(cfg.cache_capacity));
  emit("coherence_replicas", std::to_string(cfg.coherence_replicas));
  emit("flash_crowd_fraction",
       FormatDoubleRoundTrip(cfg.flash_crowd_fraction));
  emit("outage_fraction", FormatDoubleRoundTrip(cfg.outage_fraction));
  emit("migration_fraction", FormatDoubleRoundTrip(cfg.migration_fraction));
  emit("threads", std::to_string(cfg.threads));
  emit("seed", std::to_string(cfg.seed));
#define CTXPREF_HARNESS_EMIT_FLAG(name) \
  emit("ablation." #name, cfg.ablation.name ? "on" : "off");
  CTXPREF_ABLATION_FLAGS(CTXPREF_HARNESS_EMIT_FLAG)
#undef CTXPREF_HARNESS_EMIT_FLAG
  return out;
}

}  // namespace ctxpref::harness
