#include "preference/preference.h"

#include <unordered_set>

namespace ctxpref {

std::string AttributeClause::ToString() const {
  return attribute + " " + db::CompareOpToString(op) + " " + value.ToString();
}

namespace {

/// Structural key of a composite descriptor, independent of the
/// environment: parts are already sorted by parameter index and value
/// sets are deduplicated in stable order, so equal construction yields
/// equal keys.
std::string DescriptorKey(const CompositeDescriptor& cod) {
  std::string key;
  for (const ParameterDescriptor& pd : cod.parts()) {
    key += std::to_string(pd.param_index());
    key += '#';
    for (ValueRef v : pd.ContextOf()) {
      key += std::to_string(v.level);
      key += '.';
      key += std::to_string(v.id);
      key += ',';
    }
    key += ';';
  }
  return key;
}

}  // namespace

ContextualPreference::ContextualPreference(CompositeDescriptor descriptor,
                                           AttributeClause clause,
                                           double score)
    : descriptor_(std::move(descriptor)),
      clause_(std::move(clause)),
      score_(score),
      descriptor_key_(DescriptorKey(descriptor_)) {}

StatusOr<ContextualPreference> ContextualPreference::Create(
    CompositeDescriptor descriptor, AttributeClause clause, double score) {
  if (!(score >= 0.0 && score <= 1.0)) {
    return Status::InvalidArgument("interest score must be in [0, 1], got " +
                                   std::to_string(score));
  }
  if (clause.attribute.empty()) {
    return Status::InvalidArgument("attribute clause has no attribute name");
  }
  return ContextualPreference(std::move(descriptor), std::move(clause), score);
}

std::string ContextualPreference::ToString(
    const ContextEnvironment& env) const {
  return "(" + descriptor_.ToString(env) + "), (" + clause_.ToString() +
         "), " + std::to_string(score_);
}

bool ConflictsWith(const ContextEnvironment& env,
                   const ContextualPreference& a,
                   const ContextualPreference& b) {
  // Condition 2 first (cheap): same attribute clause target.
  if (a.clause().attribute != b.clause().attribute ||
      a.clause().op != b.clause().op ||
      a.clause().value != b.clause().value) {
    return false;
  }
  // Condition 3: scores differ.
  if (a.score() == b.score()) return false;
  // Condition 1: Context(cod_a) ∩ Context(cod_b) ≠ ∅.
  std::vector<ContextState> sa = a.States(env);
  std::unordered_set<ContextState, ContextStateHash> set_a(sa.begin(),
                                                           sa.end());
  for (const ContextState& s : b.States(env)) {
    if (set_a.contains(s)) return true;
  }
  return false;
}

}  // namespace ctxpref
