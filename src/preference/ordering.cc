#include "preference/ordering.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace ctxpref {

Ordering Ordering::Identity(size_t n) {
  std::vector<size_t> p(n);
  std::iota(p.begin(), p.end(), 0);
  return Ordering(std::move(p));
}

StatusOr<Ordering> Ordering::FromPermutation(
    std::vector<size_t> level_to_param) {
  std::vector<bool> seen(level_to_param.size(), false);
  for (size_t p : level_to_param) {
    if (p >= level_to_param.size() || seen[p]) {
      return Status::InvalidArgument(
          "ordering is not a permutation of 0.." +
          std::to_string(level_to_param.size() - 1));
    }
    seen[p] = true;
  }
  return Ordering(std::move(level_to_param));
}

std::string Ordering::ToString(const ContextEnvironment& env) const {
  std::string out = "(";
  for (size_t i = 0; i < level_to_param_.size(); ++i) {
    if (i > 0) out += ", ";
    out += env.parameter(level_to_param_[i]).name();
  }
  out += ")";
  return out;
}

uint64_t MaxCellEstimate(const std::vector<uint64_t>& sizes) {
  // m1·(1 + m2·(1 + ... (1 + mn))): fold right-to-left.
  uint64_t acc = 0;
  for (size_t i = sizes.size(); i > 0; --i) {
    acc = sizes[i - 1] * (1 + acc);
  }
  return acc;
}

std::vector<uint64_t> ActiveDomainSizes(const Profile& profile) {
  const size_t n = profile.env().size();
  std::vector<std::unordered_set<uint64_t>> seen(n);
  for (const Profile::FlatEntry& e : profile.Flatten()) {
    for (size_t i = 0; i < n; ++i) {
      ValueRef v = e.state.value(i);
      seen[i].insert((static_cast<uint64_t>(v.level) << 32) | v.id);
    }
  }
  std::vector<uint64_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = seen[i].size();
  return out;
}

Ordering GreedyOrdering(const Profile& profile) {
  std::vector<uint64_t> active = ActiveDomainSizes(profile);
  std::vector<size_t> perm(active.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    return active[a] < active[b];
  });
  return *Ordering::FromPermutation(std::move(perm));
}

StatusOr<std::vector<Ordering>> AllOrderings(size_t n) {
  if (n > 9) {
    return Status::InvalidArgument(
        "refusing to enumerate " + std::to_string(n) +
        "! orderings; use GreedyOrdering for wide environments");
  }
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<Ordering> out;
  do {
    out.push_back(*Ordering::FromPermutation(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

StatusOr<Ordering> OptimalOrderingByEstimate(const Profile& profile) {
  std::vector<uint64_t> active = ActiveDomainSizes(profile);
  StatusOr<std::vector<Ordering>> all = AllOrderings(active.size());
  if (!all.ok()) return all.status();
  const Ordering* best = nullptr;
  uint64_t best_cost = 0;
  for (const Ordering& o : *all) {
    std::vector<uint64_t> sizes(active.size());
    for (size_t level = 0; level < o.size(); ++level) {
      sizes[level] = active[o.param_at_level(level)];
    }
    uint64_t cost = MaxCellEstimate(sizes);
    if (best == nullptr || cost < best_cost) {
      best = &o;
      best_cost = cost;
    }
  }
  return *best;
}

}  // namespace ctxpref
