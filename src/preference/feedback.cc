#include "preference/feedback.h"

#include <cmath>

#include "db/predicate.h"

namespace ctxpref {

namespace {

double Quantize(double v, double grid) {
  if (grid <= 0.0) return v;
  return std::round(v / grid) * grid;
}

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// True iff `pref`'s clause matches the tuple.
StatusOr<bool> ClauseMatches(const ContextualPreference& pref,
                             const db::Relation& relation,
                             const db::Tuple& tuple) {
  StatusOr<db::Predicate> pred = db::Predicate::Create(
      relation.schema(), pref.clause().attribute, pref.clause().op,
      pref.clause().value);
  if (!pred.ok()) {
    if (pred.status().IsNotFound()) return false;  // Foreign attribute.
    return pred.status();
  }
  return pred->Eval(tuple);
}

}  // namespace

StatusOr<FeedbackOutcome> ApplyFeedback(Profile& profile,
                                        const db::Relation& relation,
                                        const FeedbackEvent& event,
                                        const FeedbackOptions& options) {
  if (event.row >= relation.size()) {
    return Status::InvalidArgument("feedback row out of range");
  }
  if (event.signal == 0) {
    return Status::InvalidArgument("feedback signal must be +1 or -1");
  }
  CTXPREF_RETURN_IF_ERROR(event.state.Validate(profile.env()));
  const db::Tuple& tuple = relation.row(event.row);

  FeedbackOutcome outcome;
  // Collect matching preference indices first (UpdateScore reorders).
  // Identify them by (clause, score) value instead of index.
  struct Target {
    AttributeClause clause;
    double score;
  };
  std::vector<Target> targets;
  for (size_t i = 0; i < profile.size(); ++i) {
    const ContextualPreference& pref = profile.preference(i);
    StatusOr<bool> matches = ClauseMatches(pref, relation, tuple);
    if (!matches.ok()) return matches.status();
    if (!*matches) continue;
    // Context applicability: some state of the descriptor covers the
    // event's state.
    bool applies = false;
    for (const ContextState& s : pref.States(profile.env())) {
      if (s.Covers(profile.env(), event.state)) {
        applies = true;
        break;
      }
    }
    if (applies) targets.push_back(Target{pref.clause(), pref.score()});
  }

  for (const Target& target : targets) {
    // Re-locate the preference (indices shift as we rescore).
    for (size_t i = 0; i < profile.size(); ++i) {
      const ContextualPreference& pref = profile.preference(i);
      if (!(pref.clause() == target.clause) || pref.score() != target.score) {
        continue;
      }
      const double goal = event.signal > 0 ? 1.0 : 0.0;
      const double moved =
          target.score + options.learning_rate * (goal - target.score);
      const double new_score = Clamp01(Quantize(moved, options.grid));
      if (new_score == target.score) break;
      Status st = profile.UpdateScore(i, new_score);
      if (st.IsConflict()) break;  // Another pref pins this cell; skip.
      if (!st.ok()) return st;
      ++outcome.rescored;
      break;
    }
  }

  if (targets.empty() && event.signal > 0) {
    // Materialize a fresh preference for this (context, tuple) cell.
    StatusOr<size_t> col =
        relation.schema().IndexOf(options.bootstrap_attribute);
    if (!col.ok()) return col.status();
    StatusOr<CompositeDescriptor> cod =
        CompositeDescriptor::ForState(profile.env(), event.state);
    if (!cod.ok()) return cod.status();
    StatusOr<ContextualPreference> pref = ContextualPreference::Create(
        std::move(*cod),
        AttributeClause{options.bootstrap_attribute, db::CompareOp::kEq,
                        tuple[*col]},
        Clamp01(Quantize(options.bootstrap_score, options.grid)));
    if (!pref.ok()) return pref.status();
    Status st = profile.InsertWithPolicy(std::move(*pref),
                                         ConflictPolicy::kKeepExisting);
    if (!st.ok()) return st;
    outcome.created = true;
  }
  return outcome;
}

StatusOr<FeedbackOutcome> ApplyFeedbackBatch(
    Profile& profile, const db::Relation& relation,
    const std::vector<FeedbackEvent>& events,
    const FeedbackOptions& options) {
  FeedbackOutcome total;
  for (const FeedbackEvent& event : events) {
    StatusOr<FeedbackOutcome> one =
        ApplyFeedback(profile, relation, event, options);
    if (!one.ok()) return one.status();
    total.rescored += one->rescored;
    total.created = total.created || one->created;
  }
  return total;
}

}  // namespace ctxpref
