#include "preference/replicated_query_cache.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace ctxpref {

namespace {

/// Global coherence metrics (docs/coherence.md "Metric catalog").
struct CoherenceMetrics {
  Counter& appended;
  Counter& consumed;
  Counter& stale_refuses;
  Gauge& log_depth;
  Gauge& invalidation_lag;

  static CoherenceMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static CoherenceMetrics* m = new CoherenceMetrics{
        reg.GetCounter("ctxpref_coherence_records_appended_total",
                       "Invalidation records appended to coherence logs"),
        reg.GetCounter("ctxpref_coherence_records_consumed_total",
                       "Invalidation records applied by replica consume "
                       "steps (each record counts once per replica)"),
        reg.GetCounter("ctxpref_coherence_stale_refuses_total",
                       "Reads refused a cache hit because the replica's "
                       "clock trailed the pinned serving version"),
        reg.GetGauge("ctxpref_coherence_log_depth",
                     "Records retained in the coherence log (appended but "
                     "not yet consumed by the slowest replica)"),
        reg.GetGauge("ctxpref_coherence_invalidation_lag_versions",
                     "Serving versions the slowest replica's clock trails "
                     "the append watermark by (sampled at consume)"),
    };
    return *m;
  }
};

size_t HashThisThread() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

CoherenceLog::CoherenceLog(size_t num_consumers, size_t num_buffers)
    : num_consumers_(num_consumers) {
  if (num_buffers == 0) num_buffers = 1;
  buffers_.reserve(num_buffers);
  for (size_t i = 0; i < num_buffers; ++i) {
    auto buffer = std::make_unique<Buffer>();
    {
      util::MutexLock lock(buffer->mu);
      buffer->cursors.assign(num_consumers_, 0);
    }
    buffers_.push_back(std::move(buffer));
  }
}

CoherenceLog::Buffer& CoherenceLog::BufferForThisThread() {
  return *buffers_[HashThisThread() % buffers_.size()];
}

void CoherenceLog::Append(const std::string& user, uint64_t version,
                          bool drop_all) {
  CoherenceMetrics& metrics = CoherenceMetrics::Get();
  Buffer& buffer = BufferForThisThread();
  {
    util::MutexLock lock(buffer.mu);
    buffer.records.push_back(Record{user, version, drop_all});
  }
  // Watermark advance is a release fetch-max: a consumer that observes
  // version W with acquire sees every record this writer appended up
  // to (and including) the one that published W.
  uint64_t seen = max_appended_.load(std::memory_order_relaxed);
  while (seen < version && !max_appended_.compare_exchange_weak(
                               seen, version, std::memory_order_release,
                               std::memory_order_relaxed)) {
  }
  depth_.fetch_add(1, std::memory_order_relaxed);
  metrics.appended.Increment();
  metrics.log_depth.Set(static_cast<int64_t>(depth()));
  if (listener_) listener_();
}

size_t CoherenceLog::Consume(size_t id,
                             const std::function<void(const Record&)>& apply) {
  CoherenceMetrics& metrics = CoherenceMetrics::Get();
  size_t applied = 0;
  size_t truncated = 0;
  std::vector<Record> pending;
  for (std::unique_ptr<Buffer>& owned : buffers_) {
    Buffer& buffer = *owned;
    pending.clear();
    {
      util::MutexLock lock(buffer.mu);
      const uint64_t end = buffer.base + buffer.records.size();
      uint64_t& cursor = buffer.cursors[id];
      for (uint64_t i = std::max(cursor, buffer.base); i < end; ++i) {
        pending.push_back(buffer.records[i - buffer.base]);
      }
      cursor = end;
      // Truncate the prefix every consumer has passed. Logical indices
      // keep the other consumers' cursors valid across the erase.
      const uint64_t min_cursor =
          *std::min_element(buffer.cursors.begin(), buffer.cursors.end());
      if (min_cursor > buffer.base) {
        const size_t drop = min_cursor - buffer.base;
        buffer.records.erase(buffer.records.begin(),
                             buffer.records.begin() + drop);
        buffer.base = min_cursor;
        truncated += drop;
      }
    }
    // Apply outside the log lock: the callback takes cache shard locks
    // (kCacheShard > kCoherenceLog, but no reason to hold the buffer
    // against writers while trees are pruned).
    for (const Record& record : pending) {
      apply(record);
    }
    applied += pending.size();
  }
  if (truncated > 0) {
    depth_.fetch_sub(truncated, std::memory_order_relaxed);
  }
  if (applied > 0) {
    metrics.consumed.Increment(applied);
  }
  metrics.log_depth.Set(static_cast<int64_t>(depth()));
  return applied;
}

ReplicatedQueryCache::Replica::Replica(EnvironmentPtr env, Ordering order,
                                       size_t capacity, size_t num_shards)
    : tree(std::move(env), order, capacity, num_shards) {
  // Replica trees keep skewed entries on touch: the consume step (not
  // the lookup path) is what reclaims them, bounded by the staleness
  // window, and the degradation ladder's stale rung reads them through
  // `LookupAtOrBefore`.
  tree.SetRetainStale(true);
}

ReplicatedQueryCache::ReplicatedQueryCache(EnvironmentPtr env, Ordering order)
    : ReplicatedQueryCache(std::move(env), order, Options()) {}

ReplicatedQueryCache::ReplicatedQueryCache(EnvironmentPtr env, Ordering order,
                                           Options options)
    : options_(options),
      log_(std::max<size_t>(options.num_replicas, 1),
           options.num_writer_buffers) {
  const size_t n = std::max<size_t>(options.num_replicas, 1);
  replicas_.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    replicas_.push_back(std::make_unique<Replica>(
        env, order, options.capacity_per_replica, options.num_shards));
  }
  if (options_.mode == ConsumeMode::kBackground) {
    log_.SetAppendListener([this] { KickBackgroundConsume(); });
  }
}

size_t ReplicatedQueryCache::ReplicaForThisThread() const {
  return HashThisThread() % replicas_.size();
}

size_t ReplicatedQueryCache::Consume(size_t r) {
  Replica& replica = *replicas_[r];
  util::MutexLock lock(replica.consume_mu);
  // Order matters: read the watermark *before* draining. Every record
  // at or below `target` whose append completed before this read is
  // then guaranteed drained below, so advancing the clock to `target`
  // afterwards never claims coverage of an unapplied record. (A record
  // whose append races this consume may also be drained — applying it
  // early is harmless, and the clock does not advance past `target`.)
  const uint64_t target = log_.max_appended();
  const uint64_t window = options_.staleness_window;
  const size_t applied =
      log_.Consume(r, [&replica, window](const CoherenceLog::Record& rec) {
        if (rec.drop_all) {
          replica.tree.InvalidateUser(rec.user);
        } else {
          const uint64_t floor =
              rec.version > window ? rec.version - window : 0;
          replica.tree.InvalidateUserBelow(rec.user, floor);
        }
      });
  uint64_t clock = replica.clock.load(std::memory_order_relaxed);
  if (clock < target) {
    replica.clock.store(target, std::memory_order_release);
  }
  CoherenceMetrics::Get().invalidation_lag.Set(
      static_cast<int64_t>(InvalidationLagVersions()));
  return applied;
}

size_t ReplicatedQueryCache::ConsumeAll() {
  size_t applied = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    applied += Consume(r);
  }
  return applied;
}

CacheStats ReplicatedQueryCache::Stats() const {
  CacheStats total;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    const CacheStats s = replica->tree.Stats();
    total.lookups += s.lookups;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.invalidations += s.invalidations;
    total.size += s.size;
  }
  return total;
}

uint64_t ReplicatedQueryCache::InvalidationLagVersions() const {
  const uint64_t watermark = log_.max_appended();
  uint64_t min_clock = watermark;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    min_clock =
        std::min(min_clock, replica->clock.load(std::memory_order_acquire));
  }
  return watermark - min_clock;
}

void ReplicatedQueryCache::RecordStaleRefuse() {
  CoherenceMetrics::Get().stale_refuses.Increment();
}

void ReplicatedQueryCache::SetBackgroundPool(ThreadPool* pool) {
  pool_.store(pool, std::memory_order_release);
}

void ReplicatedQueryCache::KickBackgroundConsume() {
  ThreadPool* pool = pool_.load(std::memory_order_acquire);
  if (pool == nullptr) return;
  const uint64_t watermark = log_.max_appended();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    Replica& replica = *replicas_[r];
    if (replica.clock.load(std::memory_order_acquire) >= watermark) continue;
    // One in-flight task per replica: the latch is released before the
    // consume runs, so an append that lands mid-consume re-kicks.
    if (replica.consume_queued.exchange(true, std::memory_order_acq_rel)) {
      continue;
    }
    pool->Submit([this, r] {
      replicas_[r]->consume_queued.store(false, std::memory_order_release);
      Consume(r);
    });
  }
}

}  // namespace ctxpref
