#ifndef CTXPREF_PREFERENCE_ORDERING_H_
#define CTXPREF_PREFERENCE_ORDERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "context/environment.h"
#include "preference/profile.h"
#include "util/status.h"

namespace ctxpref {

/// Assignment of context parameters to profile-tree levels (paper
/// §3.3): tree level i is keyed by parameter `param_at_level(i)`.
/// The paper's experiments (Fig. 5/6) sweep these orderings; its size
/// analysis shows the cell count is minimized when parameters with
/// larger (active) domains sit *lower* in the tree.
class Ordering {
 public:
  Ordering() = default;

  /// The identity ordering: level i <- parameter i.
  static Ordering Identity(size_t n);

  /// Builds from an explicit permutation `level_to_param`; errors with
  /// InvalidArgument if it is not a permutation of 0..n-1.
  static StatusOr<Ordering> FromPermutation(std::vector<size_t> level_to_param);

  size_t size() const { return level_to_param_.size(); }
  size_t param_at_level(size_t level) const { return level_to_param_[level]; }
  const std::vector<size_t>& level_to_param() const { return level_to_param_; }

  /// "(accompanying_people, temperature, location)".
  std::string ToString(const ContextEnvironment& env) const;

  friend bool operator==(const Ordering&, const Ordering&) = default;

 private:
  explicit Ordering(std::vector<size_t> level_to_param)
      : level_to_param_(std::move(level_to_param)) {}

  std::vector<size_t> level_to_param_;
};

/// The paper's worst-case cell count for domain cardinalities
/// m1..mn in tree-level order: m1·(1 + m2·(1 + ... (1 + mn))).
uint64_t MaxCellEstimate(const std::vector<uint64_t>& sizes_in_level_order);

/// Distinct extended-domain values each parameter takes across the
/// profile's expanded states — the "active domain" sizes that actually
/// drive tree size (paper Fig. 6 right: a skewed parameter may have a
/// large domain but a small active domain).
std::vector<uint64_t> ActiveDomainSizes(const Profile& profile);

/// Ordering minimizing `MaxCellEstimate` over active domain sizes:
/// parameters sorted by ascending active cardinality (the paper's
/// guideline "place parameters with domains with higher cardinalities
/// lower in the context tree"). Ties broken by parameter index.
Ordering GreedyOrdering(const Profile& profile);

/// Exhaustively evaluates all n! orderings against `MaxCellEstimate`
/// over active domains and returns the minimizer. Errors with
/// InvalidArgument for n > 9 (guard against factorial blowup); use
/// `GreedyOrdering` there.
StatusOr<Ordering> OptimalOrderingByEstimate(const Profile& profile);

/// All n! orderings in lexicographic permutation order (n ≤ 9).
StatusOr<std::vector<Ordering>> AllOrderings(size_t n);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_ORDERING_H_
