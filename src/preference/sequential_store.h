#ifndef CTXPREF_PREFERENCE_SEQUENTIAL_STORE_H_
#define CTXPREF_PREFERENCE_SEQUENTIAL_STORE_H_

#include <unordered_map>
#include <vector>

#include "context/state.h"
#include "preference/profile.h"
#include "preference/resolution.h"
#include "util/counters.h"

namespace ctxpref {

/// The paper's baseline for both storage (Fig. 5/6 "serial") and
/// resolution cost (Fig. 7 "serial"): preferences kept as a flat list
/// of (context state, clauses, scores) groups scanned sequentially.
///
/// Cost accounting mirrors §5.2: each stored state occupies one cell
/// per context parameter value; scanning compares a query against a
/// stored state component by component, ticking the counter per
/// compared cell, with early exit on the first mismatch. Exact-match
/// search stops at the first matching state; cover search must scan
/// the entire store.
class SequentialStore {
 public:
  /// One stored state with every clause applicable in it (grouped so a
  /// state shared by several preferences is stored once, matching the
  /// tree's leaf sharing).
  struct Group {
    ContextState state;
    std::vector<ProfileTree::LeafEntry> entries;
  };

  explicit SequentialStore(EnvironmentPtr env) : env_(std::move(env)) {}

  /// Flattens `profile` into state groups (first-appearance order).
  static SequentialStore Build(const Profile& profile);

  const ContextEnvironment& env() const { return *env_; }
  size_t num_groups() const { return groups_.size(); }
  const Group& group(size_t i) const { return groups_[i]; }

  /// Adds one (state, clause, score); groups with an existing equal
  /// state. No conflict checking — the source `Profile` already did it.
  void Add(const ContextState& state, const AttributeClause& clause,
           double score);

  /// ---- Size accounting ----
  ///
  /// Serial storage materializes one record per stored preference
  /// entry — its full context state (one cell per parameter) plus the
  /// clause and score — with no prefix sharing; this is the paper's
  /// "storing preferences sequentially" baseline of Fig. 5/6. (The
  /// in-memory grouping by state above is a scan optimization and does
  /// not change what serial storage must hold.)

  /// One cell per state component per stored record.
  size_t CellCount() const { return leaf_entry_count_ * env_->size(); }
  size_t LeafEntryCount() const { return leaf_entry_count_; }
  size_t ByteSize() const {
    return CellCount() * ProfileTree::kSerialValueBytes +
           leaf_entry_count_ * ProfileTree::kLeafEntryBytes;
  }

  /// ---- Resolution (baseline semantics of §4.4 / Fig. 7) ----

  /// Scans until the first group whose state equals `query`; returns it
  /// as a zero-distance candidate, or empty if absent.
  std::vector<CandidatePath> SearchExact(const ContextState& query,
                                         AccessCounter* counter = nullptr) const;

  /// Scans the whole store collecting every group whose state covers
  /// `query`, with distances per `options.distance`.
  std::vector<CandidatePath> SearchCovering(
      const ContextState& query, const ResolutionOptions& options = {},
      AccessCounter* counter = nullptr) const;

  /// SearchCovering (or SearchExact when `options.exact_only`) followed
  /// by minimum-distance selection — same contract as
  /// `TreeResolver::ResolveBest`.
  std::vector<CandidatePath> ResolveBest(const ContextState& query,
                                         const ResolutionOptions& options = {},
                                         AccessCounter* counter = nullptr) const;

 private:
  EnvironmentPtr env_;
  std::vector<Group> groups_;
  std::unordered_map<ContextState, size_t, ContextStateHash> group_index_;
  size_t leaf_entry_count_ = 0;
};

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_SEQUENTIAL_STORE_H_
