#include "preference/profile.h"

#include <algorithm>

#include "context/parser.h"
#include "util/string_util.h"

namespace ctxpref {

Status Profile::CheckConflict(const ContextualPreference& pref,
                              const std::vector<ContextState>& states) const {
  for (const ContextualPreference& existing : prefs_) {
    if (existing == pref) {
      return Status::AlreadyExists("preference already in profile: " +
                                   pref.ToString(*env_));
    }
  }
  for (const ContextState& s : states) {
    auto it = state_index_.find(s);
    if (it == state_index_.end()) continue;
    for (const StateEntry& e : it->second) {
      if (e.clause.attribute == pref.clause().attribute &&
          e.clause.op == pref.clause().op &&
          e.clause.value == pref.clause().value &&
          e.score != pref.score()) {
        return Status::Conflict(
            "preference conflicts (Def. 6) at state " + s.ToString(*env_) +
            ": clause '" + pref.clause().ToString() + "' already scored " +
            FormatDouble(e.score) + ", new score " +
            FormatDouble(pref.score()));
      }
    }
  }
  return Status::OK();
}

Status Profile::Insert(ContextualPreference pref) {
  std::vector<ContextState> states = pref.States(*env_);
  CTXPREF_RETURN_IF_ERROR(CheckConflict(pref, states));
  const size_t idx = prefs_.size();
  for (const ContextState& s : states) {
    state_index_[s].push_back(StateEntry{pref.clause(), pref.score(), idx});
  }
  prefs_.push_back(std::move(pref));
  ++version_;
  return Status::OK();
}

Status Profile::InsertWithPolicy(ContextualPreference pref,
                                 ConflictPolicy policy) {
  Status st = Insert(pref);
  if (st.ok()) return st;
  switch (policy) {
    case ConflictPolicy::kReject:
      return st;
    case ConflictPolicy::kKeepExisting:
      if (st.IsConflict() || st.IsAlreadyExists()) return Status::OK();
      return st;
    case ConflictPolicy::kOverwrite:
      break;
  }
  if (st.IsAlreadyExists()) return Status::OK();
  if (!st.IsConflict()) return st;

  // kOverwrite: rescore every conflicting stored preference, then
  // retry. Rescoring all of them to the same score cannot introduce a
  // new Def.-6 conflict among themselves. UpdateScore reorders the
  // preference list (erase + reinsert), so restart the scan after
  // each hit.
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t i = 0; i < prefs_.size(); ++i) {
      if (ConflictsWith(*env_, prefs_[i], pref)) {
        CTXPREF_RETURN_IF_ERROR(UpdateScore(i, pref.score()));
        changed = true;
        break;
      }
    }
  }
  Status retry = Insert(std::move(pref));
  if (retry.IsAlreadyExists()) return Status::OK();
  return retry;
}

Status Profile::Remove(size_t index) {
  if (index >= prefs_.size()) {
    return Status::OutOfRange("preference index " + std::to_string(index) +
                              " out of range (profile has " +
                              std::to_string(prefs_.size()) + ")");
  }
  prefs_.erase(prefs_.begin() + static_cast<ptrdiff_t>(index));
  RebuildIndex();
  ++version_;
  return Status::OK();
}

Status Profile::UpdateScore(size_t index, double new_score) {
  if (index >= prefs_.size()) {
    return Status::OutOfRange("preference index " + std::to_string(index) +
                              " out of range");
  }
  StatusOr<ContextualPreference> rescored = ContextualPreference::Create(
      prefs_[index].descriptor(), prefs_[index].clause(), new_score);
  if (!rescored.ok()) return rescored.status();

  ContextualPreference old = prefs_[index];
  prefs_.erase(prefs_.begin() + static_cast<ptrdiff_t>(index));
  RebuildIndex();

  Status st = Insert(std::move(*rescored));
  if (!st.ok() && !st.IsAlreadyExists()) {
    // Roll back: reinstate the original preference.
    prefs_.insert(prefs_.begin() + static_cast<ptrdiff_t>(index),
                  std::move(old));
    RebuildIndex();
    return st;
  }
  ++version_;
  return Status::OK();
}

void Profile::RebuildIndex() {
  state_index_.clear();
  for (size_t i = 0; i < prefs_.size(); ++i) {
    for (const ContextState& s : prefs_[i].States(*env_)) {
      state_index_[s].push_back(
          StateEntry{prefs_[i].clause(), prefs_[i].score(), i});
    }
  }
}

std::vector<Profile::FlatEntry> Profile::Flatten() const {
  std::vector<FlatEntry> out;
  for (size_t i = 0; i < prefs_.size(); ++i) {
    for (ContextState& s : prefs_[i].States(*env_)) {
      out.push_back(FlatEntry{std::move(s), &prefs_[i].clause(),
                              prefs_[i].score(), i});
    }
  }
  return out;
}

std::string Profile::ToText() const {
  std::string out = "# ctxpref profile v1\n";
  for (const ContextualPreference& p : prefs_) {
    std::string cod = p.descriptor().ToString(*env_);
    if (cod == "<empty>") cod = "*";
    out += "pref: " + cod + " => " + p.clause().attribute + " " +
           db::CompareOpToString(p.clause().op) + " " +
           p.clause().value.ToString() + " : " +
           FormatDoubleRoundTrip(p.score()) + "\n";
  }
  return out;
}

namespace {

/// Types a clause value: against the schema column when available,
/// otherwise by inference.
StatusOr<db::Value> TypeClauseValue(std::string_view attr,
                                    std::string_view text,
                                    const db::Schema* schema) {
  std::string s(Trim(text));
  if (schema != nullptr) {
    StatusOr<size_t> idx = schema->IndexOf(attr);
    if (!idx.ok()) return idx.status();
    switch (schema->column(*idx).type) {
      case db::ColumnType::kInt64: {
        int64_t v;
        if (!ParseInt64(s, &v)) {
          return Status::Corruption("expected int64 for attribute '" +
                                    std::string(attr) + "', got '" + s + "'");
        }
        return db::Value(v);
      }
      case db::ColumnType::kDouble: {
        double v;
        if (!ParseDouble(s, &v)) {
          return Status::Corruption("expected double for attribute '" +
                                    std::string(attr) + "', got '" + s + "'");
        }
        return db::Value(v);
      }
      case db::ColumnType::kBool:
        if (s == "true") return db::Value(true);
        if (s == "false") return db::Value(false);
        return Status::Corruption("expected bool for attribute '" +
                                  std::string(attr) + "', got '" + s + "'");
      case db::ColumnType::kString:
        return db::Value(std::move(s));
    }
  }
  int64_t i;
  if (ParseInt64(s, &i)) return db::Value(i);
  double d;
  if (ParseDouble(s, &d)) return db::Value(d);
  if (s == "true") return db::Value(true);
  if (s == "false") return db::Value(false);
  return db::Value(std::move(s));
}

}  // namespace

StatusOr<Profile> Profile::FromText(EnvironmentPtr env, std::string_view text,
                                    const db::Schema* schema) {
  Profile profile(env);
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;

    auto fail = [&](const std::string& why) {
      return Status::Corruption("profile line " + std::to_string(line_no) +
                                ": " + why);
    };

    if (!StartsWith(line, "pref:")) return fail("expected 'pref:' prefix");
    line = Trim(line.substr(5));

    size_t arrow = line.find("=>");
    if (arrow == std::string_view::npos) return fail("missing '=>'");
    std::string_view cod_text = Trim(line.substr(0, arrow));
    std::string_view rhs = Trim(line.substr(arrow + 2));

    size_t colon = rhs.rfind(':');
    if (colon == std::string_view::npos) return fail("missing score ':'");
    std::string_view clause_text = Trim(rhs.substr(0, colon));
    double score;
    if (!ParseDouble(rhs.substr(colon + 1), &score)) {
      return fail("malformed score");
    }

    // Clause: "<attr> <op> <value...>"; the value may contain spaces.
    size_t sp1 = clause_text.find(' ');
    if (sp1 == std::string_view::npos) return fail("malformed clause");
    std::string_view attr = clause_text.substr(0, sp1);
    std::string_view rest = Trim(clause_text.substr(sp1 + 1));
    size_t sp2 = rest.find(' ');
    if (sp2 == std::string_view::npos) return fail("clause missing value");
    StatusOr<db::CompareOp> op = db::ParseCompareOp(rest.substr(0, sp2));
    if (!op.ok()) return fail(op.status().message());
    std::string_view value_text = Trim(rest.substr(sp2 + 1));

    StatusOr<db::Value> value = TypeClauseValue(attr, value_text, schema);
    if (!value.ok()) return fail(value.status().message());

    StatusOr<CompositeDescriptor> cod =
        ParseCompositeDescriptor(*env, cod_text);
    if (!cod.ok()) return fail(cod.status().message());

    StatusOr<ContextualPreference> pref = ContextualPreference::Create(
        std::move(*cod),
        AttributeClause{std::string(attr), *op, std::move(*value)}, score);
    if (!pref.ok()) return fail(pref.status().message());

    Status st = profile.Insert(std::move(*pref));
    if (!st.ok()) return st;
  }
  return profile;
}

}  // namespace ctxpref
