#ifndef CTXPREF_PREFERENCE_PROFILE_STATS_H_
#define CTXPREF_PREFERENCE_PROFILE_STATS_H_

#include <string>
#include <vector>

#include "preference/profile.h"
#include "util/random.h"

namespace ctxpref {

/// Introspection over a profile: the quantities the paper's size and
/// ordering analyses (§3.3, §5.2) reason about, computed exactly, plus
/// a sampled estimate of context coverage. Used by tooling (the CLI's
/// `stats`), tests, and the benches' sanity output.
struct ProfileStats {
  size_t num_preferences = 0;
  /// Distinct context states across all descriptors.
  size_t distinct_states = 0;
  /// Expanded (state, clause, score) entries.
  size_t flat_entries = 0;

  /// Per parameter, in environment order:
  /// distinct extended-domain values appearing in stored states.
  std::vector<uint64_t> active_domain;
  /// Per parameter: histogram over hierarchy levels (index = level) of
  /// the values appearing in stored states.
  std::vector<std::vector<size_t>> level_histogram;

  /// Score distribution.
  double min_score = 0.0;
  double max_score = 0.0;
  double mean_score = 0.0;

  /// Fraction of sampled detailed world states covered by at least one
  /// stored state (Def. 10), estimated over `coverage_samples` states.
  double coverage_estimate = 0.0;
  size_t coverage_samples = 0;

  /// Multi-line human-readable report.
  std::string ToString(const ContextEnvironment& env) const;
};

/// Computes stats for `profile`. `coverage_samples` detailed states are
/// drawn uniformly (seeded) for the coverage estimate; 0 skips it.
ProfileStats ComputeProfileStats(const Profile& profile,
                                 size_t coverage_samples = 2000,
                                 uint64_t seed = 1);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_PROFILE_STATS_H_
