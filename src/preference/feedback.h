#ifndef CTXPREF_PREFERENCE_FEEDBACK_H_
#define CTXPREF_PREFERENCE_FEEDBACK_H_

#include <string>
#include <vector>

#include "db/relation.h"
#include "preference/profile.h"
#include "util/status.h"

namespace ctxpref {

/// Implicit profile adaptation from usage feedback.
///
/// The paper's user study (§5.1) has users *manually* editing their
/// profiles toward their taste; this module automates the same loop
/// from interaction signals: "in context s the user accepted/rejected
/// tuple t" nudges the scores of the preferences that would have
/// ranked t in s, or creates a preference when none exists.
///
/// Updates stay within the paper's model — the result is still a plain
/// conflict-free `Profile` of (descriptor, clause, score) triples; the
/// feedback loop only chooses which scores to move, by how much, and
/// which (context, clause) cells to materialize.

/// One observed interaction.
struct FeedbackEvent {
  ContextState state;  ///< Context in which the user acted.
  db::RowId row = 0;   ///< The tuple acted on.
  /// +1 accepted / visited / liked; -1 rejected / dismissed.
  int signal = 1;
};

struct FeedbackOptions {
  /// Fraction of the gap toward 1.0 (positive) / 0.0 (negative) an
  /// event moves a matching preference's score.
  double learning_rate = 0.2;
  /// Score given to a *newly created* preference on positive feedback
  /// with no matching preference (negative feedback never creates).
  double bootstrap_score = 0.6;
  /// Which tuple attribute new preferences constrain (clause
  /// `attribute = tuple[attribute]`).
  std::string bootstrap_attribute = "type";
  /// Scores are quantized to this grid (0 = no quantization), keeping
  /// feedback-edited profiles on the same grid manual editing uses.
  double grid = 0.05;
};

/// Result of applying one event.
struct FeedbackOutcome {
  size_t rescored = 0;  ///< Preferences whose score moved.
  bool created = false; ///< A new preference was materialized.
};

/// Applies one feedback event to `profile`:
///  * every preference whose descriptor covers `event.state` and whose
///    clause matches the tuple is rescored toward 1 (positive) or 0
///    (negative) by `learning_rate`, via `Profile::UpdateScore`;
///  * on positive feedback with no matching preference, a new one is
///    created at `bootstrap_score` with descriptor
///    `CompositeDescriptor::ForState(state)` and clause
///    `bootstrap_attribute = tuple[bootstrap_attribute]`.
/// Rescores that would collide with Def. 6 are skipped (counted out).
StatusOr<FeedbackOutcome> ApplyFeedback(Profile& profile,
                                        const db::Relation& relation,
                                        const FeedbackEvent& event,
                                        const FeedbackOptions& options = {});

/// Applies a batch in order; returns the summed outcome.
StatusOr<FeedbackOutcome> ApplyFeedbackBatch(
    Profile& profile, const db::Relation& relation,
    const std::vector<FeedbackEvent>& events,
    const FeedbackOptions& options = {});

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_FEEDBACK_H_
