#ifndef CTXPREF_PREFERENCE_CONTEXTUAL_QUERY_H_
#define CTXPREF_PREFERENCE_CONTEXTUAL_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "context/descriptor.h"
#include "db/index.h"
#include "db/ranker.h"
#include "db/relation.h"
#include "preference/resolution.h"
#include "preference/sequential_store.h"
#include "util/counters.h"
#include "util/deadline.h"
#include "util/status.h"

namespace ctxpref {

class ThreadPool;  // util/thread_pool.h
class Counter;           // util/metrics.h
class LatencyHistogram;  // util/histogram.h

/// Query-path metrics shared by `RankCS` and `CachedRankCS`, living in
/// `MetricsRegistry::Global()` (see docs/observability.md for the
/// catalog). Counters tick unconditionally; the latency histogram
/// records only while `MetricsRegistry::TimingEnabled()`.
struct RankMetrics {
  Counter& queries;         ///< ctxpref_rank_cs_queries_total
  Counter& cached_queries;  ///< ctxpref_rank_cs_cached_queries_total
  Counter& states;          ///< ctxpref_rank_cs_states_total
  Counter& tuples_scored;   ///< ctxpref_rank_cs_tuples_scored_total
  Counter& deadline_exceeded;  ///< ctxpref_rank_cs_deadline_exceeded_total
  Counter& states_abandoned;   ///< ctxpref_rank_cs_states_abandoned_total
  LatencyHistogram& latency;  ///< ctxpref_rank_cs_latency_ns

  static RankMetrics& Get();
};

/// A contextual query CQ (paper Def. 9): a query over the database
/// relation enhanced with an extended context descriptor. The
/// descriptor may come from the user's *current* context (one detailed
/// state) or be an explicit exploratory descriptor (Def. 8).
struct ContextualQuery {
  ExtendedDescriptor context;
  /// Optional extra selection predicates restricting which tuples may
  /// appear in the answer (e.g. "type = museum"); empty = whole
  /// relation is eligible.
  std::vector<db::Predicate> selections;
};

/// How (whether) a resolved preference's interest score is discounted
/// by the distance between its context state and the query state —
/// an extension of the paper's combining-function hook (§3.2/§4.4):
/// preferences that apply only via a distant covering state arguably
/// deserve less influence than near-exact matches.
enum class ScoreDiscount {
  kNone,             ///< Paper behavior: scores used as stated.
  kInverseDistance,  ///< score / (1 + distance).
  kExponential,      ///< score · 2^(-distance).
};

const char* ScoreDiscountToString(ScoreDiscount d);

/// Applies `discount` to `score` for a candidate at `distance`.
double ApplyDiscount(ScoreDiscount discount, double score, double distance);

/// Options for Rank_CS.
struct QueryOptions {
  ResolutionOptions resolution;
  /// Distance-based score discounting (kNone = the paper's semantics).
  ScoreDiscount discount = ScoreDiscount::kNone;
  /// Score-combination policy for tuples matched by several resolved
  /// preferences (paper §4.4).
  db::CombinePolicy combine = db::CombinePolicy::kMax;
  /// 0 = return all scored tuples.
  size_t top_k = 0;
  /// Optional equality indexes over the queried relation; when set,
  /// Rank_CS's selections use them instead of scanning (must have been
  /// built against the same relation).
  const db::IndexSet* indexes = nullptr;
  /// Optional columnar projection of the queried relation; when set
  /// (and `indexes` is not), Rank_CS's selections scan it attribute-
  /// major instead of walking the row-store tuples. Must have been
  /// built against the same relation contents.
  const db::ColumnarProjection* columns = nullptr;
  /// Worker threads for `CachedRankCS`'s per-state loop. 1 = evaluate
  /// states inline (the historical behavior); > 1 spreads the states of
  /// the extended descriptor over a `ThreadPool`. The merge order is
  /// fixed, so results do not depend on this value.
  size_t num_threads = 1;
  /// Optional shared worker pool for `CachedRankCS`. When set it takes
  /// precedence over `num_threads` (whose > 1 case spins up a transient
  /// pool per call — fine for exploratory queries, wasteful under
  /// server-style traffic). The pool may be shared by many queries.
  ThreadPool* pool = nullptr;
  /// Cache namespace for `CachedRankCS`'s `Profile&` overload: entries
  /// are tagged `{cache_user, profile.version()}` in the
  /// `ContextQueryTree`, so one shared cache can serve several users
  /// without mixing their results. The serving layer
  /// (`storage::ServeQuery`) ignores this and tags entries with the
  /// pinned snapshot's user id and serving version instead.
  std::string cache_user;
  /// When false, `storage::ServeQuery` resolves against the snapshot's
  /// pointer tree even when an arena-flattened tree is available.
  /// Ablation switch for the scenario harness (`flat = off`); both
  /// paths produce identical results, so this only changes cost.
  bool prefer_flat = true;
  /// Cancellation budget for the whole evaluation. Checked at cheap
  /// cancellation points — the per-state loops of `RankCS` /
  /// `CachedRankCS` and `ThreadPool` task dequeue (an expired queued
  /// state task is dropped, not run) — so an overloaded server stops
  /// spending cycles on answers nobody is waiting for. Expiry surfaces
  /// as `kDeadlineExceeded` with partial-work accounting in the
  /// message. Default: infinite (one null check per cancellation
  /// point). Declared last so existing designated initializers keep
  /// compiling.
  util::Deadline deadline;
};

/// Result of Rank_CS: scored tuples plus resolution diagnostics
/// (which preference states were used — the paper's usability study
/// leans on this traceability).
struct QueryResult {
  std::vector<db::ScoredTuple> tuples;
  /// Per query state: the chosen candidate paths (min distance, ties
  /// kept). Empty candidates = no covering preference for that state.
  struct Trace {
    ContextState query_state;
    std::vector<CandidatePath> candidates;
  };
  std::vector<Trace> traces;
};

/// Context-resolution backend Rank_CS draws candidates from; adapters
/// below wrap the profile tree and the sequential baseline so the
/// benchmark can swap them.
using ResolveFn = std::function<std::vector<CandidatePath>(
    const ContextState&, const ResolutionOptions&, AccessCounter*)>;

/// The paper's Rank_CS (Algorithm 2): for every state of the query's
/// extended descriptor, resolve the most relevant preferences, run each
/// resulting attribute clause as a selection over `relation`, annotate
/// qualifying tuples with the clause's score, combine duplicates under
/// `options.combine`, and return the ranked answer.
StatusOr<QueryResult> RankCS(const db::Relation& relation,
                             const ContextualQuery& query,
                             const ContextEnvironment& env,
                             const ResolveFn& resolve,
                             const QueryOptions& options = {},
                             AccessCounter* counter = nullptr);

/// Rank_CS against a profile tree (the paper's primary configuration).
StatusOr<QueryResult> RankCS(const db::Relation& relation,
                             const ContextualQuery& query,
                             const TreeResolver& resolver,
                             const QueryOptions& options = {},
                             AccessCounter* counter = nullptr);

/// Rank_CS against the arena-flattened tree (the serving hot path).
StatusOr<QueryResult> RankCS(const db::Relation& relation,
                             const ContextualQuery& query,
                             const FlatResolver& resolver,
                             const QueryOptions& options = {},
                             AccessCounter* counter = nullptr);

/// Rank_CS against the sequential baseline.
StatusOr<QueryResult> RankCS(const db::Relation& relation,
                             const ContextualQuery& query,
                             const SequentialStore& store,
                             const QueryOptions& options = {},
                             AccessCounter* counter = nullptr);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_CONTEXTUAL_QUERY_H_
