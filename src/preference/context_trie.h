#ifndef CTXPREF_PREFERENCE_CONTEXT_TRIE_H_
#define CTXPREF_PREFERENCE_CONTEXT_TRIE_H_

#include <memory>
#include <vector>

#include "context/environment.h"
#include "context/state.h"
#include "preference/ordering.h"
#include "util/counters.h"

namespace ctxpref {

/// A generic trie over context states: the structural skeleton shared
/// by the profile tree and the context query tree, reusable for any
/// payload keyed by context state (the qualitative preference store
/// below uses it with preference-id payloads).
///
/// Level i is keyed by the parameter `ordering.param_at_level(i)`;
/// cells within a node are kept in insertion order and scanned
/// linearly, ticking the optional `AccessCounter` per inspected cell —
/// the same cost model as `ProfileTree` (paper §3.3/§4.4).
///
/// `Payload` must be default-constructible and movable.
template <typename Payload>
class ContextTrie {
 public:
  ContextTrie(EnvironmentPtr env, Ordering order)
      : env_(std::move(env)),
        order_(std::move(order)),
        root_(std::make_unique<Node>()) {
    assert(order_.size() == env_->size());
  }

  explicit ContextTrie(EnvironmentPtr env)
      : ContextTrie(env, Ordering::Identity(env->size())) {}

  const ContextEnvironment& env() const { return *env_; }
  const Ordering& ordering() const { return order_; }

  /// Number of distinct states stored.
  size_t size() const { return size_; }
  /// Total [key, pointer] cells.
  size_t CellCount() const { return cell_count_; }

  /// Returns the payload slot for `state`, creating the path if
  /// absent. Newly created slots are default-constructed.
  Payload& GetOrCreate(const ContextState& state) {
    Node* node = Descend(state, /*create=*/true, nullptr);
    if (!node->has_payload) {
      node->has_payload = true;
      ++size_;
    }
    return node->payload;
  }

  /// Returns the payload stored for `state`, or nullptr. Ticks
  /// `counter` per inspected cell.
  const Payload* Find(const ContextState& state,
                      AccessCounter* counter = nullptr) const {
    const Node* node =
        const_cast<ContextTrie*>(this)->Descend(state, false, counter);
    return (node != nullptr && node->has_payload) ? &node->payload : nullptr;
  }

  /// Visits every (state, payload) whose state *covers* `query` —
  /// the Search_CS traversal: at each level follows cells whose key is
  /// the query component or one of its ancestors. `visit` receives the
  /// stored state (environment component order) and its payload.
  template <typename Visitor>
  void VisitCovering(const ContextState& query, Visitor&& visit,
                     AccessCounter* counter = nullptr) const {
    std::vector<ValueRef> path;
    path.reserve(env_->size());
    Recurse(*root_, 0, query, path, visit, counter);
  }

  /// Visits every stored (state, payload).
  template <typename Visitor>
  void VisitAll(Visitor&& visit) const {
    std::vector<ValueRef> path;
    path.reserve(env_->size());
    RecurseAll(*root_, 0, path, visit);
  }

 private:
  struct Node {
    struct Cell {
      ValueRef key;
      std::unique_ptr<Node> child;
    };
    std::vector<Cell> cells;
    Payload payload{};
    bool has_payload = false;
  };

  Node* Descend(const ContextState& state, bool create,
                AccessCounter* counter) {
    Node* node = root_.get();
    for (size_t level = 0; level < env_->size(); ++level) {
      const ValueRef key = state.value(order_.param_at_level(level));
      Node* next = nullptr;
      for (typename Node::Cell& cell : node->cells) {
        if (counter != nullptr) counter->AddCell();
        if (cell.key == key) {
          next = cell.child.get();
          break;
        }
      }
      if (next == nullptr) {
        if (!create) return nullptr;
        node->cells.push_back(
            typename Node::Cell{key, std::make_unique<Node>()});
        ++cell_count_;
        next = node->cells.back().child.get();
      }
      node = next;
    }
    return node;
  }

  ContextState Reorder(const std::vector<ValueRef>& path) const {
    std::vector<ValueRef> values(env_->size());
    for (size_t l = 0; l < env_->size(); ++l) {
      values[order_.param_at_level(l)] = path[l];
    }
    return ContextState(std::move(values));
  }

  template <typename Visitor>
  void Recurse(const Node& node, size_t level, const ContextState& query,
               std::vector<ValueRef>& path, Visitor& visit,
               AccessCounter* counter) const {
    if (level == env_->size()) {
      if (node.has_payload) visit(Reorder(path), node.payload);
      return;
    }
    const size_t param = order_.param_at_level(level);
    const Hierarchy& h = env_->parameter(param).hierarchy();
    const ValueRef qv = query.value(param);
    for (const typename Node::Cell& cell : node.cells) {
      if (counter != nullptr) counter->AddCell();
      if (!h.IsAncestorOrSelf(cell.key, qv)) continue;
      path.push_back(cell.key);
      Recurse(*cell.child, level + 1, query, path, visit, counter);
      path.pop_back();
    }
  }

  template <typename Visitor>
  void RecurseAll(const Node& node, size_t level, std::vector<ValueRef>& path,
                  Visitor& visit) const {
    if (level == env_->size()) {
      if (node.has_payload) visit(Reorder(path), node.payload);
      return;
    }
    for (const typename Node::Cell& cell : node.cells) {
      path.push_back(cell.key);
      RecurseAll(*cell.child, level + 1, path, visit);
      path.pop_back();
    }
  }

  EnvironmentPtr env_;
  Ordering order_;
  std::unique_ptr<Node> root_;
  size_t cell_count_ = 0;
  size_t size_ = 0;
};

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_CONTEXT_TRIE_H_
