#include "preference/query_cache.h"

namespace ctxpref {

ContextQueryTree::ContextQueryTree(EnvironmentPtr env, Ordering order,
                                   size_t capacity)
    : env_(std::move(env)),
      order_(std::move(order)),
      capacity_(capacity),
      root_(std::make_unique<Node>()) {
  assert(order_.size() == env_->size());
}

ContextQueryTree::Node* ContextQueryTree::Descend(const ContextState& state,
                                                  bool create,
                                                  AccessCounter* counter) {
  Node* node = root_.get();
  for (size_t level = 0; level < env_->size(); ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    Node* next = nullptr;
    for (Node::Cell& cell : node->cells) {
      if (counter != nullptr) counter->AddCell();
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) {
      if (!create) return nullptr;
      node->cells.push_back(Node::Cell{key, std::make_unique<Node>()});
      next = node->cells.back().child.get();
    }
    node = next;
  }
  return node;
}

void ContextQueryTree::RemovePath(const ContextState& state) {
  // Collect the node chain, then erase the deepest link whose subtree
  // becomes empty.
  std::vector<Node*> chain = {root_.get()};
  for (size_t level = 0; level < env_->size(); ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    Node* next = nullptr;
    for (Node::Cell& cell : chain.back()->cells) {
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) return;  // Path absent; nothing to remove.
    chain.push_back(next);
  }
  chain.back()->leaf.reset();
  // Prune empty nodes bottom-up.
  for (size_t level = env_->size(); level > 0; --level) {
    Node* child = chain[level];
    if (!child->cells.empty() || child->leaf != nullptr) break;
    Node* parent = chain[level - 1];
    const ValueRef key = state.value(order_.param_at_level(level - 1));
    for (auto it = parent->cells.begin(); it != parent->cells.end(); ++it) {
      if (it->key == key) {
        parent->cells.erase(it);
        break;
      }
    }
  }
}

const std::vector<db::ScoredTuple>* ContextQueryTree::Lookup(
    const ContextState& state, uint64_t profile_version,
    AccessCounter* counter) {
  Node* node = Descend(state, /*create=*/false, counter);
  if (node == nullptr || node->leaf == nullptr) {
    ++misses_;
    return nullptr;
  }
  if (node->leaf->version != profile_version) {
    // Stale: computed against an older profile. Drop on touch.
    lru_.erase(node->leaf->lru_it);
    RemovePath(state);
    --size_;
    ++misses_;
    return nullptr;
  }
  // Refresh LRU position.
  lru_.splice(lru_.begin(), lru_, node->leaf->lru_it);
  ++hits_;
  return &node->leaf->tuples;
}

void ContextQueryTree::Put(const ContextState& state, uint64_t profile_version,
                           std::vector<db::ScoredTuple> tuples) {
  Node* node = Descend(state, /*create=*/true, nullptr);
  if (node->leaf != nullptr) {
    // Overwrite in place.
    node->leaf->tuples = std::move(tuples);
    node->leaf->version = profile_version;
    lru_.splice(lru_.begin(), lru_, node->leaf->lru_it);
    return;
  }
  lru_.push_front(state);
  node->leaf = std::make_unique<Leaf>();
  node->leaf->tuples = std::move(tuples);
  node->leaf->version = profile_version;
  node->leaf->lru_it = lru_.begin();
  ++size_;

  if (capacity_ > 0 && size_ > capacity_) {
    const ContextState victim = lru_.back();
    lru_.pop_back();
    RemovePath(victim);
    --size_;
    ++evictions_;
  }
}

void ContextQueryTree::InvalidateAll() {
  root_ = std::make_unique<Node>();
  lru_.clear();
  size_ = 0;
}

StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const TreeResolver& resolver,
                                   const Profile& profile,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options,
                                   AccessCounter* counter) {
  if (options.combine != db::CombinePolicy::kMax &&
      options.combine != db::CombinePolicy::kMin) {
    return Status::InvalidArgument(
        "CachedRankCS requires an associative combine policy (max or min)");
  }
  const ContextEnvironment& env = resolver.tree().env();
  QueryResult result;
  db::Ranker ranker(options.combine);

  std::vector<ContextState> states = query.context.EnumerateStates(env);
  if (states.empty()) states.push_back(ContextState::AllState(env));

  for (const ContextState& s : states) {
    CTXPREF_RETURN_IF_ERROR(s.Validate(env));
    const std::vector<db::ScoredTuple>* cached =
        cache.Lookup(s, profile.version(), counter);
    std::vector<db::ScoredTuple> per_state;
    if (cached != nullptr) {
      per_state = *cached;
      result.traces.push_back(QueryResult::Trace{s, {}});
    } else {
      // Compute this state's contribution with plain Rank_CS, then
      // populate the cache.
      ContextualQuery single;
      single.context = ExtendedDescriptor();
      std::vector<CandidatePath> best =
          resolver.ResolveBest(s, options.resolution, counter);
      db::Ranker state_ranker(options.combine);
      for (const CandidatePath& cand : best) {
        for (const ProfileTree::LeafEntry& entry : cand.entries) {
          StatusOr<db::Predicate> pred =
              db::Predicate::Create(relation.schema(), entry.clause.attribute,
                                    entry.clause.op, entry.clause.value);
          if (!pred.ok()) return pred.status();
          for (db::RowId row : relation.Select(*pred)) {
            state_ranker.Add(row, entry.score);
          }
        }
      }
      per_state = state_ranker.Ranked();
      cache.Put(s, profile.version(), per_state);
      result.traces.push_back(QueryResult::Trace{s, std::move(best)});
    }
    for (const db::ScoredTuple& t : per_state) {
      // Re-apply the query's restricting selections: cached lists are
      // selection-agnostic (keyed by context state only).
      bool eligible = true;
      for (const db::Predicate& sel : query.selections) {
        if (!sel.Eval(relation.row(t.row_id))) {
          eligible = false;
          break;
        }
      }
      if (eligible) ranker.Add(t.row_id, t.score);
    }
  }

  result.tuples =
      options.top_k > 0 ? ranker.TopK(options.top_k) : ranker.Ranked();
  return result;
}

}  // namespace ctxpref
