#include "preference/query_cache.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "util/thread_pool.h"

namespace ctxpref {

ContextQueryTree::ContextQueryTree(EnvironmentPtr env, Ordering order,
                                   size_t capacity, size_t num_shards)
    : env_(std::move(env)), order_(std::move(order)) {
  assert(order_.size() == env_->size());
  if (num_shards == 0) num_shards = 1;
  // More shards than capacity would give every shard a budget of 1 and
  // let the global bound balloon to num_shards; clamp instead.
  if (capacity > 0 && num_shards > capacity) num_shards = capacity;
  // Split the budget evenly; rounding up keeps at least the requested
  // total (a bounded cache must never become unbounded per shard), at
  // the cost of overshooting `capacity` by up to num_shards - 1.
  shard_capacity_ =
      capacity == 0 ? 0 : (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->root = std::make_unique<Node>();
  }
}

ContextQueryTree::Shard& ContextQueryTree::ShardFor(const ContextState& state) {
  return *shards_[ContextStateHash{}(state) % shards_.size()];
}

ContextQueryTree::Node* ContextQueryTree::Descend(Shard& shard,
                                                  const ContextState& state,
                                                  bool create,
                                                  AccessCounter* counter) {
  Node* node = shard.root.get();
  for (size_t level = 0; level < env_->size(); ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    Node* next = nullptr;
    for (Node::Cell& cell : node->cells) {
      if (counter != nullptr) counter->AddCell();
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) {
      if (!create) return nullptr;
      node->cells.push_back(Node::Cell{key, std::make_unique<Node>()});
      next = node->cells.back().child.get();
    }
    node = next;
  }
  return node;
}

void ContextQueryTree::RemovePath(Shard& shard, const ContextState& state) {
  // Collect the node chain, then erase the deepest link whose subtree
  // becomes empty.
  std::vector<Node*> chain = {shard.root.get()};
  for (size_t level = 0; level < env_->size(); ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    Node* next = nullptr;
    for (Node::Cell& cell : chain.back()->cells) {
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) return;  // Path absent; nothing to remove.
    chain.push_back(next);
  }
  chain.back()->leaf.reset();
  // Prune empty nodes bottom-up.
  for (size_t level = env_->size(); level > 0; --level) {
    Node* child = chain[level];
    if (!child->cells.empty() || child->leaf != nullptr) break;
    Node* parent = chain[level - 1];
    const ValueRef key = state.value(order_.param_at_level(level - 1));
    for (auto it = parent->cells.begin(); it != parent->cells.end(); ++it) {
      if (it->key == key) {
        parent->cells.erase(it);
        break;
      }
    }
  }
}

std::shared_ptr<const ContextQueryTree::Entry> ContextQueryTree::Lookup(
    const ContextState& state, uint64_t profile_version,
    AccessCounter* counter) {
  Shard& shard = ShardFor(state);
  std::lock_guard<std::mutex> lock(shard.mu);
  Node* node = Descend(shard, state, /*create=*/false, counter);
  if (node == nullptr || node->leaf == nullptr) {
    ++shard.misses;
    return nullptr;
  }
  if (node->leaf->version != profile_version) {
    // Stale: computed against an older profile. Drop on touch.
    shard.lru.erase(node->leaf->lru_it);
    RemovePath(shard, state);
    --shard.size;
    ++shard.misses;
    ++shard.invalidations;
    return nullptr;
  }
  // Refresh LRU position.
  shard.lru.splice(shard.lru.begin(), shard.lru, node->leaf->lru_it);
  ++shard.hits;
  return node->leaf->entry;
}

void ContextQueryTree::Put(const ContextState& state, uint64_t profile_version,
                           std::vector<db::ScoredTuple> tuples,
                           std::vector<CandidatePath> candidates) {
  auto entry = std::make_shared<const Entry>(
      Entry{std::move(tuples), std::move(candidates)});
  Shard& shard = ShardFor(state);
  std::lock_guard<std::mutex> lock(shard.mu);
  Node* node = Descend(shard, state, /*create=*/true, nullptr);
  if (node->leaf != nullptr) {
    // Overwrite in place; readers holding the old snapshot keep it.
    node->leaf->entry = std::move(entry);
    node->leaf->version = profile_version;
    shard.lru.splice(shard.lru.begin(), shard.lru, node->leaf->lru_it);
    return;
  }
  shard.lru.push_front(state);
  node->leaf = std::make_unique<Leaf>();
  node->leaf->entry = std::move(entry);
  node->leaf->version = profile_version;
  node->leaf->lru_it = shard.lru.begin();
  ++shard.size;

  if (shard_capacity_ > 0 && shard.size > shard_capacity_) {
    const ContextState victim = shard.lru.back();
    shard.lru.pop_back();
    RemovePath(shard, victim);
    --shard.size;
    ++shard.evictions;
  }
}

void ContextQueryTree::InvalidateAll() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->root = std::make_unique<Node>();
    shard->lru.clear();
    shard->size = 0;
  }
}

CacheStats ContextQueryTree::Stats() const {
  CacheStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.invalidations += shard->invalidations;
    stats.size += shard->size;
  }
  return stats;
}

namespace {

/// Outcome of evaluating one query state: either served from cache or
/// recomputed (and cached); `candidates` carries the resolution trace
/// in both cases so hits and misses are indistinguishable downstream.
struct PerStateResult {
  Status status = Status::OK();
  std::vector<db::ScoredTuple> tuples;
  std::vector<CandidatePath> candidates;
};

PerStateResult EvaluateState(const db::Relation& relation,
                             const ContextState& s,
                             const TreeResolver& resolver,
                             const Profile& profile, ContextQueryTree& cache,
                             const QueryOptions& options,
                             AccessCounter* counter) {
  PerStateResult out;
  std::shared_ptr<const ContextQueryTree::Entry> cached =
      cache.Lookup(s, profile.version(), counter);
  if (cached != nullptr) {
    out.tuples = cached->tuples;
    out.candidates = cached->candidates;
    return out;
  }
  // Compute this state's contribution with plain Rank_CS, then
  // populate the cache.
  std::vector<CandidatePath> best =
      resolver.ResolveBest(s, options.resolution, counter);
  db::Ranker state_ranker(options.combine);
  for (const CandidatePath& cand : best) {
    for (const ProfileTree::LeafEntry& entry : cand.entries) {
      StatusOr<db::Predicate> pred =
          db::Predicate::Create(relation.schema(), entry.clause.attribute,
                                entry.clause.op, entry.clause.value);
      if (!pred.ok()) {
        out.status = pred.status();
        return out;
      }
      for (db::RowId row : relation.Select(*pred)) {
        state_ranker.Add(row, entry.score);
      }
    }
  }
  out.tuples = state_ranker.Ranked();
  out.candidates = std::move(best);
  cache.Put(s, profile.version(), out.tuples, out.candidates);
  return out;
}

}  // namespace

StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const TreeResolver& resolver,
                                   const Profile& profile,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options,
                                   AccessCounter* counter) {
  if (options.combine != db::CombinePolicy::kMax &&
      options.combine != db::CombinePolicy::kMin) {
    return Status::InvalidArgument(
        "CachedRankCS requires an associative combine policy (max or min)");
  }
  const ContextEnvironment& env = resolver.tree().env();

  std::vector<ContextState> states = query.context.EnumerateStates(env);
  if (states.empty()) states.push_back(ContextState::AllState(env));
  for (const ContextState& s : states) {
    CTXPREF_RETURN_IF_ERROR(s.Validate(env));
  }

  // Evaluate every state, either inline or on a worker pool. Workers
  // write disjoint slots; the merge below runs serially in
  // state-enumeration order, so the ranked output and traces are
  // independent of the thread count.
  std::vector<PerStateResult> per_state(states.size());
  const size_t threads = std::min(options.num_threads, states.size());
  if (options.pool == nullptr && threads <= 1) {
    for (size_t i = 0; i < states.size(); ++i) {
      per_state[i] = EvaluateState(relation, states[i], resolver, profile,
                                   cache, options, counter);
    }
  } else {
    // A shared pool may be running other queries' tasks, so completion
    // is tracked per call rather than with pool Wait(). `pending` is a
    // plain count decremented under `done_mu`: the waiter only checks
    // it while holding the mutex, so it cannot observe 0 (and destroy
    // the sync state on scope exit) while a worker still holds
    // references to it. `transient` is declared after the sync state
    // so its destructor joins the workers before that state goes away.
    size_t pending = states.size();
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::unique_ptr<ThreadPool> transient;
    ThreadPool* pool = options.pool;
    if (pool == nullptr) {
      transient = std::make_unique<ThreadPool>(threads);
      pool = transient.get();
    }
    for (size_t i = 0; i < states.size(); ++i) {
      pool->Submit([&, i] {
        PerStateResult r;
        try {
          r = EvaluateState(relation, states[i], resolver, profile, cache,
                            options, counter);
        } catch (const std::exception& e) {
          r.status = Status::Internal(e.what());
        } catch (...) {
          r.status = Status::Internal("unknown exception in EvaluateState");
        }
        per_state[i] = std::move(r);
        // The decrement must happen in every path, or the waiter below
        // would block forever.
        std::lock_guard<std::mutex> lock(done_mu);
        if (--pending == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return pending == 0; });
  }

  QueryResult result;
  db::Ranker ranker(options.combine);
  for (size_t i = 0; i < states.size(); ++i) {
    PerStateResult& ps = per_state[i];
    if (!ps.status.ok()) return ps.status;
    for (const db::ScoredTuple& t : ps.tuples) {
      // Re-apply the query's restricting selections: cached lists are
      // selection-agnostic (keyed by context state only).
      bool eligible = true;
      for (const db::Predicate& sel : query.selections) {
        if (!sel.Eval(relation.row(t.row_id))) {
          eligible = false;
          break;
        }
      }
      if (eligible) ranker.Add(t.row_id, t.score);
    }
    result.traces.push_back(
        QueryResult::Trace{states[i], std::move(ps.candidates)});
  }

  result.tuples =
      options.top_k > 0 ? ranker.TopK(options.top_k) : ranker.Ranked();
  return result;
}

}  // namespace ctxpref
