#include "preference/query_cache.h"

#include <algorithm>
#include <cassert>
#include <exception>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace ctxpref {

namespace {

/// Global (cross-instance) cache metrics; per-shard exactness lives in
/// `ShardStats`/`ShardLookupLatency` on each tree.
struct CacheMetrics {
  Counter& lookups;
  Counter& hits;
  Counter& misses;
  Counter& invalidations;
  Counter& evictions;
  LatencyHistogram& hit_latency;
  LatencyHistogram& miss_latency;
  LatencyHistogram& put_latency;

  static CacheMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static CacheMetrics* m = new CacheMetrics{
        reg.GetCounter("ctxpref_query_cache_lookups_total",
                       "ContextQueryTree lookups (hits + misses)"),
        reg.GetCounter("ctxpref_query_cache_hits_total",
                       "ContextQueryTree lookup hits"),
        reg.GetCounter("ctxpref_query_cache_misses_total",
                       "ContextQueryTree lookup misses (incl. stale drops)"),
        reg.GetCounter("ctxpref_query_cache_invalidations_total",
                       "Entries dropped on touch for profile-version skew"),
        reg.GetCounter("ctxpref_query_cache_evictions_total",
                       "LRU evictions beyond shard capacity"),
        reg.GetHistogram("ctxpref_query_cache_hit_latency_ns",
                         "Lookup latency when the entry was served"),
        reg.GetHistogram("ctxpref_query_cache_miss_latency_ns",
                         "Lookup latency when the caller must recompute"),
        reg.GetHistogram("ctxpref_query_cache_put_latency_ns",
                         "Put latency including any eviction"),
    };
    return *m;
  }
};

/// Lookup-path registry counters are flushed from the shard-local
/// accumulators every this many lookups (per shard), so the hot path
/// costs plain increments under the shard lock, not global atomic
/// RMWs. The registry lags exact per-shard stats by < one stride.
constexpr uint64_t kMetricsFlushStride = 64;

}  // namespace

ContextQueryTree::ContextQueryTree(EnvironmentPtr env, Ordering order,
                                   size_t capacity, size_t num_shards)
    : env_(std::move(env)), order_(std::move(order)) {
  assert(order_.size() == env_->size());
  if (num_shards == 0) num_shards = 1;
  // More shards than capacity would give every shard a budget of 1 and
  // let the global bound balloon to num_shards; clamp instead.
  if (capacity > 0 && num_shards > capacity) num_shards = capacity;
  // Split the budget evenly; rounding up keeps at least the requested
  // total (a bounded cache must never become unbounded per shard), at
  // the cost of overshooting `capacity` by up to num_shards - 1.
  shard_capacity_ =
      capacity == 0 ? 0 : (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ContextQueryTree::Shard& ContextQueryTree::ShardFor(const std::string& user,
                                                    const ContextState& state) {
  size_t h = ContextStateHash{}(state);
  if (!user.empty()) {
    // Boost-style combine so (user, state) pairs spread across shards
    // even when many users query the same few states.
    h ^= std::hash<std::string>{}(user) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return *shards_[h % shards_.size()];
}

ContextQueryTree::Node* ContextQueryTree::Descend(Shard& shard,
                                                  const std::string& user,
                                                  const ContextState& state,
                                                  bool create,
                                                  AccessCounter* counter) {
  Node* node;
  auto root_it = shard.roots.find(user);
  if (root_it == shard.roots.end()) {
    if (!create) return nullptr;
    root_it = shard.roots.emplace(user, std::make_unique<Node>()).first;
  }
  node = root_it->second.get();
  for (size_t level = 0; level < env_->size(); ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    Node* next = nullptr;
    for (Node::Cell& cell : node->cells) {
      if (counter != nullptr) counter->AddCell();
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) {
      if (!create) return nullptr;
      node->cells.push_back(Node::Cell{key, std::make_unique<Node>()});
      next = node->cells.back().child.get();
    }
    node = next;
  }
  return node;
}

void ContextQueryTree::RemovePath(Shard& shard, const std::string& user,
                                  const ContextState& state) {
  auto root_it = shard.roots.find(user);
  if (root_it == shard.roots.end()) return;
  // Collect the node chain, then erase the deepest link whose subtree
  // becomes empty.
  std::vector<Node*> chain = {root_it->second.get()};
  for (size_t level = 0; level < env_->size(); ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    Node* next = nullptr;
    for (Node::Cell& cell : chain.back()->cells) {
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) return;  // Path absent; nothing to remove.
    chain.push_back(next);
  }
  chain.back()->leaf.reset();
  // Prune empty nodes bottom-up.
  for (size_t level = env_->size(); level > 0; --level) {
    Node* child = chain[level];
    if (!child->cells.empty() || child->leaf != nullptr) break;
    Node* parent = chain[level - 1];
    const ValueRef key = state.value(order_.param_at_level(level - 1));
    for (auto it = parent->cells.begin(); it != parent->cells.end(); ++it) {
      if (it->key == key) {
        parent->cells.erase(it);
        break;
      }
    }
  }
  // An empty per-user trie is dropped outright so idle users cost
  // nothing in the roots map.
  Node* root = root_it->second.get();
  if (root->cells.empty() && root->leaf == nullptr) {
    shard.roots.erase(root_it);
  }
}

std::shared_ptr<const ContextQueryTree::Entry> ContextQueryTree::Lookup(
    const std::string& user, const ContextState& state,
    uint64_t profile_version, AccessCounter* counter) {
  CacheMetrics& metrics = CacheMetrics::Get();
  TraceSpan span("query_cache.lookup");
  // One clock pair serves both the outcome-dependent hit/miss
  // histograms and the per-shard histogram; reads happen only while
  // timing is enabled.
  const bool timed = MetricsRegistry::TimingEnabled();
  const uint64_t start_nanos = timed ? MonotonicNanos() : 0;
  Shard& shard = ShardFor(user, state);
  std::shared_ptr<const Entry> result;
  bool invalidated = false;
  {
    util::MutexLock lock(shard.mu);
    ++shard.lookups;
    Node* node = Descend(shard, user, state, /*create=*/false, counter);
    if (node == nullptr || node->leaf == nullptr) {
      ++shard.misses;
      ++shard.pending_misses;
    } else if (node->leaf->version != profile_version) {
      if (retain_stale_.load(std::memory_order_relaxed)) {
        // Retain-stale mode: a miss for the fresh path, but the entry
        // stays reachable for LookupAtOrBefore's staleness window.
        ++shard.misses;
        ++shard.pending_misses;
      } else {
        // Stale: computed against an older profile. Drop on touch.
        shard.lru.erase(node->leaf->lru_it);
        RemovePath(shard, user, state);
        --shard.size;
        ++shard.misses;
        ++shard.invalidations;
        ++shard.pending_misses;
        ++shard.pending_invalidations;
        invalidated = true;
      }
    } else {
      // Refresh LRU position.
      shard.lru.splice(shard.lru.begin(), shard.lru, node->leaf->lru_it);
      ++shard.hits;
      ++shard.pending_hits;
      result = node->leaf->entry;
    }
    if (++shard.pending_lookups >= kMetricsFlushStride) {
      metrics.lookups.Increment(shard.pending_lookups);
      metrics.hits.Increment(shard.pending_hits);
      metrics.misses.Increment(shard.pending_misses);
      metrics.invalidations.Increment(shard.pending_invalidations);
      shard.pending_lookups = 0;
      shard.pending_hits = 0;
      shard.pending_misses = 0;
      shard.pending_invalidations = 0;
    }
  }
  if (timed) {
    const uint64_t elapsed = MonotonicNanos() - start_nanos;
    (result != nullptr ? metrics.hit_latency : metrics.miss_latency)
        .Record(elapsed);
    shard.lookup_latency.Record(elapsed);
  }
  if (span.active()) {
    span.Tag("outcome", result != nullptr ? "hit"
                        : invalidated     ? "invalidated"
                                          : "miss");
  }
  return result;
}

std::shared_ptr<const ContextQueryTree::Entry>
ContextQueryTree::LookupAtOrBefore(const std::string& user,
                                   const ContextState& state,
                                   uint64_t max_version, uint64_t min_version,
                                   uint64_t* entry_version,
                                   AccessCounter* counter) {
  CacheMetrics& metrics = CacheMetrics::Get();
  TraceSpan span("query_cache.lookup_at_or_before");
  Shard& shard = ShardFor(user, state);
  std::shared_ptr<const Entry> result;
  {
    util::MutexLock lock(shard.mu);
    ++shard.lookups;
    Node* node = Descend(shard, user, state, /*create=*/false, counter);
    if (node != nullptr && node->leaf != nullptr &&
        node->leaf->version <= max_version &&
        node->leaf->version >= min_version) {
      shard.lru.splice(shard.lru.begin(), shard.lru, node->leaf->lru_it);
      ++shard.hits;
      ++shard.pending_hits;
      if (entry_version != nullptr) *entry_version = node->leaf->version;
      result = node->leaf->entry;
    } else {
      // Absent or outside the window: plain miss, nothing dropped.
      ++shard.misses;
      ++shard.pending_misses;
    }
    if (++shard.pending_lookups >= kMetricsFlushStride) {
      metrics.lookups.Increment(shard.pending_lookups);
      metrics.hits.Increment(shard.pending_hits);
      metrics.misses.Increment(shard.pending_misses);
      metrics.invalidations.Increment(shard.pending_invalidations);
      shard.pending_lookups = 0;
      shard.pending_hits = 0;
      shard.pending_misses = 0;
      shard.pending_invalidations = 0;
    }
  }
  if (span.active()) {
    span.Tag("outcome", result != nullptr ? "hit" : "miss");
  }
  return result;
}

void ContextQueryTree::Put(const std::string& user, const ContextState& state,
                           uint64_t profile_version,
                           std::vector<db::ScoredTuple> tuples,
                           CandidateSetPtr candidates) {
  CacheMetrics& metrics = CacheMetrics::Get();
  TraceSpan span("query_cache.put");
  ScopedLatency latency(&metrics.put_latency);
  auto entry = std::make_shared<const Entry>(
      Entry{std::move(tuples), std::move(candidates)});
  Shard& shard = ShardFor(user, state);
  util::MutexLock lock(shard.mu);
  Node* node = Descend(shard, user, state, /*create=*/true, nullptr);
  if (node->leaf != nullptr) {
    // Overwrite in place; readers holding the old snapshot keep it.
    node->leaf->entry = std::move(entry);
    node->leaf->version = profile_version;
    shard.lru.splice(shard.lru.begin(), shard.lru, node->leaf->lru_it);
    return;
  }
  shard.lru.push_front(EntryKey{user, state});
  node->leaf = std::make_unique<Leaf>();
  node->leaf->entry = std::move(entry);
  node->leaf->version = profile_version;
  node->leaf->lru_it = shard.lru.begin();
  ++shard.size;

  if (shard_capacity_ > 0 && shard.size > shard_capacity_) {
    const EntryKey victim = shard.lru.back();
    shard.lru.pop_back();
    RemovePath(shard, victim.user, victim.state);
    --shard.size;
    ++shard.evictions;
    metrics.evictions.Increment();
  }
}

size_t ContextQueryTree::InvalidateUser(const std::string& user) {
  CacheMetrics& metrics = CacheMetrics::Get();
  TraceSpan span("query_cache.invalidate_user");
  size_t dropped = 0;
  for (std::unique_ptr<Shard>& shard : shards_) {
    util::MutexLock lock(shard->mu);
    auto root_it = shard->roots.find(user);
    if (root_it == shard->roots.end()) continue;
    // Dropping the user's whole trie frees every leaf at once; the LRU
    // list is then swept of the user's keys (each leaf owns exactly one
    // LRU node, so the sweep count equals the leaves dropped).
    shard->roots.erase(root_it);
    size_t in_shard = 0;
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->user == user) {
        it = shard->lru.erase(it);
        ++in_shard;
      } else {
        ++it;
      }
    }
    shard->size -= in_shard;
    shard->invalidations += in_shard;
    dropped += in_shard;
  }
  if (dropped > 0) {
    metrics.invalidations.Increment(dropped);
  }
  if (span.active()) {
    span.Tag("dropped", static_cast<uint64_t>(dropped));
  }
  return dropped;
}

size_t ContextQueryTree::InvalidateUserBelow(const std::string& user,
                                             uint64_t version) {
  CacheMetrics& metrics = CacheMetrics::Get();
  TraceSpan span("query_cache.invalidate_user_below");
  size_t dropped = 0;
  for (std::unique_ptr<Shard>& shard : shards_) {
    util::MutexLock lock(shard->mu);
    if (shard->roots.find(user) == shard->roots.end()) continue;
    // The LRU list is the only flat enumeration of a user's cached
    // states (trie leaves do not store their own path), so collect the
    // user's keys first, then check each leaf's version tag.
    std::vector<ContextState> states;
    for (const EntryKey& key : shard->lru) {
      if (key.user == user) states.push_back(key.state);
    }
    size_t in_shard = 0;
    for (const ContextState& state : states) {
      Node* node = Descend(*shard, user, state, /*create=*/false, nullptr);
      if (node == nullptr || node->leaf == nullptr) continue;
      if (node->leaf->version >= version) continue;  // Inside the window.
      shard->lru.erase(node->leaf->lru_it);
      RemovePath(*shard, user, state);
      --shard->size;
      ++in_shard;
    }
    shard->invalidations += in_shard;
    dropped += in_shard;
  }
  if (dropped > 0) {
    metrics.invalidations.Increment(dropped);
  }
  if (span.active()) {
    span.Tag("dropped", static_cast<uint64_t>(dropped));
  }
  return dropped;
}

void ContextQueryTree::InvalidateAll() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    util::MutexLock lock(shard->mu);
    shard->roots.clear();
    shard->lru.clear();
    shard->size = 0;
  }
}

CacheStats ContextQueryTree::Stats() const {
  CacheStats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    util::MutexLock lock(shard->mu);
    stats.lookups += shard->lookups;
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.invalidations += shard->invalidations;
    stats.size += shard->size;
  }
  return stats;
}

CacheStats ContextQueryTree::ShardStats(size_t shard_index) const {
  assert(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  util::MutexLock lock(shard.mu);
  CacheStats stats;
  stats.lookups = shard.lookups;
  stats.hits = shard.hits;
  stats.misses = shard.misses;
  stats.evictions = shard.evictions;
  stats.invalidations = shard.invalidations;
  stats.size = shard.size;
  return stats;
}

HistogramSnapshot ContextQueryTree::ShardLookupLatency(
    size_t shard_index) const {
  assert(shard_index < shards_.size());
  // The histogram is internally atomic; no shard lock needed.
  return shards_[shard_index]->lookup_latency.Snapshot();
}

namespace {

/// Outcome of evaluating one query state: either served from cache or
/// recomputed (and cached); `candidates` carries the resolution trace
/// in both cases so hits and misses are indistinguishable downstream.
/// The set is shared with the cache entry, not copied, so hits cost one
/// refcount bump instead of a deep copy of states + clause strings.
struct PerStateResult {
  Status status = Status::OK();
  std::vector<db::ScoredTuple> tuples;
  ContextQueryTree::CandidateSetPtr candidates;
};

PerStateResult EvaluateState(const db::Relation& relation,
                             const ContextState& s, const ResolveFn& resolve,
                             const std::string& cache_user,
                             uint64_t profile_version, ContextQueryTree& cache,
                             const QueryOptions& options,
                             AccessCounter* counter) {
  PerStateResult out;
  TraceSpan span("cached_rank_cs.state");
  // Cancellation point: at state entry, before any resolution work.
  // (A cache hit below is cheap enough that it is not worth a second
  // clock read to allow it through after expiry.)
  if (options.deadline.Expired()) {
    out.status =
        Status::DeadlineExceeded("cached_rank_cs: deadline expired at state");
    return out;
  }
  std::shared_ptr<const ContextQueryTree::Entry> cached =
      cache.Lookup(cache_user, s, profile_version, counter);
  if (cached != nullptr) {
    out.tuples = cached->tuples;
    out.candidates = cached->candidates;
    return out;
  }
  // Compute this state's contribution with plain Rank_CS, then
  // populate the cache.
  std::vector<CandidatePath> best = resolve(s, options.resolution, counter);
  // Cancellation point: resolution paid for, selections (the expensive
  // part) not yet.
  if (options.deadline.Expired()) {
    out.status = Status::DeadlineExceeded(
        "cached_rank_cs: deadline expired before selections");
    return out;
  }
  db::Ranker state_ranker(options.combine);
  state_ranker.ReserveDense(relation.size());
  for (const CandidatePath& cand : best) {
    for (const ProfileTree::LeafEntry& entry : cand.entries) {
      StatusOr<db::Predicate> pred =
          db::Predicate::Create(relation.schema(), entry.clause.attribute,
                                entry.clause.op, entry.clause.value);
      if (!pred.ok()) {
        out.status = pred.status();
        return out;
      }
      std::vector<db::RowId> rows =
          options.indexes != nullptr ? options.indexes->Select(*pred)
          : options.columns != nullptr ? options.columns->Select(*pred)
                                       : relation.Select(*pred);
      for (db::RowId row : rows) {
        state_ranker.Add(row, entry.score);
      }
    }
  }
  out.tuples = state_ranker.Ranked();
  out.candidates =
      std::make_shared<const std::vector<CandidatePath>>(std::move(best));
  cache.Put(cache_user, s, profile_version, out.tuples, out.candidates);
  return out;
}

/// Shared body of the `TreeResolver` / `FlatResolver` overloads: the
/// cache protocol only needs the environment and a way to resolve one
/// state, so both resolvers funnel through here and produce identical
/// cache entries (interchangeable across backends at the same
/// profile version).
StatusOr<QueryResult> CachedRankCSImpl(const db::Relation& relation,
                                       const ContextualQuery& query,
                                       const ContextEnvironment& env,
                                       const ResolveFn& resolve,
                                       const std::string& cache_user,
                                       uint64_t profile_version,
                                       ContextQueryTree& cache,
                                       const QueryOptions& options,
                                       AccessCounter* counter) {
  if (options.combine != db::CombinePolicy::kMax &&
      options.combine != db::CombinePolicy::kMin) {
    return Status::InvalidArgument(
        "CachedRankCS requires an associative combine policy (max or min)");
  }
  RankMetrics& metrics = RankMetrics::Get();
  TraceSpan span("cached_rank_cs");
  ScopedLatency latency(&metrics.latency);

  std::vector<ContextState> states = query.context.EnumerateStates(env);
  if (states.empty()) states.push_back(ContextState::AllState(env));
  for (const ContextState& s : states) {
    CTXPREF_RETURN_IF_ERROR(s.Validate(env));
  }

  // Evaluate every state, either inline or on a worker pool. Workers
  // write disjoint slots; the merge below runs serially in
  // state-enumeration order, so the ranked output and traces are
  // independent of the thread count.
  std::vector<PerStateResult> per_state(states.size());
  const size_t threads = std::min(options.num_threads, states.size());
  if (options.pool == nullptr && threads <= 1) {
    for (size_t i = 0; i < states.size(); ++i) {
      per_state[i] = EvaluateState(relation, states[i], resolve, cache_user,
                                   profile_version, cache, options, counter);
    }
  } else {
    // A shared pool may be running other queries' tasks, so completion
    // is tracked per call rather than with pool Wait(). `pending` is a
    // plain count decremented under `done_mu`: the waiter only checks
    // it while holding the mutex, so it cannot observe 0 (and destroy
    // the sync state on scope exit) while a worker still holds
    // references to it. `transient` is declared after the sync state
    // so its destructor joins the workers before that state goes away.
    size_t pending = states.size();
    util::Mutex done_mu(util::LockRank::kCompletion, "CachedRankCS.done_mu");
    util::CondVar done_cv;
    std::unique_ptr<ThreadPool> transient;
    ThreadPool* pool = options.pool;
    if (pool == nullptr) {
      transient = std::make_unique<ThreadPool>(threads);
      pool = transient.get();
    }
    for (size_t i = 0; i < states.size(); ++i) {
      // The task carries the query deadline: if it passes while the
      // task is still queued behind other queries' states, the pool
      // drops the body and runs `on_expired` instead — which must
      // still count the completion down, or the wait below would hang.
      pool->Submit(
          [&, i] {
            PerStateResult r;
            try {
              r = EvaluateState(relation, states[i], resolve, cache_user,
                                profile_version, cache, options, counter);
            } catch (const std::exception& e) {
              r.status = Status::Internal(e.what());
            } catch (...) {
              r.status = Status::Internal("unknown exception in EvaluateState");
            }
            per_state[i] = std::move(r);
            // The decrement must happen in every path, or the waiter
            // below would block forever.
            util::MutexLock lock(done_mu);
            if (--pending == 0) done_cv.NotifyOne();
          },
          options.deadline,
          /*on_expired=*/[&, i] {
            per_state[i].status = Status::DeadlineExceeded(
                "cached_rank_cs: state task expired in pool queue");
            util::MutexLock lock(done_mu);
            if (--pending == 0) done_cv.NotifyOne();
          });
    }
    util::MutexLock lock(done_mu);
    done_cv.Wait(done_mu, [&] { return pending == 0; });
  }

  QueryResult result;
  db::Ranker ranker(options.combine);
  for (size_t i = 0; i < states.size(); ++i) {
    PerStateResult& ps = per_state[i];
    if (!ps.status.ok()) {
      if (ps.status.IsDeadlineExceeded()) {
        // Partial-work accounting: how many states completed before
        // the budget ran out (states may finish out of order on the
        // pool, so count across the whole array, not the prefix).
        size_t done = 0;
        for (const PerStateResult& r : per_state) {
          if (r.status.ok()) ++done;
        }
        metrics.deadline_exceeded.Increment();
        metrics.states_abandoned.Increment(states.size() - done);
        return Status::DeadlineExceeded(
            "cached_rank_cs: deadline exceeded after " + std::to_string(done) +
            "/" + std::to_string(states.size()) + " states");
      }
      return ps.status;
    }
    for (const db::ScoredTuple& t : ps.tuples) {
      // Re-apply the query's restricting selections: cached lists are
      // selection-agnostic (keyed by context state only).
      bool eligible = true;
      for (const db::Predicate& sel : query.selections) {
        if (!sel.Eval(relation.row(t.row_id))) {
          eligible = false;
          break;
        }
      }
      if (eligible) ranker.Add(t.row_id, t.score);
    }
    // Traces expose plain vectors (explain/CLI consumers mutate and
    // move them), so the shared set is copied out here — once per
    // state, same as the pre-sharing cache-hit cost.
    result.traces.push_back(QueryResult::Trace{
        states[i], ps.candidates != nullptr ? *ps.candidates
                                            : std::vector<CandidatePath>{}});
  }

  result.tuples =
      options.top_k > 0 ? ranker.TopK(options.top_k) : ranker.Ranked();
  metrics.cached_queries.Increment();
  metrics.states.Increment(states.size());
  if (span.active()) {
    span.Tag("states", static_cast<uint64_t>(states.size()));
    span.Tag("tuples", static_cast<uint64_t>(result.tuples.size()));
  }
  return result;
}

}  // namespace

StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const TreeResolver& resolver,
                                   const std::string& cache_user,
                                   uint64_t profile_version,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options,
                                   AccessCounter* counter) {
  return CachedRankCSImpl(
      relation, query, resolver.tree().env(),
      [&resolver](const ContextState& s, const ResolutionOptions& opts,
                  AccessCounter* c) { return resolver.ResolveBest(s, opts, c); },
      cache_user, profile_version, cache, options, counter);
}

StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const TreeResolver& resolver,
                                   const Profile& profile,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options,
                                   AccessCounter* counter) {
  // Single-tenant form: the profile's own mutation counter is the
  // version tag. Sound only while this same Profile object is both
  // served and edited in place — see the header comment.
  return CachedRankCS(relation, query, resolver, options.cache_user,
                      profile.version(), cache, options, counter);
}

StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const FlatResolver& resolver,
                                   const std::string& cache_user,
                                   uint64_t profile_version,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options,
                                   AccessCounter* counter) {
  return CachedRankCSImpl(
      relation, query, resolver.tree().env(),
      [&resolver](const ContextState& s, const ResolutionOptions& opts,
                  AccessCounter* c) { return resolver.ResolveBest(s, opts, c); },
      cache_user, profile_version, cache, options, counter);
}

StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const FlatResolver& resolver,
                                   const Profile& profile,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options,
                                   AccessCounter* counter) {
  return CachedRankCS(relation, query, resolver, options.cache_user,
                      profile.version(), cache, options, counter);
}

}  // namespace ctxpref
