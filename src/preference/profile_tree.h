#ifndef CTXPREF_PREFERENCE_PROFILE_TREE_H_
#define CTXPREF_PREFERENCE_PROFILE_TREE_H_

#include <memory>
#include <vector>

#include "context/environment.h"
#include "context/state.h"
#include "preference/ordering.h"
#include "preference/preference.h"
#include "preference/profile.h"
#include "util/counters.h"
#include "util/status.h"

namespace ctxpref {

/// The profile tree (paper §3.3): a trie over context states. Level i
/// is keyed by the parameter `ordering.param_at_level(i)`; each
/// root-to-leaf path is one context state appearing in the profile, and
/// the leaf stores the attribute clauses and interest scores applicable
/// in that state. Conflicting preferences (Def. 6) are rejected during
/// insertion by a single root-to-leaf traversal, exactly as the paper
/// describes.
///
/// Cells within a node are kept in insertion order and searched
/// linearly — deliberately mirroring the paper's cost model, whose
/// per-node worst case is |edom(Ci)| cell inspections; all traversals
/// tick the optional `AccessCounter` per inspected cell so Fig. 7 can
/// be measured rather than estimated.
class ProfileTree {
 public:
  /// What a leaf holds per applicable preference: `(Ai θ a, score)`.
  /// `ref` counts how many distinct preferences contributed this exact
  /// entry (several descriptors may denote the same state with the
  /// same clause and score); removal only erases at zero.
  struct LeafEntry {
    AttributeClause clause;
    double score;
    uint32_t ref = 1;
  };

  /// A tree node. Internal nodes hold `[key, pointer]` cells; leaf
  /// nodes hold the entries. Exposed (read-only) so the resolver in
  /// `resolution.h` can walk the structure.
  struct Node {
    struct Cell {
      ValueRef key;
      std::unique_ptr<Node> child;
    };
    std::vector<Cell> cells;        ///< Internal levels.
    std::vector<LeafEntry> entries; ///< Leaf level only.
  };

  /// Byte-cost model used by `ByteSize()` (paper Fig. 5 right): a cell
  /// is a key plus a pointer; a leaf entry is an attribute reference, a
  /// value and a score; serial storage (the baseline) spends
  /// `kSerialValueBytes` per state component plus one leaf entry per
  /// flat preference. See `sequential_store.h` for the serial side.
  static constexpr size_t kCellBytes = 16;        // 8 key + 8 pointer
  static constexpr size_t kLeafEntryBytes = 24;   // attr + value + score
  static constexpr size_t kSerialValueBytes = 8;

  /// An empty tree over `env` with the given parameter-to-level
  /// assignment (`order.size()` must equal `env->size()`).
  ProfileTree(EnvironmentPtr env, Ordering order);

  ProfileTree(ProfileTree&&) = default;
  ProfileTree& operator=(ProfileTree&&) = default;

  /// Indexes every preference of `profile` under `order`.
  /// `profile` must be conflict-free (it is, by construction).
  static StatusOr<ProfileTree> Build(const Profile& profile,
                                     const Ordering& order);

  /// Indexes `profile` under `GreedyOrdering(profile)`.
  static StatusOr<ProfileTree> Build(const Profile& profile);

  const ContextEnvironment& env() const { return *env_; }
  const EnvironmentPtr& env_ptr() const { return env_; }
  const Ordering& ordering() const { return order_; }
  const Node& root() const { return *root_; }

  /// Inserts every state of `pref`'s descriptor. Errors with Conflict
  /// (Def. 6) if any path already carries the same clause with a
  /// different score; the tree is left unchanged on conflict (the
  /// conflicting insertion is checked before any path is created).
  Status Insert(const ContextualPreference& pref);

  /// Inserts a single (state, clause, score) path. Identical existing
  /// entries are deduplicated silently (OK); a same-clause entry with a
  /// different score yields Conflict.
  Status InsertState(const ContextState& state, const AttributeClause& clause,
                     double score);

  /// Removes the (state, clause, score) leaf entry, pruning cells that
  /// become childless — the incremental counterpart of `InsertState`
  /// that keeps the index in sync with profile deletions without a
  /// rebuild. NotFound if the path or entry is absent.
  Status RemoveState(const ContextState& state, const AttributeClause& clause,
                     double score);

  /// Removes every (state, clause, score) entry of `pref`. NotFound if
  /// any of them is absent (the tree is still consistent: entries
  /// found before the failure are removed — callers tracking a
  /// conflict-free profile never hit this).
  Status Remove(const ContextualPreference& pref);

  /// Exact-match lookup (paper §4.4 first case): a single root-to-leaf
  /// descent following the cell whose key equals the state's component
  /// at each level. Returns the leaf's entries or nullptr when the
  /// exact path does not exist. Ticks `counter` per inspected cell.
  const std::vector<LeafEntry>* ExactLookup(const ContextState& state,
                                            AccessCounter* counter = nullptr) const;

  /// ---- Size accounting (paper Fig. 5/6) ----

  /// Total `[key, pointer]` cells over all internal nodes.
  size_t CellCount() const { return cell_count_; }
  /// Internal + leaf nodes.
  size_t NodeCount() const { return node_count_; }
  /// Distinct root-to-leaf paths (= distinct context states stored).
  size_t PathCount() const { return path_count_; }
  /// Total leaf entries.
  size_t LeafEntryCount() const { return leaf_entry_count_; }
  /// Cells·kCellBytes + leaf entries·kLeafEntryBytes — the paper's
  /// *modeled* bytes (Fig. 5 right), deliberately not the process
  /// footprint. See `MeasuredByteSize()` for what the structure
  /// actually occupies; bench_fig5 reports both side by side.
  size_t ByteSize() const {
    return cell_count_ * kCellBytes + leaf_entry_count_ * kLeafEntryBytes;
  }
  /// Bytes actually resident: every node's struct, cell and entry
  /// buffer capacities, and the heap payloads of clause strings. This
  /// is what the modeled figure under-counts (node overhead, vector
  /// slack, string storage) — reported next to `ByteSize()` in
  /// bench_fig5.
  size_t MeasuredByteSize() const;

 private:
  /// Walks the path for `state`, creating nodes as needed when
  /// `create` is true; returns the leaf (or nullptr when not found and
  /// `create` is false).
  Node* Descend(const ContextState& state, bool create);

  EnvironmentPtr env_;
  Ordering order_;
  std::unique_ptr<Node> root_;
  size_t cell_count_ = 0;
  size_t node_count_ = 1;  // root
  size_t path_count_ = 0;
  size_t leaf_entry_count_ = 0;
};

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_PROFILE_TREE_H_
