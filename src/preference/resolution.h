#ifndef CTXPREF_PREFERENCE_RESOLUTION_H_
#define CTXPREF_PREFERENCE_RESOLUTION_H_

#include <vector>

#include "context/distance.h"
#include "context/state.h"
#include "preference/flat_profile_tree.h"
#include "preference/profile.h"
#include "preference/profile_tree.h"
#include "util/counters.h"

namespace ctxpref {

/// Options controlling context resolution (paper §4.2-4.4).
struct ResolutionOptions {
  /// Metric used to order covering candidates (paper §4.3).
  DistanceKind distance = DistanceKind::kHierarchy;
  /// When true, only the exact path is considered (paper §4.4 case 1).
  bool exact_only = false;
  /// When false, Jaccard ties are NOT broken by hierarchy distance
  /// (the pre-erratum behavior — see `TieBreakByHierarchyDistance`).
  /// Exists as an ablation switch for the scenario harness; leave on
  /// everywhere else.
  bool jaccard_tie_break = true;
};

/// One candidate produced by Search_CS: a stored context state that
/// covers the query state, its distance from the query, and the leaf
/// entries (attribute clauses + scores) applicable in it.
struct CandidatePath {
  ContextState state;
  double distance = 0.0;
  std::vector<ProfileTree::LeafEntry> entries;
};

/// Relative-epsilon equality for accumulated candidate distances.
/// Per-level Jaccard (or level-count) distances are summed along the
/// tree path, so two mathematically tied candidates can differ by a few
/// ulps depending on accumulation order (0.1 + 0.2 != 0.3 in binary);
/// exact `==` would silently drop one of the tied candidates.
bool NearlyEqual(double a, double b);

/// Keeps only the minimum-distance candidates of `candidates` (several
/// on ties — the paper leaves tie-breaking to the system or the user;
/// `Rank_CS` consumes all tied candidates). Ties are detected with
/// `NearlyEqual`, not exact `==`. Order is preserved.
std::vector<CandidatePath> BestCandidates(std::vector<CandidatePath> candidates);

/// Jaccard ties need a secondary key: in degenerate hierarchies an
/// ancestor can have the *same* detailed extent as its child (see the
/// Property-3 erratum in DESIGN.md), so two candidates along one
/// covers-chain can tie at Jaccard distance 0 — and picking the upper
/// one would violate Def. 12's minimality. The hierarchy distance is
/// *strictly* covers-compatible (Property 2), so filtering Jaccard
/// ties by minimum hierarchy distance always leaves formal matches.
/// Applied automatically by the `ResolveBest` implementations when
/// `options.distance == kJaccard`.
std::vector<CandidatePath> TieBreakByHierarchyDistance(
    const ContextEnvironment& env, const ContextState& query,
    std::vector<CandidatePath> candidates);

/// Resolution over the profile tree: the paper's Search_CS
/// (Algorithm 1). The resolver borrows the tree (no ownership); the
/// tree must outlive it.
class TreeResolver {
 public:
  explicit TreeResolver(const ProfileTree* tree) : tree_(tree) {}

  /// Search_CS: descends the tree from the root; at each level follows
  /// every cell whose key equals the query component *or is one of its
  /// ancestors* (including `all`), accumulating per-parameter distance.
  /// Returns all covering candidate paths with their distances. Every
  /// inspected cell ticks `counter`.
  std::vector<CandidatePath> SearchCS(const ContextState& query,
                                      const ResolutionOptions& options = {},
                                      AccessCounter* counter = nullptr) const;

  /// Search_CS followed by minimum-distance selection — the complete
  /// context resolution step for one query state. Empty result means no
  /// stored state covers the query (the query then runs as a
  /// non-contextual query, paper §4.2).
  std::vector<CandidatePath> ResolveBest(const ContextState& query,
                                         const ResolutionOptions& options = {},
                                         AccessCounter* counter = nullptr) const;

  const ProfileTree& tree() const { return *tree_; }

 private:
  void Recurse(const ProfileTree::Node& node, size_t level,
               const ContextState& query, const ResolutionOptions& options,
               std::vector<double>& step_by_param, std::vector<ValueRef>& path,
               std::vector<CandidatePath>& out, AccessCounter* counter) const;

  const ProfileTree* tree_;
};

/// Resolution over the arena-flattened tree (`FlatProfileTree`) — a
/// drop-in replacement for `TreeResolver` with identical semantics
/// (same candidate order, same canonical env-order distances, same
/// tie-breaking), used by the serving path. Unlike the pointer
/// resolver it materializes full `CandidatePath`s (state + copied
/// entries) only for the *winning* candidates of `ResolveBest`;
/// `SearchCS` still materializes everything, for diagnostics and the
/// differential tests.
class FlatResolver {
 public:
  explicit FlatResolver(const FlatProfileTree* tree) : tree_(tree) {}

  std::vector<CandidatePath> SearchCS(const ContextState& query,
                                      const ResolutionOptions& options = {},
                                      AccessCounter* counter = nullptr) const;

  std::vector<CandidatePath> ResolveBest(const ContextState& query,
                                         const ResolutionOptions& options = {},
                                         AccessCounter* counter = nullptr) const;

  const FlatProfileTree& tree() const { return *tree_; }

 private:
  const FlatProfileTree* tree_;
};

/// ---- Formal (specification-level) resolution, used by tests ----

/// All distinct states stored in `profile` (expanded from descriptors)
/// that cover `query` (Def. 10/11).
std::vector<ContextState> CoveringStates(const Profile& profile,
                                         const ContextState& query);

/// The matches of Def. 12: covering states that are minimal under the
/// covers partial order (no other covering state is covered by them).
/// Property 2/3 guarantee the minimum-distance candidate of Search_CS
/// is always one of these.
std::vector<ContextState> FormalMatches(const Profile& profile,
                                        const ContextState& query);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_RESOLUTION_H_
