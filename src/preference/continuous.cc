#include "preference/continuous.h"

namespace ctxpref {

StatusOr<size_t> ContinuousQueryEngine::RegisterCurrentContext(
    std::vector<db::Predicate> selections, QueryOptions options,
    Callback callback) {
  if (callback == nullptr) {
    return Status::InvalidArgument("continuous query needs a callback");
  }
  Registration reg;
  reg.alive = true;
  reg.follows_context = true;
  reg.selections = std::move(selections);
  reg.options = options;
  reg.callback = std::move(callback);
  registrations_.push_back(std::move(reg));
  return registrations_.size() - 1;
}

StatusOr<size_t> ContinuousQueryEngine::RegisterFixed(
    ExtendedDescriptor context, std::vector<db::Predicate> selections,
    QueryOptions options, Callback callback) {
  if (callback == nullptr) {
    return Status::InvalidArgument("continuous query needs a callback");
  }
  if (context.empty()) {
    return Status::InvalidArgument(
        "fixed continuous query needs a non-empty context (use "
        "RegisterCurrentContext to follow the ambient state)");
  }
  Registration reg;
  reg.alive = true;
  reg.follows_context = false;
  reg.fixed_context = std::move(context);
  reg.selections = std::move(selections);
  reg.options = options;
  reg.callback = std::move(callback);
  registrations_.push_back(std::move(reg));
  return registrations_.size() - 1;
}

Status ContinuousQueryEngine::Unregister(size_t id) {
  if (id >= registrations_.size() || !registrations_[id].alive) {
    return Status::NotFound("no continuous query with id " +
                            std::to_string(id));
  }
  registrations_[id].alive = false;
  registrations_[id].callback = nullptr;
  return Status::OK();
}

size_t ContinuousQueryEngine::active() const {
  size_t n = 0;
  for (const Registration& r : registrations_) n += r.alive ? 1 : 0;
  return n;
}

Status ContinuousQueryEngine::EnsureFreshTree() {
  if (tree_.has_value() && tree_version_ == profile_->version()) {
    return Status::OK();
  }
  StatusOr<ProfileTree> tree = ProfileTree::Build(*profile_);
  if (!tree.ok()) return tree.status();
  tree_.emplace(std::move(*tree));
  tree_version_ = profile_->version();
  return Status::OK();
}

Status ContinuousQueryEngine::Evaluate(size_t id, Registration& reg,
                                       size_t* fired) {
  ContextualQuery query;
  if (reg.follows_context) {
    if (!current_.has_value()) return Status::OK();  // Nothing to do yet.
    StatusOr<CompositeDescriptor> cod =
        CompositeDescriptor::ForState(profile_->env(), *current_);
    if (!cod.ok()) return cod.status();
    query.context = ExtendedDescriptor::FromComposite(std::move(*cod));
  } else {
    query.context = reg.fixed_context;
  }
  query.selections = reg.selections;

  TreeResolver resolver(&*tree_);
  StatusOr<QueryResult> result =
      RankCS(*relation_, query, resolver, reg.options);
  if (!result.ok()) return result.status();

  if (!reg.evaluated || result->tuples != reg.last_tuples) {
    reg.last_tuples = result->tuples;
    reg.evaluated = true;
    reg.callback(id, *result);
    ++*fired;
  }
  return Status::OK();
}

StatusOr<size_t> ContinuousQueryEngine::OnContext(
    const ContextState& current) {
  CTXPREF_RETURN_IF_ERROR(current.Validate(profile_->env()));
  CTXPREF_RETURN_IF_ERROR(EnsureFreshTree());
  const bool context_changed =
      !current_.has_value() || !(*current_ == current);
  current_ = current;
  size_t fired = 0;
  for (size_t id = 0; id < registrations_.size(); ++id) {
    Registration& reg = registrations_[id];
    if (!reg.alive) continue;
    if (reg.follows_context && !context_changed && reg.evaluated) continue;
    if (!reg.follows_context && reg.evaluated) continue;  // Fixed: no-op.
    CTXPREF_RETURN_IF_ERROR(Evaluate(id, reg, &fired));
  }
  return fired;
}

StatusOr<size_t> ContinuousQueryEngine::OnProfileChange() {
  CTXPREF_RETURN_IF_ERROR(EnsureFreshTree());
  size_t fired = 0;
  for (size_t id = 0; id < registrations_.size(); ++id) {
    Registration& reg = registrations_[id];
    if (!reg.alive) continue;
    CTXPREF_RETURN_IF_ERROR(Evaluate(id, reg, &fired));
  }
  return fired;
}

}  // namespace ctxpref
