#ifndef CTXPREF_PREFERENCE_REPLICATED_QUERY_CACHE_H_
#define CTXPREF_PREFERENCE_REPLICATED_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "preference/query_cache.h"
#include "util/mutex.h"

namespace ctxpref {

class ThreadPool;

/// Log-based cache coherence for replicated query caches
/// (docs/coherence.md; ROADMAP item 2).
///
/// The eager scheme (`ProfileStore` calling
/// `ContextQueryTree::InvalidateUser` on every publish) makes every
/// writer take every cache's shard locks — fine for one shared cache,
/// a global serialization point once the query tree is replicated
/// across serving threads. `CoherenceLog` decouples them: a writer
/// appends one `{user, serving_version}` invalidation record to its
/// own append-only log buffer (one mutex, no cache locks), and each
/// replica *consumes* the logs on its own schedule — dropping dead
/// entries from its private tree and advancing a consumed-version
/// clock. A replica may serve a cache hit iff its clock covers the
/// pinned snapshot's serving version; otherwise the read falls through
/// to the uncached miss path.
///
/// Correctness splits into two independent guarantees:
///
///   1. **Byte-identical fresh serving** needs no coherence at all:
///      cache entries are tagged with the store-wide monotone serving
///      version and a fresh hit requires an exact tag match, so a
///      replica that has consumed nothing can still never serve a
///      wrong answer — only a stale *entry* that misses.
///   2. **Bounded staleness of replica state**: once a replica's clock
///      is >= V, every invalidation record with version <= V whose
///      append completed before the consume began has been applied, so
///      no entry older than `staleness_window` versions behind its
///      user's publish at V survives in that replica.
///
/// The differential + chaos suites (tests/coherence_*_test.cc) pin
/// both properties.
class CoherenceLog {
 public:
  /// One invalidation record. `version` is the serving version the
  /// user's profile was published under (it doubles as the clock
  /// watermark); `drop_all` marks a user removal — every entry of the
  /// user dies regardless of any retention window.
  struct Record {
    std::string user;
    uint64_t version = 0;
    bool drop_all = false;
  };

  static constexpr size_t kDefaultWriterBuffers = 4;

  /// `num_consumers` cursors are tracked per buffer (one per replica);
  /// records are truncated once every consumer has passed them.
  explicit CoherenceLog(size_t num_consumers,
                        size_t num_buffers = kDefaultWriterBuffers);

  CoherenceLog(const CoherenceLog&) = delete;
  CoherenceLog& operator=(const CoherenceLog&) = delete;

  /// Writer side: appends `{user, version}` to the calling thread's
  /// buffer (stable thread -> buffer mapping, so one writer's records
  /// stay in order) and advances the append watermark. O(1) amortized;
  /// takes only that buffer's mutex — never a cache lock.
  void Append(const std::string& user, uint64_t version,
              bool drop_all = false);

  /// Consumer side: drains every buffer past consumer `id`'s cursor,
  /// invoking `apply` per record in buffer order, and truncates
  /// records every consumer has passed. Returns the number of records
  /// applied. `apply` runs with no log lock held (it takes cache shard
  /// locks). The caller must serialize calls per consumer id
  /// (`ReplicatedQueryCache` holds the replica's consume mutex).
  size_t Consume(size_t id, const std::function<void(const Record&)>& apply);

  /// The highest version whose append has completed (release order:
  /// reading W here means every record of the writer that published W
  /// is visible). The clock target a consume step may advance to.
  uint64_t max_appended() const {
    return max_appended_.load(std::memory_order_acquire);
  }

  /// Records currently retained (appended, not yet truncated — i.e.
  /// not yet consumed by the slowest consumer). The log-depth gauge.
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }

  size_t num_consumers() const { return num_consumers_; }
  size_t num_buffers() const { return buffers_.size(); }

  /// Registers a hook invoked after every append (outside the buffer
  /// lock) — `ReplicatedQueryCache` uses it to kick background
  /// consume tasks onto a `util::ThreadPool`. Must be set before
  /// writers start appending; pass nullptr to clear.
  void SetAppendListener(std::function<void()> listener) {
    listener_ = std::move(listener);
  }

 private:
  /// One per-writer append-only buffer. `base` is the logical index of
  /// `records[0]`; cursors are logical indices, so truncation (erasing
  /// a consumed prefix and advancing `base`) never invalidates them.
  struct Buffer {
    mutable util::Mutex mu{util::LockRank::kCoherenceLog,
                           "CoherenceLog.Buffer.mu"};
    uint64_t base GUARDED_BY(mu) = 0;
    std::vector<Record> records GUARDED_BY(mu);
    std::vector<uint64_t> cursors GUARDED_BY(mu);
  };

  Buffer& BufferForThisThread();

  size_t num_consumers_;
  std::atomic<uint64_t> max_appended_{0};
  std::atomic<size_t> depth_{0};
  std::function<void()> listener_;  ///< Set before writers start.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// N private `ContextQueryTree` replicas kept coherent through a
/// `CoherenceLog`: serving threads read their own replica with no
/// cross-thread cache contention, writers append one log record per
/// publish, and each replica's consume step applies the records and
/// advances its clock. `storage::ServeQueryReplicated` is the serving
/// entry point; the gate is `Covers(replica, pinned_version)`.
class ReplicatedQueryCache {
 public:
  /// When the consume step runs. `kInlineAtLookup`:
  /// `ServeQueryReplicated` drains the log before every gate check, so
  /// the clock always covers the pinned version (the refuse path never
  /// fires) at the cost of a log-drain per query — the deterministic
  /// mode the harness and the differential tests use. `kBackground`:
  /// consume tasks are kicked onto a `util::ThreadPool` by appends
  /// (and by `Consume` calls the owner schedules); lookups between
  /// kicks may find the clock behind the pinned version and refuse —
  /// the bounded-staleness path `bench_coherence` measures.
  enum class ConsumeMode { kInlineAtLookup, kBackground };

  struct Options {
    size_t num_replicas = 2;
    /// Per-replica `ContextQueryTree` capacity (0 = unbounded) and
    /// shard count. Replicas default to one shard: the tree is
    /// per-serving-thread already, so striping buys nothing.
    size_t capacity_per_replica = 0;
    size_t num_shards = 1;
    size_t num_writer_buffers = CoherenceLog::kDefaultWriterBuffers;
    /// How many serving versions behind a record's version an entry
    /// may be and still survive the consume step — the retention the
    /// degradation ladder's stale rung reads through
    /// `LookupAtOrBefore`. 0 = drop everything below the record's
    /// version (strictest hygiene, no stale rung).
    uint64_t staleness_window = 8;
    ConsumeMode mode = ConsumeMode::kInlineAtLookup;
  };

  ReplicatedQueryCache(EnvironmentPtr env, Ordering order, Options options);
  /// Default options (delegates; a defaulted `Options` argument would
  /// need the nested class's member initializers before the enclosing
  /// class is complete, which GCC rejects).
  ReplicatedQueryCache(EnvironmentPtr env, Ordering order);

  ReplicatedQueryCache(const ReplicatedQueryCache&) = delete;
  ReplicatedQueryCache& operator=(const ReplicatedQueryCache&) = delete;

  size_t num_replicas() const { return replicas_.size(); }
  const Options& options() const { return options_; }
  CoherenceLog& log() { return log_; }
  const CoherenceLog& log() const { return log_; }

  /// Replica `r`'s private tree. Callers serve through it exactly like
  /// a single shared cache (`CachedRankCS`, `LookupAtOrBefore`);
  /// coherence is the wrapper's job, not the tree's.
  ContextQueryTree& replica(size_t r) { return replicas_[r]->tree; }
  const ContextQueryTree& replica(size_t r) const {
    return replicas_[r]->tree;
  }

  /// Stable thread -> replica mapping for callers that don't manage
  /// replica indices themselves.
  size_t ReplicaForThisThread() const;

  /// Replica `r`'s consumed-version clock.
  uint64_t clock(size_t r) const {
    return replicas_[r]->clock.load(std::memory_order_acquire);
  }

  /// The coherence gate: may replica `r` serve a hit for a snapshot
  /// pinned at `version`? True iff the replica's clock covers it.
  bool Covers(size_t r, uint64_t version) const {
    return clock(r) >= version;
  }

  /// Runs replica `r`'s consume step: reads the append watermark,
  /// drains the log, drops dead entries from the replica's tree
  /// (`InvalidateUserBelow` with the staleness window; removals drop
  /// everything), then advances the clock to the watermark. Serialized
  /// per replica; safe to call from any thread. Returns the number of
  /// records applied.
  size_t Consume(size_t r);

  /// `Consume` on every replica; returns total records applied.
  size_t ConsumeAll();

  /// Aggregated stats over all replica trees.
  CacheStats Stats() const;

  /// How far the slowest replica's clock trails the append watermark,
  /// in serving versions — the invalidation-lag figure
  /// `bench_coherence` plots against write rate.
  uint64_t InvalidationLagVersions() const;

  /// Ticks the stale-refuse counter; called by the serving layer when
  /// the gate fails and the read falls through to the miss path.
  static void RecordStaleRefuse();

  /// Enables background mode kicks: every append (and any caller)
  /// may schedule consume tasks for lagging replicas onto `pool`.
  /// At most one task per replica is in flight. The pool must outlive
  /// this object (or be detached with nullptr first).
  void SetBackgroundPool(ThreadPool* pool);

 private:
  struct Replica {
    explicit Replica(EnvironmentPtr env, Ordering order, size_t capacity,
                     size_t num_shards);

    ContextQueryTree tree;           ///< Internally synchronized.
    std::atomic<uint64_t> clock{0};  ///< Consumed-version clock.
    std::atomic<bool> consume_queued{false};  ///< Background-kick latch.
    /// Serializes this replica's consume step: watermark read, drain,
    /// apply, clock advance happen atomically with respect to other
    /// consumers of the same replica — the clock never claims coverage
    /// of records another in-flight consume has drained but not yet
    /// applied.
    util::Mutex consume_mu{util::LockRank::kCoherenceConsume,
                           "ReplicatedQueryCache.Replica.consume_mu"};
  };

  void KickBackgroundConsume();

  Options options_;
  CoherenceLog log_;
  std::atomic<ThreadPool*> pool_{nullptr};
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_REPLICATED_QUERY_CACHE_H_
