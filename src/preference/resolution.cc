#include "preference/resolution.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/metrics.h"
#include "util/trace.h"

namespace ctxpref {

namespace {

/// Resolution metrics, registered once on first resolve. Counters are
/// always ticked (one relaxed add each); the latency histogram records
/// only under `MetricsRegistry::TimingEnabled()`.
struct ResolveMetrics {
  Counter& resolutions;
  Counter& candidates;
  LatencyHistogram& latency;

  static ResolveMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static ResolveMetrics* m = new ResolveMetrics{
        reg.GetCounter("ctxpref_resolve_total",
                       "Context resolutions (ResolveBest calls)"),
        reg.GetCounter("ctxpref_resolve_candidates_total",
                       "Winning candidate paths returned by ResolveBest"),
        reg.GetHistogram("ctxpref_resolve_latency_ns",
                         "End-to-end ResolveBest latency"),
    };
    return *m;
  }
};

}  // namespace

bool NearlyEqual(double a, double b) {
  // Relative to the larger magnitude, with an absolute floor of 1 so
  // distances near zero compare sanely (all distances here are small
  // non-negative sums of per-level terms in [0, n]).
  constexpr double kEps = 1e-9;
  return std::abs(a - b) <= kEps * std::max({1.0, std::abs(a), std::abs(b)});
}

std::vector<CandidatePath> BestCandidates(
    std::vector<CandidatePath> candidates) {
  if (candidates.empty()) return candidates;
  double best = candidates.front().distance;
  for (const CandidatePath& c : candidates) {
    if (c.distance < best) best = c.distance;
  }
  std::vector<CandidatePath> out;
  for (CandidatePath& c : candidates) {
    if (NearlyEqual(c.distance, best)) out.push_back(std::move(c));
  }
  return out;
}

void TreeResolver::Recurse(const ProfileTree::Node& node, size_t level,
                           const ContextState& query,
                           const ResolutionOptions& options,
                           std::vector<double>& step_by_param,
                           std::vector<ValueRef>& path,
                           std::vector<CandidatePath>& out,
                           AccessCounter* counter) const {
  const ContextEnvironment& env = tree_->env();
  const size_t n = env.size();
  if (level == n) {
    // `node` is a leaf: emit the candidate (reorder path components
    // from tree-level order back to environment order). The distance
    // is the per-parameter steps summed in *environment* order — the
    // canonical accumulation order of `StateDistance`. Summing along
    // the tree path instead would drift from the oracle by a few ulps
    // whenever the ordering permutes the parameters (FP addition is
    // not associative), which `NearlyEqual` papers over for the
    // winning set but not for exact flat-vs-pointer equality.
    double distance = 0.0;
    for (const double step : step_by_param) distance += step;
    std::vector<ValueRef> values(n);
    for (size_t l = 0; l < n; ++l) {
      values[tree_->ordering().param_at_level(l)] = path[l];
    }
    out.push_back(
        CandidatePath{ContextState(std::move(values)), distance, node.entries});
    return;
  }

  const size_t param = tree_->ordering().param_at_level(level);
  const Hierarchy& h = env.parameter(param).hierarchy();
  const ValueRef qv = query.value(param);

  for (const ProfileTree::Node::Cell& cell : node.cells) {
    if (counter != nullptr) counter->AddCell();
    if (options.exact_only) {
      if (cell.key != qv) continue;
    } else if (!h.IsAncestorOrSelf(cell.key, qv)) {
      continue;
    }
    double step = 0.0;
    switch (options.distance) {
      case DistanceKind::kHierarchy:
        step = h.LevelDistance(cell.key.level, qv.level);
        break;
      case DistanceKind::kJaccard:
        step = h.JaccardDistance(cell.key, qv);
        break;
    }
    path.push_back(cell.key);
    step_by_param[param] = step;
    Recurse(*cell.child, level + 1, query, options, step_by_param, path, out,
            counter);
    path.pop_back();
  }
}

std::vector<CandidatePath> TreeResolver::SearchCS(
    const ContextState& query, const ResolutionOptions& options,
    AccessCounter* counter) const {
  // The tree-descent phase: cell matching and per-level distance
  // computation happen together inside Recurse.
  TraceSpan span("resolve.search_cs");
  std::vector<CandidatePath> out;
  std::vector<ValueRef> path;
  path.reserve(tree_->env().size());
  std::vector<double> step_by_param(tree_->env().size(), 0.0);
  Recurse(tree_->root(), 0, query, options, step_by_param, path, out, counter);
  if (span.active()) {
    span.Tag("candidates", static_cast<uint64_t>(out.size()));
    span.Tag("distance", options.distance == DistanceKind::kJaccard
                             ? "jaccard"
                             : "hierarchy");
  }
  return out;
}

std::vector<CandidatePath> TieBreakByHierarchyDistance(
    const ContextEnvironment& env, const ContextState& query,
    std::vector<CandidatePath> candidates) {
  if (candidates.size() <= 1) return candidates;
  double best = HierarchyStateDistance(env, candidates.front().state, query);
  std::vector<double> dist(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    dist[i] = HierarchyStateDistance(env, candidates[i].state, query);
    best = std::min(best, dist[i]);
  }
  std::vector<CandidatePath> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (NearlyEqual(dist[i], best)) out.push_back(std::move(candidates[i]));
  }
  return out;
}

std::vector<CandidatePath> TreeResolver::ResolveBest(
    const ContextState& query, const ResolutionOptions& options,
    AccessCounter* counter) const {
  ResolveMetrics& metrics = ResolveMetrics::Get();
  TraceSpan span("resolve");
  ScopedLatency latency(&metrics.latency);
  std::vector<CandidatePath> all = SearchCS(query, options, counter);
  std::vector<CandidatePath> best;
  {
    TraceSpan select("resolve.best_candidates");
    best = BestCandidates(std::move(all));
  }
  if (options.distance == DistanceKind::kJaccard && options.jaccard_tie_break) {
    TraceSpan tie_break("resolve.tie_break");
    best = TieBreakByHierarchyDistance(tree_->env(), query, std::move(best));
  }
  metrics.resolutions.Increment();
  metrics.candidates.Increment(best.size());
  if (span.active()) {
    span.Tag("candidates", static_cast<uint64_t>(best.size()));
  }
  return best;
}

std::vector<CandidatePath> FlatResolver::SearchCS(
    const ContextState& query, const ResolutionOptions& options,
    AccessCounter* counter) const {
  TraceSpan span("resolve.search_cs");
  std::vector<FlatProfileTree::FlatCandidate> flats;
  std::vector<uint32_t> paths;
  tree_->SearchCS(query, options.distance, options.exact_only, counter, flats,
                  paths);
  const size_t n = tree_->num_levels();
  std::vector<CandidatePath> out;
  out.reserve(flats.size());
  for (size_t i = 0; i < flats.size(); ++i) {
    out.push_back(CandidatePath{tree_->StateOf(paths.data() + i * n),
                                flats[i].distance,
                                tree_->EntriesOf(flats[i].leaf)});
  }
  if (span.active()) {
    span.Tag("candidates", static_cast<uint64_t>(out.size()));
    span.Tag("distance", options.distance == DistanceKind::kJaccard
                             ? "jaccard"
                             : "hierarchy");
  }
  return out;
}

std::vector<CandidatePath> FlatResolver::ResolveBest(
    const ContextState& query, const ResolutionOptions& options,
    AccessCounter* counter) const {
  ResolveMetrics& metrics = ResolveMetrics::Get();
  TraceSpan span("resolve");
  ScopedLatency latency(&metrics.latency);
  std::vector<FlatProfileTree::FlatCandidate> flats;
  std::vector<uint32_t> paths;
  {
    TraceSpan search("resolve.search_cs");
    tree_->SearchCS(query, options.distance, options.exact_only, counter,
                    flats, paths);
  }
  const size_t n = tree_->num_levels();
  // Minimum-distance selection on the compact candidates (same
  // `NearlyEqual` tie semantics and order preservation as
  // `BestCandidates`), then the Jaccard tie-break — all before
  // materialization, so losing candidates never have their state or
  // entries copied out of the arena.
  std::vector<size_t> winners;
  {
    TraceSpan select("resolve.best_candidates");
    double best = 0.0;
    for (size_t i = 0; i < flats.size(); ++i) {
      if (i == 0 || flats[i].distance < best) best = flats[i].distance;
    }
    winners.reserve(flats.size());
    for (size_t i = 0; i < flats.size(); ++i) {
      if (NearlyEqual(flats[i].distance, best)) winners.push_back(i);
    }
  }
  if (options.distance == DistanceKind::kJaccard && options.jaccard_tie_break &&
      winners.size() > 1) {
    TraceSpan tie_break("resolve.tie_break");
    std::vector<double> dist(winners.size());
    double best = 0.0;
    for (size_t w = 0; w < winners.size(); ++w) {
      dist[w] =
          tree_->HierarchyDistanceOf(paths.data() + winners[w] * n, query);
      if (w == 0 || dist[w] < best) best = dist[w];
    }
    std::vector<size_t> kept;
    kept.reserve(winners.size());
    for (size_t w = 0; w < winners.size(); ++w) {
      if (NearlyEqual(dist[w], best)) kept.push_back(winners[w]);
    }
    winners = std::move(kept);
  }
  std::vector<CandidatePath> out;
  out.reserve(winners.size());
  for (const size_t i : winners) {
    out.push_back(CandidatePath{tree_->StateOf(paths.data() + i * n),
                                flats[i].distance,
                                tree_->EntriesOf(flats[i].leaf)});
  }
  metrics.resolutions.Increment();
  metrics.candidates.Increment(out.size());
  if (span.active()) {
    span.Tag("candidates", static_cast<uint64_t>(out.size()));
  }
  return out;
}

std::vector<ContextState> CoveringStates(const Profile& profile,
                                         const ContextState& query) {
  std::vector<ContextState> out;
  std::unordered_set<ContextState, ContextStateHash> seen;
  for (const ContextualPreference& pref : profile.preferences()) {
    for (ContextState& s : pref.States(profile.env())) {
      if (!s.Covers(profile.env(), query)) continue;
      if (seen.insert(s).second) out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<ContextState> FormalMatches(const Profile& profile,
                                        const ContextState& query) {
  std::vector<ContextState> covering = CoveringStates(profile, query);
  std::vector<ContextState> out;
  for (const ContextState& s : covering) {
    bool minimal = true;
    for (const ContextState& t : covering) {
      if (t != s && s.Covers(profile.env(), t)) {
        // Some other covering state t is strictly below s: s is not a
        // match per Def. 12(ii).
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(s);
  }
  return out;
}

}  // namespace ctxpref
