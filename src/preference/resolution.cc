#include "preference/resolution.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ctxpref {

bool NearlyEqual(double a, double b) {
  // Relative to the larger magnitude, with an absolute floor of 1 so
  // distances near zero compare sanely (all distances here are small
  // non-negative sums of per-level terms in [0, n]).
  constexpr double kEps = 1e-9;
  return std::abs(a - b) <= kEps * std::max({1.0, std::abs(a), std::abs(b)});
}

std::vector<CandidatePath> BestCandidates(
    std::vector<CandidatePath> candidates) {
  if (candidates.empty()) return candidates;
  double best = candidates.front().distance;
  for (const CandidatePath& c : candidates) {
    if (c.distance < best) best = c.distance;
  }
  std::vector<CandidatePath> out;
  for (CandidatePath& c : candidates) {
    if (NearlyEqual(c.distance, best)) out.push_back(std::move(c));
  }
  return out;
}

void TreeResolver::Recurse(const ProfileTree::Node& node, size_t level,
                           const ContextState& query,
                           const ResolutionOptions& options,
                           double distance_so_far, std::vector<ValueRef>& path,
                           std::vector<CandidatePath>& out,
                           AccessCounter* counter) const {
  const ContextEnvironment& env = tree_->env();
  const size_t n = env.size();
  if (level == n) {
    // `node` is a leaf: emit the candidate (reorder path components
    // from tree-level order back to environment order).
    std::vector<ValueRef> values(n);
    for (size_t l = 0; l < n; ++l) {
      values[tree_->ordering().param_at_level(l)] = path[l];
    }
    out.push_back(CandidatePath{ContextState(std::move(values)),
                                distance_so_far, node.entries});
    return;
  }

  const size_t param = tree_->ordering().param_at_level(level);
  const Hierarchy& h = env.parameter(param).hierarchy();
  const ValueRef qv = query.value(param);

  for (const ProfileTree::Node::Cell& cell : node.cells) {
    if (counter != nullptr) counter->AddCell();
    if (options.exact_only) {
      if (cell.key != qv) continue;
    } else if (!h.IsAncestorOrSelf(cell.key, qv)) {
      continue;
    }
    double step = 0.0;
    switch (options.distance) {
      case DistanceKind::kHierarchy:
        step = h.LevelDistance(cell.key.level, qv.level);
        break;
      case DistanceKind::kJaccard:
        step = h.JaccardDistance(cell.key, qv);
        break;
    }
    path.push_back(cell.key);
    Recurse(*cell.child, level + 1, query, options, distance_so_far + step,
            path, out, counter);
    path.pop_back();
  }
}

std::vector<CandidatePath> TreeResolver::SearchCS(
    const ContextState& query, const ResolutionOptions& options,
    AccessCounter* counter) const {
  std::vector<CandidatePath> out;
  std::vector<ValueRef> path;
  path.reserve(tree_->env().size());
  Recurse(tree_->root(), 0, query, options, 0.0, path, out, counter);
  return out;
}

std::vector<CandidatePath> TieBreakByHierarchyDistance(
    const ContextEnvironment& env, const ContextState& query,
    std::vector<CandidatePath> candidates) {
  if (candidates.size() <= 1) return candidates;
  double best = HierarchyStateDistance(env, candidates.front().state, query);
  std::vector<double> dist(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    dist[i] = HierarchyStateDistance(env, candidates[i].state, query);
    best = std::min(best, dist[i]);
  }
  std::vector<CandidatePath> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (NearlyEqual(dist[i], best)) out.push_back(std::move(candidates[i]));
  }
  return out;
}

std::vector<CandidatePath> TreeResolver::ResolveBest(
    const ContextState& query, const ResolutionOptions& options,
    AccessCounter* counter) const {
  std::vector<CandidatePath> best =
      BestCandidates(SearchCS(query, options, counter));
  if (options.distance == DistanceKind::kJaccard) {
    best = TieBreakByHierarchyDistance(tree_->env(), query, std::move(best));
  }
  return best;
}

std::vector<ContextState> CoveringStates(const Profile& profile,
                                         const ContextState& query) {
  std::vector<ContextState> out;
  std::unordered_set<ContextState, ContextStateHash> seen;
  for (const ContextualPreference& pref : profile.preferences()) {
    for (ContextState& s : pref.States(profile.env())) {
      if (!s.Covers(profile.env(), query)) continue;
      if (seen.insert(s).second) out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<ContextState> FormalMatches(const Profile& profile,
                                        const ContextState& query) {
  std::vector<ContextState> covering = CoveringStates(profile, query);
  std::vector<ContextState> out;
  for (const ContextState& s : covering) {
    bool minimal = true;
    for (const ContextState& t : covering) {
      if (t != s && s.Covers(profile.env(), t)) {
        // Some other covering state t is strictly below s: s is not a
        // match per Def. 12(ii).
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(s);
  }
  return out;
}

}  // namespace ctxpref
