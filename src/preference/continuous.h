#ifndef CTXPREF_PREFERENCE_CONTINUOUS_H_
#define CTXPREF_PREFERENCE_CONTINUOUS_H_

#include <functional>
#include <optional>
#include <vector>

#include "preference/contextual_query.h"
#include "preference/profile_tree.h"
#include "util/status.h"

namespace ctxpref {

/// Standing contextual queries over a changing ambient context —
/// context-aware information filters in the spirit of the related work
/// the paper cites (§6, [6]), built on the paper's own resolution
/// machinery.
///
/// A registered query is re-evaluated whenever the current context
/// changes (`OnContext`) or the profile is edited (`OnProfileChange`),
/// and its callback fires when — and only when — its ranked answer
/// actually changed. Two registration flavors:
///
///  * current-context queries follow the ambient state ("keep my
///    recommendations fresh as I move around");
///  * fixed-context queries pin an explicit extended descriptor and
///    react to profile edits only ("watch what my Athens-with-family
///    plan looks like as I tune my preferences").
///
/// The engine borrows the relation and profile (no ownership) and
/// rebuilds its profile tree lazily when `profile->version()` moves.
class ContinuousQueryEngine {
 public:
  /// Fired with the registration id and the new result.
  using Callback =
      std::function<void(size_t id, const QueryResult& result)>;

  ContinuousQueryEngine(const db::Relation* relation, const Profile* profile)
      : relation_(relation), profile_(profile) {}

  /// Registers a query that follows the ambient context. `selections`
  /// restrict eligible tuples as in `ContextualQuery`. Returns the id.
  StatusOr<size_t> RegisterCurrentContext(
      std::vector<db::Predicate> selections, QueryOptions options,
      Callback callback);

  /// Registers a query pinned to `context`.
  StatusOr<size_t> RegisterFixed(ExtendedDescriptor context,
                                 std::vector<db::Predicate> selections,
                                 QueryOptions options, Callback callback);

  /// Unregisters; NotFound for unknown/already-removed ids.
  Status Unregister(size_t id);

  /// Live registrations.
  size_t active() const;

  /// Feeds a new ambient context state; re-evaluates every
  /// current-context query. Returns how many callbacks fired.
  StatusOr<size_t> OnContext(const ContextState& current);

  /// Re-evaluates *all* queries against the (possibly edited) profile
  /// at the last seen context. Returns how many callbacks fired.
  StatusOr<size_t> OnProfileChange();

 private:
  struct Registration {
    bool alive = false;
    bool follows_context = false;
    ExtendedDescriptor fixed_context;
    std::vector<db::Predicate> selections;
    QueryOptions options;
    Callback callback;
    std::vector<db::ScoredTuple> last_tuples;
    bool evaluated = false;
  };

  /// Rebuilds the tree if the profile version moved.
  Status EnsureFreshTree();

  /// Evaluates one registration; fires its callback on change.
  /// Increments `*fired` if it did.
  Status Evaluate(size_t id, Registration& reg, size_t* fired);

  const db::Relation* relation_;
  const Profile* profile_;
  std::optional<ProfileTree> tree_;
  uint64_t tree_version_ = 0;
  std::optional<ContextState> current_;
  std::vector<Registration> registrations_;
};

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_CONTINUOUS_H_
