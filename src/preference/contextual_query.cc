#include "preference/contextual_query.h"

#include <cmath>

#include "util/metrics.h"
#include "util/trace.h"

namespace ctxpref {

RankMetrics& RankMetrics::Get() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  static RankMetrics* m = new RankMetrics{
      reg.GetCounter("ctxpref_rank_cs_queries_total",
                     "Plain (uncached) Rank_CS query evaluations"),
      reg.GetCounter("ctxpref_rank_cs_cached_queries_total",
                     "CachedRankCS query evaluations"),
      reg.GetCounter("ctxpref_rank_cs_states_total",
                     "Query context states evaluated across Rank_CS runs"),
      reg.GetCounter("ctxpref_rank_cs_tuples_scored_total",
                     "Tuples scored (ranker additions) across Rank_CS runs"),
      reg.GetCounter("ctxpref_rank_cs_deadline_exceeded_total",
                     "Rank_CS evaluations aborted at a cancellation point"),
      reg.GetCounter("ctxpref_rank_cs_states_abandoned_total",
                     "Query states left unevaluated by deadline aborts"),
      reg.GetHistogram("ctxpref_rank_cs_latency_ns",
                       "End-to-end Rank_CS latency (plain and cached)"),
  };
  return *m;
}

const char* ScoreDiscountToString(ScoreDiscount d) {
  switch (d) {
    case ScoreDiscount::kNone:
      return "none";
    case ScoreDiscount::kInverseDistance:
      return "inverse-distance";
    case ScoreDiscount::kExponential:
      return "exponential";
  }
  return "?";
}

double ApplyDiscount(ScoreDiscount discount, double score, double distance) {
  switch (discount) {
    case ScoreDiscount::kNone:
      return score;
    case ScoreDiscount::kInverseDistance:
      return score / (1.0 + distance);
    case ScoreDiscount::kExponential:
      return score * std::exp2(-distance);
  }
  return score;
}

StatusOr<QueryResult> RankCS(const db::Relation& relation,
                             const ContextualQuery& query,
                             const ContextEnvironment& env,
                             const ResolveFn& resolve,
                             const QueryOptions& options,
                             AccessCounter* counter) {
  RankMetrics& metrics = RankMetrics::Get();
  TraceSpan span("rank_cs");
  ScopedLatency latency(&metrics.latency);
  QueryResult result;
  db::Ranker ranker(options.combine);
  ranker.ReserveDense(relation.size());

  std::vector<ContextState> states = query.context.EnumerateStates(env);
  if (states.empty()) {
    // No context at all: treat as the (all, ..., all) state so that
    // non-contextual preferences (empty descriptors) still apply.
    states.push_back(ContextState::AllState(env));
  }

  // Ticked per query, not per tuple: one relaxed add in the inner loop
  // per scored tuple would be measurable in the benches.
  uint64_t tuples_scored = 0;
  size_t states_done = 0;
  // Partial-work accounting for deadline aborts: which state the loop
  // died in, how many finished, how much was already scored.
  auto deadline_exceeded = [&]() -> Status {
    metrics.deadline_exceeded.Increment();
    metrics.states.Increment(states_done);
    metrics.states_abandoned.Increment(states.size() - states_done);
    metrics.tuples_scored.Increment(tuples_scored);
    return Status::DeadlineExceeded(
        "rank_cs: deadline exceeded after " + std::to_string(states_done) +
        "/" + std::to_string(states.size()) + " states (" +
        std::to_string(tuples_scored) + " tuples scored)");
  };
  for (const ContextState& s : states) {
    // Cancellation point: one null check when no deadline is set, one
    // injected-clock read otherwise. Per state, not per tuple — the
    // selection inner loop is the hot path.
    if (options.deadline.Expired()) return deadline_exceeded();
    CTXPREF_RETURN_IF_ERROR(s.Validate(env));
    TraceSpan state_span("rank_cs.state");
    std::vector<CandidatePath> best = resolve(s, options.resolution, counter);
    for (const CandidatePath& cand : best) {
      // Cancellation point: before each candidate's selections run
      // against the relation (resolution already paid for, selection —
      // the expensive part — not yet).
      if (options.deadline.Expired()) return deadline_exceeded();
      for (const ProfileTree::LeafEntry& entry : cand.entries) {
        StatusOr<db::Predicate> pred =
            db::Predicate::Create(relation.schema(), entry.clause.attribute,
                                  entry.clause.op, entry.clause.value);
        if (!pred.ok()) return pred.status();
        std::vector<db::RowId> rows =
            options.indexes != nullptr ? options.indexes->Select(*pred)
            : options.columns != nullptr ? options.columns->Select(*pred)
                                         : relation.Select(*pred);
        for (db::RowId row : rows) {
          // Restricting selections, if any, must all pass.
          bool eligible = true;
          for (const db::Predicate& sel : query.selections) {
            if (!sel.Eval(relation.row(row))) {
              eligible = false;
              break;
            }
          }
          if (eligible) {
            ranker.Add(row, ApplyDiscount(options.discount, entry.score,
                                          cand.distance));
            ++tuples_scored;
          }
        }
      }
    }
    result.traces.push_back(QueryResult::Trace{s, std::move(best)});
    ++states_done;
  }

  result.tuples =
      options.top_k > 0 ? ranker.TopK(options.top_k) : ranker.Ranked();
  metrics.queries.Increment();
  metrics.states.Increment(states.size());
  metrics.tuples_scored.Increment(tuples_scored);
  if (span.active()) {
    span.Tag("states", static_cast<uint64_t>(states.size()));
    span.Tag("tuples", static_cast<uint64_t>(result.tuples.size()));
    span.Tag("scored", tuples_scored);
  }
  return result;
}

StatusOr<QueryResult> RankCS(const db::Relation& relation,
                             const ContextualQuery& query,
                             const TreeResolver& resolver,
                             const QueryOptions& options,
                             AccessCounter* counter) {
  return RankCS(
      relation, query, resolver.tree().env(),
      [&resolver](const ContextState& s, const ResolutionOptions& opts,
                  AccessCounter* c) { return resolver.ResolveBest(s, opts, c); },
      options, counter);
}

StatusOr<QueryResult> RankCS(const db::Relation& relation,
                             const ContextualQuery& query,
                             const FlatResolver& resolver,
                             const QueryOptions& options,
                             AccessCounter* counter) {
  return RankCS(
      relation, query, resolver.tree().env(),
      [&resolver](const ContextState& s, const ResolutionOptions& opts,
                  AccessCounter* c) { return resolver.ResolveBest(s, opts, c); },
      options, counter);
}

StatusOr<QueryResult> RankCS(const db::Relation& relation,
                             const ContextualQuery& query,
                             const SequentialStore& store,
                             const QueryOptions& options,
                             AccessCounter* counter) {
  return RankCS(
      relation, query, store.env(),
      [&store](const ContextState& s, const ResolutionOptions& opts,
               AccessCounter* c) { return store.ResolveBest(s, opts, c); },
      options, counter);
}

}  // namespace ctxpref
