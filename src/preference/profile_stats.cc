#include "preference/profile_stats.h"

#include <unordered_set>

#include "preference/sequential_store.h"
#include "util/string_util.h"

namespace ctxpref {

ProfileStats ComputeProfileStats(const Profile& profile,
                                 size_t coverage_samples, uint64_t seed) {
  const ContextEnvironment& env = profile.env();
  const size_t n = env.size();
  ProfileStats stats;
  stats.num_preferences = profile.size();
  stats.active_domain.assign(n, 0);
  stats.level_histogram.resize(n);
  for (size_t i = 0; i < n; ++i) {
    stats.level_histogram[i].assign(
        env.parameter(i).hierarchy().num_levels(), 0);
  }

  std::vector<Profile::FlatEntry> flat = profile.Flatten();
  stats.flat_entries = flat.size();

  std::unordered_set<ContextState, ContextStateHash> states;
  std::vector<std::unordered_set<uint64_t>> values(n);
  for (const Profile::FlatEntry& e : flat) {
    if (states.insert(e.state).second) {
      for (size_t i = 0; i < n; ++i) {
        const ValueRef v = e.state.value(i);
        values[i].insert((static_cast<uint64_t>(v.level) << 32) | v.id);
        ++stats.level_histogram[i][v.level];
      }
    }
  }
  stats.distinct_states = states.size();
  for (size_t i = 0; i < n; ++i) {
    stats.active_domain[i] = values[i].size();
  }

  if (!profile.empty()) {
    double sum = 0.0;
    stats.min_score = 1.0;
    stats.max_score = 0.0;
    for (const ContextualPreference& pref : profile.preferences()) {
      sum += pref.score();
      stats.min_score = std::min(stats.min_score, pref.score());
      stats.max_score = std::max(stats.max_score, pref.score());
    }
    stats.mean_score = sum / static_cast<double>(profile.size());
  }

  if (coverage_samples > 0 && !profile.empty()) {
    // Sampled coverage: how often a random detailed state has at least
    // one covering stored state.
    SequentialStore store = SequentialStore::Build(profile);
    Rng rng(seed);
    size_t covered = 0;
    for (size_t s = 0; s < coverage_samples; ++s) {
      std::vector<ValueRef> components(n);
      for (size_t i = 0; i < n; ++i) {
        const Hierarchy& h = env.parameter(i).hierarchy();
        components[i] =
            ValueRef{0, static_cast<ValueId>(rng.Uniform(h.level_size(0)))};
      }
      ContextState state(std::move(components));
      if (!store.SearchCovering(state).empty()) ++covered;
    }
    stats.coverage_samples = coverage_samples;
    stats.coverage_estimate =
        static_cast<double>(covered) / static_cast<double>(coverage_samples);
  }
  return stats;
}

std::string ProfileStats::ToString(const ContextEnvironment& env) const {
  std::string out;
  out += "preferences:      " + std::to_string(num_preferences) + "\n";
  out += "distinct states:  " + std::to_string(distinct_states) + "\n";
  out += "flat entries:     " + std::to_string(flat_entries) + "\n";
  out += "scores:           min " + FormatDouble(min_score, 3) + ", mean " +
         FormatDouble(mean_score, 3) + ", max " + FormatDouble(max_score, 3) +
         "\n";
  for (size_t i = 0; i < active_domain.size(); ++i) {
    const Hierarchy& h = env.parameter(i).hierarchy();
    out += "parameter " + env.parameter(i).name() + ": active domain " +
           std::to_string(active_domain[i]) + "; level usage";
    for (size_t l = 0; l < level_histogram[i].size(); ++l) {
      out += " " + h.level_name(static_cast<LevelIndex>(l)) + "=" +
             std::to_string(level_histogram[i][l]);
    }
    out += "\n";
  }
  if (coverage_samples > 0) {
    out += "coverage:         " +
           FormatDouble(100.0 * coverage_estimate, 1) + "% of " +
           std::to_string(coverage_samples) + " sampled detailed states\n";
  }
  return out;
}

}  // namespace ctxpref
