#include "preference/profile_tree.h"

#include "util/string_util.h"

namespace ctxpref {

ProfileTree::ProfileTree(EnvironmentPtr env, Ordering order)
    : env_(std::move(env)),
      order_(std::move(order)),
      root_(std::make_unique<Node>()) {
  assert(order_.size() == env_->size());
}

StatusOr<ProfileTree> ProfileTree::Build(const Profile& profile,
                                         const Ordering& order) {
  if (order.size() != profile.env().size()) {
    return Status::InvalidArgument("ordering size does not match environment");
  }
  ProfileTree tree(profile.env_ptr(), order);
  for (const ContextualPreference& pref : profile.preferences()) {
    CTXPREF_RETURN_IF_ERROR(tree.Insert(pref));
  }
  return tree;
}

StatusOr<ProfileTree> ProfileTree::Build(const Profile& profile) {
  return Build(profile, GreedyOrdering(profile));
}

ProfileTree::Node* ProfileTree::Descend(const ContextState& state,
                                        bool create) {
  Node* node = root_.get();
  const size_t n = env_->size();
  for (size_t level = 0; level < n; ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    Node* next = nullptr;
    for (Node::Cell& cell : node->cells) {
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) {
      if (!create) return nullptr;
      node->cells.push_back(Node::Cell{key, std::make_unique<Node>()});
      ++cell_count_;
      ++node_count_;
      next = node->cells.back().child.get();
      if (level + 1 == n) ++path_count_;  // A new leaf was created.
    }
    node = next;
  }
  return node;
}

Status ProfileTree::InsertState(const ContextState& state,
                                const AttributeClause& clause, double score) {
  Node* leaf = Descend(state, /*create=*/true);
  for (LeafEntry& e : leaf->entries) {
    if (e.clause == clause) {
      if (e.score == score) {
        ++e.ref;  // Shared by another preference.
        return Status::OK();
      }
      return Status::Conflict(
          "state " + state.ToString(*env_) + " already scores clause '" +
          clause.ToString() + "' at " + FormatDouble(e.score) +
          "; refusing new score " + FormatDouble(score));
    }
  }
  leaf->entries.push_back(LeafEntry{clause, score});
  ++leaf_entry_count_;
  return Status::OK();
}

Status ProfileTree::Insert(const ContextualPreference& pref) {
  std::vector<ContextState> states = pref.States(*env_);
  // Pass 1: conflict check only, so a failed insert leaves the tree
  // untouched (a single root-to-leaf traversal per state, paper §3.3).
  for (const ContextState& s : states) {
    const Node* leaf = Descend(s, /*create=*/false);
    if (leaf == nullptr) continue;
    for (const LeafEntry& e : leaf->entries) {
      if (e.clause == pref.clause() && e.score != pref.score()) {
        return Status::Conflict(
            "preference conflicts at state " + s.ToString(*env_) +
            ": clause '" + pref.clause().ToString() + "' already scored " +
            FormatDouble(e.score));
      }
    }
  }
  // Pass 2: materialize paths.
  for (const ContextState& s : states) {
    CTXPREF_RETURN_IF_ERROR(InsertState(s, pref.clause(), pref.score()));
  }
  return Status::OK();
}

Status ProfileTree::RemoveState(const ContextState& state,
                                const AttributeClause& clause, double score) {
  // Collect the node chain for pruning.
  std::vector<Node*> chain = {root_.get()};
  const size_t n = env_->size();
  for (size_t level = 0; level < n; ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    Node* next = nullptr;
    for (Node::Cell& cell : chain.back()->cells) {
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) {
      return Status::NotFound("no path for state " + state.ToString(*env_));
    }
    chain.push_back(next);
  }
  Node* leaf = chain.back();
  bool erased = false;
  for (auto it = leaf->entries.begin(); it != leaf->entries.end(); ++it) {
    if (it->clause == clause && it->score == score) {
      if (--it->ref > 0) return Status::OK();  // Still shared.
      leaf->entries.erase(it);
      --leaf_entry_count_;
      erased = true;
      break;
    }
  }
  if (!erased) {
    return Status::NotFound("no entry (" + clause.ToString() + ", " +
                            FormatDouble(score) + ") at state " +
                            state.ToString(*env_));
  }
  if (!leaf->entries.empty()) return Status::OK();

  // The path is dead: prune childless nodes bottom-up.
  --path_count_;
  for (size_t level = n; level > 0; --level) {
    Node* child = chain[level];
    if (!child->cells.empty() || !child->entries.empty()) break;
    Node* parent = chain[level - 1];
    const ValueRef key = state.value(order_.param_at_level(level - 1));
    for (auto it = parent->cells.begin(); it != parent->cells.end(); ++it) {
      if (it->key == key) {
        parent->cells.erase(it);
        --cell_count_;
        --node_count_;
        break;
      }
    }
  }
  return Status::OK();
}

Status ProfileTree::Remove(const ContextualPreference& pref) {
  for (const ContextState& s : pref.States(*env_)) {
    CTXPREF_RETURN_IF_ERROR(RemoveState(s, pref.clause(), pref.score()));
  }
  return Status::OK();
}

namespace {

size_t StringHeapBytes(const std::string& s) {
  // Heap payload approximated by capacity; SSO strings count 0.
  return s.capacity() > sizeof(std::string) ? s.capacity() + 1 : 0;
}

size_t MeasuredNodeBytes(const ProfileTree::Node& node) {
  size_t bytes = sizeof(ProfileTree::Node);
  bytes += node.cells.capacity() * sizeof(ProfileTree::Node::Cell);
  bytes += node.entries.capacity() * sizeof(ProfileTree::LeafEntry);
  for (const ProfileTree::LeafEntry& e : node.entries) {
    bytes += StringHeapBytes(e.clause.attribute);
    if (e.clause.value.type() == db::ColumnType::kString) {
      bytes += StringHeapBytes(e.clause.value.AsString());
    }
  }
  for (const ProfileTree::Node::Cell& cell : node.cells) {
    bytes += MeasuredNodeBytes(*cell.child);
  }
  return bytes;
}

}  // namespace

size_t ProfileTree::MeasuredByteSize() const {
  return sizeof(*this) + MeasuredNodeBytes(*root_);
}

const std::vector<ProfileTree::LeafEntry>* ProfileTree::ExactLookup(
    const ContextState& state, AccessCounter* counter) const {
  const Node* node = root_.get();
  const size_t n = env_->size();
  for (size_t level = 0; level < n; ++level) {
    const ValueRef key = state.value(order_.param_at_level(level));
    const Node* next = nullptr;
    for (const Node::Cell& cell : node->cells) {
      if (counter != nullptr) counter->AddCell();
      if (cell.key == key) {
        next = cell.child.get();
        break;
      }
    }
    if (next == nullptr) return nullptr;
    if (counter != nullptr) counter->AddNode();
    node = next;
  }
  return &node->entries;
}

}  // namespace ctxpref
