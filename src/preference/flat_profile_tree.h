#ifndef CTXPREF_PREFERENCE_FLAT_PROFILE_TREE_H_
#define CTXPREF_PREFERENCE_FLAT_PROFILE_TREE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "context/distance.h"
#include "context/environment.h"
#include "context/state.h"
#include "preference/ordering.h"
#include "preference/profile_tree.h"
#include "util/counters.h"

namespace ctxpref {

/// An immutable, arena-flattened rendering of a `ProfileTree`, built
/// once per `ProfileSnapshot` publish (docs/serving.md). The pointer
/// tree stays the mutable build/reference structure; this is the
/// serving-path copy the resolver descends.
///
/// Layout (all storage is a handful of contiguous vectors):
///  - Value interning: each context parameter gets a dense dictionary
///    over its extended domain — `key = level_offset[level] + id` — so
///    cell keys are single `uint32_t`s and "is this cell an ancestor of
///    the query component?" is one table load plus one integer compare
///    (the per-query ancestor chain is precomputed per level).
///  - Nodes: level ℓ of the trie stores its cells level-contiguously,
///    grouped per node by a CSR offset array and *key-sorted within
///    each node* so a descent binary-searches the handful of ancestor
///    keys instead of scanning every cell. Each cell carries its
///    original insertion index, which doubles as the child "pointer":
///    insertion-index `c` of level ℓ *is* node `c` of level ℓ+1 (and,
///    at the last level, leaf `c`). Matches are re-sorted by that index
///    before recursing, so candidates still come out in exactly the
///    pointer tree's (insertion-order DFS) order.
///  - Leaves: leaf entries live in one flat array behind a CSR offset
///    array; attribute clauses are deduplicated into a dictionary so an
///    entry is `(clause id, score, ref)` — 16 bytes, no strings.
///
/// Instances are immutable after `Build` and shared across reader
/// threads without locks (they hold no mutable state; search scratch
/// is caller-owned or thread-local). See docs/static_analysis.md.
class FlatProfileTree {
 public:
  /// Sentinel for "no ancestor at this level covers the query".
  static constexpr uint32_t kNoKey = std::numeric_limits<uint32_t>::max();
  static constexpr uint32_t kNoLeaf = std::numeric_limits<uint32_t>::max();

  /// One leaf entry: `(Ai θ a, score)` with the clause interned.
  /// Mirrors `ProfileTree::LeafEntry` (including the ref count, so a
  /// rebuild after removals round-trips exactly).
  struct FlatEntry {
    uint32_t clause_id = 0;
    uint32_t ref = 1;
    double score = 0.0;
  };

  /// One covering candidate found by `SearchCS`: the leaf it ends in
  /// and its distance from the query summed in *environment* order
  /// (the canonical accumulation order of `StateDistance`; see
  /// DESIGN.md on FP accumulation-order drift). The root-to-leaf key
  /// path lives in the caller's flat `path_keys` buffer at
  /// `[index * num_levels, (index + 1) * num_levels)`.
  struct FlatCandidate {
    uint32_t leaf = 0;
    double distance = 0.0;
  };

  /// Flattens `tree`. Candidate emission order is the pointer tree's
  /// (insertion-order DFS) order, preserved via the cells' insertion
  /// indices.
  static FlatProfileTree Build(const ProfileTree& tree);

  const ContextEnvironment& env() const { return *env_; }
  const EnvironmentPtr& env_ptr() const { return env_; }
  const Ordering& ordering() const { return order_; }
  /// Tree depth = number of context parameters.
  size_t num_levels() const { return levels_.size(); }

  /// Search_CS (paper Algorithm 1) over integer keys: descends from the
  /// root following every cell whose key is the query component or one
  /// of its ancestors, appending covering candidates to `out` and their
  /// root-to-leaf key paths to `path_keys` (both are cleared first).
  /// `exact_only` restricts to the exact path (paper §4.4 case 1).
  /// Ticks `counter` per key comparison (linear cells inspected on
  /// small nodes, binary-search probes on large ones — the flat cost
  /// model, deliberately below the pointer tree's |edom| scans).
  void SearchCS(const ContextState& query, DistanceKind kind, bool exact_only,
                AccessCounter* counter, std::vector<FlatCandidate>& out,
                std::vector<uint32_t>& path_keys) const;

  /// Exact-match lookup (paper §4.4 first case): returns the leaf id of
  /// `state`'s path, or `kNoLeaf` when absent.
  uint32_t ExactLookup(const ContextState& state,
                       AccessCounter* counter = nullptr) const;

  /// The stored context state a root-to-leaf key path denotes, in
  /// environment component order.
  ContextState StateOf(const uint32_t* path) const;

  /// Hierarchy distance (Def. 14/15) between `StateOf(path)` and
  /// `query`, summed in environment order — the Jaccard tie-break key,
  /// computable without materializing the state.
  double HierarchyDistanceOf(const uint32_t* path,
                             const ContextState& query) const;

  /// Leaf entry ranges (leaf ids are dense in [0, PathCount())).
  const FlatEntry* entries_begin(uint32_t leaf) const {
    return entries_.data() + leaf_begin_[leaf];
  }
  const FlatEntry* entries_end(uint32_t leaf) const {
    return entries_.data() + leaf_begin_[leaf + 1];
  }
  const AttributeClause& clause(uint32_t clause_id) const {
    return clauses_[clause_id];
  }
  size_t num_clauses() const { return clauses_.size(); }

  /// Copies a leaf's entries back into the pointer tree's entry form.
  std::vector<ProfileTree::LeafEntry> EntriesOf(uint32_t leaf) const;

  /// ---- Size accounting (satellite to paper Fig. 5) ----

  /// Structural counts; match the pointer tree's by construction.
  size_t CellCount() const { return cell_count_; }
  size_t NodeCount() const { return node_count_; }
  size_t PathCount() const { return leaf_begin_.empty() ? 0 : leaf_begin_.size() - 1; }
  size_t LeafEntryCount() const { return entries_.size(); }

  /// Bytes actually resident in the arena (vector capacities plus the
  /// clause dictionary's string payloads) — the "measured" column next
  /// to the paper's modeled `ProfileTree::ByteSize()` in bench_fig5.
  size_t MeasuredByteSize() const;

 private:
  /// Per-parameter dense dictionary over the extended domain.
  struct Interner {
    /// level_offset[l] = first key of hierarchy level l;
    /// level_offset.back() = extended domain size.
    std::vector<uint32_t> level_offset;
    /// level_of[key] = hierarchy level of `key` (inverse of the
    /// partition above, precomputed so descents never binary-search).
    std::vector<uint16_t> level_of;

    uint32_t Intern(ValueRef v) const { return level_offset[v.level] + v.id; }
    ValueRef Unintern(uint32_t key) const {
      const LevelIndex l = static_cast<LevelIndex>(level_of[key]);
      return ValueRef{l, key - level_offset[l]};
    }
  };

  /// One trie level: cells of all the level's nodes, level-contiguous
  /// and key-sorted within each node's `cell_begin` (CSR) segment.
  /// `child[c]` is the cell's insertion index within the level — the
  /// implicit pointer to node `child[c]` of the next level.
  struct Level {
    std::vector<uint32_t> cell_begin;  ///< size = node count + 1
    std::vector<uint32_t> keys;        ///< interned keys, sorted per node
    std::vector<uint32_t> child;       ///< insertion index = next-level node
  };

  /// Reusable per-query buffers (cover tables, descent path, match
  /// lists); fetched thread-locally so steady-state searches allocate
  /// nothing. Defined in the .cc.
  struct Scratch;
  static Scratch& TlsScratch();

  void Descend(size_t level, uint32_t node, AccessCounter* counter,
               Scratch& scratch, std::vector<FlatCandidate>& out,
               std::vector<uint32_t>& path_keys) const;

  EnvironmentPtr env_;
  Ordering order_;
  std::vector<Interner> interners_;  ///< Indexed by parameter (env order).
  std::vector<Level> levels_;        ///< Indexed by tree level.
  /// Per-level offsets into the per-query cover/match scratch arrays:
  /// level l owns slots [cover_off_[l], cover_off_[l+1]), one per
  /// hierarchy level of its parameter.
  std::vector<uint32_t> cover_off_;
  std::vector<uint32_t> leaf_begin_; ///< CSR into entries_; size leaves+1.
  std::vector<FlatEntry> entries_;
  std::vector<AttributeClause> clauses_;  ///< Deduplicated dictionary.
  size_t cell_count_ = 0;
  size_t node_count_ = 0;
};

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_FLAT_PROFILE_TREE_H_
