#ifndef CTXPREF_PREFERENCE_TREE_DOT_H_
#define CTXPREF_PREFERENCE_TREE_DOT_H_

#include <string>

#include "preference/profile_tree.h"

namespace ctxpref {

/// Renders a profile tree as Graphviz DOT — the paper's Fig. 4, for
/// any profile. Internal nodes show their level's parameter name;
/// edges carry the cell keys; leaf nodes list `(clause, score)`
/// entries. Feed to `dot -Tpng` to visualize a profile's index.
std::string ProfileTreeToDot(const ProfileTree& tree);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_TREE_DOT_H_
