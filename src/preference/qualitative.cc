#include "preference/qualitative.h"

#include <algorithm>

#include "context/distance.h"

namespace ctxpref {

namespace {

bool MatchesAll(const std::vector<db::Predicate>& preds,
                const db::Tuple& tuple) {
  for (const db::Predicate& p : preds) {
    if (!p.Eval(tuple)) return false;
  }
  return true;
}

std::string PredicatesToString(const std::vector<db::Predicate>& preds,
                               const db::Schema& schema) {
  if (preds.empty()) return "<any>";
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out += " and ";
    out += preds[i].ToString(schema);
  }
  return out;
}

}  // namespace

StatusOr<QualitativePreference> QualitativePreference::Create(
    CompositeDescriptor descriptor, std::vector<db::Predicate> better,
    std::vector<db::Predicate> worse) {
  if (better.empty() && worse.empty()) {
    return Status::InvalidArgument(
        "qualitative preference needs at least one side predicated "
        "(better/worse both empty would prefer everything to everything)");
  }
  return QualitativePreference(std::move(descriptor), std::move(better),
                               std::move(worse));
}

bool QualitativePreference::Dominates(const db::Tuple& t1,
                                      const db::Tuple& t2) const {
  return MatchesAll(better_, t1) && MatchesAll(worse_, t2);
}

std::string QualitativePreference::ToString(const ContextEnvironment& env,
                                            const db::Schema& schema) const {
  return "[" + descriptor_.ToString(env) + "] (" +
         PredicatesToString(better_, schema) + ") > (" +
         PredicatesToString(worse_, schema) + ")";
}

Status QualitativeProfile::Insert(QualitativePreference pref) {
  const size_t idx = prefs_.size();
  for (const ContextState& s : pref.descriptor().EnumerateStates(*env_)) {
    CTXPREF_RETURN_IF_ERROR(s.Validate(*env_));
    index_.GetOrCreate(s).push_back(idx);
  }
  prefs_.push_back(std::move(pref));
  return Status::OK();
}

std::vector<const QualitativePreference*> QualitativeProfile::Resolve(
    const ContextState& query, DistanceKind distance,
    AccessCounter* counter) const {
  // Collect covering states with distances, keep the minimum-distance
  // set (ties included), and return their preferences.
  struct Candidate {
    double dist;
    const std::vector<size_t>* pref_ids;
  };
  std::vector<Candidate> candidates;
  index_.VisitCovering(
      query,
      [&](const ContextState& stored, const std::vector<size_t>& ids) {
        candidates.push_back(
            Candidate{StateDistance(distance, *env_, stored, query), &ids});
      },
      counter);
  if (candidates.empty()) return {};
  double best = candidates.front().dist;
  for (const Candidate& c : candidates) best = std::min(best, c.dist);

  std::vector<const QualitativePreference*> out;
  std::vector<bool> taken(prefs_.size(), false);
  for (const Candidate& c : candidates) {
    if (c.dist != best) continue;
    for (size_t id : *c.pref_ids) {
      if (!taken[id]) {
        taken[id] = true;
        out.push_back(&prefs_[id]);
      }
    }
  }
  return out;
}

std::vector<db::RowId> Winnow(
    const db::Relation& relation,
    const std::vector<const QualitativePreference*>& prefs) {
  std::vector<db::RowId> out;
  for (db::RowId i = 0; i < relation.size(); ++i) {
    bool dominated = false;
    for (db::RowId j = 0; j < relation.size() && !dominated; ++j) {
      if (i == j) continue;
      for (const QualitativePreference* p : prefs) {
        if (p->Dominates(relation.row(j), relation.row(i))) {
          dominated = true;
          break;
        }
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

int PreferenceOpinion(const QualitativePreference& pref, const db::Tuple& t1,
                      const db::Tuple& t2) {
  const bool fwd = pref.Dominates(t1, t2);
  const bool bwd = pref.Dominates(t2, t1);
  if (fwd && !bwd) return 1;
  if (bwd && !fwd) return -1;
  return 0;
}

bool ParetoDominates(const std::vector<const QualitativePreference*>& prefs,
                     const db::Tuple& t1, const db::Tuple& t2) {
  bool any_strict = false;
  for (const QualitativePreference* p : prefs) {
    const int opinion = PreferenceOpinion(*p, t1, t2);
    if (opinion < 0) return false;
    if (opinion > 0) any_strict = true;
  }
  return any_strict;
}

bool PrioritizedDominates(
    const std::vector<const QualitativePreference*>& prefs,
    const db::Tuple& t1, const db::Tuple& t2) {
  for (const QualitativePreference* p : prefs) {
    const int opinion = PreferenceOpinion(*p, t1, t2);
    if (opinion != 0) return opinion > 0;
  }
  return false;
}

std::vector<db::RowId> WinnowWith(
    const db::Relation& relation,
    const std::function<bool(const db::Tuple&, const db::Tuple&)>& dominates) {
  std::vector<db::RowId> out;
  for (db::RowId i = 0; i < relation.size(); ++i) {
    bool dominated = false;
    for (db::RowId j = 0; j < relation.size() && !dominated; ++j) {
      if (i != j && dominates(relation.row(j), relation.row(i))) {
        dominated = true;
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

std::vector<db::RowId> ContextualWinnow(const db::Relation& relation,
                                        const QualitativeProfile& profile,
                                        const ContextState& query,
                                        DistanceKind distance,
                                        AccessCounter* counter) {
  std::vector<const QualitativePreference*> prefs =
      profile.Resolve(query, distance, counter);
  return Winnow(relation, prefs);
}

}  // namespace ctxpref
