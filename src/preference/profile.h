#ifndef CTXPREF_PREFERENCE_PROFILE_H_
#define CTXPREF_PREFERENCE_PROFILE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "context/environment.h"
#include "context/state.h"
#include "db/schema.h"
#include "preference/preference.h"
#include "util/status.h"

namespace ctxpref {

/// What to do when an inserted preference conflicts (Def. 6) with
/// stored ones. The paper's system rejects and notifies the user
/// (kReject); the other policies automate the two choices a notified
/// user has.
enum class ConflictPolicy {
  kReject,        ///< Refuse the insert (default; the paper's behavior).
  kKeepExisting,  ///< Silently drop the new preference.
  /// Rescore every conflicting stored preference to the new score,
  /// then insert. Note a conflicting preference is rescored across
  /// *all* its states, not only the overlapping ones.
  kOverwrite,
};

/// A profile P (paper Def. 7): a set of non-conflicting contextual
/// preferences, the source of truth the `ProfileTree` indexes.
///
/// Conflicts (Def. 6) are detected at insertion time, as the paper
/// prescribes: the profile maintains a state-level inverted map
/// (context state -> clauses & scores), so checking a new preference
/// costs O(|Context(cod)|) lookups instead of comparing against every
/// stored preference.
///
/// Mutations bump `version()`, which dependent structures (ProfileTree,
/// ContextQueryTree) use to detect staleness.
class Profile {
 public:
  explicit Profile(EnvironmentPtr env) : env_(std::move(env)) {}

  const ContextEnvironment& env() const { return *env_; }
  const EnvironmentPtr& env_ptr() const { return env_; }

  size_t size() const { return prefs_.size(); }
  bool empty() const { return prefs_.empty(); }
  const ContextualPreference& preference(size_t i) const { return prefs_[i]; }
  const std::vector<ContextualPreference>& preferences() const {
    return prefs_;
  }

  /// Monotone counter bumped on every successful mutation.
  uint64_t version() const { return version_; }

  /// Inserts a preference. Errors:
  ///  - Conflict (Def. 6): some covered state already carries the same
  ///    attribute clause with a *different* score; the message names
  ///    the offending state. The profile is unchanged.
  ///  - AlreadyExists: the identical preference is already present.
  Status Insert(ContextualPreference pref);

  /// Insert under an explicit conflict policy. With kKeepExisting a
  /// conflicting or duplicate insert is an OK no-op; with kOverwrite
  /// the conflicting stored preferences are rescored to `pref`'s score
  /// first. kReject behaves exactly like `Insert`.
  Status InsertWithPolicy(ContextualPreference pref, ConflictPolicy policy);

  /// Removes the preference at `index` (as listed by `preferences()`).
  Status Remove(size_t index);

  /// Replaces the score of the preference at `index`. Equivalent to
  /// Remove + Insert of the rescored preference; on conflict the
  /// profile is unchanged.
  Status UpdateScore(size_t index, double new_score);

  /// All (state, clause, score) entries expanded from every preference;
  /// the flat representation the sequential baseline scans and the
  /// profile tree indexes. Order: preference order, then state order.
  struct FlatEntry {
    ContextState state;
    const AttributeClause* clause;  ///< Points into this profile.
    double score;
    size_t pref_index;
  };
  std::vector<FlatEntry> Flatten() const;

  /// Serializes to the line format
  ///   `pref: <descriptor> => <attr> <op> <value> : <score>`
  /// with '#' comments; parse back with `FromText`.
  std::string ToText() const;

  /// Parses `ToText` output. Attribute-clause values are typed against
  /// `schema` when provided, else inferred (int64, double, bool,
  /// string, in that order). Errors with Corruption on malformed lines
  /// and Conflict on conflicting preferences.
  static StatusOr<Profile> FromText(EnvironmentPtr env, std::string_view text,
                                    const db::Schema* schema = nullptr);

 private:
  struct StateEntry {
    AttributeClause clause;
    double score;
    size_t pref_index;
  };

  /// Rebuilds state_index_ from prefs_ (used after removal).
  void RebuildIndex();

  /// Checks `pref` against the index; OK if insertable.
  Status CheckConflict(const ContextualPreference& pref,
                       const std::vector<ContextState>& states) const;

  EnvironmentPtr env_;
  std::vector<ContextualPreference> prefs_;
  std::unordered_map<ContextState, std::vector<StateEntry>, ContextStateHash>
      state_index_;
  uint64_t version_ = 0;
};

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_PROFILE_H_
