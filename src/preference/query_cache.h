#ifndef CTXPREF_PREFERENCE_QUERY_CACHE_H_
#define CTXPREF_PREFERENCE_QUERY_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "db/ranker.h"
#include "preference/contextual_query.h"
#include "preference/ordering.h"
#include "util/counters.h"
#include "util/histogram.h"

namespace ctxpref {

/// Point-in-time counter snapshot of a `ContextQueryTree` (aggregated
/// over all shards). Taken shard-by-shard, so under concurrent traffic
/// the fields are each exact per shard but the total is not a single
/// linearization point — fine for benchmarks and monitoring.
struct CacheStats {
  /// Total `Lookup` calls; every lookup is exactly one hit or miss, so
  /// `lookups == hits + misses` holds per shard and in aggregate.
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Stale-version drops: entries removed on touch because the profile
  /// moved past the version they were computed at. Every invalidation
  /// is also counted as a miss (the caller still has to recompute).
  uint64_t invalidations = 0;
  size_t size = 0;

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// The context query tree: the paper's second index structure,
/// announced in the contribution list ("caching the results of queries
/// based on their context", §1/§7; the dedicated section is elided in
/// the published text — this is our documented reconstruction, see
/// DESIGN.md).
///
/// Structure: `num_shards` tries, each isomorphic to the profile tree
/// and keyed by *query* context states; a state's shard is chosen by
/// hashing its component values, so concurrent queries over different
/// states mostly touch different locks (striped-lock pattern). Each
/// shard holds its own mutex, LRU list and capacity slice; each leaf
/// caches the ranked tuples and winning resolution candidates
/// previously computed for that state. Entries are validated against
/// the profile `version()` they were computed from and evicted LRU
/// beyond the shard capacity.
///
/// Thread safety: all public methods are safe to call concurrently.
/// `Lookup` returns a shared_ptr snapshot, so a reader may keep using
/// an entry after a concurrent `Put`/eviction/`InvalidateAll` has
/// removed it from the tree. See docs/concurrency.md.
class ContextQueryTree {
 public:
  static constexpr size_t kDefaultShards = 8;

  /// What a leaf caches for one context state: the ranked tuples plus
  /// the winning candidate paths that produced them, so cache hits can
  /// reconstruct the same resolution trace as the original miss.
  struct Entry {
    std::vector<db::ScoredTuple> tuples;
    std::vector<CandidatePath> candidates;
  };

  /// `capacity` = target number of cached states across all shards
  /// (0 = unbounded). It is split evenly over `num_shards` (rounded
  /// up, with `num_shards` clamped to `capacity` when the latter is
  /// smaller), so the effective global bound can exceed `capacity` by
  /// up to `num_shards - 1` entries, and the LRU order is exact per
  /// shard but only approximate globally. Pass `num_shards` = 1 for an
  /// exact bound and a single LRU domain.
  ContextQueryTree(EnvironmentPtr env, Ordering order, size_t capacity = 0,
                   size_t num_shards = kDefaultShards);

  const ContextEnvironment& env() const { return *env_; }
  size_t num_shards() const { return shards_.size(); }

  /// Aggregated counters; see the individual accessors below for the
  /// legacy one-at-a-time view.
  CacheStats Stats() const;

  /// Counters of one shard (index < `num_shards()`), exact under its
  /// lock — the per-shard view behind the aggregate `Stats()`.
  CacheStats ShardStats(size_t shard) const;

  /// Per-shard lookup-latency histogram (hits and misses together;
  /// the registry's global `ctxpref_query_cache_{hit,miss}_latency_ns`
  /// split by outcome instead). Populated only while
  /// `MetricsRegistry::TimingEnabled()`.
  HistogramSnapshot ShardLookupLatency(size_t shard) const;

  size_t size() const { return Stats().size; }
  uint64_t hits() const { return Stats().hits; }
  uint64_t misses() const { return Stats().misses; }
  uint64_t evictions() const { return Stats().evictions; }
  uint64_t invalidations() const { return Stats().invalidations; }

  /// Returns the cached entry for `state` if present and computed at
  /// `profile_version`; stale entries are dropped on touch (counted as
  /// both a miss and an invalidation). Ticks `counter` per inspected
  /// cell (the cache costs cells too). The returned snapshot stays
  /// valid after concurrent mutations.
  std::shared_ptr<const Entry> Lookup(const ContextState& state,
                                      uint64_t profile_version,
                                      AccessCounter* counter = nullptr);

  /// Caches `tuples` (and the resolution `candidates` that produced
  /// them) for `state` at `profile_version`, evicting the shard's
  /// least-recently-used state beyond the shard capacity.
  void Put(const ContextState& state, uint64_t profile_version,
           std::vector<db::ScoredTuple> tuples,
           std::vector<CandidatePath> candidates = {});

  /// Drops every cached entry (counters are kept).
  void InvalidateAll();

 private:
  struct Node;
  struct Leaf {
    std::shared_ptr<const Entry> entry;
    uint64_t version = 0;
    std::list<ContextState>::iterator lru_it;
  };
  struct Node {
    struct Cell {
      ValueRef key;
      std::unique_ptr<Node> child;
    };
    std::vector<Cell> cells;
    std::unique_ptr<Leaf> leaf;  // Set on leaf nodes only.
  };

  /// One lock stripe: an independent trie + LRU + counters.
  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<Node> root;
    std::list<ContextState> lru;  ///< Front = most recently used.
    size_t size = 0;
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    /// Deltas not yet flushed to the process-wide registry counters.
    /// Flushed together every kMetricsFlushStride lookups so the hot
    /// path pays plain increments under the already-held lock instead
    /// of global atomic RMWs; the registry may therefore lag the exact
    /// per-shard counters above by up to one stride per shard.
    uint64_t pending_lookups = 0;
    uint64_t pending_hits = 0;
    uint64_t pending_misses = 0;
    uint64_t pending_invalidations = 0;
    /// Lookup latency (hit + miss), recorded outside the shard lock
    /// and only while timing is enabled.
    LatencyHistogram lookup_latency;
  };

  Shard& ShardFor(const ContextState& state);

  /// Shard-local trie walk; caller holds the shard mutex.
  Node* Descend(Shard& shard, const ContextState& state, bool create,
                AccessCounter* counter);
  /// Removes the path for `state` from the shard's trie, pruning empty
  /// nodes; caller holds the shard mutex.
  void RemovePath(Shard& shard, const ContextState& state);

  EnvironmentPtr env_;
  Ordering order_;
  size_t shard_capacity_;  ///< Per shard; 0 = unbounded.
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Rank_CS with per-state caching through a `ContextQueryTree`.
///
/// Each query state's ranked tuples are cached independently and the
/// final answer combines the per-state lists under `options.combine`.
/// Correctness therefore requires an *associative* combine policy —
/// kMax or kMin; kAvg/kWeighted return InvalidArgument.
///
/// With `options.num_threads` > 1 the states are evaluated on a worker
/// pool and merged in state-enumeration order, so the result (tuples
/// and traces) is bit-identical to the single-threaded run.
StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const TreeResolver& resolver,
                                   const Profile& profile,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options = {},
                                   AccessCounter* counter = nullptr);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_QUERY_CACHE_H_
