#ifndef CTXPREF_PREFERENCE_QUERY_CACHE_H_
#define CTXPREF_PREFERENCE_QUERY_CACHE_H_

#include <list>
#include <memory>
#include <vector>

#include "db/ranker.h"
#include "preference/contextual_query.h"
#include "preference/ordering.h"
#include "util/counters.h"

namespace ctxpref {

/// The context query tree: the paper's second index structure,
/// announced in the contribution list ("caching the results of queries
/// based on their context", §1/§7; the dedicated section is elided in
/// the published text — this is our documented reconstruction, see
/// DESIGN.md).
///
/// Structure: a trie isomorphic to the profile tree, keyed by *query*
/// context states; each leaf caches the ranked tuples previously
/// computed for that state. Entries are validated against the profile
/// `version()` they were computed from and evicted LRU beyond
/// `capacity`.
class ContextQueryTree {
 public:
  /// `capacity` = maximum number of cached states (0 = unbounded).
  ContextQueryTree(EnvironmentPtr env, Ordering order, size_t capacity = 0);

  const ContextEnvironment& env() const { return *env_; }
  size_t size() const { return size_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  /// Returns the cached tuples for `state` if present and computed at
  /// `profile_version`; stale entries are dropped on touch. Ticks
  /// `counter` per inspected cell (the cache costs cells too).
  const std::vector<db::ScoredTuple>* Lookup(const ContextState& state,
                                             uint64_t profile_version,
                                             AccessCounter* counter = nullptr);

  /// Caches `tuples` for `state` at `profile_version`, evicting the
  /// least-recently-used state beyond capacity.
  void Put(const ContextState& state, uint64_t profile_version,
           std::vector<db::ScoredTuple> tuples);

  /// Drops every cached entry.
  void InvalidateAll();

 private:
  struct Node;
  struct Leaf {
    std::vector<db::ScoredTuple> tuples;
    uint64_t version = 0;
    std::list<ContextState>::iterator lru_it;
  };
  struct Node {
    struct Cell {
      ValueRef key;
      std::unique_ptr<Node> child;
    };
    std::vector<Cell> cells;
    std::unique_ptr<Leaf> leaf;  // Set on leaf nodes only.
  };

  Node* Descend(const ContextState& state, bool create,
                AccessCounter* counter);
  /// Removes the path for `state` from the trie, pruning empty nodes.
  void RemovePath(const ContextState& state);

  EnvironmentPtr env_;
  Ordering order_;
  size_t capacity_;
  std::unique_ptr<Node> root_;
  std::list<ContextState> lru_;  ///< Front = most recently used.
  size_t size_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// Rank_CS with per-state caching through a `ContextQueryTree`.
///
/// Each query state's ranked tuples are cached independently and the
/// final answer combines the per-state lists under `options.combine`.
/// Correctness therefore requires an *associative* combine policy —
/// kMax or kMin; kAvg/kWeighted return InvalidArgument.
StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const TreeResolver& resolver,
                                   const Profile& profile,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options = {},
                                   AccessCounter* counter = nullptr);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_QUERY_CACHE_H_
