#ifndef CTXPREF_PREFERENCE_QUERY_CACHE_H_
#define CTXPREF_PREFERENCE_QUERY_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/ranker.h"
#include "preference/contextual_query.h"
#include "preference/ordering.h"
#include "util/counters.h"
#include "util/histogram.h"
#include "util/mutex.h"

namespace ctxpref {

/// Point-in-time counter snapshot of a `ContextQueryTree` (aggregated
/// over all shards). Taken shard-by-shard, so under concurrent traffic
/// the fields are each exact per shard but the total is not a single
/// linearization point — fine for benchmarks and monitoring.
struct CacheStats {
  /// Total `Lookup` calls; every lookup is exactly one hit or miss, so
  /// `lookups == hits + misses` holds per shard and in aggregate.
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Version-skew drops: entries removed on touch because the profile
  /// moved past the version they were computed at (each such drop is
  /// also counted as a miss — the caller still has to recompute), plus
  /// entries dropped eagerly by `InvalidateUser` when a user's profile
  /// is swapped (those are not misses; no lookup happened).
  uint64_t invalidations = 0;
  size_t size = 0;

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// The context query tree: the paper's second index structure,
/// announced in the contribution list ("caching the results of queries
/// based on their context", §1/§7; the dedicated section is elided in
/// the published text — this is our documented reconstruction, see
/// DESIGN.md).
///
/// Structure: `num_shards` collections of tries; within a shard every
/// *user* owns one trie isomorphic to the profile tree and keyed by
/// *query* context states. A `(user, state)` pair's shard is chosen by
/// hashing the user id with the state's component values, so concurrent
/// queries over different users/states mostly touch different locks
/// (striped-lock pattern). Each shard holds its own mutex, LRU list and
/// capacity slice; each leaf caches the ranked tuples and winning
/// resolution candidates previously computed for that `(user, state)`.
/// Entries are tagged with the profile version they were computed from
/// — for server-side multi-user serving that is the `ProfileStore`
/// *serving* version of the published `ProfileSnapshot`, which is
/// monotone across reloads and user re-creation (`Profile::version()`
/// restarts on reload and can collide; see docs/serving.md) — and are
/// dropped on touch when the version moved, or eagerly by
/// `InvalidateUser` when a new profile version is published. Beyond the
/// shard capacity, entries are evicted LRU.
///
/// The single-user entry points (no user id) are sugar for the empty
/// user id "".
///
/// Thread safety: all public methods are safe to call concurrently.
/// `Lookup` returns a shared_ptr snapshot, so a reader may keep using
/// an entry after a concurrent `Put`/eviction/`InvalidateAll` has
/// removed it from the tree. See docs/concurrency.md.
class ContextQueryTree {
 public:
  static constexpr size_t kDefaultShards = 8;

  /// A shared immutable set of winning candidate paths. Entries hold
  /// the set behind one pointer so cache hits share it instead of
  /// deep-copying the candidate vectors (states + entries + clause
  /// strings) — the flat candidate sets of the arena-backed serving
  /// path are cached this way.
  using CandidateSetPtr = std::shared_ptr<const std::vector<CandidatePath>>;

  /// What a leaf caches for one context state: the ranked tuples plus
  /// the winning candidate paths that produced them, so cache hits can
  /// reconstruct the same resolution trace as the original miss.
  struct Entry {
    std::vector<db::ScoredTuple> tuples;
    /// Null means "no candidates recorded" (treated as empty).
    CandidateSetPtr candidates;
  };

  /// `capacity` = target number of cached states across all shards
  /// (0 = unbounded). It is split evenly over `num_shards` (rounded
  /// up, with `num_shards` clamped to `capacity` when the latter is
  /// smaller), so the effective global bound can exceed `capacity` by
  /// up to `num_shards - 1` entries, and the LRU order is exact per
  /// shard but only approximate globally. Pass `num_shards` = 1 for an
  /// exact bound and a single LRU domain.
  ContextQueryTree(EnvironmentPtr env, Ordering order, size_t capacity = 0,
                   size_t num_shards = kDefaultShards);

  const ContextEnvironment& env() const { return *env_; }
  size_t num_shards() const { return shards_.size(); }

  /// Aggregated counters; see the individual accessors below for the
  /// legacy one-at-a-time view.
  CacheStats Stats() const;

  /// Counters of one shard (index < `num_shards()`), exact under its
  /// lock — the per-shard view behind the aggregate `Stats()`.
  CacheStats ShardStats(size_t shard) const;

  /// Per-shard lookup-latency histogram (hits and misses together;
  /// the registry's global `ctxpref_query_cache_{hit,miss}_latency_ns`
  /// split by outcome instead). Populated only while
  /// `MetricsRegistry::TimingEnabled()`.
  HistogramSnapshot ShardLookupLatency(size_t shard) const;

  size_t size() const { return Stats().size; }
  uint64_t hits() const { return Stats().hits; }
  uint64_t misses() const { return Stats().misses; }
  uint64_t evictions() const { return Stats().evictions; }
  uint64_t invalidations() const { return Stats().invalidations; }

  /// Returns the cached entry for `user`'s `state` if present and
  /// computed at `profile_version`; stale entries are dropped on touch
  /// (counted as both a miss and an invalidation). Ticks `counter` per
  /// inspected cell (the cache costs cells too). The returned snapshot
  /// stays valid after concurrent mutations.
  std::shared_ptr<const Entry> Lookup(const std::string& user,
                                      const ContextState& state,
                                      uint64_t profile_version,
                                      AccessCounter* counter = nullptr);

  /// Single-user sugar: `Lookup("", state, ...)`.
  std::shared_ptr<const Entry> Lookup(const ContextState& state,
                                      uint64_t profile_version,
                                      AccessCounter* counter = nullptr) {
    return Lookup(std::string(), state, profile_version, counter);
  }

  /// Bounded-staleness lookup for the degradation ladder: returns the
  /// cached entry for `user`'s `state` if its stored version lies in
  /// `[min_version, max_version]`, writing the actual version to
  /// `*entry_version`. Unlike `Lookup` it never drops an entry — an
  /// out-of-window version is simply a miss (the entry may serve a
  /// different staleness window later). Requires retain-stale mode (or
  /// luck) for entries older than the current serving version to still
  /// be present. Counted as a lookup plus hit/miss in the shard stats.
  std::shared_ptr<const Entry> LookupAtOrBefore(
      const std::string& user, const ContextState& state,
      uint64_t max_version, uint64_t min_version,
      uint64_t* entry_version = nullptr, AccessCounter* counter = nullptr);

  /// Caches `tuples` (and the resolution `candidates` that produced
  /// them) for `user`'s `state` at `profile_version`, evicting the
  /// shard's least-recently-used entry beyond the shard capacity.
  void Put(const std::string& user, const ContextState& state,
           uint64_t profile_version, std::vector<db::ScoredTuple> tuples,
           CandidateSetPtr candidates = nullptr);

  /// Single-user sugar: `Put("", state, ...)`.
  void Put(const ContextState& state, uint64_t profile_version,
           std::vector<db::ScoredTuple> tuples,
           CandidateSetPtr candidates = nullptr) {
    Put(std::string(), state, profile_version, std::move(tuples),
        std::move(candidates));
  }

  /// Eagerly drops every cached entry of `user` — the invalidation hook
  /// `ProfileStore` fires when it publishes a new profile version for
  /// that user (stale entries would otherwise linger until touched,
  /// holding memory for results no published profile can produce).
  /// Returns the number of entries dropped; each is counted as an
  /// invalidation (but not a miss). Safe to call concurrently with
  /// lookups: readers holding entry snapshots keep them.
  size_t InvalidateUser(const std::string& user);

  /// Drops `user`'s cached entries whose version tag is strictly below
  /// `version`, leaving newer (and equal) entries in place — the
  /// bounded-staleness form of `InvalidateUser` the log-based coherence
  /// consumer applies: a record `{user, v}` with a retention window `w`
  /// becomes `InvalidateUserBelow(user, v - w)`, so entries inside the
  /// window survive for `LookupAtOrBefore` while everything older is
  /// reclaimed. Returns the number of entries dropped (each counted as
  /// an invalidation, not a miss).
  size_t InvalidateUserBelow(const std::string& user, uint64_t version);

  /// Drops every cached entry of every user (counters are kept).
  void InvalidateAll();

  /// Retain-stale mode, for serving stacks that use the degradation
  /// ladder (`storage::ServeQueryResilient`): when on, (a) `Lookup`
  /// still *misses* on a version-skewed entry but leaves it in place
  /// instead of dropping it (it remains reachable for
  /// `LookupAtOrBefore`), and (b) `ProfileStore::BuildAndPublish`
  /// skips its eager `InvalidateUser` — version tags alone keep fresh
  /// serving correct, LRU keeps memory bounded. `RemoveUser` still
  /// invalidates unconditionally: a deleted user's results must never
  /// be served at any staleness. Off by default (eager invalidation,
  /// the PR 5 behavior).
  void SetRetainStale(bool on) {
    retain_stale_.store(on, std::memory_order_relaxed);
  }
  bool retain_stale() const {
    return retain_stale_.load(std::memory_order_relaxed);
  }

 private:
  struct Node;
  /// LRU identity of one cached entry: which user's trie it lives in
  /// and under which state path.
  struct EntryKey {
    std::string user;
    ContextState state;
  };
  struct Leaf {
    std::shared_ptr<const Entry> entry;
    uint64_t version = 0;
    std::list<EntryKey>::iterator lru_it;
  };
  struct Node {
    struct Cell {
      ValueRef key;
      std::unique_ptr<Node> child;
    };
    std::vector<Cell> cells;
    std::unique_ptr<Leaf> leaf;  // Set on leaf nodes only.
  };

  /// One lock stripe: per-user tries + LRU + counters. The stripe
  /// mutex ranks `kCacheShard` — below the store locks (publish paths
  /// invalidate entries while holding the per-user write lock), above
  /// nothing this code takes (metric flushes under the lock are
  /// lock-free atomics). Stripes are independent: no operation holds
  /// two shard locks at once.
  struct Shard {
    mutable util::Mutex mu{util::LockRank::kCacheShard,
                           "ContextQueryTree.shard_mu"};
    /// One trie per user whose entries hashed into this shard; a
    /// user's trie is erased when its last entry goes (so an inactive
    /// user costs nothing).
    std::unordered_map<std::string, std::unique_ptr<Node>> roots
        GUARDED_BY(mu);
    /// Front = most recently used.
    std::list<EntryKey> lru GUARDED_BY(mu);
    size_t size GUARDED_BY(mu) = 0;
    uint64_t lookups GUARDED_BY(mu) = 0;
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
    uint64_t invalidations GUARDED_BY(mu) = 0;
    /// Deltas not yet flushed to the process-wide registry counters.
    /// Flushed together every kMetricsFlushStride lookups so the hot
    /// path pays plain increments under the already-held lock instead
    /// of global atomic RMWs; the registry may therefore lag the exact
    /// per-shard counters above by up to one stride per shard.
    uint64_t pending_lookups GUARDED_BY(mu) = 0;
    uint64_t pending_hits GUARDED_BY(mu) = 0;
    uint64_t pending_misses GUARDED_BY(mu) = 0;
    uint64_t pending_invalidations GUARDED_BY(mu) = 0;
    /// Lookup latency (hit + miss): internally atomic, deliberately
    /// not guarded — recorded outside the shard lock and only while
    /// timing is enabled.
    LatencyHistogram lookup_latency;  // lint:allow(unguarded) lock-free
  };

  Shard& ShardFor(const std::string& user, const ContextState& state);

  /// Shard-local trie walk within `user`'s trie.
  Node* Descend(Shard& shard, const std::string& user,
                const ContextState& state, bool create,
                AccessCounter* counter) REQUIRES(shard.mu);
  /// Removes the path for `state` from `user`'s trie, pruning empty
  /// nodes (and the trie itself once empty).
  void RemovePath(Shard& shard, const std::string& user,
                  const ContextState& state) REQUIRES(shard.mu);

  EnvironmentPtr env_;
  Ordering order_;
  size_t shard_capacity_;  ///< Per shard; 0 = unbounded.
  std::atomic<bool> retain_stale_{false};
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Rank_CS with per-state caching through a `ContextQueryTree`.
///
/// Each query state's ranked tuples are cached independently and the
/// final answer combines the per-state lists under `options.combine`.
/// Correctness therefore requires an *associative* combine policy —
/// kMax or kMin; kAvg/kWeighted return InvalidArgument.
///
/// With `options.num_threads` > 1 the states are evaluated on a worker
/// pool and merged in state-enumeration order, so the result (tuples
/// and traces) is bit-identical to the single-threaded run.
///
/// The multi-user serving layer (`storage::ServeQuery`) calls the
/// explicit-version overload with the user id and the *serving*
/// version of a pinned `ProfileSnapshot`, so cache entries are tagged
/// `{user, serving version}` and can never be confused across users or
/// across profile swaps. The `Profile&` overload is the single-tenant
/// form: it tags entries with `options.cache_user` (default "") and
/// the profile's own mutation counter `profile.version()` — fine while
/// the same `Profile` object serves and is edited in place, unsound
/// across wholesale profile replacement (see docs/serving.md).
StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const TreeResolver& resolver,
                                   const std::string& cache_user,
                                   uint64_t profile_version,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options = {},
                                   AccessCounter* counter = nullptr);

StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const TreeResolver& resolver,
                                   const Profile& profile,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options = {},
                                   AccessCounter* counter = nullptr);

/// CachedRankCS over the arena-flattened tree — the serving hot path
/// (`storage::ServeQuery` resolves against the snapshot's
/// `FlatProfileTree`). Identical semantics to the `TreeResolver`
/// overloads: same candidate sets, same traces, same cache entries.
StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const FlatResolver& resolver,
                                   const std::string& cache_user,
                                   uint64_t profile_version,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options = {},
                                   AccessCounter* counter = nullptr);

StatusOr<QueryResult> CachedRankCS(const db::Relation& relation,
                                   const ContextualQuery& query,
                                   const FlatResolver& resolver,
                                   const Profile& profile,
                                   ContextQueryTree& cache,
                                   const QueryOptions& options = {},
                                   AccessCounter* counter = nullptr);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_QUERY_CACHE_H_
