#ifndef CTXPREF_PREFERENCE_PREFERENCE_H_
#define CTXPREF_PREFERENCE_PREFERENCE_H_

#include <string>
#include <vector>

#include "context/descriptor.h"
#include "context/environment.h"
#include "db/schema.h"
#include "db/value.h"
#include "util/status.h"

namespace ctxpref {

/// An attribute clause `A θ a` on a non-context attribute of the
/// database relation (paper Def. 5). The paper's running simplification
/// uses a single attribute with θ being '='; we keep the general θ from
/// the definition.
struct AttributeClause {
  std::string attribute;
  db::CompareOp op = db::CompareOp::kEq;
  db::Value value;

  /// "name = Acropolis".
  std::string ToString() const;

  friend bool operator==(const AttributeClause&,
                         const AttributeClause&) = default;
};

/// A contextual preference (paper Def. 5): in every context state
/// denoted by `descriptor`, tuples satisfying `clause` carry
/// `interest score` ∈ [0, 1] (1 = extreme interest, 0 = none).
class ContextualPreference {
 public:
  /// Validates the score range. The descriptor is assumed to have been
  /// created against the same environment the preference is used with.
  static StatusOr<ContextualPreference> Create(CompositeDescriptor descriptor,
                                               AttributeClause clause,
                                               double score);

  const CompositeDescriptor& descriptor() const { return descriptor_; }
  const AttributeClause& clause() const { return clause_; }
  double score() const { return score_; }

  /// The context states Context(cod) this preference applies to.
  std::vector<ContextState> States(const ContextEnvironment& env) const {
    return descriptor_.EnumerateStates(env);
  }

  /// "(location = Plaka and temperature = warm), (name = Acropolis), 0.8".
  std::string ToString(const ContextEnvironment& env) const;

  friend bool operator==(const ContextualPreference& a,
                         const ContextualPreference& b) {
    // Descriptor equality by denoted semantics is expensive; preference
    // identity is (clause, score) + descriptor parts textual identity,
    // which is what profile deduplication needs. See Profile::Insert.
    return a.score_ == b.score_ && a.clause_ == b.clause_ &&
           a.descriptor_key_ == b.descriptor_key_;
  }

 private:
  ContextualPreference(CompositeDescriptor descriptor, AttributeClause clause,
                       double score);

  CompositeDescriptor descriptor_;
  AttributeClause clause_;
  double score_;
  /// Canonical structural key of the descriptor for cheap equality.
  std::string descriptor_key_;
};

/// Paper Def. 6: two preferences conflict iff their contexts intersect,
/// they constrain the same attribute the same way, and their scores
/// differ.
bool ConflictsWith(const ContextEnvironment& env,
                   const ContextualPreference& a,
                   const ContextualPreference& b);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_PREFERENCE_H_
