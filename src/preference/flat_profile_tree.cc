#include "preference/flat_profile_tree.h"

#include <algorithm>
#include <map>
#include <utility>

namespace ctxpref {

namespace {

/// Strict-weak order for the clause dictionary (AttributeClause only
/// defines ==; db::Value is three-way comparable).
struct ClauseLess {
  bool operator()(const AttributeClause& a, const AttributeClause& b) const {
    if (a.attribute != b.attribute) return a.attribute < b.attribute;
    if (a.op != b.op) return a.op < b.op;
    return a.value < b.value;
  }
};

size_t StringHeapBytes(const std::string& s) {
  // Heap payload approximated by capacity; SSO strings count 0.
  return s.capacity() > sizeof(std::string) ? s.capacity() + 1 : 0;
}

/// Nodes at or below this cell count are scanned linearly; larger ones
/// binary-search each ancestor key. Crossover is early because the
/// linear scan must consult level_of per cell while a probe compares
/// raw keys.
constexpr uint32_t kLinearScanMax = 8;

}  // namespace

/// One matched cell during a descent: its child/insertion index (the
/// recursion target and the sort key restoring insertion order), the
/// matched key, and that key's distance step.
struct FlatProfileTree::Scratch {
  struct Match {
    uint32_t child;
    uint32_t key;
    double step;
  };
  /// Cover tables, indexed by cover_off_[level] + hierarchy level:
  /// anc_key = interned ancestor of the query component (kNoKey where
  /// none), step = its distance contribution.
  std::vector<uint32_t> anc_key;
  std::vector<double> step;
  /// Match lists, one segment per tree level (same offsets): a node
  /// can match at most one cell per hierarchy level.
  std::vector<Match> matches;
  /// Root-to-leaf interned keys / per-parameter steps of the descent.
  std::vector<uint32_t> path;
  std::vector<double> step_by_param;
};

FlatProfileTree::Scratch& FlatProfileTree::TlsScratch() {
  thread_local Scratch scratch;
  return scratch;
}

FlatProfileTree FlatProfileTree::Build(const ProfileTree& tree) {
  FlatProfileTree flat;
  flat.env_ = tree.env_ptr();
  flat.order_ = tree.ordering();
  const size_t n = flat.env_->size();

  // Per-parameter dense dictionaries over the extended domains.
  flat.interners_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    const Hierarchy& h = flat.env_->parameter(p).hierarchy();
    Interner& in = flat.interners_[p];
    in.level_offset.resize(h.num_levels() + 1);
    in.level_offset[0] = 0;
    for (LevelIndex l = 0; l < h.num_levels(); ++l) {
      in.level_offset[l + 1] =
          in.level_offset[l] + static_cast<uint32_t>(h.level_size(l));
    }
    in.level_of.resize(in.level_offset.back());
    for (LevelIndex l = 0; l < h.num_levels(); ++l) {
      for (uint32_t k = in.level_offset[l]; k < in.level_offset[l + 1]; ++k) {
        in.level_of[k] = l;
      }
    }
  }

  // Scratch-slot offsets: level l owns one cover/match slot per
  // hierarchy level of its parameter.
  flat.cover_off_.resize(n + 1);
  flat.cover_off_[0] = 0;
  for (size_t l = 0; l < n; ++l) {
    const size_t p = flat.order_.param_at_level(l);
    flat.cover_off_[l + 1] =
        flat.cover_off_[l] +
        static_cast<uint32_t>(flat.env_->parameter(p).hierarchy().num_levels());
  }

  // Breadth-first flattening, one trie level at a time. Within a node
  // the cells are key-sorted for binary search; each carries its
  // insertion index, which names its child node at the next level (the
  // BFS emits children in insertion order, so index = position).
  flat.levels_.resize(n);
  std::vector<const ProfileTree::Node*> nodes = {&tree.root()};
  flat.node_count_ = 1;
  std::vector<std::pair<uint32_t, uint32_t>> segment;  // (key, child)
  for (size_t l = 0; l < n; ++l) {
    Level& level = flat.levels_[l];
    const Interner& in = flat.interners_[flat.order_.param_at_level(l)];
    std::vector<const ProfileTree::Node*> next;
    level.cell_begin.reserve(nodes.size() + 1);
    for (const ProfileTree::Node* node : nodes) {
      level.cell_begin.push_back(static_cast<uint32_t>(level.keys.size()));
      segment.clear();
      for (const ProfileTree::Node::Cell& cell : node->cells) {
        segment.emplace_back(in.Intern(cell.key),
                             static_cast<uint32_t>(next.size()));
        next.push_back(cell.child.get());
      }
      std::sort(segment.begin(), segment.end());
      for (const auto& [key, child] : segment) {
        level.keys.push_back(key);
        level.child.push_back(child);
      }
    }
    level.cell_begin.push_back(static_cast<uint32_t>(level.keys.size()));
    flat.cell_count_ += level.keys.size();
    flat.node_count_ += next.size();
    nodes = std::move(next);
  }

  // `nodes` is now the leaves in leaf-id order (for n == 0 that is the
  // root itself, which then carries the entries directly).
  std::map<AttributeClause, uint32_t, ClauseLess> clause_ids;
  flat.leaf_begin_.reserve(nodes.size() + 1);
  for (const ProfileTree::Node* leaf : nodes) {
    flat.leaf_begin_.push_back(static_cast<uint32_t>(flat.entries_.size()));
    for (const ProfileTree::LeafEntry& entry : leaf->entries) {
      auto [it, inserted] = clause_ids.try_emplace(
          entry.clause, static_cast<uint32_t>(flat.clauses_.size()));
      if (inserted) flat.clauses_.push_back(entry.clause);
      flat.entries_.push_back(FlatEntry{it->second, entry.ref, entry.score});
    }
  }
  flat.leaf_begin_.push_back(static_cast<uint32_t>(flat.entries_.size()));
  return flat;
}

void FlatProfileTree::Descend(size_t level, uint32_t node,
                              AccessCounter* counter, Scratch& scratch,
                              std::vector<FlatCandidate>& out,
                              std::vector<uint32_t>& path_keys) const {
  if (level == num_levels()) {
    // Canonical distance: per-parameter steps summed in environment
    // order, exactly like `StateDistance` — never in tree-level order,
    // whose FP rounding can drift from the oracle's (DESIGN.md).
    double distance = 0.0;
    for (const double step : scratch.step_by_param) distance += step;
    out.push_back(FlatCandidate{node, distance});
    path_keys.insert(path_keys.end(), scratch.path.begin(),
                     scratch.path.end());
    return;
  }
  const Level& lvl = levels_[level];
  const size_t p = order_.param_at_level(level);
  const uint32_t off = cover_off_[level];
  const uint32_t num_anc = cover_off_[level + 1] - off;
  const uint32_t* anc_key = scratch.anc_key.data() + off;
  const double* step = scratch.step.data() + off;
  Scratch::Match* matches = scratch.matches.data() + off;
  const uint32_t begin = lvl.cell_begin[node];
  const uint32_t end = lvl.cell_begin[node + 1];
  uint32_t num_matches = 0;
  if (end - begin <= kLinearScanMax) {
    const uint16_t* level_of = interners_[p].level_of.data();
    for (uint32_t c = begin; c < end; ++c) {
      if (counter != nullptr) counter->AddCell();
      const uint32_t key = lvl.keys[c];
      const uint16_t hl = level_of[key];
      if (anc_key[hl] != key) continue;
      matches[num_matches++] =
          Scratch::Match{lvl.child[c], key, step[hl]};
    }
  } else {
    // One binary search per covering ancestor (≤ hierarchy depth) —
    // O(L log C) against the pointer tree's O(C) scan.
    const uint32_t* keys = lvl.keys.data();
    for (uint32_t hl = 0; hl < num_anc; ++hl) {
      const uint32_t target = anc_key[hl];
      if (target == kNoKey) continue;
      uint32_t lo = begin;
      uint32_t hi = end;
      while (lo < hi) {
        if (counter != nullptr) counter->AddCell();
        const uint32_t mid = lo + (hi - lo) / 2;
        if (keys[mid] < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < end && keys[lo] == target) {
        matches[num_matches++] =
            Scratch::Match{lvl.child[lo], target, step[hl]};
      }
    }
  }
  // Insertion order = child-index order; restoring it keeps candidate
  // emission bit-identical to the pointer DFS. The list is tiny (≤
  // hierarchy depth) so an insertion sort beats std::sort's dispatch.
  for (uint32_t i = 1; i < num_matches; ++i) {
    const Scratch::Match m = matches[i];
    uint32_t j = i;
    for (; j > 0 && matches[j - 1].child > m.child; --j) {
      matches[j] = matches[j - 1];
    }
    matches[j] = m;
  }
  for (uint32_t i = 0; i < num_matches; ++i) {
    const Scratch::Match m = matches[i];
    scratch.path[level] = m.key;
    scratch.step_by_param[p] = m.step;
    Descend(level + 1, m.child, counter, scratch, out, path_keys);
  }
}

void FlatProfileTree::SearchCS(const ContextState& query, DistanceKind kind,
                               bool exact_only, AccessCounter* counter,
                               std::vector<FlatCandidate>& out,
                               std::vector<uint32_t>& path_keys) const {
  out.clear();
  path_keys.clear();
  const size_t n = num_levels();
  if (n == 0) {
    if (PathCount() > 0) {
      out.push_back(FlatCandidate{0, 0.0});
    }
    return;
  }
  // Per level: the interned ancestor chain of the query component and
  // its per-level distance steps, computed once into the thread-local
  // scratch — the descent itself touches only integer keys.
  Scratch& scratch = TlsScratch();
  scratch.anc_key.assign(cover_off_[n], kNoKey);
  scratch.step.resize(cover_off_[n]);
  scratch.matches.resize(cover_off_[n]);
  scratch.path.resize(n);
  scratch.step_by_param.assign(env_->size(), 0.0);
  for (size_t l = 0; l < n; ++l) {
    const size_t p = order_.param_at_level(l);
    const Hierarchy& h = env_->parameter(p).hierarchy();
    const Interner& in = interners_[p];
    const ValueRef qv = query.value(p);
    uint32_t* anc_key = scratch.anc_key.data() + cover_off_[l];
    double* step = scratch.step.data() + cover_off_[l];
    if (exact_only) {
      anc_key[qv.level] = in.Intern(qv);
      step[qv.level] = 0.0;  // Slot may hold a stale non-exact step.
      continue;
    }
    for (LevelIndex hl = qv.level; hl < h.num_levels(); ++hl) {
      const ValueRef anc = h.Anc(qv, hl);
      anc_key[hl] = in.Intern(anc);
      step[hl] = kind == DistanceKind::kJaccard
                     ? h.JaccardDistance(anc, qv)
                     : static_cast<double>(h.LevelDistance(hl, qv.level));
    }
  }
  Descend(0, 0, counter, scratch, out, path_keys);
}

uint32_t FlatProfileTree::ExactLookup(const ContextState& state,
                                      AccessCounter* counter) const {
  const size_t n = num_levels();
  if (n == 0) return PathCount() > 0 ? 0 : kNoLeaf;
  uint32_t node = 0;
  for (size_t l = 0; l < n; ++l) {
    const Level& lvl = levels_[l];
    const size_t p = order_.param_at_level(l);
    const uint32_t target = interners_[p].Intern(state.value(p));
    const uint32_t* keys = lvl.keys.data();
    uint32_t lo = lvl.cell_begin[node];
    const uint32_t end = lvl.cell_begin[node + 1];
    uint32_t hi = end;
    while (lo < hi) {
      if (counter != nullptr) counter->AddCell();
      const uint32_t mid = lo + (hi - lo) / 2;
      if (keys[mid] < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= end || keys[lo] != target) return kNoLeaf;
    node = lvl.child[lo];
  }
  return node;
}

ContextState FlatProfileTree::StateOf(const uint32_t* path) const {
  const size_t n = num_levels();
  std::vector<ValueRef> values(n);
  for (size_t l = 0; l < n; ++l) {
    const size_t p = order_.param_at_level(l);
    values[p] = interners_[p].Unintern(path[l]);
  }
  return ContextState(std::move(values));
}

double FlatProfileTree::HierarchyDistanceOf(const uint32_t* path,
                                            const ContextState& query) const {
  // Per-parameter level distances are small integers, so the FP sum is
  // exact in any order — no need to reorder into env order here.
  double distance = 0.0;
  for (size_t l = 0; l < num_levels(); ++l) {
    const size_t p = order_.param_at_level(l);
    const Hierarchy& h = env_->parameter(p).hierarchy();
    const ValueRef v = interners_[p].Unintern(path[l]);
    distance += h.LevelDistance(v.level, query.value(p).level);
  }
  return distance;
}

std::vector<ProfileTree::LeafEntry> FlatProfileTree::EntriesOf(
    uint32_t leaf) const {
  std::vector<ProfileTree::LeafEntry> out;
  out.reserve(leaf_begin_[leaf + 1] - leaf_begin_[leaf]);
  for (const FlatEntry* e = entries_begin(leaf); e != entries_end(leaf); ++e) {
    out.push_back(
        ProfileTree::LeafEntry{clauses_[e->clause_id], e->score, e->ref});
  }
  return out;
}

size_t FlatProfileTree::MeasuredByteSize() const {
  size_t bytes = sizeof(*this);
  bytes += interners_.capacity() * sizeof(Interner);
  for (const Interner& in : interners_) {
    bytes += in.level_offset.capacity() * sizeof(uint32_t);
    bytes += in.level_of.capacity() * sizeof(uint16_t);
  }
  bytes += levels_.capacity() * sizeof(Level);
  for (const Level& level : levels_) {
    bytes += level.cell_begin.capacity() * sizeof(uint32_t);
    bytes += level.keys.capacity() * sizeof(uint32_t);
    bytes += level.child.capacity() * sizeof(uint32_t);
  }
  bytes += cover_off_.capacity() * sizeof(uint32_t);
  bytes += leaf_begin_.capacity() * sizeof(uint32_t);
  bytes += entries_.capacity() * sizeof(FlatEntry);
  bytes += clauses_.capacity() * sizeof(AttributeClause);
  for (const AttributeClause& clause : clauses_) {
    bytes += StringHeapBytes(clause.attribute);
    if (clause.value.type() == db::ColumnType::kString) {
      bytes += StringHeapBytes(clause.value.AsString());
    }
  }
  return bytes;
}

}  // namespace ctxpref
