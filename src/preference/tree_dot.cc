#include "preference/tree_dot.h"

#include "util/string_util.h"

namespace ctxpref {

namespace {

/// Escapes a DOT double-quoted string.
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

struct DotWriter {
  const ProfileTree& tree;
  std::string out;
  int next_id = 0;

  /// Emits `node` (at tree level `level`) and its subtree; returns the
  /// DOT identifier assigned to the node.
  int Emit(const ProfileTree::Node& node, size_t level) {
    const int id = next_id++;
    const ContextEnvironment& env = tree.env();
    if (level < env.size()) {
      const std::string& param =
          env.parameter(tree.ordering().param_at_level(level)).name();
      out += "  n" + std::to_string(id) + " [shape=box, label=\"" +
             Escape(param) + "\"];\n";
      for (const ProfileTree::Node::Cell& cell : node.cells) {
        const Hierarchy& h =
            env.parameter(tree.ordering().param_at_level(level)).hierarchy();
        const int child = Emit(*cell.child, level + 1);
        out += "  n" + std::to_string(id) + " -> n" + std::to_string(child) +
               " [label=\"" + Escape(h.value_name(cell.key)) + "\"];\n";
      }
    } else {
      std::string label;
      for (const ProfileTree::LeafEntry& e : node.entries) {
        if (!label.empty()) label += "\\n";  // DOT newline escape.
        label += Escape(e.clause.ToString() + ", " + FormatDouble(e.score, 3));
      }
      out += "  n" + std::to_string(id) + " [shape=note, label=\"" + label +
             "\"];\n";
    }
    return id;
  }
};

}  // namespace

std::string ProfileTreeToDot(const ProfileTree& tree) {
  DotWriter writer{tree, "digraph profile_tree {\n", 0};
  writer.out += "  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  writer.Emit(tree.root(), 0);
  writer.out += "}\n";
  return writer.out;
}

}  // namespace ctxpref
