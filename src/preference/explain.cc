#include "preference/explain.h"

#include "util/string_util.h"

namespace ctxpref {

std::vector<Contribution> ExplainTuple(const QueryResult& result,
                                       const db::Relation& relation,
                                       db::RowId row) {
  std::vector<Contribution> out;
  if (row >= relation.size()) return out;
  const db::Tuple& tuple = relation.row(row);
  for (const QueryResult::Trace& trace : result.traces) {
    for (const CandidatePath& cand : trace.candidates) {
      for (const ProfileTree::LeafEntry& entry : cand.entries) {
        StatusOr<db::Predicate> pred = db::Predicate::Create(
            relation.schema(), entry.clause.attribute, entry.clause.op,
            entry.clause.value);
        if (!pred.ok()) continue;  // Clause over a non-existent column.
        if (!pred->Eval(tuple)) continue;
        out.push_back(Contribution{trace.query_state, cand.state,
                                   cand.distance, entry.clause, entry.score});
      }
    }
  }
  return out;
}

std::string ExplainTupleText(const QueryResult& result,
                             const db::Relation& relation,
                             const ContextEnvironment& env, db::RowId row) {
  std::vector<Contribution> contributions =
      ExplainTuple(result, relation, row);
  if (contributions.empty()) {
    return "no preference contributed to this tuple\n";
  }
  std::string out;
  for (const Contribution& c : contributions) {
    out += "score " + FormatDouble(c.score, 3) + " via " +
           c.matched_state.ToString(env) + " [dist " +
           FormatDouble(c.distance, 3) + "] covering query " +
           c.query_state.ToString(env) + ": " + c.clause.ToString() + "\n";
  }
  return out;
}

std::string ExplainAcquisition(const ContextEnvironment& env,
                               const SnapshotReport& report) {
  std::string out = "query context " + report.state.ToString(env);
  if (report.fully_fresh()) {
    out += " (all parameters fresh)\n";
  } else {
    out += " (" + std::to_string(report.degraded_count()) + " degraded)\n";
  }
  for (const ParameterAcquisition& p : report.params) {
    const ContextParameter& param = env.parameter(p.param_index);
    out += "  " + param.name() + " = " +
           param.hierarchy().value_name(p.value) + ": ";
    if (!p.has_source) {
      out += "no source registered, defaulted to all";
    } else {
      out += p.info.ToString();
      switch (p.info.provenance) {
        case ReadProvenance::kStaleLifted:
          out += ", lifted " + std::to_string(p.info.lifted_levels) +
                 " level(s) toward all while the backend recovers";
          break;
        case ReadProvenance::kBreakerOpen:
          out += ", circuit breaker open; backend not probed";
          break;
        case ReadProvenance::kAbsent:
          out += ", no usable reading, defaulted to all";
          break;
        default:
          break;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ctxpref
