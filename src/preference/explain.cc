#include "preference/explain.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace ctxpref {

std::vector<Contribution> ExplainTuple(const QueryResult& result,
                                       const db::Relation& relation,
                                       db::RowId row) {
  std::vector<Contribution> out;
  if (row >= relation.size()) return out;
  const db::Tuple& tuple = relation.row(row);
  for (const QueryResult::Trace& trace : result.traces) {
    for (const CandidatePath& cand : trace.candidates) {
      for (const ProfileTree::LeafEntry& entry : cand.entries) {
        StatusOr<db::Predicate> pred = db::Predicate::Create(
            relation.schema(), entry.clause.attribute, entry.clause.op,
            entry.clause.value);
        if (!pred.ok()) continue;  // Clause over a non-existent column.
        if (!pred->Eval(tuple)) continue;
        out.push_back(Contribution{trace.query_state, cand.state,
                                   cand.distance, entry.clause, entry.score});
      }
    }
  }
  return out;
}

std::string ExplainTupleText(const QueryResult& result,
                             const db::Relation& relation,
                             const ContextEnvironment& env, db::RowId row) {
  std::vector<Contribution> contributions =
      ExplainTuple(result, relation, row);
  if (contributions.empty()) {
    return "no preference contributed to this tuple\n";
  }
  std::string out;
  for (const Contribution& c : contributions) {
    out += "score " + FormatDouble(c.score, 3) + " via " +
           c.matched_state.ToString(env) + " [dist " +
           FormatDouble(c.distance, 3) + "] covering query " +
           c.query_state.ToString(env) + ": " + c.clause.ToString() + "\n";
  }
  return out;
}

std::string ExplainAcquisition(const ContextEnvironment& env,
                               const SnapshotReport& report) {
  std::string out = "query context " + report.state.ToString(env);
  if (report.fully_fresh()) {
    out += " (all parameters fresh)\n";
  } else {
    out += " (" + std::to_string(report.degraded_count()) + " degraded)\n";
  }
  for (const ParameterAcquisition& p : report.params) {
    const ContextParameter& param = env.parameter(p.param_index);
    out += "  " + param.name() + " = " +
           param.hierarchy().value_name(p.value) + ": ";
    if (!p.has_source) {
      out += "no source registered, defaulted to all";
    } else {
      out += p.info.ToString();
      switch (p.info.provenance) {
        case ReadProvenance::kStaleLifted:
          out += ", lifted " + std::to_string(p.info.lifted_levels) +
                 " level(s) toward all while the backend recovers";
          break;
        case ReadProvenance::kBreakerOpen:
          out += ", circuit breaker open; backend not probed";
          break;
        case ReadProvenance::kAbsent:
          out += ", no usable reading, defaulted to all";
          break;
        default:
          break;
      }
    }
    out += "\n";
  }
  return out;
}

namespace {

void RenderSpan(
    const std::vector<TraceEvent>& events, size_t index,
    const std::unordered_map<uint64_t, std::vector<size_t>>& children,
    size_t depth, std::string& out) {
  const TraceEvent& e = events[index];
  out.append(2 * depth, ' ');
  out += e.name;
  out += "  " + FormatDouble(static_cast<double>(e.duration_nanos) / 1000.0,
                             1) + "us";
  for (const auto& [key, value] : e.tags) {
    out += " " + key + "=" + value;
  }
  out += "\n";
  auto it = children.find(e.id);
  if (it == children.end()) return;
  for (size_t child : it->second) {
    RenderSpan(events, child, children, depth + 1, out);
  }
}

}  // namespace

std::string ExplainTrace(const std::vector<TraceEvent>& events) {
  if (events.empty()) return "no spans recorded\n";
  // Events arrive in completion order (spans record on destruction);
  // rebuild the tree and render in start order instead.
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) by_id.emplace(events[i].id, i);

  std::unordered_map<uint64_t, std::vector<size_t>> children;
  std::vector<size_t> roots;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.parent_id != 0 && by_id.contains(e.parent_id)) {
      children[e.parent_id].push_back(i);
    } else {
      // Parent absent: recorder installed mid-query, parent evicted
      // from the ring, or the span ran on a worker thread.
      roots.push_back(i);
    }
  }
  auto by_start = [&events](size_t a, size_t b) {
    return events[a].start_nanos != events[b].start_nanos
               ? events[a].start_nanos < events[b].start_nanos
               : events[a].id < events[b].id;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(), by_start);
  }

  std::string out;
  for (size_t root : roots) {
    RenderSpan(events, root, children, 0, out);
  }
  return out;
}

}  // namespace ctxpref
