#include "preference/sequential_store.h"

#include "context/distance.h"

namespace ctxpref {

SequentialStore SequentialStore::Build(const Profile& profile) {
  SequentialStore store(profile.env_ptr());
  for (const Profile::FlatEntry& e : profile.Flatten()) {
    store.Add(e.state, *e.clause, e.score);
  }
  return store;
}

void SequentialStore::Add(const ContextState& state,
                          const AttributeClause& clause, double score) {
  auto [it, inserted] = group_index_.emplace(state, groups_.size());
  if (inserted) {
    groups_.push_back(Group{state, {}});
  }
  Group& g = groups_[it->second];
  for (const ProfileTree::LeafEntry& e : g.entries) {
    if (e.clause == clause && e.score == score) return;  // Dedup.
  }
  g.entries.push_back(ProfileTree::LeafEntry{clause, score});
  ++leaf_entry_count_;
}

namespace {

/// Compares component by component with the paper's cell accounting:
/// each inspected component is one cell access; stops at the first
/// component failing `component_ok`.
template <typename ComponentOk>
bool ScanState(const ContextEnvironment& env, const ContextState& stored,
               const ContextState& query, AccessCounter* counter,
               ComponentOk component_ok) {
  for (size_t i = 0; i < env.size(); ++i) {
    if (counter != nullptr) counter->AddCell();
    if (!component_ok(i, stored.value(i), query.value(i))) return false;
  }
  return true;
}

}  // namespace

std::vector<CandidatePath> SequentialStore::SearchExact(
    const ContextState& query, AccessCounter* counter) const {
  for (const Group& g : groups_) {
    bool equal = ScanState(*env_, g.state, query, counter,
                           [](size_t, ValueRef stored, ValueRef q) {
                             return stored == q;
                           });
    if (equal) {
      return {CandidatePath{g.state, 0.0, g.entries}};
    }
  }
  return {};
}

std::vector<CandidatePath> SequentialStore::SearchCovering(
    const ContextState& query, const ResolutionOptions& options,
    AccessCounter* counter) const {
  std::vector<CandidatePath> out;
  for (const Group& g : groups_) {
    bool covers = ScanState(
        *env_, g.state, query, counter,
        [&](size_t i, ValueRef stored, ValueRef q) {
          return env_->parameter(i).hierarchy().IsAncestorOrSelf(stored, q);
        });
    if (covers) {
      out.push_back(CandidatePath{
          g.state, StateDistance(options.distance, *env_, g.state, query),
          g.entries});
    }
  }
  return out;
}

std::vector<CandidatePath> SequentialStore::ResolveBest(
    const ContextState& query, const ResolutionOptions& options,
    AccessCounter* counter) const {
  if (options.exact_only) {
    return SearchExact(query, counter);
  }
  std::vector<CandidatePath> best =
      BestCandidates(SearchCovering(query, options, counter));
  if (options.distance == DistanceKind::kJaccard && options.jaccard_tie_break) {
    best = TieBreakByHierarchyDistance(*env_, query, std::move(best));
  }
  return best;
}

}  // namespace ctxpref
