#ifndef CTXPREF_PREFERENCE_EXPLAIN_H_
#define CTXPREF_PREFERENCE_EXPLAIN_H_

#include <string>
#include <vector>

#include "context/source.h"
#include "preference/contextual_query.h"
#include "util/trace.h"

namespace ctxpref {

/// Answer explanations — the traceability the paper's user study
/// leaned on (§5.1: "traceability helps a lot, since users can track
/// back which preferences were used to attain the results").
///
/// Given a `QueryResult` (whose traces record, per query state, the
/// chosen candidate context states and their preference entries),
/// `ExplainTuple` reconstructs *why* a tuple received its score:
/// which query state, through which stored (covering) context state at
/// what distance, via which attribute clause.

/// One contributing preference application for a tuple.
struct Contribution {
  ContextState query_state;     ///< The query state that triggered it.
  ContextState matched_state;   ///< The stored state that covered it.
  double distance = 0.0;        ///< Its resolution distance.
  AttributeClause clause;       ///< The clause the tuple satisfied.
  double score = 0.0;           ///< The clause's interest score.
};

/// All contributions that scored `row` in `result`. Empty if the tuple
/// is not part of the answer (or was matched only via cached entries,
/// whose traces carry no candidates).
std::vector<Contribution> ExplainTuple(const QueryResult& result,
                                       const db::Relation& relation,
                                       db::RowId row);

/// Human-readable explanation, e.g.:
///   score 0.80 via (Plaka, warm, all) [dist 1] covering query
///   (Plaka, warm, friends): name = Acropolis : 0.8
std::string ExplainTupleText(const QueryResult& result,
                             const db::Relation& relation,
                             const ContextEnvironment& env, db::RowId row);

/// Why the *query context itself* looks the way it does: renders a
/// `SnapshotReport` (see `context/source.h`) parameter by parameter —
/// fresh / retried / stale-lifted-k / breaker-open / absent — so a
/// user puzzled by coarse recommendations can see that e.g. the
/// weather sensor has been down for a minute and its last reading was
/// lifted to `good`. Complements `ExplainTupleText`, which explains
/// the ranking given the context.
std::string ExplainAcquisition(const ContextEnvironment& env,
                               const SnapshotReport& report);

/// Where the time went: renders trace events (from
/// `TraceRecorder::Events()`) as an indented span tree in start order,
/// one line per span with its duration in microseconds and tags, e.g.:
///   rank_cs  412.0us  states=2 tuples=17 scored=23
///     rank_cs.state  231.4us
///       resolve  180.2us  candidates=1
///         resolve.search_cs  171.9us  candidates=3 distance=hierarchy
/// Spans whose parent is missing (recorder installed mid-query, parent
/// evicted from the ring, or span recorded on a worker thread) are
/// rendered as roots.
std::string ExplainTrace(const std::vector<TraceEvent>& events);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_EXPLAIN_H_
