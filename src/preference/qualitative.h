#ifndef CTXPREF_PREFERENCE_QUALITATIVE_H_
#define CTXPREF_PREFERENCE_QUALITATIVE_H_

#include <string>
#include <vector>

#include "context/descriptor.h"
#include "db/predicate.h"
#include "db/relation.h"
#include "preference/context_trie.h"
#include "preference/resolution.h"
#include "util/counters.h"
#include "util/status.h"

namespace ctxpref {

/// Qualitative contextual preferences.
///
/// The paper's preference model is quantitative (scores), but §3.2
/// notes "our context model can be used for extending both quantitative
/// and qualitative approaches", citing Chomicki's preference formulas
/// for the qualitative side. This module is that extension: a
/// contextual preference relation states that, within the context
/// states of its descriptor, tuples satisfying `better` are strictly
/// preferred to tuples satisfying `worse`. The query operator is
/// winnow / BMO: return the tuples not dominated by any other tuple
/// under the preferences resolved for the query context.
///
/// Resolution reuses the paper's machinery verbatim: the applicable
/// preferences are those of the *most specific covering* context
/// states (Def. 12 via covers + distance), found with a Search_CS
/// traversal over a context trie.

/// One qualitative preference: in the scope of `descriptor`,
/// better-tuples ≻ worse-tuples.
class QualitativePreference {
 public:
  /// `better` and `worse` are conjunctions of predicates over the
  /// relation the profile will be evaluated against; either may be
  /// empty (matching every tuple), but not both.
  static StatusOr<QualitativePreference> Create(
      CompositeDescriptor descriptor, std::vector<db::Predicate> better,
      std::vector<db::Predicate> worse);

  const CompositeDescriptor& descriptor() const { return descriptor_; }
  const std::vector<db::Predicate>& better() const { return better_; }
  const std::vector<db::Predicate>& worse() const { return worse_; }

  /// True iff `t1 ≻ t2` under this preference (ignoring context).
  bool Dominates(const db::Tuple& t1, const db::Tuple& t2) const;

  std::string ToString(const ContextEnvironment& env,
                       const db::Schema& schema) const;

 private:
  QualitativePreference(CompositeDescriptor descriptor,
                        std::vector<db::Predicate> better,
                        std::vector<db::Predicate> worse)
      : descriptor_(std::move(descriptor)),
        better_(std::move(better)),
        worse_(std::move(worse)) {}

  CompositeDescriptor descriptor_;
  std::vector<db::Predicate> better_;
  std::vector<db::Predicate> worse_;
};

/// A set of qualitative contextual preferences with context-indexed
/// lookup.
class QualitativeProfile {
 public:
  explicit QualitativeProfile(EnvironmentPtr env)
      : env_(std::move(env)), index_(env_) {}

  const ContextEnvironment& env() const { return *env_; }
  size_t size() const { return prefs_.size(); }
  const QualitativePreference& preference(size_t i) const {
    return prefs_[i];
  }

  /// Adds a preference, indexing it under every state of its
  /// descriptor.
  Status Insert(QualitativePreference pref);

  /// Context resolution (paper §4): the preferences attached to the
  /// minimum-distance covering states of `query`. Ties keep all tied
  /// states' preferences. Empty when nothing covers the query.
  std::vector<const QualitativePreference*> Resolve(
      const ContextState& query,
      DistanceKind distance = DistanceKind::kHierarchy,
      AccessCounter* counter = nullptr) const;

 private:
  EnvironmentPtr env_;
  std::vector<QualitativePreference> prefs_;
  /// state -> indices into prefs_.
  ContextTrie<std::vector<size_t>> index_;
};

/// Winnow / best-matches-only: the tuples of `relation` not dominated
/// by any other tuple under any of `prefs`. Mutually dominating tuples
/// eliminate each other (standard strict-winnow semantics). O(n²·|P|).
std::vector<db::RowId> Winnow(
    const db::Relation& relation,
    const std::vector<const QualitativePreference*>& prefs);

/// Contextual winnow: resolves `query` against `profile`, then winnows
/// `relation` with the resolved preferences. When no preference
/// applies, every tuple is undominated (the full relation is
/// returned), mirroring the paper's non-contextual fallback.
std::vector<db::RowId> ContextualWinnow(
    const db::Relation& relation, const QualitativeProfile& profile,
    const ContextState& query,
    DistanceKind distance = DistanceKind::kHierarchy,
    AccessCounter* counter = nullptr);

/// ---- Composition operators (Chomicki-style) ----
///
/// `Winnow` above treats the resolved preferences as a union of
/// dominance edges. These composers give the alternative semantics:
///
/// One preference's opinion on an ordered pair: +1 (first strictly
/// preferred), -1 (second strictly preferred), 0 (no strict opinion —
/// includes the degenerate mutual-domination case).
int PreferenceOpinion(const QualitativePreference& pref, const db::Tuple& t1,
                      const db::Tuple& t2);

/// Pareto composition: t1 ≻ t2 iff no preference prefers t2 and at
/// least one prefers t1.
bool ParetoDominates(const std::vector<const QualitativePreference*>& prefs,
                     const db::Tuple& t1, const db::Tuple& t2);

/// Prioritized composition: the first preference (in list order) with
/// a strict opinion decides.
bool PrioritizedDominates(
    const std::vector<const QualitativePreference*>& prefs,
    const db::Tuple& t1, const db::Tuple& t2);

/// Winnow under an arbitrary dominance relation.
std::vector<db::RowId> WinnowWith(
    const db::Relation& relation,
    const std::function<bool(const db::Tuple&, const db::Tuple&)>& dominates);

}  // namespace ctxpref

#endif  // CTXPREF_PREFERENCE_QUALITATIVE_H_
