#include "util/trace.h"

#include <cstdio>

#include "util/metrics.h"
#include "util/string_util.h"

namespace ctxpref {

namespace {

/// The process-wide active recorder. Spans load it relaxed — a span
/// racing an Install/Uninstall simply lands in (or misses) the
/// recorder by a hair, which is fine for diagnostics.
std::atomic<TraceRecorder*> g_recorder{nullptr};

/// Innermost open span on this thread; 0 when none. Drives parent ids.
thread_local uint64_t tls_current_span = 0;

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_nanos_(MonotonicNanos()) {
  ring_.resize(capacity_);
}

TraceRecorder::~TraceRecorder() { Uninstall(); }

void TraceRecorder::Install() {
  g_recorder.store(this, std::memory_order_release);
}

void TraceRecorder::Uninstall() {
  TraceRecorder* expected = this;
  g_recorder.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel);
}

TraceRecorder* TraceRecorder::active() {
  return g_recorder.load(std::memory_order_relaxed);
}

void TraceRecorder::Record(TraceEvent ev) {
  util::MutexLock lock(mu_);
  ring_[recorded_ % capacity_] = std::move(ev);
  ++recorded_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  util::MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  const uint64_t n = recorded_ < capacity_ ? recorded_ : capacity_;
  out.reserve(n);
  const uint64_t start = recorded_ - n;  // Oldest surviving event.
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

uint64_t TraceRecorder::recorded() const {
  util::MutexLock lock(mu_);
  return recorded_;
}

uint64_t TraceRecorder::dropped() const {
  util::MutexLock lock(mu_);
  return recorded_ <= capacity_ ? 0 : recorded_ - capacity_;
}

void TraceRecorder::Clear() {
  util::MutexLock lock(mu_);
  for (TraceEvent& ev : ring_) ev = TraceEvent{};
  recorded_ = 0;
}

TraceSpan::TraceSpan(const char* name) {
  TraceRecorder* rec = TraceRecorder::active();
  if (rec == nullptr) return;  // The zero-cost path: load + branch.
  rec_ = rec;
  name_ = name;
  id_ = rec->NextId();
  parent_ = tls_current_span;
  tls_current_span = id_;
  start_nanos_ = MonotonicNanos();
}

TraceSpan::~TraceSpan() {
  if (rec_ == nullptr) return;
  const uint64_t end = MonotonicNanos();
  tls_current_span = parent_;
  TraceEvent ev;
  ev.id = id_;
  ev.parent_id = parent_;
  ev.name = name_;
  ev.start_nanos = start_nanos_ - rec_->epoch_nanos_;
  ev.duration_nanos = end - start_nanos_;
  ev.tags = std::move(tags_);
  rec_->Record(std::move(ev));
}

void TraceSpan::Tag(std::string_view key, std::string_view value) {
  if (rec_ == nullptr) return;
  tags_.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::Tag(std::string_view key, uint64_t value) {
  if (rec_ == nullptr) return;
  tags_.emplace_back(std::string(key), std::to_string(value));
}

void TraceSpan::Tag(std::string_view key, double value) {
  if (rec_ == nullptr) return;
  tags_.emplace_back(std::string(key), FormatDouble(value, 3));
}

}  // namespace ctxpref
