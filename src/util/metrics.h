#ifndef CTXPREF_UTIL_METRICS_H_
#define CTXPREF_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/mutex.h"

namespace ctxpref {

/// Process-wide metrics: named counters, gauges and latency histograms
/// registered in a `MetricsRegistry` and exportable as Prometheus text
/// or JSON. The query path (Rank_CS, context resolution, the query
/// cache, context acquisition, the thread pool) ticks these
/// unconditionally — a tick is one relaxed atomic add — while *timed*
/// instrumentation (clock reads feeding the latency histograms) is
/// gated behind `MetricsRegistry::TimingEnabled()` so the hot path
/// pays no clock overhead unless an operator opts in (e.g. the
/// benches' `--metrics` flag). See docs/observability.md.

/// Monotonically increasing counter (relaxed atomic).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time signed value (relaxed atomic), e.g. a queue depth.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Steady-clock nanoseconds; the time base for all latency metrics and
/// trace spans.
uint64_t MonotonicNanos();

/// A name -> metric map with stable iteration order (export is
/// deterministic) and stable addresses (a returned reference stays
/// valid for the registry's lifetime — instrumented code caches it in
/// a function-local static). Thread-safe.
///
/// Metric names follow Prometheus conventions: `[a-zA-Z_:][a-zA-Z0-9_:]*`,
/// counters end in `_total`, nanosecond histograms in `_ns`. Looking a
/// name up again with a different metric kind aborts — that is a
/// programming error, not a runtime condition.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation uses.
  static MetricsRegistry& Global();

  /// Returns the metric registered under `name`, creating it on first
  /// use. `help` is kept from the first registration.
  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  LatencyHistogram& GetHistogram(const std::string& name,
                                 const std::string& help = "");

  /// Prometheus text exposition format: HELP/TYPE comments, histogram
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
  std::string PrometheusText() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum_nanos, mean_ns, p50_ns, p95_ns, p99_ns,
  /// buckets: [{le, count}, ...]}}} with only non-empty buckets listed.
  std::string Json() const;

  /// Zeroes every registered metric (registrations are kept). For
  /// tests and benchmark runs; not intended for production use.
  void Reset();

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Whether instrumented code should take timestamps. Off by default:
  /// with timing off, instrumentation cost is counter ticks only and a
  /// no-recorder trace-span check — no clock reads.
  static bool TimingEnabled() {
    return timing_enabled_.load(std::memory_order_relaxed);
  }
  static void SetTimingEnabled(bool on) {
    timing_enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  /// Returns a stable reference: map nodes never move, and metrics
  /// are never erased, so the result outlives the lock by design.
  Metric& GetOrCreate(const std::string& name, const std::string& help,
                      Kind kind) EXCLUDES(mu_);

  inline static std::atomic<bool> timing_enabled_{false};

  /// Leaf-rank lock: held only around map lookup/insert and export
  /// walks — metric updates themselves are lock-free atomics.
  mutable util::Mutex mu_{util::LockRank::kMetricsRegistry,
                          "MetricsRegistry.mu"};
  std::map<std::string, Metric> metrics_ GUARDED_BY(mu_);
};

/// RAII latency sample: records the elapsed nanoseconds into `h` on
/// destruction, but only when timing was enabled at construction.
/// `h` may be null (no-op) for conditionally-resolved histograms.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* h)
      : h_(MetricsRegistry::TimingEnabled() ? h : nullptr),
        start_(h_ != nullptr ? MonotonicNanos() : 0) {}
  ~ScopedLatency() {
    if (h_ != nullptr) h_->Record(MonotonicNanos() - start_);
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

  /// Redirects the pending sample (e.g. once a lookup's hit/miss
  /// outcome is known). Ignored when timing was off at construction.
  void SetHistogram(LatencyHistogram* h) {
    if (h_ != nullptr) h_ = h;
  }

 private:
  LatencyHistogram* h_;
  uint64_t start_;
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_METRICS_H_
