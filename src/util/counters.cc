#include "util/counters.h"

// AccessCounter is header-only; this file exists so the util library has
// a stable archive member for the target and a home for future stats.
