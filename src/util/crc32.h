#ifndef CTXPREF_UTIL_CRC32_H_
#define CTXPREF_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace ctxpref {

/// CRC-32 (IEEE 802.3 polynomial, reflected) used to checksum
/// serialized profiles. `seed` allows incremental computation:
/// Crc32(b, Crc32(a)) == Crc32(ab).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_CRC32_H_
