#ifndef CTXPREF_UTIL_STRING_UTIL_H_
#define CTXPREF_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ctxpref {

/// Splits `s` on `sep`, trimming whitespace from each piece.
/// Empty pieces are kept ("a,,b" -> {"a", "", "b"}) so callers can
/// detect malformed input; an empty input yields a single empty piece.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a double; returns false on trailing garbage or empty input.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Formats a double with up to `precision` digits, trimming trailing
/// zeros ("0.9", not "0.900000").
std::string FormatDouble(double v, int precision = 6);

/// Formats a double with the shortest decimal representation that
/// parses back (via `ParseDouble`) to the exact same bits. Use for
/// serialization; `FormatDouble` is for display.
std::string FormatDoubleRoundTrip(double v);

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_STRING_UTIL_H_
