#include "util/thread_pool.h"

#include <stdexcept>
#include <utility>

#include "util/metrics.h"

namespace ctxpref {

namespace {

/// Pool metrics, shared by every `ThreadPool` instance. The gauge
/// tracks the global queued-task count; per-pool depth is not exported
/// (pools are short-lived in `CachedRankCS` and names must be stable).
struct PoolMetrics {
  Counter& tasks;
  Gauge& queue_depth;
  LatencyHistogram& task_wait;

  static PoolMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static PoolMetrics* m = new PoolMetrics{
        reg.GetCounter("ctxpref_thread_pool_tasks_total",
                       "Tasks submitted across all thread pools"),
        reg.GetGauge("ctxpref_thread_pool_queue_depth",
                     "Tasks currently queued (not yet running), all pools"),
        reg.GetHistogram("ctxpref_thread_pool_task_wait_ns",
                         "Queue wait from Submit to execution start"),
    };
    return *m;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  queue_capacity_ = queue_capacity > 0 ? queue_capacity : 2 * num_threads;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(std::move(stop)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    stopping_ = true;
  }
  for (std::jthread& w : workers_) w.request_stop();
  not_empty_.NotifyAll();
  // Wake any Submit blocked on a full queue so it fails fast instead
  // of hanging once the workers stop signaling free slots.
  not_full_.NotifyAll();
  // jthread joins on destruction; WorkerLoop drains the queue first.
}

void ThreadPool::Submit(std::function<void()> task) {
  PoolMetrics& metrics = PoolMetrics::Get();
  Item item{std::move(task),
            MetricsRegistry::TimingEnabled() ? MonotonicNanos() : 0};
  {
    util::MutexLock lock(mu_);
    not_full_.Wait(mu_, [this]() REQUIRES(mu_) {
      return stopping_ || queue_.size() < queue_capacity_;
    });
    if (stopping_) {
      throw std::runtime_error("ThreadPool::Submit called during shutdown");
    }
    queue_.push_back(std::move(item));
  }
  metrics.tasks.Increment();
  metrics.queue_depth.Add(1);
  not_empty_.NotifyOne();
}

void ThreadPool::Wait() {
  util::MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() REQUIRES(mu_) {
    return queue_.empty() && running_ == 0;
  });
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    Item item;
    {
      util::MutexLock lock(mu_);
      not_empty_.Wait(mu_, stop,
                      [this]() REQUIRES(mu_) { return !queue_.empty(); });
      if (queue_.empty()) return;  // Stop requested and queue drained.
      item = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    metrics.queue_depth.Add(-1);
    if (item.enqueue_nanos != 0) {
      metrics.task_wait.Record(MonotonicNanos() - item.enqueue_nanos);
    }
    not_full_.NotifyOne();
    try {
      item.fn();
    } catch (...) {
      // An exception leaving a jthread body would std::terminate the
      // process (and skip the bookkeeping below). Tasks are expected
      // to report failure through their own channels, e.g. a captured
      // Status; anything escaping anyway is dropped here.
    }
    {
      util::MutexLock lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace ctxpref
