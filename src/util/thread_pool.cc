#include "util/thread_pool.h"

#include <stdexcept>
#include <utility>

#include "util/metrics.h"

namespace ctxpref {

namespace {

/// Pool metrics, shared by every `ThreadPool` instance. The depth gauge
/// tracks the global queued-task count; the highwater gauge is a
/// monotone max over every pool's observed depth (approximate under
/// concurrency — two pools racing the read-modify-write may lose an
/// update — which is fine for a saturation signal). Per-pool exact
/// numbers live in `ThreadPool::GetWindowStats`.
struct PoolMetrics {
  Counter& tasks;
  Counter& rejected;
  Counter& expired_drops;
  Gauge& queue_depth;
  Gauge& queue_highwater;
  LatencyHistogram& task_wait;

  static PoolMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static PoolMetrics* m = new PoolMetrics{
        reg.GetCounter("ctxpref_thread_pool_tasks_total",
                       "Tasks submitted across all thread pools"),
        reg.GetCounter("ctxpref_thread_pool_rejected_total",
                       "TrySubmit rejections (queue full or shutdown)"),
        reg.GetCounter("ctxpref_thread_pool_expired_drops_total",
                       "Tasks dropped at dequeue because their deadline "
                       "passed while queued"),
        reg.GetGauge("ctxpref_thread_pool_queue_depth",
                     "Tasks currently queued (not yet running), all pools"),
        reg.GetGauge("ctxpref_thread_pool_queue_highwater",
                     "Max observed queued-task count, any pool "
                     "(approximate; monotone until registry reset)"),
        reg.GetHistogram("ctxpref_thread_pool_task_wait_ns",
                         "Queue wait from Submit to execution start"),
    };
    return *m;
  }

  void RecordDepth(size_t depth) {
    if (static_cast<int64_t>(depth) > queue_highwater.value()) {
      queue_highwater.Set(static_cast<int64_t>(depth));
    }
  }
};

}  // namespace

const char* SubmitResultToString(SubmitResult r) {
  switch (r) {
    case SubmitResult::kAccepted:
      return "accepted";
    case SubmitResult::kRejectedFull:
      return "rejected-full";
    case SubmitResult::kRejectedShutdown:
      return "rejected-shutdown";
  }
  return "unknown";
}

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity,
                       DequeueOrder order)
    : order_(order) {
  if (num_threads == 0) num_threads = 1;
  queue_capacity_ = queue_capacity > 0 ? queue_capacity : 2 * num_threads;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this](std::stop_token stop) { WorkerLoop(std::move(stop)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    stopping_ = true;
  }
  for (std::jthread& w : workers_) w.request_stop();
  not_empty_.NotifyAll();
  // Wake any Submit blocked on a full queue so it fails fast instead
  // of hanging once the workers stop signaling free slots.
  not_full_.NotifyAll();
  // jthread joins on destruction; WorkerLoop drains the queue first.
}

void ThreadPool::EnqueueLocked(Item item) {
  queue_.push_back(std::move(item));
  ++window_.submitted;
  if (queue_.size() > window_.queue_highwater) {
    window_.queue_highwater = queue_.size();
  }
  PoolMetrics::Get().RecordDepth(queue_.size());
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(std::move(task), util::Deadline(), nullptr);
}

void ThreadPool::Submit(std::function<void()> task, util::Deadline deadline,
                        std::function<void()> on_expired) {
  PoolMetrics& metrics = PoolMetrics::Get();
  Item item{std::move(task),
            MetricsRegistry::TimingEnabled() ? MonotonicNanos() : 0, deadline,
            std::move(on_expired)};
  {
    util::MutexLock lock(mu_);
    not_full_.Wait(mu_, [this]() REQUIRES(mu_) {
      return stopping_ || queue_.size() < queue_capacity_;
    });
    if (stopping_) {
      ++window_.rejected_shutdown;
      throw std::runtime_error("ThreadPool::Submit called during shutdown");
    }
    EnqueueLocked(std::move(item));
  }
  metrics.tasks.Increment();
  metrics.queue_depth.Add(1);
  not_empty_.NotifyOne();
}

SubmitResult ThreadPool::TrySubmit(std::function<void()> task,
                                   util::Deadline deadline,
                                   std::function<void()> on_expired) {
  PoolMetrics& metrics = PoolMetrics::Get();
  Item item{std::move(task),
            MetricsRegistry::TimingEnabled() ? MonotonicNanos() : 0, deadline,
            std::move(on_expired)};
  {
    util::MutexLock lock(mu_);
    if (stopping_) {
      ++window_.rejected_shutdown;
      metrics.rejected.Increment();
      return SubmitResult::kRejectedShutdown;
    }
    if (queue_.size() >= queue_capacity_) {
      ++window_.rejected_full;
      metrics.rejected.Increment();
      return SubmitResult::kRejectedFull;
    }
    EnqueueLocked(std::move(item));
  }
  metrics.tasks.Increment();
  metrics.queue_depth.Add(1);
  not_empty_.NotifyOne();
  return SubmitResult::kAccepted;
}

void ThreadPool::Wait() {
  util::MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() REQUIRES(mu_) {
    return queue_.empty() && running_ == 0;
  });
}

ThreadPool::WindowStats ThreadPool::GetWindowStats() const {
  util::MutexLock lock(mu_);
  return window_;
}

void ThreadPool::ResetWindowStats() {
  util::MutexLock lock(mu_);
  window_ = WindowStats{};
  // Re-seed the highwater with the current depth so a busy window
  // never reports a highwater below what is queued right now.
  window_.queue_highwater = queue_.size();
}

void ThreadPool::WorkerLoop(std::stop_token stop) {
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    Item item;
    bool expired;
    {
      util::MutexLock lock(mu_);
      not_empty_.Wait(mu_, stop,
                      [this]() REQUIRES(mu_) { return !queue_.empty(); });
      if (queue_.empty()) return;  // Stop requested and queue drained.
      if (order_ == DequeueOrder::kLifo) {
        item = std::move(queue_.back());
        queue_.pop_back();
      } else {
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      // The deadline check reads the (injected, possibly fake) clock;
      // it is cheap enough to sit under the queue lock and must be
      // decided before `running_` bookkeeping picks a branch.
      expired = item.deadline.Expired();
      ++running_;
      if (expired) {
        ++window_.expired_dropped;
      } else {
        ++window_.executed;
      }
    }
    metrics.queue_depth.Add(-1);
    if (item.enqueue_nanos != 0) {
      metrics.task_wait.Record(MonotonicNanos() - item.enqueue_nanos);
    }
    not_full_.NotifyOne();
    try {
      if (expired) {
        metrics.expired_drops.Increment();
        // Run the expiry path instead of the task body so completion
        // latches (CachedRankCS::done_cv) still count down.
        if (item.on_expired) item.on_expired();
      } else {
        item.fn();
      }
    } catch (...) {
      // An exception leaving a jthread body would std::terminate the
      // process (and skip the bookkeeping below). Tasks are expected
      // to report failure through their own channels, e.g. a captured
      // Status; anything escaping anyway is dropped here.
    }
    {
      util::MutexLock lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace ctxpref
