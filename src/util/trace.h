#ifndef CTXPREF_UTIL_TRACE_H_
#define CTXPREF_UTIL_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.h"

namespace ctxpref {

/// Lightweight scoped tracing for the query path.
///
/// A `TraceSpan` marks one timed region (`rank_cs`, `resolve.search_cs`,
/// `query_cache.lookup`, ...). Spans nest: a span constructed while
/// another span is open on the same thread records that span as its
/// parent, so a drained trace reconstructs the call tree. Completed
/// spans land in the installed `TraceRecorder`'s fixed-capacity ring
/// buffer (oldest events are overwritten, `dropped()` counts them).
///
/// Cost contract: with no recorder installed, constructing a span is
/// one relaxed atomic load and a branch — no clock read, no id
/// allocation, no heap traffic — so instrumentation can stay in the
/// hot path permanently. `Tag` is likewise a no-op on inactive spans.
///
/// Lifetime contract: a recorder must outlive any span started while
/// it was installed (spans pin the recorder they saw at construction).
/// Uninstall, then drain/destroy — in that order.

/// One completed span.
struct TraceEvent {
  uint64_t id = 0;         ///< Unique per recorder, 1-based.
  uint64_t parent_id = 0;  ///< 0 = root (no enclosing span on the thread).
  std::string name;
  uint64_t start_nanos = 0;     ///< Relative to the recorder's epoch.
  uint64_t duration_nanos = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 4096);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Makes this recorder the process-wide active one. At most one
  /// recorder is active; installing replaces the previous one.
  void Install();
  /// Deactivates this recorder if it is the active one (no-op else).
  void Uninstall();
  /// The active recorder, or null (the common production state).
  static TraceRecorder* active();

  /// Completed spans, oldest first. A parent may be missing from the
  /// result if the ring wrapped past it; renderers treat such spans as
  /// roots.
  std::vector<TraceEvent> Events() const;

  uint64_t recorded() const;  ///< Total spans recorded (incl. dropped).
  uint64_t dropped() const;   ///< Spans overwritten by ring wraparound.
  size_t capacity() const { return capacity_; }

  void Clear();

 private:
  friend class TraceSpan;

  uint64_t NextId() {
    return id_gen_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void Record(TraceEvent ev) EXCLUDES(mu_);

  const size_t capacity_;
  const uint64_t epoch_nanos_;
  std::atomic<uint64_t> id_gen_{0};

  /// Spans record into the ring after releasing any user-visible
  /// locks, so this sits near the leaf of the hierarchy.
  mutable util::Mutex mu_{util::LockRank::kTraceRecorder,
                          "TraceRecorder.mu"};
  /// Ring storage, capacity_ slots.
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
  uint64_t recorded_ GUARDED_BY(mu_) = 0;
};

/// RAII span. Records on destruction into the recorder that was active
/// at construction; inactive spans (no recorder) cost a branch.
class TraceSpan {
 public:
  /// `name` must be a string with static storage duration (a literal);
  /// it is not copied until the span completes.
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return rec_ != nullptr; }

  void Tag(std::string_view key, std::string_view value);
  void Tag(std::string_view key, uint64_t value);
  void Tag(std::string_view key, double value);

 private:
  TraceRecorder* rec_ = nullptr;
  const char* name_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_nanos_ = 0;  ///< Absolute; rebased on record.
  std::vector<std::pair<std::string, std::string>> tags_;
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_TRACE_H_
