#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ctxpref {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ 11+.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

std::string FormatDoubleRoundTrip(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return FormatDouble(v, 17);
  return std::string(buf, ptr);
}

}  // namespace ctxpref
