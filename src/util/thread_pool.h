#ifndef CTXPREF_UTIL_THREAD_POOL_H_
#define CTXPREF_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/deadline.h"
#include "util/mutex.h"

namespace ctxpref {

/// Outcome of a `TrySubmit` (and, via exception, of `Submit`). Shedding
/// callers branch on this instead of queueing behind a full pool.
enum class SubmitResult {
  kAccepted,          ///< Task enqueued (or already running).
  kRejectedFull,      ///< Bounded queue at capacity; task not enqueued.
  kRejectedShutdown,  ///< Pool is stopping; task not enqueued.
};

const char* SubmitResultToString(SubmitResult r);

/// Queue discipline. FIFO is fair; LIFO-under-overload serves the
/// *newest* work first, which under saturation spends the machine on
/// requests whose deadlines are still alive instead of on stale ones
/// that will be dropped at dequeue anyway (the classic adaptive-LIFO
/// overload pattern).
enum class DequeueOrder { kFifo, kLifo };

/// A small fixed-size worker pool over a bounded task queue.
///
/// `Submit` blocks when the queue is full (backpressure instead of
/// unbounded memory growth); `TrySubmit` refuses instead of blocking
/// and reports why, which is what admission-controlled serving paths
/// use. `Wait` blocks until every accepted task has finished or been
/// expired. Destruction drains the queue: tasks already submitted run
/// to completion before the `std::jthread`s join.
///
/// Deadlines: a task may carry a `util::Deadline`; if it expires while
/// the task is still queued, the worker *drops* the task at dequeue —
/// running its `on_expired` callback (if any) instead of the task body
/// — so a saturated pool stops wasting cycles on work nobody is
/// waiting for. `on_expired` is how completion latches stay balanced.
///
/// Used by `CachedRankCS` to evaluate the states of an extended
/// descriptor concurrently; results are merged by the caller in a
/// deterministic order, so tasks must not depend on execution order.
///
/// Locking: one queue mutex (`LockRank::kPoolQueue` — it is never held
/// while a task body or `on_expired` runs, so tasks may take any other
/// lock in the tree).
class ThreadPool {
 public:
  /// Reset-able per-pool saturation statistics (the "window"), distinct
  /// from the process-wide `ctxpref_thread_pool_*` metrics which
  /// aggregate across pools and never reset.
  struct WindowStats {
    uint64_t submitted = 0;          ///< Accepted by Submit/TrySubmit.
    uint64_t rejected_full = 0;      ///< TrySubmit refusals (queue full).
    uint64_t rejected_shutdown = 0;  ///< Refusals during shutdown.
    uint64_t executed = 0;           ///< Task bodies actually run.
    uint64_t expired_dropped = 0;    ///< Dropped at dequeue (deadline).
    size_t queue_highwater = 0;      ///< Max queue depth since reset.
  };

  /// `num_threads` is clamped to at least 1; `queue_capacity` = 0 means
  /// twice the thread count.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 0,
                      DequeueOrder order = DequeueOrder::kFifo);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }
  DequeueOrder dequeue_order() const { return order_; }

  /// Enqueues `task`; blocks while the queue is at capacity. Throws
  /// `std::runtime_error` once destruction has begun instead of
  /// enqueuing a task that would never run. Exceptions escaping `task`
  /// itself are caught and discarded by the worker, so tasks must
  /// report failure through their own channels (e.g. a captured
  /// Status).
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Like `Submit`, but the task is dropped (and `on_expired` run in
  /// its place, on a worker thread) if `deadline` passes before a
  /// worker dequeues it.
  void Submit(std::function<void()> task, util::Deadline deadline,
              std::function<void()> on_expired = nullptr) EXCLUDES(mu_);

  /// Non-blocking admission: refuses instead of waiting when the queue
  /// is full or the pool is shutting down. On any rejection the task is
  /// NOT enqueued and `on_expired` is NOT run — the caller owns the
  /// fallback.
  SubmitResult TrySubmit(std::function<void()> task,
                         util::Deadline deadline = {},
                         std::function<void()> on_expired = nullptr)
      EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running.
  void Wait() EXCLUDES(mu_);

  /// Snapshot of the stats window (since construction or the last
  /// `ResetWindowStats`).
  WindowStats GetWindowStats() const EXCLUDES(mu_);
  void ResetWindowStats() EXCLUDES(mu_);

 private:
  /// A queued task plus its enqueue timestamp for the
  /// `ctxpref_thread_pool_task_wait_ns` histogram; 0 when
  /// `MetricsRegistry::TimingEnabled()` was off at submit time.
  struct Item {
    std::function<void()> fn;
    uint64_t enqueue_nanos = 0;
    util::Deadline deadline;            ///< Infinite by default.
    std::function<void()> on_expired;   ///< May be empty.
  };

  void WorkerLoop(std::stop_token stop) EXCLUDES(mu_);
  /// Queue push + stats under the lock; caller already checked
  /// capacity/stopping.
  void EnqueueLocked(Item item) REQUIRES(mu_);

  // Unguarded members first (repo convention: everything below a mutex
  // is that mutex's guarded state — scripts/lint.py enforces it).
  size_t queue_capacity_;  ///< Set once in the constructor.
  DequeueOrder order_;     ///< Set once in the constructor.

  mutable util::Mutex mu_{util::LockRank::kPoolQueue, "ThreadPool.mu"};
  util::CondVar not_empty_;  ///< Queue gained a task.
  util::CondVar not_full_;   ///< Queue gained a slot.
  util::CondVar idle_;       ///< Queue drained, nothing running.
  std::deque<Item> queue_ GUARDED_BY(mu_);
  size_t running_ GUARDED_BY(mu_) = 0;  ///< Tasks currently executing.
  /// Set by the destructor; Submit fails fast.
  bool stopping_ GUARDED_BY(mu_) = false;
  WindowStats window_ GUARDED_BY(mu_);
  /// Written only by the constructor; worker threads never touch the
  /// vector itself. Declared LAST deliberately: the jthread destructors
  /// must join the workers while mu_, the condition variables, and the
  /// queue are all still alive.
  std::vector<std::jthread> workers_;  // lint:allow(unguarded) dtor order
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_THREAD_POOL_H_
