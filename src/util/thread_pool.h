#ifndef CTXPREF_UTIL_THREAD_POOL_H_
#define CTXPREF_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace ctxpref {

/// A small fixed-size worker pool over a bounded task queue.
///
/// `Submit` blocks when the queue is full (backpressure instead of
/// unbounded memory growth), `Wait` blocks until every submitted task
/// has finished. Destruction drains the queue: tasks already submitted
/// run to completion before the `std::jthread`s join.
///
/// Used by `CachedRankCS` to evaluate the states of an extended
/// descriptor concurrently; results are merged by the caller in a
/// deterministic order, so tasks must not depend on execution order.
///
/// Locking: one queue mutex (`LockRank::kPoolQueue`, the innermost
/// rank — it is never held while a task body runs, so tasks may take
/// any other lock in the tree).
class ThreadPool {
 public:
  /// `num_threads` is clamped to at least 1; `queue_capacity` = 0 means
  /// twice the thread count.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task`; blocks while the queue is at capacity. Throws
  /// `std::runtime_error` once destruction has begun instead of
  /// enqueuing a task that would never run. Exceptions escaping `task`
  /// itself are caught and discarded by the worker, so tasks must
  /// report failure through their own channels (e.g. a captured
  /// Status).
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running.
  void Wait() EXCLUDES(mu_);

 private:
  /// A queued task plus its enqueue timestamp for the
  /// `ctxpref_thread_pool_task_wait_ns` histogram; 0 when
  /// `MetricsRegistry::TimingEnabled()` was off at submit time.
  struct Item {
    std::function<void()> fn;
    uint64_t enqueue_nanos = 0;
  };

  void WorkerLoop(std::stop_token stop) EXCLUDES(mu_);

  // Unguarded members first (repo convention: everything below a mutex
  // is that mutex's guarded state — scripts/lint.py enforces it).
  size_t queue_capacity_;  ///< Set once in the constructor.

  util::Mutex mu_{util::LockRank::kPoolQueue, "ThreadPool.mu"};
  util::CondVar not_empty_;  ///< Queue gained a task.
  util::CondVar not_full_;   ///< Queue gained a slot.
  util::CondVar idle_;       ///< Queue drained, nothing running.
  std::deque<Item> queue_ GUARDED_BY(mu_);
  size_t running_ GUARDED_BY(mu_) = 0;  ///< Tasks currently executing.
  /// Set by the destructor; Submit fails fast.
  bool stopping_ GUARDED_BY(mu_) = false;
  /// Written only by the constructor; worker threads never touch the
  /// vector itself. Declared LAST deliberately: the jthread destructors
  /// must join the workers while mu_, the condition variables, and the
  /// queue are all still alive.
  std::vector<std::jthread> workers_;  // lint:allow(unguarded) dtor order
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_THREAD_POOL_H_
