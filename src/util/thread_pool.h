#ifndef CTXPREF_UTIL_THREAD_POOL_H_
#define CTXPREF_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ctxpref {

/// A small fixed-size worker pool over a bounded task queue.
///
/// `Submit` blocks when the queue is full (backpressure instead of
/// unbounded memory growth), `Wait` blocks until every submitted task
/// has finished. Destruction drains the queue: tasks already submitted
/// run to completion before the `std::jthread`s join.
///
/// Used by `CachedRankCS` to evaluate the states of an extended
/// descriptor concurrently; results are merged by the caller in a
/// deterministic order, so tasks must not depend on execution order.
class ThreadPool {
 public:
  /// `num_threads` is clamped to at least 1; `queue_capacity` = 0 means
  /// twice the thread count.
  explicit ThreadPool(size_t num_threads, size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task`; blocks while the queue is at capacity. Throws
  /// `std::runtime_error` once destruction has begun instead of
  /// enqueuing a task that would never run. Exceptions escaping `task`
  /// itself are caught and discarded by the worker, so tasks must
  /// report failure through their own channels (e.g. a captured
  /// Status).
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

 private:
  /// A queued task plus its enqueue timestamp for the
  /// `ctxpref_thread_pool_task_wait_ns` histogram; 0 when
  /// `MetricsRegistry::TimingEnabled()` was off at submit time.
  struct Item {
    std::function<void()> fn;
    uint64_t enqueue_nanos = 0;
  };

  void WorkerLoop(std::stop_token stop);

  std::mutex mu_;
  std::condition_variable_any not_empty_;  ///< Queue gained a task.
  std::condition_variable not_full_;       ///< Queue gained a slot.
  std::condition_variable idle_;           ///< Queue drained, nothing running.
  std::deque<Item> queue_;
  size_t queue_capacity_;
  size_t running_ = 0;     ///< Tasks currently executing.
  bool stopping_ = false;  ///< Set by the destructor; Submit fails fast.
  std::vector<std::jthread> workers_;
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_THREAD_POOL_H_
