#include "util/mutex.h"

#include <cstdio>
#include <cstdlib>

namespace ctxpref::util {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "unranked";
    case LockRank::kAdmission:
      return "admission";
    case LockRank::kUserMap:
      return "user-map";
    case LockRank::kPerUserWrite:
      return "per-user-write";
    case LockRank::kStoreSlot:
      return "store-slot";
    case LockRank::kCoherenceConsume:
      return "coherence-consume";
    case LockRank::kCoherenceLog:
      return "coherence-log";
    case LockRank::kCacheShard:
      return "cache-shard";
    case LockRank::kResilientSource:
      return "resilient-source";
    case LockRank::kFaultInjector:
      return "fault-injector";
    case LockRank::kMetricsRegistry:
      return "metrics-registry";
    case LockRank::kTraceRecorder:
      return "trace-recorder";
    case LockRank::kPoolQueue:
      return "pool-queue";
    case LockRank::kCompletion:
      return "completion";
  }
  return "invalid";
}

#if CTXPREF_LOCK_RANK_CHECKS

namespace internal {

namespace {

/// One ranked lock this thread currently holds. Unranked locks are
/// never pushed, so the stack stays tiny (the deepest documented
/// nesting is four locks).
struct HeldLock {
  const void* mu;
  LockRank rank;
  const char* name;
};

/// Fixed-capacity per-thread stack: no allocation on the lock path,
/// and trivially async-signal-safe to inspect. Deeper nesting than
/// this is itself a hierarchy smell, so overflow aborts too.
constexpr int kMaxHeld = 16;

struct HeldStack {
  HeldLock locks[kMaxHeld];
  int depth = 0;
};

thread_local HeldStack tls_held;

[[noreturn]] void Die(const char* format, const char* acquiring,
                      const char* held) {
  std::fprintf(stderr, format, acquiring, held);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void PushHeldRank(const void* mu, LockRank rank, const char* name) {
  HeldStack& held = tls_held;
  if (rank != LockRank::kUnranked) {
    // The hierarchy rule: every ranked lock already held must rank
    // strictly lower. Equal ranks are violations too — two same-rank
    // locks held together is exactly the AB/BA shape the ranks exist
    // to forbid.
    for (int i = 0; i < held.depth; ++i) {
      if (held.locks[i].rank != LockRank::kUnranked &&
          held.locks[i].rank >= rank) {
        Die("lock-rank violation: acquiring '%s' while holding '%s' "
            "inverts the documented lock hierarchy "
            "(docs/static_analysis.md)\n",
            name, held.locks[i].name);
      }
    }
  }
  if (held.depth == kMaxHeld) {
    Die("lock-rank checker: thread holds %s locks acquiring '%s' — "
        "deeper nesting than the documented hierarchy allows\n",
        "16", name);
  }
  held.locks[held.depth++] = HeldLock{mu, rank, name};
}

void PopHeldRank(const void* mu) {
  HeldStack& held = tls_held;
  // Locks usually release LIFO, but std::unique_lock-style early
  // unlocks may release out of order, so search from the top.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.locks[i].mu == mu) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.locks[j] = held.locks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  // Unlocking a lock this thread never recorded: a wrapper bug, not a
  // user error — fail loudly.
  Die("lock-rank checker: unlocking '%s' which this thread does not "
      "hold%s\n",
      "util::Mutex", "");
}

}  // namespace internal

#endif  // CTXPREF_LOCK_RANK_CHECKS

}  // namespace ctxpref::util
