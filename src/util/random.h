#ifndef CTXPREF_UTIL_RANDOM_H_
#define CTXPREF_UTIL_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ctxpref {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// Every workload generator and benchmark in this repository takes an
/// explicit seed and draws exclusively from this engine, so results are
/// reproducible across runs and platforms (std:: distributions are not
/// specified bit-exactly, hence the hand-rolled helpers below).
class Rng {
 public:
  /// Seeds the engine; equal seeds produce equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed integers over {0, 1, ..., n-1} with skew `a`:
/// P(k) ∝ 1 / (k+1)^a. a == 0 degenerates to the uniform distribution,
/// matching the paper's Fig. 6 (right) sweep where a ranges 0..3.5.
///
/// Implemented by precomputing the CDF (domains here are at most a few
/// thousand values) and sampling via binary search; O(log n) per draw.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `a` >= 0.
  ZipfDistribution(uint64_t n, double a);

  /// Draws one value in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double a() const { return a_; }

 private:
  uint64_t n_;
  double a_;
  std::vector<double> cdf_;
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_RANDOM_H_
