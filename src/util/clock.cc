#include "util/clock.h"

#include <chrono>
#include <thread>

namespace ctxpref {
namespace util {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

SystemClock* SystemClock::Instance() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

}  // namespace util
}  // namespace ctxpref
