#ifndef CTXPREF_UTIL_COUNTERS_H_
#define CTXPREF_UTIL_COUNTERS_H_

#include <cstdint>

namespace ctxpref {

/// Counts index cell visits during context resolution.
///
/// The paper's performance metric (Fig. 7) is the number of *cells*
/// touched while locating the preferences relevant to a query, both for
/// the profile tree and for the sequential-scan baseline. Resolution
/// entry points accept an optional `AccessCounter*`; when non-null the
/// data structures tick it on every cell inspected, so the benchmark
/// measures the real traversal rather than estimating it.
class AccessCounter {
 public:
  AccessCounter() = default;

  void AddCell(uint64_t n = 1) { cells_ += n; }
  void AddNode(uint64_t n = 1) { nodes_ += n; }

  uint64_t cells() const { return cells_; }
  uint64_t nodes() const { return nodes_; }

  void Reset() {
    cells_ = 0;
    nodes_ = 0;
  }

 private:
  uint64_t cells_ = 0;
  uint64_t nodes_ = 0;
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_COUNTERS_H_
