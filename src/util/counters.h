#ifndef CTXPREF_UTIL_COUNTERS_H_
#define CTXPREF_UTIL_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace ctxpref {

/// Counts index cell visits during context resolution.
///
/// The paper's performance metric (Fig. 7) is the number of *cells*
/// touched while locating the preferences relevant to a query, both for
/// the profile tree and for the sequential-scan baseline. Resolution
/// entry points accept an optional `AccessCounter*`; when non-null the
/// data structures tick it on every cell inspected, so the benchmark
/// measures the real traversal rather than estimating it.
///
/// The counters are relaxed atomics so one counter can be shared by the
/// worker threads of a parallel `CachedRankCS` run; totals are exact,
/// but reads concurrent with ticks are only a snapshot.
class AccessCounter {
 public:
  AccessCounter() = default;

  AccessCounter(const AccessCounter&) = delete;
  AccessCounter& operator=(const AccessCounter&) = delete;

  void AddCell(uint64_t n = 1) {
    cells_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNode(uint64_t n = 1) {
    nodes_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t cells() const { return cells_.load(std::memory_order_relaxed); }
  uint64_t nodes() const { return nodes_.load(std::memory_order_relaxed); }

  void Reset() {
    cells_.store(0, std::memory_order_relaxed);
    nodes_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> cells_{0};
  std::atomic<uint64_t> nodes_{0};
};

/// Plain snapshot of `AcquisitionCounters` (safe to copy around).
struct AcquisitionStats {
  uint64_t reads = 0;             ///< Snapshot-level parameter reads.
  uint64_t attempts = 0;          ///< Backend read attempts (incl. retries).
  uint64_t fresh = 0;             ///< Served a first-attempt reading.
  uint64_t retried = 0;           ///< Served after >= 1 retry.
  uint64_t stale = 0;             ///< Served last-known-good within TTL.
  uint64_t stale_lifted = 0;      ///< Served last-known-good lifted >= 1 level.
  uint64_t lifted_levels = 0;     ///< Total staleness-ladder steps applied.
  uint64_t breaker_open = 0;      ///< Served without probing (breaker open).
  uint64_t absent = 0;            ///< No value at all: parameter took `all`.
  uint64_t errors = 0;            ///< Backend errors observed (any attempt).
};

/// Aggregate health counters for context acquisition (the resilience
/// layer of `src/context/resilient_source.h`). One instance typically
/// lives in `CurrentContext` and is ticked per parameter per snapshot,
/// so operators can see *why* served context states are coarse.
///
/// Relaxed atomics, same contract as `AccessCounter`: totals are exact,
/// concurrent reads are snapshots.
class AcquisitionCounters {
 public:
  AcquisitionCounters() = default;

  AcquisitionCounters(const AcquisitionCounters&) = delete;
  AcquisitionCounters& operator=(const AcquisitionCounters&) = delete;

  void AddReads(uint64_t n = 1) { Tick(reads_, n); }
  void AddAttempts(uint64_t n = 1) { Tick(attempts_, n); }
  void AddFresh(uint64_t n = 1) { Tick(fresh_, n); }
  void AddRetried(uint64_t n = 1) { Tick(retried_, n); }
  void AddStale(uint64_t n = 1) { Tick(stale_, n); }
  void AddStaleLifted(uint64_t n = 1) { Tick(stale_lifted_, n); }
  void AddLiftedLevels(uint64_t n) { Tick(lifted_levels_, n); }
  void AddBreakerOpen(uint64_t n = 1) { Tick(breaker_open_, n); }
  void AddAbsent(uint64_t n = 1) { Tick(absent_, n); }
  void AddErrors(uint64_t n = 1) { Tick(errors_, n); }

  AcquisitionStats Snapshot() const {
    AcquisitionStats s;
    s.reads = Load(reads_);
    s.attempts = Load(attempts_);
    s.fresh = Load(fresh_);
    s.retried = Load(retried_);
    s.stale = Load(stale_);
    s.stale_lifted = Load(stale_lifted_);
    s.lifted_levels = Load(lifted_levels_);
    s.breaker_open = Load(breaker_open_);
    s.absent = Load(absent_);
    s.errors = Load(errors_);
    return s;
  }

  void Reset() {
    for (std::atomic<uint64_t>* c :
         {&reads_, &attempts_, &fresh_, &retried_, &stale_, &stale_lifted_,
          &lifted_levels_, &breaker_open_, &absent_, &errors_}) {
      c->store(0, std::memory_order_relaxed);
    }
  }

 private:
  static void Tick(std::atomic<uint64_t>& c, uint64_t n) {
    c.fetch_add(n, std::memory_order_relaxed);
  }
  static uint64_t Load(const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  }

  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> fresh_{0};
  std::atomic<uint64_t> retried_{0};
  std::atomic<uint64_t> stale_{0};
  std::atomic<uint64_t> stale_lifted_{0};
  std::atomic<uint64_t> lifted_levels_{0};
  std::atomic<uint64_t> breaker_open_{0};
  std::atomic<uint64_t> absent_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_COUNTERS_H_
