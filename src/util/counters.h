#ifndef CTXPREF_UTIL_COUNTERS_H_
#define CTXPREF_UTIL_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace ctxpref {

/// Counts index cell visits during context resolution.
///
/// The paper's performance metric (Fig. 7) is the number of *cells*
/// touched while locating the preferences relevant to a query, both for
/// the profile tree and for the sequential-scan baseline. Resolution
/// entry points accept an optional `AccessCounter*`; when non-null the
/// data structures tick it on every cell inspected, so the benchmark
/// measures the real traversal rather than estimating it.
///
/// The counters are relaxed atomics so one counter can be shared by the
/// worker threads of a parallel `CachedRankCS` run; totals are exact,
/// but reads concurrent with ticks are only a snapshot.
class AccessCounter {
 public:
  AccessCounter() = default;

  AccessCounter(const AccessCounter&) = delete;
  AccessCounter& operator=(const AccessCounter&) = delete;

  void AddCell(uint64_t n = 1) {
    cells_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNode(uint64_t n = 1) {
    nodes_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t cells() const { return cells_.load(std::memory_order_relaxed); }
  uint64_t nodes() const { return nodes_.load(std::memory_order_relaxed); }

  void Reset() {
    cells_.store(0, std::memory_order_relaxed);
    nodes_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> cells_{0};
  std::atomic<uint64_t> nodes_{0};
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_COUNTERS_H_
