#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace ctxpref {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  uint64_t r = (span == 0) ? Next() : Uniform(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double a) : n_(n), a_(a) {
  assert(n >= 1);
  assert(a >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), a);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace ctxpref
