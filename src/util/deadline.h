#ifndef CTXPREF_UTIL_DEADLINE_H_
#define CTXPREF_UTIL_DEADLINE_H_

#include <cstdint>
#include <limits>

#include "util/clock.h"

namespace ctxpref {
namespace util {

/// An absolute point on an injected `Clock` by which a query must
/// finish. Default-constructed deadlines are infinite and cost one
/// null check at cancellation points, so deadline-oblivious callers
/// pay (almost) nothing. Copyable and cheap: two words. The clock is
/// borrowed and must outlive the deadline (use
/// `SystemClock::Instance()` in production, a `FakeClock` in tests —
/// same injection idiom as `ResilientSource`).
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `micros` from `clock`'s current time. A non-positive
  /// budget produces an already-expired deadline.
  static Deadline AfterMicros(int64_t micros,
                              Clock* clock = SystemClock::Instance()) {
    return Deadline(clock, clock->NowMicros() + micros);
  }

  /// Expires at the absolute instant `at_micros` on `clock`.
  static Deadline AtMicros(int64_t at_micros, Clock* clock) {
    return Deadline(clock, at_micros);
  }

  bool infinite() const { return clock_ == nullptr; }

  /// The cheap cancellation-point check: one virtual clock read.
  bool Expired() const {
    return clock_ != nullptr && clock_->NowMicros() >= deadline_micros_;
  }

  /// Remaining budget in microseconds; `int64_t` max when infinite,
  /// clamped at zero once expired.
  int64_t RemainingMicros() const {
    if (clock_ == nullptr) return std::numeric_limits<int64_t>::max();
    const int64_t left = deadline_micros_ - clock_->NowMicros();
    return left > 0 ? left : 0;
  }

 private:
  Deadline(Clock* clock, int64_t deadline_micros)
      : clock_(clock), deadline_micros_(deadline_micros) {}

  Clock* clock_ = nullptr;  ///< nullptr = infinite.
  int64_t deadline_micros_ = 0;
};

}  // namespace util
}  // namespace ctxpref

#endif  // CTXPREF_UTIL_DEADLINE_H_
