#ifndef CTXPREF_UTIL_STATUS_H_
#define CTXPREF_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ctxpref {

/// Status codes used across the library. The library never throws;
/// every fallible operation reports one of these through `Status` or
/// `StatusOr<T>` (RocksDB-style error handling).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kConflict,       ///< Conflicting contextual preferences (paper Def. 6).
  kOutOfRange,
  kCorruption,     ///< Malformed serialized profile / descriptor text.
  kUnimplemented,
  kInternal,
  kUnavailable,        ///< Transient backend failure (sensor, breaker open).
  kDeadlineExceeded,   ///< Operation exceeded its per-call deadline.
};

/// Returns a short human-readable name for `code` ("Ok", "Conflict", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result for operations with no payload.
///
/// Cheap to copy in the OK case (no allocation); error states carry a
/// message. Follow the usual pattern:
///
///     Status s = profile.Insert(pref);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Holds either a `T` or a non-OK `Status`.
///
///     StatusOr<ProfileTree> tree = ProfileTree::Build(profile, order);
///     if (!tree.ok()) return tree.status();
///     tree->Lookup(...);
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: `return my_value;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from an error status: `return Status::NotFound(...)`.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ctxpref

/// Propagates a non-OK Status from an expression.
#define CTXPREF_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::ctxpref::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // CTXPREF_UTIL_STATUS_H_
