#ifndef CTXPREF_UTIL_ANNOTATIONS_H_
#define CTXPREF_UTIL_ANNOTATIONS_H_

/// Clang thread-safety analysis attributes, wrapped so the tree
/// compiles unchanged on GCC (every macro expands to nothing there).
///
/// The attributes turn locking contracts into compiler-checked facts:
/// a `CAPABILITY` type is a lock, `GUARDED_BY(mu)` fields may only be
/// touched with `mu` held, `REQUIRES(mu)` functions may only be called
/// with `mu` held, and `ACQUIRE`/`RELEASE` describe functions that
/// change what the caller holds. Build with
/// `-DCTXPREF_THREAD_SAFETY=ON` under Clang to promote violations to
/// errors (`-Wthread-safety -Werror=thread-safety`); see
/// docs/static_analysis.md for the conventions used in this tree.
///
/// Spelling follows the canonical mutex.h example from the Clang
/// documentation (and Abseil's thread_annotations.h), so the names
/// match what the analysis docs and error messages talk about.

#if defined(__clang__) && defined(__has_attribute)
#define CTXPREF_HAS_THREAD_ATTRIBUTE(x) __has_attribute(x)
#else
#define CTXPREF_HAS_THREAD_ATTRIBUTE(x) 0
#endif

#if CTXPREF_HAS_THREAD_ATTRIBUTE(capability)
#define CTXPREF_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define CTXPREF_THREAD_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a class as a lock ("capability"). `x` names the capability
/// kind in diagnostics, conventionally "mutex".
#define CAPABILITY(x) CTXPREF_THREAD_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (e.g. `util::MutexLock`).
#define SCOPED_CAPABILITY CTXPREF_THREAD_ATTRIBUTE(scoped_lockable)

/// Data member readable only with `x` held (shared suffices), writable
/// only with `x` held exclusively.
#define GUARDED_BY(x) CTXPREF_THREAD_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer
/// itself is not).
#define PT_GUARDED_BY(x) CTXPREF_THREAD_ATTRIBUTE(pt_guarded_by(x))

/// Documents a required acquisition order between two locks declared
/// in the same scope (the runtime lock-rank checker in util/mutex.h
/// enforces ordering dynamically and across scopes).
#define ACQUIRED_BEFORE(...) \
  CTXPREF_THREAD_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  CTXPREF_THREAD_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function-level contracts: the caller must hold the listed
/// capabilities (exclusively / shared) on entry, and still holds them
/// on exit.
#define REQUIRES(...) \
  CTXPREF_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CTXPREF_THREAD_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (must not be held on entry,
/// held on exit). With no argument, refers to `this`.
#define ACQUIRE(...) \
  CTXPREF_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CTXPREF_THREAD_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (held on entry, not on exit).
#define RELEASE(...) \
  CTXPREF_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CTXPREF_THREAD_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  CTXPREF_THREAD_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(...) \
  CTXPREF_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  CTXPREF_THREAD_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (anti-deadlock:
/// the function acquires them itself).
#define EXCLUDES(...) CTXPREF_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the
/// static analysis cannot follow).
#define ASSERT_CAPABILITY(x) CTXPREF_THREAD_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  CTXPREF_THREAD_ATTRIBUTE(assert_shared_capability(x))

/// The function returns a reference to the named capability (lets
/// accessors like `Mutex& mu()` participate in the analysis).
#define RETURN_CAPABILITY(x) CTXPREF_THREAD_ATTRIBUTE(lock_returned(x))

/// Escape hatch: turn the analysis off for one function. Use only
/// where the locking pattern is genuinely beyond the analysis
/// (documented move operations, condition-variable internals) and say
/// why at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  CTXPREF_THREAD_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CTXPREF_UTIL_ANNOTATIONS_H_
