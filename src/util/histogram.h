#ifndef CTXPREF_UTIL_HISTOGRAM_H_
#define CTXPREF_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace ctxpref {

/// Plain copy of a `LatencyHistogram` at one point in time, with the
/// percentile/mean math (the atomic histogram itself only records).
struct HistogramSnapshot {
  /// Power-of-two bucket count: bucket 0 holds values in [0, 2) ns,
  /// bucket i >= 1 holds [2^i, 2^(i+1)) ns, and the last bucket is
  /// open-ended. 40 buckets span [0, ~9.2 minutes) — far beyond any
  /// query-path latency this library produces.
  static constexpr size_t kNumBuckets = 40;

  std::array<uint64_t, kNumBuckets> counts{};
  uint64_t count = 0;      ///< Total recorded values (= sum of counts).
  uint64_t sum_nanos = 0;  ///< Sum of recorded values.

  /// The p-th percentile (p in [0, 1], clamped) estimated by linear
  /// interpolation inside the bucket where the cumulative count crosses
  /// p * count. Exact for values on bucket lower bounds; otherwise
  /// within one bucket width (a factor of 2). Returns 0 when empty.
  double Percentile(double p) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_nanos) /
                            static_cast<double>(count);
  }
};

/// Fixed-bucket log2-scale latency histogram with lock-free recording.
///
/// `Record` is two relaxed `fetch_add`s — safe (and cheap) to call from
/// any thread on the query hot path. Reads (`Snapshot`) are not a
/// single linearization point: each bucket is exact but a snapshot
/// taken during concurrent recording may mix before/after counts, the
/// same monitoring contract as `AccessCounter` (util/counters.h).
///
/// Values are nanoseconds by convention (metric names end `_ns`), but
/// nothing enforces a unit — the bucket math is unit-agnostic.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(uint64_t nanos) {
    buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
    sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  void Reset();

  /// Bucket index for a value: 0 for [0, 2), else floor(log2(nanos)),
  /// clamped to the open-ended last bucket.
  static size_t BucketFor(uint64_t nanos) {
    if (nanos < 2) return 0;
    const size_t b = static_cast<size_t>(std::bit_width(nanos)) - 1;
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }

  /// Inclusive lower bound of a bucket (0 for bucket 0, else 2^i).
  static uint64_t BucketLowerBound(size_t bucket) {
    return bucket == 0 ? 0 : uint64_t{1} << bucket;
  }

  /// Exclusive upper bound of a bucket. The last bucket is open-ended;
  /// its nominal bound (2^40) is still returned so exports have a
  /// finite `le` edge before "+Inf".
  static uint64_t BucketUpperBound(size_t bucket) {
    return uint64_t{1} << (bucket + 1);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_nanos_{0};
};

}  // namespace ctxpref

#endif  // CTXPREF_UTIL_HISTOGRAM_H_
