#include "util/histogram.h"

#include <algorithm>

namespace ctxpref {

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      const double lo =
          static_cast<double>(LatencyHistogram::BucketLowerBound(i));
      const double hi =
          static_cast<double>(LatencyHistogram::BucketUpperBound(i));
      // Fraction of this bucket's population below the target rank.
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  // Unreachable when counts sum to count; defensive for racy snapshots.
  return static_cast<double>(
      LatencyHistogram::BucketUpperBound(kNumBuckets - 1));
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot s;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.counts[i];
  }
  s.sum_nanos = sum_nanos_.load(std::memory_order_relaxed);
  return s;
}

void LatencyHistogram::Reset() {
  for (std::atomic<uint64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace ctxpref
