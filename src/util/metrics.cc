#include "util/metrics.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace ctxpref {

namespace {

/// Formats a double with enough precision for re-parsing, trimming the
/// exponent noise a raw %g would keep.
std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Metric& MetricsRegistry::GetOrCreate(const std::string& name,
                                                      const std::string& help,
                                                      Kind kind) {
  util::MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      std::fprintf(stderr,
                   "MetricsRegistry: metric '%s' re-registered with a "
                   "different kind\n",
                   name.c_str());
      std::abort();
    }
    return it->second;
  }
  Metric m;
  m.kind = kind;
  m.help = help;
  switch (kind) {
    case Kind::kCounter:
      m.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      m.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      m.histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  return metrics_.emplace(name, std::move(m)).first->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return *GetOrCreate(name, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return *GetOrCreate(name, help, Kind::kGauge).gauge;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help) {
  return *GetOrCreate(name, help, Kind::kHistogram).histogram;
}

std::string MetricsRegistry::PrometheusText() const {
  util::MutexLock lock(mu_);
  std::string out;
  char buf[128];
  for (const auto& [name, m] : metrics_) {
    if (!m.help.empty()) {
      out += "# HELP " + name + " " + m.help + "\n";
    }
    switch (m.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name.c_str(),
                      m.counter->value());
        out += buf;
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n", name.c_str(),
                      m.gauge->value());
        out += buf;
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const HistogramSnapshot s = m.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
          cumulative += s.counts[i];
          // Skip leading all-zero buckets to keep the exposition
          // readable; cumulative series stay correct from the first
          // emitted edge.
          if (cumulative == 0 && i + 1 < HistogramSnapshot::kNumBuckets) {
            continue;
          }
          std::snprintf(buf, sizeof(buf),
                        "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                        name.c_str(), LatencyHistogram::BucketUpperBound(i),
                        cumulative);
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                      name.c_str(), s.count);
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_sum %" PRIu64 "\n", name.c_str(),
                      s.sum_nanos);
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", name.c_str(),
                      s.count);
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  util::MutexLock lock(mu_);
  std::string counters, gauges, histograms;
  char buf[160];
  for (const auto& [name, m] : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                      JsonEscape(name).c_str(), m.counter->value());
        counters += buf;
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64,
                      JsonEscape(name).c_str(), m.gauge->value());
        gauges += buf;
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const HistogramSnapshot s = m.histogram->Snapshot();
        histograms += "\"";
        histograms += JsonEscape(name);
        histograms += "\":{";
        std::snprintf(buf, sizeof(buf),
                      "\"count\":%" PRIu64 ",\"sum_nanos\":%" PRIu64, s.count,
                      s.sum_nanos);
        histograms += buf;
        histograms += ",\"mean_ns\":" + FormatNumber(s.Mean());
        histograms += ",\"p50_ns\":" + FormatNumber(s.Percentile(0.50));
        histograms += ",\"p95_ns\":" + FormatNumber(s.Percentile(0.95));
        histograms += ",\"p99_ns\":" + FormatNumber(s.Percentile(0.99));
        histograms += ",\"buckets\":[";
        bool first = true;
        for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
          if (s.counts[i] == 0) continue;
          if (!first) histograms += ",";
          first = false;
          std::snprintf(buf, sizeof(buf),
                        "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
                        LatencyHistogram::BucketUpperBound(i), s.counts[i]);
          histograms += buf;
        }
        histograms += "]}";
        break;
      }
    }
  }
  std::string out = "{\"counters\":{";
  out += counters;
  out += "},\"gauges\":{";
  out += gauges;
  out += "},\"histograms\":{";
  out += histograms;
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, m] : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        m.counter->Reset();
        break;
      case Kind::kGauge:
        m.gauge->Reset();
        break;
      case Kind::kHistogram:
        m.histogram->Reset();
        break;
    }
  }
}

std::vector<std::string> MetricsRegistry::Names() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) names.push_back(name);
  return names;
}

}  // namespace ctxpref
