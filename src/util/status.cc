#include "util/status.h"

namespace ctxpref {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ctxpref
