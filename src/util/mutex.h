#ifndef CTXPREF_UTIL_MUTEX_H_
#define CTXPREF_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <stop_token>

#include "util/annotations.h"

/// Annotated locking primitives for the whole tree.
///
/// Everything outside util/ locks through these wrappers instead of
/// the raw std primitives (scripts/lint.py enforces it), for two
/// layered guarantees:
///
///  1. **Compile-time**: the types carry Clang thread-safety
///     capability attributes, so `GUARDED_BY` fields and
///     `REQUIRES`-annotated helpers are machine-checked under
///     `-DCTXPREF_THREAD_SAFETY=ON` (docs/static_analysis.md).
///  2. **Run-time**: each mutex can be constructed with a `LockRank`;
///     a thread-local stack of held ranks aborts the process on any
///     acquisition that violates the documented lock hierarchy —
///     i.e. a potential deadlock — naming both locks involved. Rank
///     checking is compiled out unless CTXPREF_LOCK_RANK_CHECKS is 1
///     (CMake: -DCTXPREF_LOCK_RANK=ON|OFF|AUTO; AUTO enables it in
///     every build type except Release).
///
/// The static annotations prove *what lock guards what*; the rank
/// checker proves *in which order locks nest*, which annotations
/// cannot see. Together they catch the two classic concurrency
/// mistakes — unguarded access and lock-order inversion — before or
/// at the first test run instead of in production.

#ifndef CTXPREF_LOCK_RANK_CHECKS
#ifdef NDEBUG
#define CTXPREF_LOCK_RANK_CHECKS 0
#else
#define CTXPREF_LOCK_RANK_CHECKS 1
#endif
#endif

namespace ctxpref::util {

/// The documented lock hierarchy: a thread may acquire a ranked lock
/// only while every ranked lock it already holds has a *strictly
/// lower* rank. Ranks are listed in acquisition order — outermost
/// first — and spaced by 10 so future locks can slot between existing
/// levels. Keep this list in sync with docs/static_analysis.md.
enum class LockRank : int {
  /// No rank: the lock opts out of ordering checks (function-local
  /// completion latches, test fixtures).
  kUnranked = 0,
  /// AdmissionController::mu_ — the serving front door's in-flight
  /// accounting. Admission is decided before any store/cache/pool lock
  /// is touched and the ticket release takes it alone, so it sits
  /// outermost in the hierarchy.
  kAdmission = 5,
  /// ProfileStore::users_mu_ — the user-map shape lock, taken first on
  /// every store operation.
  kUserMap = 10,
  /// ProfileStore::User::write_mu — serializes writers to one user;
  /// held across copy-edit-rebuild, around the slot swap below.
  kPerUserWrite = 20,
  /// ProfileStore::User::snap_mu — the published-snapshot pointer
  /// slot; innermost of the store locks.
  kStoreSlot = 30,
  /// ReplicatedQueryCache::Replica::consume_mu — serializes the
  /// consume step of one replica; held across the coherence-log drain
  /// (kCoherenceLog) and the dead-entry drops (kCacheShard) below it.
  kCoherenceConsume = 32,
  /// CoherenceLog per-writer buffer mutexes — appends come from the
  /// store's publish path (under write_mu), drains from a replica's
  /// consume step (under consume_mu); never two buffers at once.
  kCoherenceLog = 35,
  /// ContextQueryTree shard mutexes; acquired under the store's write
  /// path via InvalidateUser, never two shards at once.
  kCacheShard = 40,
  /// ResilientSource::mu_ — held across a backend read, so it ranks
  /// below (acquired before) the fault injector's script lock.
  kResilientSource = 50,
  /// FaultInjectingSource::mu_ — the scripted backend used in chaos
  /// tests; acquired while a ResilientSource read is in flight.
  kFaultInjector = 60,
  /// MetricsRegistry::mu_ — name->metric map; leaf-level on every
  /// instrumented path (hot-path ticks are lock-free atomics).
  kMetricsRegistry = 70,
  /// TraceRecorder::mu_ — span ring buffer; spans record after
  /// user-visible locks are released.
  kTraceRecorder = 80,
  /// ThreadPool::mu_ — task-queue lock; never held while a task body
  /// (which may take any of the above) runs.
  kPoolQueue = 90,
  /// Function-local completion latches (e.g. CachedRankCS's
  /// done-counter): acquired last, hold nothing beneath.
  kCompletion = 100,
};

const char* LockRankName(LockRank rank);

namespace internal {
/// Rank bookkeeping, compiled out with the checker. `mu` is the
/// address of the wrapper (identity in diagnostics only).
void PushHeldRank(const void* mu, LockRank rank, const char* name);
void PopHeldRank(const void* mu);
}  // namespace internal

/// std::mutex with a capability annotation and optional rank checking.
///
/// `Lock`/`Unlock`/`TryLock` are the annotated API; lowercase
/// `lock`/`unlock` aliases satisfy the standard *Lockable* concept so
/// `CondVar` (condition_variable_any) can drive the mutex directly —
/// rank bookkeeping then stays correct across a wait's release/
/// reacquire cycle.
class CAPABILITY("mutex") Mutex {
 public:
  /// An unranked mutex: participates in the static analysis but not
  /// in runtime ordering checks.
  Mutex() = default;
  /// A ranked mutex. `name` must have static storage duration (it is
  /// kept, not copied) and names the lock in inversion diagnostics,
  /// e.g. "ProfileStore.users_mu".
  explicit Mutex(LockRank rank, const char* name)
#if CTXPREF_LOCK_RANK_CHECKS
      : rank_(rank), name_(name)
#endif
  {
    (void)rank;
    (void)name;
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
#if CTXPREF_LOCK_RANK_CHECKS
    internal::PushHeldRank(this, rank_, name_);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if CTXPREF_LOCK_RANK_CHECKS
    // A successful try_lock cannot deadlock, but it still establishes
    // order for later blocking acquisitions, so it is recorded (and
    // checked: a try_lock that violates the hierarchy is a latent
    // blocking-lock bug).
    internal::PushHeldRank(this, rank_, name_);
#endif
    return true;
  }

  void Unlock() RELEASE() {
#if CTXPREF_LOCK_RANK_CHECKS
    internal::PopHeldRank(this);
#endif
    mu_.unlock();
  }

  // Standard Lockable spelling, for condition_variable_any and
  // std::lock_guard-style generic code inside util/.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

 private:
  std::mutex mu_;
#if CTXPREF_LOCK_RANK_CHECKS
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "util::Mutex";
#endif
};

/// std::shared_mutex with a capability annotation and rank checking.
/// Shared and exclusive acquisitions occupy the same slot in the rank
/// hierarchy (a reader-held lock orders later acquisitions exactly
/// like a writer-held one).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, const char* name)
#if CTXPREF_LOCK_RANK_CHECKS
      : rank_(rank), name_(name)
#endif
  {
    (void)rank;
    (void)name;
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
#if CTXPREF_LOCK_RANK_CHECKS
    internal::PushHeldRank(this, rank_, name_);
#endif
  }

  void Unlock() RELEASE() {
#if CTXPREF_LOCK_RANK_CHECKS
    internal::PopHeldRank(this);
#endif
    mu_.unlock();
  }

  void LockShared() ACQUIRE_SHARED() {
    mu_.lock_shared();
#if CTXPREF_LOCK_RANK_CHECKS
    internal::PushHeldRank(this, rank_, name_);
#endif
  }

  void UnlockShared() RELEASE_SHARED() {
#if CTXPREF_LOCK_RANK_CHECKS
    internal::PopHeldRank(this);
#endif
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
#if CTXPREF_LOCK_RANK_CHECKS
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "util::SharedMutex";
#endif
};

/// RAII exclusive lock over `Mutex` — the tree's replacement for
/// std::lock_guard / std::unique_lock (lint-enforced outside util/).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over `SharedMutex` (writer side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over `SharedMutex` (reader side).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over `util::Mutex`.
///
/// Implemented on condition_variable_any so it drives the wrapper
/// directly: a wait's internal unlock/relock goes through
/// `Mutex::unlock`/`lock`, keeping both the rank stack and (under
/// Clang) the analysis's view of the wait consistent. The `REQUIRES`
/// contracts say waits must be called with the mutex held; the
/// stop_token overload mirrors `condition_variable_any` so
/// `ThreadPool`'s stop-aware worker wait keeps working.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Blocks until notified; as always with condition variables, wrap
  /// in a predicate loop (or use the predicate overloads below).
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Stop-token-aware wait: returns pred()'s value when a stop is
  /// requested, true otherwise.
  template <typename Pred>
  bool Wait(Mutex& mu, std::stop_token stop, Pred pred) REQUIRES(mu) {
    return cv_.wait(mu, std::move(stop), std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ctxpref::util

#endif  // CTXPREF_UTIL_MUTEX_H_
