#ifndef CTXPREF_UTIL_CLOCK_H_
#define CTXPREF_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace ctxpref {
namespace util {

/// Monotonic microsecond clock, injectable so retries, cooldowns,
/// deadlines and staleness are deterministic under test (`FakeClock`).
/// Lives in util so that deadline plumbing (`util::Deadline`,
/// `util::ThreadPool`) can depend on it without pulling in the context
/// layer; `context/resilient_source.h` re-exports the old names.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowMicros() const = 0;
  virtual void SleepMicros(int64_t micros) = 0;
};

/// `std::chrono::steady_clock`-backed wall clock.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepMicros(int64_t micros) override;

  /// Shared process-wide instance (never deleted).
  static SystemClock* Instance();
};

/// Manually-advanced clock for tests and deterministic benches.
/// `SleepMicros` advances time instead of blocking, so scripted
/// backoff schedules run instantly. Thread-safe.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void SleepMicros(int64_t micros) override { Advance(micros); }
  void Advance(int64_t micros) {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace util
}  // namespace ctxpref

#endif  // CTXPREF_UTIL_CLOCK_H_
