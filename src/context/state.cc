#include "context/state.h"

namespace ctxpref {

ContextState ContextState::AllState(const ContextEnvironment& env) {
  std::vector<ValueRef> values;
  values.reserve(env.size());
  for (size_t i = 0; i < env.size(); ++i) {
    values.push_back(env.parameter(i).hierarchy().AllValue());
  }
  return ContextState(std::move(values));
}

StatusOr<ContextState> ContextState::FromNames(
    const ContextEnvironment& env, const std::vector<std::string>& names) {
  if (names.size() != env.size()) {
    return Status::InvalidArgument(
        "state has " + std::to_string(names.size()) + " components, expected " +
        std::to_string(env.size()));
  }
  std::vector<ValueRef> values;
  values.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    StatusOr<ValueRef> v =
        env.parameter(i).hierarchy().FindAnyLevel(names[i]);
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  return ContextState(std::move(values));
}

Status ContextState::Validate(const ContextEnvironment& env) const {
  if (values_.size() != env.size()) {
    return Status::InvalidArgument(
        "state has " + std::to_string(values_.size()) +
        " components, expected " + std::to_string(env.size()));
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!env.parameter(i).hierarchy().Contains(values_[i])) {
      return Status::InvalidArgument("component " + std::to_string(i) +
                                     " is not a value of parameter '" +
                                     env.parameter(i).name() + "'");
    }
  }
  return Status::OK();
}

bool ContextState::IsDetailed() const {
  for (const ValueRef& v : values_) {
    if (v.level != 0) return false;
  }
  return true;
}

bool ContextState::Covers(const ContextEnvironment& env,
                          const ContextState& other) const {
  assert(values_.size() == env.size());
  assert(other.values_.size() == env.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!env.parameter(i).hierarchy().IsAncestorOrSelf(values_[i],
                                                       other.values_[i])) {
      return false;
    }
  }
  return true;
}

std::string ContextState::ToString(const ContextEnvironment& env) const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += env.parameter(i).hierarchy().value_name(values_[i]);
  }
  out += ")";
  return out;
}

bool CoversSet(const ContextEnvironment& env,
               const std::vector<ContextState>& s1,
               const std::vector<ContextState>& s2) {
  for (const ContextState& s : s2) {
    bool covered = false;
    for (const ContextState& t : s1) {
      if (t.Covers(env, s)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace ctxpref
