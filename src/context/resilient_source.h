#ifndef CTXPREF_CONTEXT_RESILIENT_SOURCE_H_
#define CTXPREF_CONTEXT_RESILIENT_SOURCE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "context/source.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"

namespace ctxpref {

/// Resilient context acquisition (the robustness layer under paper
/// §4.1): real sensors are slow, flaky, and occasionally wrong, but
/// §3.1 explicitly allows a parameter to "take a single value from a
/// higher level of the hierarchy" when it is only roughly known. The
/// decorator below exploits exactly that: when a backend cannot
/// produce a trustworthy reading right now, its last-known-good value
/// is served instead, and as that value ages it is *lifted* one
/// hierarchy level per staleness window via `Anc` — the paper-native
/// degradation ladder fresh → retried → stale → stale-lifted-k →
/// `all` — so query serving keeps answering, just more coarsely.

/// The clock family moved to `src/util/clock.h` (PR 8) so that the
/// deadline plumbing in util/storage can reuse it without a layering
/// cycle. These aliases keep the PR-3 spellings working.
using Clock = util::Clock;
using SystemClock = util::SystemClock;
using FakeClock = util::FakeClock;

/// Per-source resilience policy. Defaults are tuned for an interactive
/// sensor (tens of milliseconds budget); see docs/robustness.md.
struct SourcePolicy {
  /// A backend read taking longer than this counts as a failure
  /// (DeadlineExceeded) even if it eventually returned a value.
  int64_t read_deadline_micros = 50'000;
  /// Total backend attempts per logical read (1 = no retries).
  uint32_t max_attempts = 3;
  /// Exponential backoff between attempts: initial, multiplier, cap.
  int64_t backoff_initial_micros = 1'000;
  double backoff_multiplier = 2.0;
  int64_t backoff_max_micros = 50'000;
  /// Uniform jitter fraction on each backoff sleep: the sleep is drawn
  /// from [backoff * (1 - jitter), backoff * (1 + jitter)].
  double backoff_jitter = 0.5;

  /// Circuit breaker: after this many *consecutive* failed logical
  /// reads the breaker opens and backend probes stop.
  uint32_t failure_threshold = 5;
  /// While open, reads are served degraded without touching the
  /// backend; after this cooldown the breaker goes half-open and lets
  /// a single probe through.
  int64_t open_cooldown_micros = 1'000'000;
  /// Successful half-open probes required to close the breaker again.
  uint32_t half_open_probes_to_close = 1;

  /// Last-known-good readings younger than this are served verbatim
  /// (provenance kStale).
  int64_t stale_ttl_micros = 5'000'000;
  /// Past the TTL, the reading is lifted one hierarchy level per
  /// elapsed window of this length, until it reaches `all`.
  int64_t lift_window_micros = 5'000'000;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateToString(BreakerState s);

/// Decorates any `ContextSource` with deadlines, bounded retries
/// (exponential backoff + jitter), a failure-threshold circuit
/// breaker, and hierarchy-based graceful degradation of the
/// last-known-good reading. Deterministic given a `FakeClock` and the
/// seed. Thread-safe: concurrent `ReadWithInfo` calls serialize on an
/// internal mutex (acquisition state is tiny; contention is not a
/// concern at sensor rates).
class ResilientSource : public ContextSource {
 public:
  /// `env` must outlive the source; `clock` is borrowed (use
  /// `SystemClock::Instance()` in production, a `FakeClock` in tests).
  ResilientSource(const ContextEnvironment& env,
                  std::unique_ptr<ContextSource> inner, SourcePolicy policy,
                  Clock* clock, uint64_t seed);

  size_t param_index() const override { return inner_->param_index(); }
  StatusOr<ValueRef> Read() override;
  StatusOr<ValueRef> ReadWithInfo(SourceReadInfo* info) override;

  BreakerState breaker_state() const;
  const SourcePolicy& policy() const { return policy_; }

  /// Seeds the last-known-good cache (e.g. from persisted state at
  /// startup). `at_micros` is the reading's acquisition time.
  void SeedLastKnownGood(ValueRef value, int64_t at_micros);

  /// Test hook: the wrapped source.
  ContextSource& inner() { return *inner_; }

 private:
  struct Attempted {
    StatusOr<ValueRef> reading;
    Status failure;  ///< OK = the attempt succeeded.
  };

  /// One guarded backend attempt: runs inner_->Read() under the
  /// deadline and domain checks. Called with mu_ held across the
  /// backend read — which is why `kResilientSource` ranks above
  /// (acquires before) the fault injector's script lock.
  Attempted AttemptOnce() REQUIRES(mu_);

  /// Serves the degraded value (stale / lifted / absent) for a read
  /// that could not reach the backend or exhausted its attempts.
  StatusOr<ValueRef> ServeDegraded(int64_t now, bool breaker_open,
                                   SourceReadInfo* info) REQUIRES(mu_);

  /// Records a failed logical read against the breaker.
  void RecordFailure(int64_t now) REQUIRES(mu_);
  /// Records a successful logical read.
  void RecordSuccess() REQUIRES(mu_);

  const ContextEnvironment* env_;
  /// Pointee guarded: the backend is only read under mu_ (the pointer
  /// itself is set once at construction).
  std::unique_ptr<ContextSource> inner_ PT_GUARDED_BY(mu_);
  SourcePolicy policy_;
  Clock* clock_;

  mutable util::Mutex mu_{util::LockRank::kResilientSource,
                          "ResilientSource.mu"};
  Rng rng_ GUARDED_BY(mu_);
  BreakerState breaker_ GUARDED_BY(mu_) = BreakerState::kClosed;
  uint32_t consecutive_failures_ GUARDED_BY(mu_) = 0;
  uint32_t half_open_successes_ GUARDED_BY(mu_) = 0;
  int64_t breaker_opened_at_ GUARDED_BY(mu_) = 0;
  std::optional<ValueRef> last_good_ GUARDED_BY(mu_);
  int64_t last_good_at_ GUARDED_BY(mu_) = 0;
  Status last_error_ GUARDED_BY(mu_);
};

/// A scripted source for chaos tests: each `Read` consumes the next
/// step of the script (fail, succeed, take this long, report garbage);
/// an exhausted script keeps succeeding with the configured value.
/// Latency steps advance the injected `FakeClock`, so deadline
/// handling is testable without real sleeps. Thread-safe.
class FaultInjectingSource : public ContextSource {
 public:
  FaultInjectingSource(size_t param_index, ValueRef value,
                       FakeClock* clock = nullptr)
      : param_index_(param_index), clock_(clock), value_(value) {}

  size_t param_index() const override { return param_index_; }
  StatusOr<ValueRef> Read() override;

  /// Script steps, consumed in push order (one per Read):
  void PushOk();                    ///< Succeed with the current value.
  void PushValue(ValueRef v);       ///< Succeed with `v` once.
  void PushNotFound();              ///< Fail with NotFound.
  void PushError(Status error);     ///< Fail with `error`.
  void PushLatency(int64_t micros); ///< Advance clock, then succeed.
  /// Succeed, after advancing the clock, with `v` — a slow but valid
  /// reading (deadline handling decides whether it is usable).
  void PushLatencyValue(int64_t micros, ValueRef v);
  void PushOutOfDomain();           ///< Succeed with a garbage ValueRef.
  void FailNext(size_t n);          ///< n NotFound steps.

  void set_value(ValueRef v);
  /// Total backend reads observed (attempts, not logical reads).
  size_t reads() const;

 private:
  struct Step {
    enum class Kind { kOk, kValue, kError, kLatency, kOutOfDomain };
    Kind kind = Kind::kOk;
    ValueRef value;
    Status error;
    int64_t latency_micros = 0;
    bool has_value = false;
  };

  size_t param_index_;
  FakeClock* clock_;  ///< Set at construction, never reseated.
  mutable util::Mutex mu_{util::LockRank::kFaultInjector,
                          "FaultInjectingSource.mu"};
  ValueRef value_ GUARDED_BY(mu_);
  std::deque<Step> script_ GUARDED_BY(mu_);
  size_t reads_ GUARDED_BY(mu_) = 0;
};

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_RESILIENT_SOURCE_H_
