#ifndef CTXPREF_CONTEXT_PARAMETER_H_
#define CTXPREF_CONTEXT_PARAMETER_H_

#include <string>
#include <utility>

#include "context/hierarchy.h"

namespace ctxpref {

/// A context parameter Ci (paper §3.1): a named multidimensional
/// attribute whose extended domain is given by a `Hierarchy`. The
/// parameter name may differ from the hierarchy name (e.g. parameter
/// "temperature" over hierarchy "weather").
class ContextParameter {
 public:
  ContextParameter(std::string name, HierarchyPtr hierarchy)
      : name_(std::move(name)), hierarchy_(std::move(hierarchy)) {
    assert(hierarchy_ != nullptr);
  }

  const std::string& name() const { return name_; }
  const Hierarchy& hierarchy() const { return *hierarchy_; }
  const HierarchyPtr& hierarchy_ptr() const { return hierarchy_; }

 private:
  std::string name_;
  HierarchyPtr hierarchy_;
};

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_PARAMETER_H_
