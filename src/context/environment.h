#ifndef CTXPREF_CONTEXT_ENVIRONMENT_H_
#define CTXPREF_CONTEXT_ENVIRONMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "context/parameter.h"
#include "util/status.h"

namespace ctxpref {

/// The context environment CE_X of an application (paper §3.1): an
/// ordered, fixed set of context parameters {C1, ..., Cn}. The order
/// is the canonical component order of context states; index structures
/// may remap parameters to tree levels independently (see
/// `preference/ordering.h`).
///
/// Immutable after construction; shared via `EnvironmentPtr`.
class ContextEnvironment {
 public:
  /// Errors with InvalidArgument on empty or duplicate parameter names.
  static StatusOr<std::shared_ptr<const ContextEnvironment>> Create(
      std::vector<ContextParameter> parameters);

  /// Number of parameters n.
  size_t size() const { return parameters_.size(); }

  const ContextParameter& parameter(size_t i) const { return parameters_[i]; }
  const std::vector<ContextParameter>& parameters() const {
    return parameters_;
  }

  /// Index of the parameter named `name`; NotFound otherwise.
  StatusOr<size_t> IndexOf(std::string_view name) const;

  /// Cardinality of the world W = Π |dom(Ci)| (detailed domains).
  /// Saturates at SIZE_MAX on overflow.
  size_t WorldSize() const;

  /// Cardinality of the extended world EW = Π |edom(Ci)|.
  /// Saturates at SIZE_MAX on overflow.
  size_t ExtendedWorldSize() const;

 private:
  explicit ContextEnvironment(std::vector<ContextParameter> parameters)
      : parameters_(std::move(parameters)) {}

  std::vector<ContextParameter> parameters_;
};

using EnvironmentPtr = std::shared_ptr<const ContextEnvironment>;

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_ENVIRONMENT_H_
