#include "context/parser.h"

#include <cctype>
#include <vector>

#include "util/string_util.h"

namespace ctxpref {

namespace {

/// Token kinds produced by the scanner.
enum class Tok {
  kWord,    // bare identifier or value
  kEquals,  // =
  kLBrace,  // {
  kRBrace,  // }
  kLBrack,  // [
  kRBrack,  // ]
  kLParen,  // (
  kRParen,  // )
  kComma,   // ,
  kColon,   // :
  kAnd,     // keyword "and" (or "&&")
  kOr,      // keyword "or" (or "||")
  kIn,      // keyword "in"
  kStar,    // *
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
};

class Scanner {
 public:
  explicit Scanner(std::string_view input) : input_(input) {}

  StatusOr<std::vector<Token>> Scan() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      switch (c) {
        case '=':
          out.push_back({Tok::kEquals, "="});
          ++i;
          continue;
        case '{':
          out.push_back({Tok::kLBrace, "{"});
          ++i;
          continue;
        case '}':
          out.push_back({Tok::kRBrace, "}"});
          ++i;
          continue;
        case '[':
          out.push_back({Tok::kLBrack, "["});
          ++i;
          continue;
        case ']':
          out.push_back({Tok::kRBrack, "]"});
          ++i;
          continue;
        case '(':
          out.push_back({Tok::kLParen, "("});
          ++i;
          continue;
        case ')':
          out.push_back({Tok::kRParen, ")"});
          ++i;
          continue;
        case ',':
          out.push_back({Tok::kComma, ","});
          ++i;
          continue;
        case ':':
          out.push_back({Tok::kColon, ":"});
          ++i;
          continue;
        case '*':
          out.push_back({Tok::kStar, "*"});
          ++i;
          continue;
        case '<':
          // `ToString` prints the empty descriptor as "<empty>"; accept
          // that spelling as a synonym of "*" (anywhere a composite may
          // appear, including inside a parenthesized disjunct) so
          // Parse(ToString(x)) round-trips.
          if (input_.substr(i, 7) == "<empty>") {
            out.push_back({Tok::kStar, "*"});
            i += 7;
            continue;
          }
          return Status::Corruption("stray '<' in descriptor");
        case '&':
          if (i + 1 < input_.size() && input_[i + 1] == '&') {
            out.push_back({Tok::kAnd, "&&"});
            i += 2;
            continue;
          }
          return Status::Corruption("stray '&' in descriptor");
        case '|':
          if (i + 1 < input_.size() && input_[i + 1] == '|') {
            out.push_back({Tok::kOr, "||"});
            i += 2;
            continue;
          }
          return Status::Corruption("stray '|' in descriptor");
        default:
          break;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.') {
        size_t start = i;
        while (i < input_.size()) {
          char d = input_[i];
          if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
              d == '-' || d == '.') {
            ++i;
          } else {
            break;
          }
        }
        std::string word(input_.substr(start, i - start));
        std::string lower = ToLower(word);
        if (lower == "and") {
          out.push_back({Tok::kAnd, word});
        } else if (lower == "or") {
          out.push_back({Tok::kOr, word});
        } else if (lower == "in") {
          out.push_back({Tok::kIn, word});
        } else {
          out.push_back({Tok::kWord, word});
        }
        continue;
      }
      return Status::Corruption(std::string("unexpected character '") + c +
                                "' in descriptor");
    }
    out.push_back({Tok::kEnd, ""});
    return out;
  }

 private:
  std::string_view input_;
};

class Parser {
 public:
  Parser(const ContextEnvironment& env, std::vector<Token> tokens)
      : env_(env), tokens_(std::move(tokens)) {}

  StatusOr<ExtendedDescriptor> ParseExtended() {
    std::vector<CompositeDescriptor> disjuncts;
    for (;;) {
      StatusOr<CompositeDescriptor> cod = ParseComposite();
      if (!cod.ok()) return cod.status();
      disjuncts.push_back(std::move(*cod));
      if (Peek().kind == Tok::kOr) {
        Advance();
        continue;
      }
      break;
    }
    CTXPREF_RETURN_IF_ERROR(ExpectEnd());
    return ExtendedDescriptor(std::move(disjuncts));
  }

  StatusOr<CompositeDescriptor> ParseCompositeWhole() {
    StatusOr<CompositeDescriptor> cod = ParseComposite();
    if (!cod.ok()) return cod.status();
    CTXPREF_RETURN_IF_ERROR(ExpectEnd());
    return cod;
  }

  StatusOr<ParameterDescriptor> ParseParameterWhole() {
    StatusOr<ParameterDescriptor> pd = ParseParameter();
    if (!pd.ok()) return pd.status();
    CTXPREF_RETURN_IF_ERROR(ExpectEnd());
    return pd;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status ExpectEnd() {
    if (Peek().kind != Tok::kEnd) {
      return Status::Corruption("trailing input after descriptor: '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  StatusOr<CompositeDescriptor> ParseComposite() {
    bool parenthesized = false;
    if (Peek().kind == Tok::kLParen) {
      Advance();
      parenthesized = true;
    }
    if (Peek().kind == Tok::kStar) {
      Advance();
      if (parenthesized) CTXPREF_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
      return CompositeDescriptor();
    }
    std::vector<ParameterDescriptor> parts;
    for (;;) {
      StatusOr<ParameterDescriptor> pd = ParseParameter();
      if (!pd.ok()) return pd.status();
      parts.push_back(std::move(*pd));
      if (Peek().kind == Tok::kAnd) {
        Advance();
        continue;
      }
      break;
    }
    if (parenthesized) CTXPREF_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
    return CompositeDescriptor::Create(env_, std::move(parts));
  }

  StatusOr<ParameterDescriptor> ParseParameter() {
    if (Peek().kind != Tok::kWord) {
      return Status::Corruption("expected context parameter name, got '" +
                                Peek().text + "'");
    }
    std::string param_name = Advance().text;
    StatusOr<size_t> idx = env_.IndexOf(param_name);
    if (!idx.ok()) return idx.status();
    const size_t param = *idx;

    if (Peek().kind == Tok::kEquals) {
      Advance();
      StatusOr<ValueRef> v = ParseValue(param);
      if (!v.ok()) return v.status();
      return ParameterDescriptor::Equals(env_, param, *v);
    }
    if (Peek().kind == Tok::kIn) {
      Advance();
      if (Peek().kind == Tok::kLBrace) {
        Advance();
        std::vector<ValueRef> values;
        for (;;) {
          StatusOr<ValueRef> v = ParseValue(param);
          if (!v.ok()) return v.status();
          values.push_back(*v);
          if (Peek().kind == Tok::kComma) {
            Advance();
            continue;
          }
          break;
        }
        CTXPREF_RETURN_IF_ERROR(Expect(Tok::kRBrace, "}"));
        return ParameterDescriptor::Set(env_, param, std::move(values));
      }
      if (Peek().kind == Tok::kLBrack) {
        Advance();
        StatusOr<ValueRef> lo = ParseValue(param);
        if (!lo.ok()) return lo.status();
        CTXPREF_RETURN_IF_ERROR(Expect(Tok::kComma, ","));
        StatusOr<ValueRef> hi = ParseValue(param);
        if (!hi.ok()) return hi.status();
        CTXPREF_RETURN_IF_ERROR(Expect(Tok::kRBrack, "]"));
        return ParameterDescriptor::Range(env_, param, *lo, *hi);
      }
      return Status::Corruption("expected '{' or '[' after 'in'");
    }
    return Status::Corruption("expected '=' or 'in' after parameter '" +
                              param_name + "'");
  }

  /// value := WORD | WORD ":" WORD (level-qualified).
  StatusOr<ValueRef> ParseValue(size_t param) {
    if (Peek().kind != Tok::kWord) {
      return Status::Corruption("expected value, got '" + Peek().text + "'");
    }
    std::string first = Advance().text;
    const Hierarchy& h = env_.parameter(param).hierarchy();
    if (Peek().kind == Tok::kColon) {
      Advance();
      if (Peek().kind != Tok::kWord) {
        return Status::Corruption("expected value after level qualifier '" +
                                  first + ":'");
      }
      std::string value = Advance().text;
      StatusOr<LevelIndex> level = h.FindLevel(first);
      if (!level.ok()) return level.status();
      return h.Find(*level, value);
    }
    return h.FindAnyLevel(first);
  }

  Status Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::Corruption(std::string("expected '") + what +
                                "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  const ContextEnvironment& env_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

StatusOr<std::vector<Token>> ScanAll(std::string_view text) {
  return Scanner(text).Scan();
}

}  // namespace

StatusOr<ParameterDescriptor> ParseParameterDescriptor(
    const ContextEnvironment& env, std::string_view text) {
  StatusOr<std::vector<Token>> tokens = ScanAll(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(env, std::move(*tokens)).ParseParameterWhole();
}

StatusOr<CompositeDescriptor> ParseCompositeDescriptor(
    const ContextEnvironment& env, std::string_view text) {
  StatusOr<std::vector<Token>> tokens = ScanAll(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(env, std::move(*tokens)).ParseCompositeWhole();
}

StatusOr<ExtendedDescriptor> ParseExtendedDescriptor(
    const ContextEnvironment& env, std::string_view text) {
  StatusOr<std::vector<Token>> tokens = ScanAll(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(env, std::move(*tokens)).ParseExtended();
}

}  // namespace ctxpref
