#ifndef CTXPREF_CONTEXT_DESCRIPTOR_H_
#define CTXPREF_CONTEXT_DESCRIPTOR_H_

#include <string>
#include <vector>

#include "context/environment.h"
#include "context/state.h"
#include "util/status.h"

namespace ctxpref {

/// A context parameter descriptor cod(Ci) (paper Def. 1): a condition a
/// user states on one parameter — equality, a value set, or a value
/// range — over the parameter's *extended* domain.
class ParameterDescriptor {
 public:
  enum class Kind {
    kEquals,  ///< Ci = v
    kSet,     ///< Ci ∈ {v1, ..., vm}
    kRange,   ///< Ci ∈ [v1, vm]
  };

  /// Ci = v. `value` must be in the parameter's extended domain.
  static StatusOr<ParameterDescriptor> Equals(const ContextEnvironment& env,
                                              size_t param_index,
                                              ValueRef value);

  /// Ci ∈ {v1, ..., vm}. Duplicates are removed; the set may mix levels.
  static StatusOr<ParameterDescriptor> Set(const ContextEnvironment& env,
                                           size_t param_index,
                                           std::vector<ValueRef> values);

  /// Ci ∈ [lo, hi]. Both endpoints must lie on the *same* level (the
  /// level's declaration order is the domain order); lo must not exceed
  /// hi. Ranges are translated to finite value sets (paper Def. 2).
  static StatusOr<ParameterDescriptor> Range(const ContextEnvironment& env,
                                             size_t param_index, ValueRef lo,
                                             ValueRef hi);

  size_t param_index() const { return param_index_; }
  Kind kind() const { return kind_; }

  /// The paper's Context(cod(Ci)) (Def. 2): the finite set of extended-
  /// domain values the descriptor denotes, deduplicated, in a stable
  /// order (declaration order for ranges; insertion order for sets).
  const std::vector<ValueRef>& ContextOf() const { return context_; }

  /// "location = Plaka", "temperature in {warm, hot}",
  /// "temperature in [mild, hot]".
  std::string ToString(const ContextEnvironment& env) const;

 private:
  ParameterDescriptor(size_t param_index, Kind kind,
                      std::vector<ValueRef> context)
      : param_index_(param_index), kind_(kind), context_(std::move(context)) {}

  size_t param_index_;
  Kind kind_;
  std::vector<ValueRef> context_;
};

/// A composite context descriptor cod (paper Def. 3): a conjunction of
/// parameter descriptors with at most one descriptor per parameter.
/// Parameters without a descriptor implicitly take the value `all`.
class CompositeDescriptor {
 public:
  /// An empty descriptor: denotes the single state (all, ..., all), the
  /// non-contextual case.
  CompositeDescriptor() = default;

  /// Errors with InvalidArgument if two descriptors target the same
  /// parameter.
  static StatusOr<CompositeDescriptor> Create(
      const ContextEnvironment& env, std::vector<ParameterDescriptor> parts);

  /// The descriptor denoting exactly `state`: an equality condition
  /// per non-`all` component, `all` components omitted (Def. 4) — the
  /// canonical way to turn a sensed current context into a query
  /// descriptor.
  static StatusOr<CompositeDescriptor> ForState(const ContextEnvironment& env,
                                                const ContextState& state);

  const std::vector<ParameterDescriptor>& parts() const { return parts_; }
  bool empty() const { return parts_.empty(); }

  /// Number of states in Context(cod) = Π |Context(cod(Ci))|.
  size_t NumStates() const;

  /// The paper's Context(cod) (Def. 4): the Cartesian product of the
  /// per-parameter contexts, with {all} for absent parameters. The
  /// result is finite and duplicate-free.
  std::vector<ContextState> EnumerateStates(const ContextEnvironment& env) const;

  /// "location = Plaka and temperature in {warm, hot}"; "<empty>" for
  /// the empty descriptor.
  std::string ToString(const ContextEnvironment& env) const;

 private:
  explicit CompositeDescriptor(std::vector<ParameterDescriptor> parts)
      : parts_(std::move(parts)) {}

  /// Sorted by param_index; at most one entry per parameter.
  std::vector<ParameterDescriptor> parts_;
};

/// An extended context descriptor ecod (paper Def. 8): a disjunction of
/// composite descriptors, used to attach (possibly hypothetical)
/// context to queries.
class ExtendedDescriptor {
 public:
  ExtendedDescriptor() = default;
  explicit ExtendedDescriptor(std::vector<CompositeDescriptor> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  /// Wraps a single composite descriptor.
  static ExtendedDescriptor FromComposite(CompositeDescriptor cod) {
    std::vector<CompositeDescriptor> d;
    d.push_back(std::move(cod));
    return ExtendedDescriptor(std::move(d));
  }

  const std::vector<CompositeDescriptor>& disjuncts() const {
    return disjuncts_;
  }
  bool empty() const { return disjuncts_.empty(); }

  void AddDisjunct(CompositeDescriptor cod) {
    disjuncts_.push_back(std::move(cod));
  }

  /// Union of the disjuncts' states, deduplicated, first-seen order.
  std::vector<ContextState> EnumerateStates(const ContextEnvironment& env) const;

  /// "(...) or (...)".
  std::string ToString(const ContextEnvironment& env) const;

 private:
  std::vector<CompositeDescriptor> disjuncts_;
};

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_DESCRIPTOR_H_
