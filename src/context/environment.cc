#include "context/environment.h"

#include <limits>
#include <set>

namespace ctxpref {

StatusOr<EnvironmentPtr> ContextEnvironment::Create(
    std::vector<ContextParameter> parameters) {
  if (parameters.empty()) {
    return Status::InvalidArgument("context environment has no parameters");
  }
  std::set<std::string_view> names;
  for (const ContextParameter& p : parameters) {
    if (!names.insert(p.name()).second) {
      return Status::InvalidArgument("duplicate context parameter '" +
                                     p.name() + "'");
    }
  }
  return EnvironmentPtr(new ContextEnvironment(std::move(parameters)));
}

StatusOr<size_t> ContextEnvironment::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    if (parameters_[i].name() == name) return i;
  }
  return Status::NotFound("no context parameter named '" + std::string(name) +
                          "'");
}

namespace {
size_t SaturatingMul(size_t a, size_t b) {
  if (a != 0 && b > std::numeric_limits<size_t>::max() / a) {
    return std::numeric_limits<size_t>::max();
  }
  return a * b;
}
}  // namespace

size_t ContextEnvironment::WorldSize() const {
  size_t out = 1;
  for (const auto& p : parameters_) {
    out = SaturatingMul(out, p.hierarchy().level_size(0));
  }
  return out;
}

size_t ContextEnvironment::ExtendedWorldSize() const {
  size_t out = 1;
  for (const auto& p : parameters_) {
    out = SaturatingMul(out, p.hierarchy().extended_domain_size());
  }
  return out;
}

}  // namespace ctxpref
