#ifndef CTXPREF_CONTEXT_SOURCE_H_
#define CTXPREF_CONTEXT_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "context/environment.h"
#include "context/state.h"
#include "util/counters.h"
#include "util/random.h"
#include "util/status.h"

namespace ctxpref {

/// Providers of the *implicit* query context (paper §4.1): "the
/// context surrounding the user at the time of the submission of the
/// query". The paper notes that sensed parameters may only be known
/// roughly — "a context parameter may take a single value from a
/// higher level of the hierarchy" — which these sources model
/// directly: a source reports a `ValueRef` at whatever level its
/// accuracy supports, and an unavailable source falls back to `all`.

/// How a parameter's value was obtained — the degradation ladder of
/// `ResilientSource` (fresh → retried → stale → stale-lifted-k →
/// breaker-open → absent). Plain sources only ever report kFresh or
/// kAbsent.
enum class ReadProvenance {
  kFresh,        ///< First-attempt reading straight from the backend.
  kRetried,      ///< Reading obtained after >= 1 retry.
  kStale,        ///< Last-known-good served within its TTL.
  kStaleLifted,  ///< Last-known-good lifted >= 1 hierarchy level via Anc.
  kBreakerOpen,  ///< Breaker open: served degraded without probing.
  kAbsent,       ///< Nothing available: the parameter takes `all`.
};

const char* ReadProvenanceToString(ReadProvenance p);

/// Diagnostics accompanying one source read: why the returned value is
/// what it is. Filled by `ContextSource::ReadWithInfo`.
struct SourceReadInfo {
  ReadProvenance provenance = ReadProvenance::kFresh;
  /// Backend read attempts made for this read (0 when the breaker
  /// short-circuited, 1 for a plain read, > 1 after retries).
  uint32_t attempts = 1;
  /// Staleness-ladder steps applied on top of the last-known-good
  /// level (stale paths only).
  LevelIndex lifted_levels = 0;
  /// Age of the served value (stale paths only), in clock microseconds.
  int64_t age_micros = 0;
  /// Last backend error observed while producing this read (OK for an
  /// untroubled fresh read).
  Status error;

  /// "fresh", "retried x3", "stale-lifted-2 (age 12.5s)", ...
  std::string ToString() const;
};

class ContextSource {
 public:
  virtual ~ContextSource() = default;

  /// Index of the parameter this source feeds.
  virtual size_t param_index() const = 0;

  /// Current reading. NotFound = currently unavailable (the manager
  /// substitutes `all`); other errors are treated the same way by
  /// `CurrentContext` but are preserved in the snapshot report.
  virtual StatusOr<ValueRef> Read() = 0;

  /// `Read` plus provenance. The default adapter maps OK to kFresh and
  /// any error to kAbsent; resilient decorators override this with the
  /// full ladder. `info` may be null.
  virtual StatusOr<ValueRef> ReadWithInfo(SourceReadInfo* info);
};

/// A source pinned to a fixed value — for tests, demos and manual
/// context entry.
class StaticSource : public ContextSource {
 public:
  StaticSource(size_t param_index, ValueRef value)
      : param_index_(param_index), value_(value) {}

  size_t param_index() const override { return param_index_; }
  StatusOr<ValueRef> Read() override { return value_; }

  void set_value(ValueRef v) { value_ = v; }

 private:
  size_t param_index_;
  ValueRef value_;
};

/// A simulated sensor with limited accuracy: it knows the true
/// detailed value but, per reading, reports it lifted to a coarser
/// hierarchy level with probability `coarseness`, and fails (NotFound)
/// with probability `dropout`. Deterministic under its seed.
class NoisySensorSource : public ContextSource {
 public:
  NoisySensorSource(const ContextEnvironment& env, size_t param_index,
                    ValueRef true_value, double coarseness, double dropout,
                    uint64_t seed)
      : env_(&env),
        param_index_(param_index),
        true_value_(true_value),
        coarseness_(coarseness),
        dropout_(dropout),
        rng_(seed) {}

  size_t param_index() const override { return param_index_; }
  StatusOr<ValueRef> Read() override;

  void set_true_value(ValueRef v) { true_value_ = v; }

 private:
  const ContextEnvironment* env_;
  size_t param_index_;
  ValueRef true_value_;
  double coarseness_;
  double dropout_;
  Rng rng_;
};

/// How one parameter of a snapshot was acquired.
struct ParameterAcquisition {
  size_t param_index = 0;
  bool has_source = false;  ///< False: parameter had no registered source.
  ValueRef value;           ///< The value used in the state.
  SourceReadInfo info;      ///< Provenance; kAbsent when sourceless.
};

/// A snapshot plus the story of how each parameter was obtained — the
/// traceability `explain` surfaces when a context state is coarser
/// than the user expects.
struct SnapshotReport {
  ContextState state;
  /// One entry per environment parameter, in parameter order.
  std::vector<ParameterAcquisition> params;

  /// Parameters served from anything but a live backend reading
  /// (stale, lifted, breaker-open, or absent despite having a source).
  size_t degraded_count() const;
  /// True iff every sourced parameter was served fresh or retried.
  bool fully_fresh() const;

  /// Multi-line human-readable rendering.
  std::string ToString(const ContextEnvironment& env) const;
};

/// Assembles the current context state from per-parameter sources.
/// Parameters without a source (or whose source is unavailable) take
/// the value `all` — exactly the paper's "absent parameter" semantics.
///
/// Snapshotting *never* fails because a source does: a source error or
/// out-of-domain reading degrades that one parameter to `all` and is
/// recorded in the report, so one bad sensor cannot take down query
/// serving. Aggregate acquisition health is ticked into `counters()`.
class CurrentContext {
 public:
  explicit CurrentContext(EnvironmentPtr env) : env_(std::move(env)) {}

  /// Registers `source` for its parameter; at most one source per
  /// parameter (AlreadyExists otherwise).
  Status AddSource(std::unique_ptr<ContextSource> source);

  /// Reads every source and builds the current state. Kept as
  /// `StatusOr` for API stability; with the degradation semantics
  /// above it only errors on internal invariant violations.
  StatusOr<ContextState> Snapshot();

  /// Like `Snapshot`, but also reports per-parameter provenance.
  SnapshotReport SnapshotWithReport();

  const ContextEnvironment& env() const { return *env_; }

  /// Aggregate acquisition counters across all snapshots.
  const AcquisitionCounters& counters() const { return counters_; }
  AcquisitionCounters& counters() { return counters_; }

 private:
  EnvironmentPtr env_;
  std::vector<std::unique_ptr<ContextSource>> sources_;
  AcquisitionCounters counters_;
};

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_SOURCE_H_
