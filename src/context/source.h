#ifndef CTXPREF_CONTEXT_SOURCE_H_
#define CTXPREF_CONTEXT_SOURCE_H_

#include <functional>
#include <memory>
#include <vector>

#include "context/environment.h"
#include "context/state.h"
#include "util/random.h"
#include "util/status.h"

namespace ctxpref {

/// Providers of the *implicit* query context (paper §4.1): "the
/// context surrounding the user at the time of the submission of the
/// query". The paper notes that sensed parameters may only be known
/// roughly — "a context parameter may take a single value from a
/// higher level of the hierarchy" — which these sources model
/// directly: a source reports a `ValueRef` at whatever level its
/// accuracy supports, and an unavailable source falls back to `all`.
class ContextSource {
 public:
  virtual ~ContextSource() = default;

  /// Index of the parameter this source feeds.
  virtual size_t param_index() const = 0;

  /// Current reading. NotFound = currently unavailable (the manager
  /// substitutes `all`); other errors propagate.
  virtual StatusOr<ValueRef> Read() = 0;
};

/// A source pinned to a fixed value — for tests, demos and manual
/// context entry.
class StaticSource : public ContextSource {
 public:
  StaticSource(size_t param_index, ValueRef value)
      : param_index_(param_index), value_(value) {}

  size_t param_index() const override { return param_index_; }
  StatusOr<ValueRef> Read() override { return value_; }

  void set_value(ValueRef v) { value_ = v; }

 private:
  size_t param_index_;
  ValueRef value_;
};

/// A simulated sensor with limited accuracy: it knows the true
/// detailed value but, per reading, reports it lifted to a coarser
/// hierarchy level with probability `coarseness`, and fails (NotFound)
/// with probability `dropout`. Deterministic under its seed.
class NoisySensorSource : public ContextSource {
 public:
  NoisySensorSource(const ContextEnvironment& env, size_t param_index,
                    ValueRef true_value, double coarseness, double dropout,
                    uint64_t seed)
      : env_(&env),
        param_index_(param_index),
        true_value_(true_value),
        coarseness_(coarseness),
        dropout_(dropout),
        rng_(seed) {}

  size_t param_index() const override { return param_index_; }
  StatusOr<ValueRef> Read() override;

  void set_true_value(ValueRef v) { true_value_ = v; }

 private:
  const ContextEnvironment* env_;
  size_t param_index_;
  ValueRef true_value_;
  double coarseness_;
  double dropout_;
  Rng rng_;
};

/// Assembles the current context state from per-parameter sources.
/// Parameters without a source (or whose source is unavailable) take
/// the value `all` — exactly the paper's "absent parameter" semantics.
class CurrentContext {
 public:
  explicit CurrentContext(EnvironmentPtr env) : env_(std::move(env)) {}

  /// Registers `source` for its parameter; at most one source per
  /// parameter (AlreadyExists otherwise).
  Status AddSource(std::unique_ptr<ContextSource> source);

  /// Reads every source and builds the current state. Unavailable
  /// sources degrade to `all`; invalid readings (values outside the
  /// parameter's domain) are InvalidArgument.
  StatusOr<ContextState> Snapshot();

  const ContextEnvironment& env() const { return *env_; }

 private:
  EnvironmentPtr env_;
  std::vector<std::unique_ptr<ContextSource>> sources_;
};

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_SOURCE_H_
