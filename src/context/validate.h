#ifndef CTXPREF_CONTEXT_VALIDATE_H_
#define CTXPREF_CONTEXT_VALIDATE_H_

#include "context/environment.h"
#include "context/hierarchy.h"
#include "util/status.h"

namespace ctxpref {

/// Deep invariant checks ("doctor" functions) for context models built
/// from untrusted input (environment spec files, future bindings).
/// `HierarchyBuilder` already validates on construction; these verify
/// the invariants *hold on the built object*, so tooling can assert a
/// loaded model is sound before serving queries with it.
///
/// Checked per hierarchy (paper §3.1 conditions):
///  * the top level is ALL with the single value 'all';
///  * every non-top value has a parent and parent/child lists agree;
///  * anc is transitive (anc^L3 = anc^L3 ∘ anc^L2 on samples);
///  * anc is monotone between adjacent levels (condition 3) —
///    reported as a warning status only if `require_monotone`;
///  * detailed-descendant counts are consistent bottom-up and sum to
///    the detailed domain size at every level;
///  * Desc/Anc round-trip: every detailed value is among the detailed
///    descendants of each of its ancestors.
Status ValidateHierarchyInvariants(const Hierarchy& hierarchy,
                                   bool require_monotone = false);

/// Validates every parameter's hierarchy plus environment-level
/// invariants (unique parameter names are enforced at construction;
/// re-checked defensively).
Status ValidateEnvironment(const ContextEnvironment& env,
                           bool require_monotone = false);

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_VALIDATE_H_
