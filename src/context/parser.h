#ifndef CTXPREF_CONTEXT_PARSER_H_
#define CTXPREF_CONTEXT_PARSER_H_

#include <string_view>

#include "context/descriptor.h"
#include "context/environment.h"
#include "util/status.h"

namespace ctxpref {

/// Text syntax for context descriptors, used by examples, tests, and
/// profile (de)serialization. Grammar (keywords case-insensitive):
///
///   extended  := composite ( "or" composite )*
///   composite := "(" conj ")" | conj | "*"          -- "*" = empty cod
///   conj      := pdesc ( "and" pdesc )*
///   pdesc     := NAME "=" value
///              | NAME "in" "{" value ("," value)* "}"
///              | NAME "in" "[" value "," value "]"
///   value     := WORD | LEVEL ":" WORD              -- qualified form
///
/// Unqualified values are resolved against the parameter's hierarchy
/// searching levels detailed-first; the qualified form "City:Athens"
/// pins the level when names repeat across levels.
///
/// Examples:
///   location = Plaka and temperature in {warm, hot}
///   (location = Athens and people = family) or (temperature in [mild, hot])

/// Parses a single parameter descriptor, e.g. "temperature in {warm,hot}".
StatusOr<ParameterDescriptor> ParseParameterDescriptor(
    const ContextEnvironment& env, std::string_view text);

/// Parses a conjunction (no "or"); "*" yields the empty descriptor.
StatusOr<CompositeDescriptor> ParseCompositeDescriptor(
    const ContextEnvironment& env, std::string_view text);

/// Parses a disjunction of composites.
StatusOr<ExtendedDescriptor> ParseExtendedDescriptor(
    const ContextEnvironment& env, std::string_view text);

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_PARSER_H_
