#ifndef CTXPREF_CONTEXT_HIERARCHY_H_
#define CTXPREF_CONTEXT_HIERARCHY_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ctxpref {

/// Index of a level within a hierarchy. Level 0 is the detailed level
/// (the paper's L1); the last level is always ALL.
using LevelIndex = uint16_t;

/// Index of a value within one level's domain.
using ValueId = uint32_t;

/// A value of a context parameter's extended domain, identified by its
/// hierarchy level and its id within that level. Which hierarchy the
/// reference belongs to is implied by the context parameter it is used
/// with; `ValueRef`s from different parameters must never be mixed.
struct ValueRef {
  LevelIndex level = 0;
  ValueId id = 0;

  friend bool operator==(const ValueRef&, const ValueRef&) = default;
  friend auto operator<=>(const ValueRef&, const ValueRef&) = default;
};

/// A hierarchy of levels L1 ≺ L2 ≺ ... ≺ ALL over a context parameter's
/// domain (paper §3.1). The implementation models a *chain* of levels —
/// the shape used by every hierarchy in the paper (Region ≺ City ≺
/// Country ≺ ALL, Conditions ≺ Characterization ≺ ALL, ...) — with a
/// total, transitive, monotone `anc` function between consecutive
/// levels, from which anc/desc between any two comparable levels are
/// derived by composition (the paper's conditions 1-3 hold by
/// construction).
///
/// Values are interned: each level owns a dense `ValueId` space and the
/// ancestor function is a flat array lookup, so states and index keys
/// are small PODs and `anc`/`desc` are O(1)/O(k).
///
/// Instances are immutable after `HierarchyBuilder::Build()` and are
/// shared via `std::shared_ptr<const Hierarchy>`.
class Hierarchy {
 public:
  /// Name of the hierarchy (e.g. "location").
  const std::string& name() const { return name_; }

  /// Number of levels including ALL (the paper's m).
  LevelIndex num_levels() const {
    return static_cast<LevelIndex>(levels_.size());
  }

  /// Index of the ALL level (== num_levels()-1).
  LevelIndex all_level() const {
    return static_cast<LevelIndex>(levels_.size() - 1);
  }

  /// The single value of the ALL level.
  ValueRef AllValue() const { return ValueRef{all_level(), 0}; }

  /// Name of level `l` ("Region", "City", ..., "ALL").
  const std::string& level_name(LevelIndex l) const {
    return levels_[l].name;
  }

  /// Domain size of level `l` (domLl cardinality).
  size_t level_size(LevelIndex l) const { return levels_[l].values.size(); }

  /// Total size of the extended domain (sum of all level domains).
  size_t extended_domain_size() const { return extended_size_; }

  /// String form of a value.
  const std::string& value_name(ValueRef v) const {
    return levels_[v.level].values[v.id];
  }

  /// True if `v` names a valid (level, id) in this hierarchy.
  bool Contains(ValueRef v) const {
    return v.level < num_levels() && v.id < level_size(v.level);
  }

  /// Finds a value by name within level `l`.
  StatusOr<ValueRef> Find(LevelIndex l, std::string_view value) const;

  /// Finds a value by name searching levels detailed-first; the first
  /// hit wins. Errors with NotFound if no level contains `value`.
  StatusOr<ValueRef> FindAnyLevel(std::string_view value) const;

  /// Finds a level by name.
  StatusOr<LevelIndex> FindLevel(std::string_view level_name) const;

  /// The paper's anc^{Lto}_{Lfrom}: maps `v` to its ancestor at level
  /// `to`. Requires to >= v.level. Anc(v, v.level) == v.
  ValueRef Anc(ValueRef v, LevelIndex to) const;

  /// The paper's desc^{Lv}_{Lto}: all values at level `to` (<= v.level)
  /// whose ancestor at v.level is `v`. Desc(v, v.level) == {v}.
  std::vector<ValueRef> Desc(ValueRef v, LevelIndex to) const;

  /// |desc to the detailed level| — the cardinality used by the Jaccard
  /// distance (Def. 16). Precomputed; O(1).
  size_t DetailedDescendantCount(ValueRef v) const {
    return levels_[v.level].detailed_count[v.id];
  }

  /// True iff ancestor `a` is an ancestor of (or equal to) `d`:
  /// a.level >= d.level and Anc(d, a.level) == a. This is the per-value
  /// ingredient of the covers relation (Def. 10).
  bool IsAncestorOrSelf(ValueRef a, ValueRef d) const;

  /// Paper Def. 14 level distance: number of edges between the two
  /// levels in the chain, i.e. |l1 - l2| (all levels of one hierarchy
  /// are comparable in a chain; the Def. 14 "infinite" case only arises
  /// across different hierarchies and is handled by the caller).
  uint32_t LevelDistance(LevelIndex l1, LevelIndex l2) const {
    return l1 > l2 ? l1 - l2 : l2 - l1;
  }

  /// Jaccard distance between two values of this hierarchy (Def. 16):
  /// 1 - |desc_detail(v1) ∩ desc_detail(v2)| / |union|. Exploits the
  /// tree shape of the chain hierarchy: detailed descendant sets are
  /// either nested or disjoint, so this is O(1).
  double JaccardDistance(ValueRef v1, ValueRef v2) const;

 private:
  friend class HierarchyBuilder;

  struct Level {
    std::string name;
    std::vector<std::string> values;
    std::map<std::string, ValueId, std::less<>> index;
    /// parent[id] = id of the ancestor at the next level up.
    /// Empty for the ALL level.
    std::vector<ValueId> parent;
    /// children[id] = ids at the next level down mapping to `id`.
    /// Empty for the detailed level.
    std::vector<std::vector<ValueId>> children;
    /// detailed_count[id] = |descendants at level 0|.
    std::vector<size_t> detailed_count;
  };

  Hierarchy() = default;

  std::string name_;
  std::vector<Level> levels_;
  size_t extended_size_ = 0;
};

using HierarchyPtr = std::shared_ptr<const Hierarchy>;

/// Builds a `Hierarchy` level by level, validating the paper's
/// conditions on the anc functions:
///  1. totality  — every value has exactly one parent at the next level;
///  2. transitivity — holds by construction (composition of chains);
///  3. monotonicity — parents are non-decreasing in the child order
///     (required for range descriptors to be well-defined; can be
///     relaxed via `set_require_monotone(false)`).
///
/// Usage:
///   HierarchyBuilder b("location");
///   b.AddDetailedLevel("Region", {"Plaka", "Kifisia", "Perama"});
///   b.AddLevel("City", {{"Athens", {"Plaka", "Kifisia"}},
///                       {"Ioannina", {"Perama"}}});
///   b.AddLevel("Country", {{"Greece", {"Athens", "Ioannina"}}});
///   StatusOr<HierarchyPtr> h = b.Build();  // ALL level appended.
class HierarchyBuilder {
 public:
  /// A parent value together with the child values it groups.
  struct Group {
    std::string parent;
    std::vector<std::string> children;
  };

  explicit HierarchyBuilder(std::string name) : name_(std::move(name)) {}

  /// Declares the detailed level L1. Must be called first, exactly once.
  /// Value order is the domain order used by range descriptors.
  HierarchyBuilder& AddDetailedLevel(std::string level_name,
                                     std::vector<std::string> values);

  /// Declares the next level up, grouping all values of the previous
  /// level. Group order defines this level's domain order.
  HierarchyBuilder& AddLevel(std::string level_name,
                             std::vector<Group> groups);

  /// When false, skips the monotonicity validation (condition 3).
  HierarchyBuilder& set_require_monotone(bool v) {
    require_monotone_ = v;
    return *this;
  }

  /// Validates and finalizes, appending the ALL level. Errors:
  /// InvalidArgument on duplicate values within a level, unknown or
  /// unparented children, empty levels, or monotonicity violations.
  StatusOr<HierarchyPtr> Build();

 private:
  std::string name_;
  bool require_monotone_ = true;
  Status deferred_error_;  // First error recorded during Add* calls.
  std::vector<std::string> level_names_;
  std::vector<std::vector<std::string>> level_values_;
  /// groups_[i] defines parents of level i's values at level i+1.
  std::vector<std::vector<Group>> groups_;
};

/// Builds a flat hierarchy with a single detailed level plus ALL —
/// convenient for parameters without interesting structure.
StatusOr<HierarchyPtr> MakeFlatHierarchy(std::string name,
                                         std::string level_name,
                                         std::vector<std::string> values);

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_HIERARCHY_H_
