#include "context/descriptor.h"

#include <algorithm>
#include <unordered_set>

namespace ctxpref {

namespace {

Status CheckParam(const ContextEnvironment& env, size_t param_index) {
  if (param_index >= env.size()) {
    return Status::InvalidArgument("parameter index " +
                                   std::to_string(param_index) +
                                   " out of range");
  }
  return Status::OK();
}

Status CheckValue(const ContextEnvironment& env, size_t param_index,
                  ValueRef v) {
  if (!env.parameter(param_index).hierarchy().Contains(v)) {
    return Status::InvalidArgument(
        "value (level " + std::to_string(v.level) + ", id " +
        std::to_string(v.id) + ") not in extended domain of parameter '" +
        env.parameter(param_index).name() + "'");
  }
  return Status::OK();
}

}  // namespace

StatusOr<ParameterDescriptor> ParameterDescriptor::Equals(
    const ContextEnvironment& env, size_t param_index, ValueRef value) {
  CTXPREF_RETURN_IF_ERROR(CheckParam(env, param_index));
  CTXPREF_RETURN_IF_ERROR(CheckValue(env, param_index, value));
  return ParameterDescriptor(param_index, Kind::kEquals, {value});
}

StatusOr<ParameterDescriptor> ParameterDescriptor::Set(
    const ContextEnvironment& env, size_t param_index,
    std::vector<ValueRef> values) {
  CTXPREF_RETURN_IF_ERROR(CheckParam(env, param_index));
  if (values.empty()) {
    return Status::InvalidArgument("set descriptor for parameter '" +
                                   env.parameter(param_index).name() +
                                   "' is empty");
  }
  std::vector<ValueRef> dedup;
  for (ValueRef v : values) {
    CTXPREF_RETURN_IF_ERROR(CheckValue(env, param_index, v));
    if (std::find(dedup.begin(), dedup.end(), v) == dedup.end()) {
      dedup.push_back(v);
    }
  }
  return ParameterDescriptor(param_index, Kind::kSet, std::move(dedup));
}

StatusOr<ParameterDescriptor> ParameterDescriptor::Range(
    const ContextEnvironment& env, size_t param_index, ValueRef lo,
    ValueRef hi) {
  CTXPREF_RETURN_IF_ERROR(CheckParam(env, param_index));
  CTXPREF_RETURN_IF_ERROR(CheckValue(env, param_index, lo));
  CTXPREF_RETURN_IF_ERROR(CheckValue(env, param_index, hi));
  if (lo.level != hi.level) {
    return Status::InvalidArgument(
        "range endpoints must lie on the same hierarchy level (parameter '" +
        env.parameter(param_index).name() + "')");
  }
  if (lo.id > hi.id) {
    return Status::InvalidArgument("empty range for parameter '" +
                                   env.parameter(param_index).name() +
                                   "' (lo after hi in domain order)");
  }
  std::vector<ValueRef> values;
  values.reserve(hi.id - lo.id + 1);
  for (ValueId id = lo.id; id <= hi.id; ++id) {
    values.push_back(ValueRef{lo.level, id});
  }
  return ParameterDescriptor(param_index, Kind::kRange, std::move(values));
}

std::string ParameterDescriptor::ToString(
    const ContextEnvironment& env) const {
  const ContextParameter& p = env.parameter(param_index_);
  const Hierarchy& h = p.hierarchy();
  switch (kind_) {
    case Kind::kEquals:
      return p.name() + " = " + h.value_name(context_.front());
    case Kind::kRange:
      return p.name() + " in [" + h.value_name(context_.front()) + ", " +
             h.value_name(context_.back()) + "]";
    case Kind::kSet: {
      std::string out = p.name() + " in {";
      for (size_t i = 0; i < context_.size(); ++i) {
        if (i > 0) out += ", ";
        out += h.value_name(context_[i]);
      }
      out += "}";
      return out;
    }
  }
  return "<invalid>";
}

StatusOr<CompositeDescriptor> CompositeDescriptor::Create(
    const ContextEnvironment& env, std::vector<ParameterDescriptor> parts) {
  std::sort(parts.begin(), parts.end(),
            [](const ParameterDescriptor& a, const ParameterDescriptor& b) {
              return a.param_index() < b.param_index();
            });
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].param_index() == parts[i - 1].param_index()) {
      return Status::InvalidArgument(
          "composite descriptor has two conditions on parameter '" +
          env.parameter(parts[i].param_index()).name() +
          "' (at most one allowed, paper Def. 3)");
    }
  }
  return CompositeDescriptor(std::move(parts));
}

StatusOr<CompositeDescriptor> CompositeDescriptor::ForState(
    const ContextEnvironment& env, const ContextState& state) {
  CTXPREF_RETURN_IF_ERROR(state.Validate(env));
  std::vector<ParameterDescriptor> parts;
  for (size_t i = 0; i < env.size(); ++i) {
    if (state.value(i) == env.parameter(i).hierarchy().AllValue()) continue;
    StatusOr<ParameterDescriptor> pd =
        ParameterDescriptor::Equals(env, i, state.value(i));
    if (!pd.ok()) return pd.status();
    parts.push_back(std::move(*pd));
  }
  return Create(env, std::move(parts));
}

size_t CompositeDescriptor::NumStates() const {
  size_t n = 1;
  for (const ParameterDescriptor& pd : parts_) n *= pd.ContextOf().size();
  return n;
}

std::vector<ContextState> CompositeDescriptor::EnumerateStates(
    const ContextEnvironment& env) const {
  // Per-parameter candidate lists; {all} where unspecified (Def. 4).
  std::vector<std::vector<ValueRef>> choices(env.size());
  for (size_t i = 0; i < env.size(); ++i) {
    choices[i] = {env.parameter(i).hierarchy().AllValue()};
  }
  for (const ParameterDescriptor& pd : parts_) {
    choices[pd.param_index()] = pd.ContextOf();
  }

  std::vector<ContextState> out;
  out.reserve(NumStates());
  std::vector<size_t> idx(env.size(), 0);
  for (;;) {
    std::vector<ValueRef> values(env.size());
    for (size_t i = 0; i < env.size(); ++i) values[i] = choices[i][idx[i]];
    out.emplace_back(std::move(values));
    // Odometer increment, last parameter fastest.
    size_t i = env.size();
    while (i > 0) {
      --i;
      if (++idx[i] < choices[i].size()) break;
      idx[i] = 0;
      if (i == 0) return out;
    }
  }
}

std::string CompositeDescriptor::ToString(
    const ContextEnvironment& env) const {
  if (parts_.empty()) return "<empty>";
  std::string out;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += " and ";
    out += parts_[i].ToString(env);
  }
  return out;
}

std::vector<ContextState> ExtendedDescriptor::EnumerateStates(
    const ContextEnvironment& env) const {
  std::vector<ContextState> out;
  std::unordered_set<ContextState, ContextStateHash> seen;
  for (const CompositeDescriptor& cod : disjuncts_) {
    for (ContextState& s : cod.EnumerateStates(env)) {
      if (seen.insert(s).second) out.push_back(std::move(s));
    }
  }
  return out;
}

std::string ExtendedDescriptor::ToString(const ContextEnvironment& env) const {
  if (disjuncts_.empty()) return "<empty>";
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += " or ";
    out += "(" + disjuncts_[i].ToString(env) + ")";
  }
  return out;
}

}  // namespace ctxpref
