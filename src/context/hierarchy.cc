#include "context/hierarchy.h"

#include <algorithm>

namespace ctxpref {

StatusOr<ValueRef> Hierarchy::Find(LevelIndex l, std::string_view value) const {
  if (l >= num_levels()) {
    return Status::InvalidArgument("level index out of range in hierarchy '" +
                                   name_ + "'");
  }
  const Level& lev = levels_[l];
  auto it = lev.index.find(value);
  if (it == lev.index.end()) {
    return Status::NotFound("value '" + std::string(value) +
                            "' not in level '" + lev.name + "' of hierarchy '" +
                            name_ + "'");
  }
  return ValueRef{l, it->second};
}

StatusOr<ValueRef> Hierarchy::FindAnyLevel(std::string_view value) const {
  for (LevelIndex l = 0; l < num_levels(); ++l) {
    auto it = levels_[l].index.find(value);
    if (it != levels_[l].index.end()) return ValueRef{l, it->second};
  }
  return Status::NotFound("value '" + std::string(value) +
                          "' not in any level of hierarchy '" + name_ + "'");
}

StatusOr<LevelIndex> Hierarchy::FindLevel(std::string_view level_name) const {
  for (LevelIndex l = 0; l < num_levels(); ++l) {
    if (levels_[l].name == level_name) return l;
  }
  return Status::NotFound("level '" + std::string(level_name) +
                          "' not in hierarchy '" + name_ + "'");
}

ValueRef Hierarchy::Anc(ValueRef v, LevelIndex to) const {
  assert(Contains(v));
  assert(to >= v.level && to < num_levels());
  ValueId id = v.id;
  for (LevelIndex l = v.level; l < to; ++l) id = levels_[l].parent[id];
  return ValueRef{to, id};
}

std::vector<ValueRef> Hierarchy::Desc(ValueRef v, LevelIndex to) const {
  assert(Contains(v));
  assert(to <= v.level);
  std::vector<ValueId> frontier = {v.id};
  for (LevelIndex l = v.level; l > to; --l) {
    std::vector<ValueId> next;
    for (ValueId id : frontier) {
      const auto& kids = levels_[l].children[id];
      next.insert(next.end(), kids.begin(), kids.end());
    }
    frontier = std::move(next);
  }
  std::vector<ValueRef> out;
  out.reserve(frontier.size());
  for (ValueId id : frontier) out.push_back(ValueRef{to, id});
  return out;
}

bool Hierarchy::IsAncestorOrSelf(ValueRef a, ValueRef d) const {
  if (a.level < d.level) return false;
  return Anc(d, a.level) == a;
}

double Hierarchy::JaccardDistance(ValueRef v1, ValueRef v2) const {
  const size_t n1 = DetailedDescendantCount(v1);
  const size_t n2 = DetailedDescendantCount(v2);
  size_t inter;
  if (IsAncestorOrSelf(v1, v2)) {
    inter = n2;  // desc(v2) ⊆ desc(v1)
  } else if (IsAncestorOrSelf(v2, v1)) {
    inter = n1;
  } else {
    inter = 0;  // Tree-shaped hierarchy: otherwise disjoint.
  }
  const size_t uni = n1 + n2 - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

HierarchyBuilder& HierarchyBuilder::AddDetailedLevel(
    std::string level_name, std::vector<std::string> values) {
  if (!deferred_error_.ok()) return *this;
  if (!level_names_.empty()) {
    deferred_error_ =
        Status::InvalidArgument("AddDetailedLevel must be the first level");
    return *this;
  }
  if (values.empty()) {
    deferred_error_ = Status::InvalidArgument("detailed level '" + level_name +
                                              "' has no values");
    return *this;
  }
  level_names_.push_back(std::move(level_name));
  level_values_.push_back(std::move(values));
  return *this;
}

HierarchyBuilder& HierarchyBuilder::AddLevel(std::string level_name,
                                             std::vector<Group> groups) {
  if (!deferred_error_.ok()) return *this;
  if (level_names_.empty()) {
    deferred_error_ =
        Status::InvalidArgument("call AddDetailedLevel before AddLevel");
    return *this;
  }
  if (groups.empty()) {
    deferred_error_ =
        Status::InvalidArgument("level '" + level_name + "' has no groups");
    return *this;
  }
  std::vector<std::string> values;
  values.reserve(groups.size());
  for (const Group& g : groups) values.push_back(g.parent);
  level_names_.push_back(std::move(level_name));
  level_values_.push_back(std::move(values));
  groups_.push_back(std::move(groups));
  return *this;
}

StatusOr<HierarchyPtr> HierarchyBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (level_names_.empty()) {
    return Status::InvalidArgument("hierarchy '" + name_ + "' has no levels");
  }

  auto hier = std::shared_ptr<Hierarchy>(new Hierarchy());
  hier->name_ = name_;

  // Materialize declared levels with interned values.
  for (size_t l = 0; l < level_names_.size(); ++l) {
    Hierarchy::Level lev;
    lev.name = level_names_[l];
    lev.values = level_values_[l];
    for (ValueId id = 0; id < lev.values.size(); ++id) {
      auto [it, inserted] = lev.index.emplace(lev.values[id], id);
      if (!inserted) {
        return Status::InvalidArgument("duplicate value '" + lev.values[id] +
                                       "' in level '" + lev.name +
                                       "' of hierarchy '" + name_ + "'");
      }
    }
    hier->levels_.push_back(std::move(lev));
  }

  // Append the ALL level.
  {
    Hierarchy::Level all;
    all.name = "ALL";
    all.values = {"all"};
    all.index.emplace("all", 0);
    hier->levels_.push_back(std::move(all));
  }

  const size_t num_declared = level_names_.size();

  // Wire parents. Level i in [0, num_declared-2] is parented by the
  // explicit groups; level num_declared-1 is parented by ALL.
  for (size_t l = 0; l + 1 < num_declared; ++l) {
    Hierarchy::Level& child = hier->levels_[l];
    Hierarchy::Level& parent = hier->levels_[l + 1];
    child.parent.assign(child.values.size(),
                        std::numeric_limits<ValueId>::max());
    const std::vector<Group>& groups = groups_[l];
    for (ValueId pid = 0; pid < groups.size(); ++pid) {
      for (const std::string& child_name : groups[pid].children) {
        auto it = child.index.find(child_name);
        if (it == child.index.end()) {
          return Status::InvalidArgument(
              "group parent '" + groups[pid].parent + "' references unknown " +
              "value '" + child_name + "' at level '" + child.name + "'");
        }
        if (child.parent[it->second] != std::numeric_limits<ValueId>::max()) {
          return Status::InvalidArgument("value '" + child_name +
                                         "' assigned two parents at level '" +
                                         parent.name + "'");
        }
        child.parent[it->second] = pid;
      }
    }
    for (ValueId id = 0; id < child.values.size(); ++id) {
      if (child.parent[id] == std::numeric_limits<ValueId>::max()) {
        return Status::InvalidArgument("value '" + child.values[id] +
                                       "' has no parent at level '" +
                                       parent.name + "'");
      }
    }
    if (require_monotone_) {
      // Condition 3 (paper §3.1): x < y ⇒ anc(x) <= anc(y).
      for (ValueId id = 1; id < child.values.size(); ++id) {
        if (child.parent[id] < child.parent[id - 1]) {
          return Status::InvalidArgument(
              "anc function not monotone between levels '" + child.name +
              "' and '" + parent.name + "' (value '" + child.values[id] +
              "'); reorder values or set_require_monotone(false)");
        }
      }
    }
  }
  // Top declared level -> ALL.
  hier->levels_[num_declared - 1].parent.assign(
      hier->levels_[num_declared - 1].values.size(), 0);

  // Children lists and detailed-descendant counts, bottom-up.
  for (size_t l = 0; l + 1 < hier->levels_.size(); ++l) {
    Hierarchy::Level& child = hier->levels_[l];
    Hierarchy::Level& parent = hier->levels_[l + 1];
    parent.children.assign(parent.values.size(), {});
    for (ValueId id = 0; id < child.values.size(); ++id) {
      parent.children[child.parent[id]].push_back(id);
    }
  }
  {
    Hierarchy::Level& detailed = hier->levels_[0];
    detailed.detailed_count.assign(detailed.values.size(), 1);
    for (size_t l = 1; l < hier->levels_.size(); ++l) {
      Hierarchy::Level& lev = hier->levels_[l];
      const Hierarchy::Level& below = hier->levels_[l - 1];
      lev.detailed_count.assign(lev.values.size(), 0);
      for (ValueId id = 0; id < lev.values.size(); ++id) {
        for (ValueId c : lev.children[id]) {
          lev.detailed_count[id] += below.detailed_count[c];
        }
      }
    }
  }

  hier->extended_size_ = 0;
  for (const auto& lev : hier->levels_) {
    hier->extended_size_ += lev.values.size();
  }
  return HierarchyPtr(hier);
}

StatusOr<HierarchyPtr> MakeFlatHierarchy(std::string name,
                                         std::string level_name,
                                         std::vector<std::string> values) {
  HierarchyBuilder b(std::move(name));
  b.AddDetailedLevel(std::move(level_name), std::move(values));
  return b.Build();
}

}  // namespace ctxpref
