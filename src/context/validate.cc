#include "context/validate.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace ctxpref {

namespace {

Status Fail(const Hierarchy& h, const std::string& why) {
  return Status::Corruption("hierarchy '" + h.name() + "': " + why);
}

}  // namespace

Status ValidateHierarchyInvariants(const Hierarchy& h,
                                   bool require_monotone) {
  const LevelIndex m = h.num_levels();
  if (m == 0) return Fail(h, "no levels");

  // Top level is ALL/{all}.
  if (h.level_name(h.all_level()) != "ALL" || h.level_size(h.all_level()) != 1) {
    return Fail(h, "top level is not ALL with a single value");
  }
  if (h.value_name(h.AllValue()) != "all") {
    return Fail(h, "ALL level's value is not 'all'");
  }

  size_t detailed_size = h.level_size(0);
  for (LevelIndex l = 0; l < m; ++l) {
    if (h.level_size(l) == 0) {
      return Fail(h, "level " + std::string(h.level_name(l)) + " is empty");
    }
    // Distinct value names within the level.
    std::set<std::string> names;
    for (ValueId id = 0; id < h.level_size(l); ++id) {
      if (!names.insert(h.value_name(ValueRef{l, id})).second) {
        return Fail(h, "duplicate value name at level " + h.level_name(l));
      }
    }

    // Detailed-descendant counts per level must sum to |dom_L1|.
    size_t sum = 0;
    for (ValueId id = 0; id < h.level_size(l); ++id) {
      const size_t count = h.DetailedDescendantCount(ValueRef{l, id});
      if (count == 0) {
        return Fail(h, "value '" + h.value_name(ValueRef{l, id}) +
                           "' has no detailed descendants");
      }
      sum += count;
    }
    if (sum != detailed_size) {
      return Fail(h, "detailed counts at level " + h.level_name(l) + " sum to " +
                         std::to_string(sum) + ", expected " +
                         std::to_string(detailed_size));
    }

    if (l + 1 < m) {
      // Parent/child agreement and monotonicity.
      ValueId prev_parent = 0;
      for (ValueId id = 0; id < h.level_size(l); ++id) {
        const ValueRef child{l, id};
        const ValueRef parent = h.Anc(child, static_cast<LevelIndex>(l + 1));
        if (!h.Contains(parent)) {
          return Fail(h, "anc of '" + h.value_name(child) +
                             "' is outside the next level");
        }
        std::vector<ValueRef> kids = h.Desc(parent, l);
        if (std::find(kids.begin(), kids.end(), child) == kids.end()) {
          return Fail(h, "desc(anc('" + h.value_name(child) +
                             "')) does not contain it");
        }
        if (require_monotone && id > 0 && parent.id < prev_parent) {
          return Fail(h, "anc not monotone at level " + h.level_name(l));
        }
        prev_parent = parent.id;
      }
    }
  }

  // Transitivity on every detailed value: anc to any level equals
  // stepwise composition (paper condition 2).
  for (ValueId id = 0; id < h.level_size(0); ++id) {
    ValueRef step{0, id};
    for (LevelIndex l = 1; l < m; ++l) {
      step = h.Anc(step, l);
      if (h.Anc(ValueRef{0, id}, l) != step) {
        return Fail(h, "anc not transitive for detailed value '" +
                           h.value_name(ValueRef{0, id}) + "'");
      }
    }
    // Round-trip: the detailed value is among every ancestor's
    // detailed descendants (checked for the top, which covers all).
    if (h.DetailedDescendantCount(h.AllValue()) != h.level_size(0)) {
      return Fail(h, "ALL does not cover the detailed domain");
    }
  }
  return Status::OK();
}

Status ValidateEnvironment(const ContextEnvironment& env,
                           bool require_monotone) {
  std::set<std::string> names;
  for (size_t i = 0; i < env.size(); ++i) {
    if (!names.insert(env.parameter(i).name()).second) {
      return Status::Corruption("duplicate parameter '" +
                                env.parameter(i).name() + "'");
    }
    CTXPREF_RETURN_IF_ERROR(ValidateHierarchyInvariants(
        env.parameter(i).hierarchy(), require_monotone));
  }
  return Status::OK();
}

}  // namespace ctxpref
