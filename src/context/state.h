#ifndef CTXPREF_CONTEXT_STATE_H_
#define CTXPREF_CONTEXT_STATE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "context/environment.h"
#include "context/hierarchy.h"
#include "util/status.h"

namespace ctxpref {

/// An extended context state (paper §3.1): an n-tuple assigning each
/// context parameter a value from its *extended* domain, i.e. from any
/// hierarchy level. A state whose values all come from the detailed
/// level is a (plain) context state, an element of the world W.
///
/// States are value types of n `ValueRef`s; they do not carry their
/// environment — operations that need hierarchy information take a
/// `const ContextEnvironment&`, keeping states cheap enough to be index
/// keys (the profile tree stores one root-to-leaf path per state).
class ContextState {
 public:
  ContextState() = default;

  /// Takes the component values in environment order. The caller
  /// guarantees size and validity match `env`; use `Validate` when the
  /// source is untrusted.
  explicit ContextState(std::vector<ValueRef> values)
      : values_(std::move(values)) {}

  /// The state (all, all, ..., all).
  static ContextState AllState(const ContextEnvironment& env);

  /// Builds a state from value names, resolving each against the
  /// corresponding parameter's hierarchy (any level, detailed-first).
  static StatusOr<ContextState> FromNames(
      const ContextEnvironment& env, const std::vector<std::string>& names);

  size_t size() const { return values_.size(); }
  ValueRef value(size_t i) const { return values_[i]; }
  void set_value(size_t i, ValueRef v) { values_[i] = v; }
  const std::vector<ValueRef>& values() const { return values_; }

  /// OK iff the state has one in-domain value per parameter of `env`.
  Status Validate(const ContextEnvironment& env) const;

  /// True iff every component is at the detailed level (the state is an
  /// element of the world W, not just the extended world EW).
  bool IsDetailed() const;

  /// Paper Def. 10: this state covers `other` iff for every parameter
  /// the component is equal to, or an ancestor of, `other`'s component.
  /// Reflexive, antisymmetric, transitive (Theorem 1).
  bool Covers(const ContextEnvironment& env, const ContextState& other) const;

  /// "(Plaka, warm, friends)".
  std::string ToString(const ContextEnvironment& env) const;

  friend bool operator==(const ContextState&, const ContextState&) = default;
  /// Lexicographic on (level, id) pairs; an arbitrary-but-stable total
  /// order used for deterministic containers, NOT the covers order.
  friend auto operator<=>(const ContextState&, const ContextState&) = default;

 private:
  std::vector<ValueRef> values_;
};

/// Hash functor for unordered containers keyed by state.
struct ContextStateHash {
  size_t operator()(const ContextState& s) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const ValueRef& v : s.values()) {
      h ^= (static_cast<size_t>(v.level) << 32) | v.id;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// Paper Def. 11: set S1 covers set S2 iff every s ∈ S2 has some
/// s' ∈ S1 with s' covers s.
bool CoversSet(const ContextEnvironment& env,
               const std::vector<ContextState>& s1,
               const std::vector<ContextState>& s2);

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_STATE_H_
