#include "context/resilient_source.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "util/metrics.h"
#include "util/trace.h"

namespace ctxpref {

namespace {

/// End-to-end `ReadWithInfo` latency: includes retries, backoff sleeps
/// and degraded serving, so its tail is dominated by the retry policy
/// rather than the inner source.
LatencyHistogram& ReadLatency() {
  static LatencyHistogram* h = &MetricsRegistry::Global().GetHistogram(
      "ctxpref_source_read_latency_ns",
      "ResilientSource::ReadWithInfo latency incl. retries and backoff");
  return *h;
}

}  // namespace

const char* BreakerStateToString(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

ResilientSource::ResilientSource(const ContextEnvironment& env,
                                 std::unique_ptr<ContextSource> inner,
                                 SourcePolicy policy, Clock* clock,
                                 uint64_t seed)
    : env_(&env),
      inner_(std::move(inner)),
      policy_(policy),
      clock_(clock),
      rng_(seed) {}

BreakerState ResilientSource::breaker_state() const {
  util::MutexLock lock(mu_);
  return breaker_;
}

void ResilientSource::SeedLastKnownGood(ValueRef value, int64_t at_micros) {
  util::MutexLock lock(mu_);
  last_good_ = value;
  last_good_at_ = at_micros;
}

StatusOr<ValueRef> ResilientSource::Read() { return ReadWithInfo(nullptr); }

ResilientSource::Attempted ResilientSource::AttemptOnce() {
  const int64_t t0 = clock_->NowMicros();
  Attempted a{inner_->Read(), Status::OK()};
  const int64_t elapsed = clock_->NowMicros() - t0;
  if (!a.reading.ok()) {
    a.failure = a.reading.status();
  } else if (policy_.read_deadline_micros > 0 &&
             elapsed > policy_.read_deadline_micros) {
    a.failure = Status::DeadlineExceeded(
        "read of parameter '" + env_->parameter(param_index()).name() +
        "' took " + std::to_string(elapsed) + "us (deadline " +
        std::to_string(policy_.read_deadline_micros) + "us)");
  } else if (!env_->parameter(param_index()).hierarchy().Contains(*a.reading)) {
    a.failure = Status::InvalidArgument(
        "source for parameter '" + env_->parameter(param_index()).name() +
        "' produced a value outside its extended domain");
  }
  return a;
}

void ResilientSource::RecordSuccess() {
  consecutive_failures_ = 0;
  if (breaker_ == BreakerState::kHalfOpen) {
    if (++half_open_successes_ >= policy_.half_open_probes_to_close) {
      breaker_ = BreakerState::kClosed;
      half_open_successes_ = 0;
    }
  }
}

void ResilientSource::RecordFailure(int64_t now) {
  if (breaker_ == BreakerState::kHalfOpen) {
    // The probe failed: re-open and restart the cooldown.
    breaker_ = BreakerState::kOpen;
    breaker_opened_at_ = now;
    half_open_successes_ = 0;
    return;
  }
  ++consecutive_failures_;
  if (policy_.failure_threshold > 0 &&
      consecutive_failures_ >= policy_.failure_threshold) {
    breaker_ = BreakerState::kOpen;
    breaker_opened_at_ = now;
    consecutive_failures_ = 0;
  }
}

StatusOr<ValueRef> ResilientSource::ServeDegraded(int64_t now,
                                                 bool breaker_open,
                                                 SourceReadInfo* info) {
  const Hierarchy& h = env_->parameter(param_index()).hierarchy();
  if (breaker_open && info->error.ok()) {
    info->error = Status::Unavailable(
        "breaker open for parameter '" + env_->parameter(param_index()).name() +
        "'" + (last_error_.ok() ? "" : " (last error: " +
                                           last_error_.ToString() + ")"));
  }
  if (!last_good_.has_value()) {
    info->provenance =
        breaker_open ? ReadProvenance::kBreakerOpen : ReadProvenance::kAbsent;
    if (info->error.ok()) {
      info->error = last_error_.ok()
                        ? Status::NotFound(
                              "no reading for parameter '" +
                              env_->parameter(param_index()).name() + "'")
                        : last_error_;
    }
    return info->error;
  }

  const int64_t age = now - last_good_at_;
  info->age_micros = age;
  LevelIndex lift = 0;
  if (age > policy_.stale_ttl_micros) {
    const int64_t extra = age - policy_.stale_ttl_micros;
    const int64_t windows =
        policy_.lift_window_micros > 0
            ? extra / policy_.lift_window_micros + 1
            : static_cast<int64_t>(h.all_level());
    lift = static_cast<LevelIndex>(
        std::min<int64_t>(windows, h.all_level()));
  }
  const LevelIndex target = static_cast<LevelIndex>(
      std::min<uint32_t>(static_cast<uint32_t>(last_good_->level) + lift,
                         h.all_level()));
  const ValueRef served = h.Anc(*last_good_, target);
  info->lifted_levels = static_cast<LevelIndex>(target - last_good_->level);
  if (breaker_open) {
    info->provenance = ReadProvenance::kBreakerOpen;
  } else {
    info->provenance = info->lifted_levels > 0 ? ReadProvenance::kStaleLifted
                                               : ReadProvenance::kStale;
  }
  return served;
}

StatusOr<ValueRef> ResilientSource::ReadWithInfo(SourceReadInfo* info) {
  TraceSpan span("source.read");
  ScopedLatency latency(&ReadLatency());
  SourceReadInfo local;
  util::MutexLock lock(mu_);
  int64_t now = clock_->NowMicros();

  if (breaker_ == BreakerState::kOpen) {
    if (now - breaker_opened_at_ >= policy_.open_cooldown_micros) {
      breaker_ = BreakerState::kHalfOpen;
      half_open_successes_ = 0;
    } else {
      local.attempts = 0;
      StatusOr<ValueRef> served = ServeDegraded(now, /*breaker_open=*/true,
                                                &local);
      if (info != nullptr) *info = local;
      if (span.active()) {
        span.Tag("provenance", ReadProvenanceToString(local.provenance));
      }
      return served;
    }
  }

  // Half-open lets exactly one probe through per logical read; closed
  // reads get the full retry budget.
  const uint32_t allowed = breaker_ == BreakerState::kHalfOpen
                               ? 1
                               : std::max<uint32_t>(1, policy_.max_attempts);
  int64_t backoff = policy_.backoff_initial_micros;
  for (uint32_t attempt = 1; attempt <= allowed; ++attempt) {
    local.attempts = attempt;
    Attempted a = AttemptOnce();
    if (a.failure.ok()) {
      last_good_ = *a.reading;
      last_good_at_ = clock_->NowMicros();
      last_error_ = Status::OK();
      RecordSuccess();
      local.provenance = attempt > 1 ? ReadProvenance::kRetried
                                     : ReadProvenance::kFresh;
      if (info != nullptr) *info = local;
      if (span.active()) {
        span.Tag("provenance", ReadProvenanceToString(local.provenance));
        span.Tag("attempts", static_cast<uint64_t>(local.attempts));
      }
      return *a.reading;
    }
    last_error_ = a.failure;
    local.error = a.failure;
    if (attempt < allowed) {
      int64_t sleep = backoff;
      if (policy_.backoff_jitter > 0.0) {
        const double j = std::min(policy_.backoff_jitter, 1.0);
        sleep = static_cast<int64_t>(
            static_cast<double>(backoff) *
            (1.0 - j + 2.0 * j * rng_.NextDouble()));
      }
      clock_->SleepMicros(std::max<int64_t>(sleep, 0));
      backoff = std::min(
          static_cast<int64_t>(static_cast<double>(backoff) *
                               policy_.backoff_multiplier),
          policy_.backoff_max_micros);
    }
  }

  now = clock_->NowMicros();
  RecordFailure(now);
  StatusOr<ValueRef> served = ServeDegraded(now, /*breaker_open=*/false,
                                            &local);
  if (info != nullptr) *info = local;
  if (span.active()) {
    span.Tag("provenance", ReadProvenanceToString(local.provenance));
    span.Tag("attempts", static_cast<uint64_t>(local.attempts));
  }
  return served;
}

// ---------------------------------------------------------------------
// FaultInjectingSource

StatusOr<ValueRef> FaultInjectingSource::Read() {
  Step step;
  {
    util::MutexLock lock(mu_);
    ++reads_;
    if (script_.empty()) {
      step.kind = Step::Kind::kOk;
    } else {
      step = script_.front();
      script_.pop_front();
    }
    if (!step.has_value) step.value = value_;
  }
  switch (step.kind) {
    case Step::Kind::kOk:
    case Step::Kind::kValue:
      return step.value;
    case Step::Kind::kError:
      return step.error;
    case Step::Kind::kLatency:
      if (clock_ != nullptr) clock_->Advance(step.latency_micros);
      return step.value;
    case Step::Kind::kOutOfDomain:
      return ValueRef{std::numeric_limits<LevelIndex>::max(),
                      std::numeric_limits<ValueId>::max()};
  }
  return Status::Internal("unreachable fault script step");
}

void FaultInjectingSource::PushOk() {
  util::MutexLock lock(mu_);
  script_.push_back(Step{});
}

void FaultInjectingSource::PushValue(ValueRef v) {
  util::MutexLock lock(mu_);
  Step s;
  s.kind = Step::Kind::kValue;
  s.value = v;
  s.has_value = true;
  script_.push_back(s);
}

void FaultInjectingSource::PushNotFound() {
  PushError(Status::NotFound("injected: sensor unavailable"));
}

void FaultInjectingSource::PushError(Status error) {
  util::MutexLock lock(mu_);
  Step s;
  s.kind = Step::Kind::kError;
  s.error = std::move(error);
  script_.push_back(s);
}

void FaultInjectingSource::PushLatency(int64_t micros) {
  util::MutexLock lock(mu_);
  Step s;
  s.kind = Step::Kind::kLatency;
  s.latency_micros = micros;
  script_.push_back(s);
}

void FaultInjectingSource::PushLatencyValue(int64_t micros, ValueRef v) {
  util::MutexLock lock(mu_);
  Step s;
  s.kind = Step::Kind::kLatency;
  s.latency_micros = micros;
  s.value = v;
  s.has_value = true;
  script_.push_back(s);
}

void FaultInjectingSource::PushOutOfDomain() {
  util::MutexLock lock(mu_);
  Step s;
  s.kind = Step::Kind::kOutOfDomain;
  script_.push_back(s);
}

void FaultInjectingSource::FailNext(size_t n) {
  for (size_t i = 0; i < n; ++i) PushNotFound();
}

void FaultInjectingSource::set_value(ValueRef v) {
  util::MutexLock lock(mu_);
  value_ = v;
}

size_t FaultInjectingSource::reads() const {
  util::MutexLock lock(mu_);
  return reads_;
}

}  // namespace ctxpref
