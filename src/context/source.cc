#include "context/source.h"

namespace ctxpref {

StatusOr<ValueRef> NoisySensorSource::Read() {
  if (rng_.Bernoulli(dropout_)) {
    return Status::NotFound("sensor for parameter " +
                            env_->parameter(param_index_).name() +
                            " dropped out");
  }
  const Hierarchy& h = env_->parameter(param_index_).hierarchy();
  ValueRef v = true_value_;
  if (rng_.Bernoulli(coarseness_) && v.level + 1 < h.num_levels()) {
    // Report one or more levels up (limited accuracy).
    const LevelIndex span = static_cast<LevelIndex>(
        h.num_levels() - 1 - v.level);
    const LevelIndex up = static_cast<LevelIndex>(1 + rng_.Uniform(span));
    v = h.Anc(v, static_cast<LevelIndex>(v.level + up));
  }
  return v;
}

Status CurrentContext::AddSource(std::unique_ptr<ContextSource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("null context source");
  }
  if (source->param_index() >= env_->size()) {
    return Status::InvalidArgument("source parameter index out of range");
  }
  for (const auto& s : sources_) {
    if (s->param_index() == source->param_index()) {
      return Status::AlreadyExists(
          "parameter '" + env_->parameter(source->param_index()).name() +
          "' already has a source");
    }
  }
  sources_.push_back(std::move(source));
  return Status::OK();
}

StatusOr<ContextState> CurrentContext::Snapshot() {
  ContextState state = ContextState::AllState(*env_);
  for (const auto& source : sources_) {
    StatusOr<ValueRef> reading = source->Read();
    if (!reading.ok()) {
      if (reading.status().IsNotFound()) continue;  // Degrade to 'all'.
      return reading.status();
    }
    const size_t param = source->param_index();
    if (!env_->parameter(param).hierarchy().Contains(*reading)) {
      return Status::InvalidArgument(
          "source for parameter '" + env_->parameter(param).name() +
          "' produced a value outside its extended domain");
    }
    state.set_value(param, *reading);
  }
  return state;
}

}  // namespace ctxpref
