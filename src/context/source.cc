#include "context/source.h"

#include <cstdio>

namespace ctxpref {

const char* ReadProvenanceToString(ReadProvenance p) {
  switch (p) {
    case ReadProvenance::kFresh:
      return "fresh";
    case ReadProvenance::kRetried:
      return "retried";
    case ReadProvenance::kStale:
      return "stale";
    case ReadProvenance::kStaleLifted:
      return "stale-lifted";
    case ReadProvenance::kBreakerOpen:
      return "breaker-open";
    case ReadProvenance::kAbsent:
      return "absent";
  }
  return "unknown";
}

std::string SourceReadInfo::ToString() const {
  std::string out = ReadProvenanceToString(provenance);
  if (provenance == ReadProvenance::kStaleLifted ||
      (provenance == ReadProvenance::kBreakerOpen && lifted_levels > 0)) {
    out += "-" + std::to_string(lifted_levels);
  }
  if (provenance == ReadProvenance::kRetried) {
    out += " x" + std::to_string(attempts);
  }
  if (age_micros > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (age %.1fs)",
                  static_cast<double>(age_micros) / 1e6);
    out += buf;
  }
  if (!error.ok()) {
    out += " [" + error.ToString() + "]";
  }
  return out;
}

StatusOr<ValueRef> ContextSource::ReadWithInfo(SourceReadInfo* info) {
  StatusOr<ValueRef> reading = Read();
  if (info != nullptr) {
    *info = SourceReadInfo{};
    if (reading.ok()) {
      info->provenance = ReadProvenance::kFresh;
    } else {
      info->provenance = ReadProvenance::kAbsent;
      info->error = reading.status();
    }
  }
  return reading;
}

StatusOr<ValueRef> NoisySensorSource::Read() {
  if (rng_.Bernoulli(dropout_)) {
    return Status::NotFound("sensor for parameter " +
                            env_->parameter(param_index_).name() +
                            " dropped out");
  }
  const Hierarchy& h = env_->parameter(param_index_).hierarchy();
  ValueRef v = true_value_;
  if (rng_.Bernoulli(coarseness_) && v.level + 1 < h.num_levels()) {
    // Report one or more levels up (limited accuracy).
    const LevelIndex span = static_cast<LevelIndex>(
        h.num_levels() - 1 - v.level);
    const LevelIndex up = static_cast<LevelIndex>(1 + rng_.Uniform(span));
    v = h.Anc(v, static_cast<LevelIndex>(v.level + up));
  }
  return v;
}

size_t SnapshotReport::degraded_count() const {
  size_t n = 0;
  for (const ParameterAcquisition& p : params) {
    if (!p.has_source) continue;
    if (p.info.provenance != ReadProvenance::kFresh &&
        p.info.provenance != ReadProvenance::kRetried) {
      ++n;
    }
  }
  return n;
}

bool SnapshotReport::fully_fresh() const { return degraded_count() == 0; }

std::string SnapshotReport::ToString(const ContextEnvironment& env) const {
  std::string out = state.ToString(env) + "\n";
  for (const ParameterAcquisition& p : params) {
    out += "  " + env.parameter(p.param_index).name() + " = " +
           env.parameter(p.param_index).hierarchy().value_name(p.value);
    if (p.has_source) {
      out += " [" + p.info.ToString() + "]";
    } else {
      out += " [no source]";
    }
    out += "\n";
  }
  return out;
}

Status CurrentContext::AddSource(std::unique_ptr<ContextSource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("null context source");
  }
  if (source->param_index() >= env_->size()) {
    return Status::InvalidArgument("source parameter index out of range");
  }
  for (const auto& s : sources_) {
    if (s->param_index() == source->param_index()) {
      return Status::AlreadyExists(
          "parameter '" + env_->parameter(source->param_index()).name() +
          "' already has a source");
    }
  }
  sources_.push_back(std::move(source));
  return Status::OK();
}

StatusOr<ContextState> CurrentContext::Snapshot() {
  return SnapshotWithReport().state;
}

SnapshotReport CurrentContext::SnapshotWithReport() {
  SnapshotReport report;
  report.state = ContextState::AllState(*env_);
  report.params.resize(env_->size());
  for (size_t i = 0; i < env_->size(); ++i) {
    report.params[i].param_index = i;
    report.params[i].value = env_->parameter(i).hierarchy().AllValue();
    report.params[i].info.provenance = ReadProvenance::kAbsent;
    report.params[i].info.attempts = 0;
  }

  for (const auto& source : sources_) {
    const size_t param = source->param_index();
    ParameterAcquisition& acq = report.params[param];
    acq.has_source = true;

    counters_.AddReads();
    StatusOr<ValueRef> reading = source->ReadWithInfo(&acq.info);
    counters_.AddAttempts(acq.info.attempts);
    if (!acq.info.error.ok()) counters_.AddErrors();

    if (reading.ok() &&
        !env_->parameter(param).hierarchy().Contains(*reading)) {
      // A sensor reporting garbage must not take down query serving:
      // degrade this one parameter to `all` and keep the evidence.
      acq.info.provenance = ReadProvenance::kAbsent;
      acq.info.error = Status::InvalidArgument(
          "source for parameter '" + env_->parameter(param).name() +
          "' produced a value outside its extended domain");
      counters_.AddErrors();
      reading = acq.info.error;
    }

    if (reading.ok()) {
      acq.value = *reading;
      report.state.set_value(param, *reading);
    } else {
      // Unavailable (or broken) source: the parameter stays `all`.
      if (acq.info.error.ok()) acq.info.error = reading.status();
      if (acq.info.provenance == ReadProvenance::kFresh ||
          acq.info.provenance == ReadProvenance::kRetried) {
        acq.info.provenance = ReadProvenance::kAbsent;
      }
      acq.value = env_->parameter(param).hierarchy().AllValue();
    }

    switch (acq.info.provenance) {
      case ReadProvenance::kFresh:
        counters_.AddFresh();
        break;
      case ReadProvenance::kRetried:
        counters_.AddRetried();
        break;
      case ReadProvenance::kStale:
        counters_.AddStale();
        break;
      case ReadProvenance::kStaleLifted:
        counters_.AddStaleLifted();
        counters_.AddLiftedLevels(acq.info.lifted_levels);
        break;
      case ReadProvenance::kBreakerOpen:
        counters_.AddBreakerOpen();
        counters_.AddLiftedLevels(acq.info.lifted_levels);
        break;
      case ReadProvenance::kAbsent:
        counters_.AddAbsent();
        break;
    }
  }
  return report;
}

}  // namespace ctxpref
