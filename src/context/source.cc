#include "context/source.h"

#include <cstdio>

#include "util/metrics.h"
#include "util/trace.h"

namespace ctxpref {

namespace {

/// Registry mirror of the per-`CurrentContext` `AcquisitionCounters`:
/// the same provenance taxonomy, but aggregated process-wide so the
/// exported metrics answer "how degraded is context acquisition
/// overall" without walking every `CurrentContext` instance.
struct AcquisitionMetrics {
  Counter& reads;
  Counter& attempts;
  Counter& errors;
  Counter& fresh;
  Counter& retried;
  Counter& stale;
  Counter& stale_lifted;
  Counter& lifted_levels;
  Counter& breaker_open;
  Counter& absent;

  static AcquisitionMetrics& Get() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    static AcquisitionMetrics* m = new AcquisitionMetrics{
        reg.GetCounter("ctxpref_acquisition_reads_total",
                       "Logical source reads during context snapshots"),
        reg.GetCounter("ctxpref_acquisition_attempts_total",
                       "Physical read attempts including retries"),
        reg.GetCounter("ctxpref_acquisition_errors_total",
                       "Source reads that surfaced an error"),
        reg.GetCounter("ctxpref_acquisition_fresh_total",
                       "Reads served fresh on the first attempt"),
        reg.GetCounter("ctxpref_acquisition_retried_total",
                       "Reads served fresh after at least one retry"),
        reg.GetCounter("ctxpref_acquisition_stale_total",
                       "Reads served from the last-known-good value"),
        reg.GetCounter("ctxpref_acquisition_stale_lifted_total",
                       "Stale reads additionally lifted up the hierarchy"),
        reg.GetCounter("ctxpref_acquisition_lifted_levels_total",
                       "Hierarchy levels lifted across degraded reads"),
        reg.GetCounter("ctxpref_acquisition_breaker_open_total",
                       "Reads short-circuited by an open breaker"),
        reg.GetCounter("ctxpref_acquisition_absent_total",
                       "Reads with no value to serve (parameter -> all)"),
    };
    return *m;
  }
};

}  // namespace

const char* ReadProvenanceToString(ReadProvenance p) {
  switch (p) {
    case ReadProvenance::kFresh:
      return "fresh";
    case ReadProvenance::kRetried:
      return "retried";
    case ReadProvenance::kStale:
      return "stale";
    case ReadProvenance::kStaleLifted:
      return "stale-lifted";
    case ReadProvenance::kBreakerOpen:
      return "breaker-open";
    case ReadProvenance::kAbsent:
      return "absent";
  }
  return "unknown";
}

std::string SourceReadInfo::ToString() const {
  std::string out = ReadProvenanceToString(provenance);
  if (provenance == ReadProvenance::kStaleLifted ||
      (provenance == ReadProvenance::kBreakerOpen && lifted_levels > 0)) {
    out += "-";
    out += std::to_string(lifted_levels);
  }
  if (provenance == ReadProvenance::kRetried) {
    out += " x";
    out += std::to_string(attempts);
  }
  if (age_micros > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (age %.1fs)",
                  static_cast<double>(age_micros) / 1e6);
    out += buf;
  }
  if (!error.ok()) {
    out += " [";
    out += error.ToString();
    out += "]";
  }
  return out;
}

StatusOr<ValueRef> ContextSource::ReadWithInfo(SourceReadInfo* info) {
  StatusOr<ValueRef> reading = Read();
  if (info != nullptr) {
    *info = SourceReadInfo{};
    if (reading.ok()) {
      info->provenance = ReadProvenance::kFresh;
    } else {
      info->provenance = ReadProvenance::kAbsent;
      info->error = reading.status();
    }
  }
  return reading;
}

StatusOr<ValueRef> NoisySensorSource::Read() {
  if (rng_.Bernoulli(dropout_)) {
    return Status::NotFound("sensor for parameter " +
                            env_->parameter(param_index_).name() +
                            " dropped out");
  }
  const Hierarchy& h = env_->parameter(param_index_).hierarchy();
  ValueRef v = true_value_;
  if (rng_.Bernoulli(coarseness_) && v.level + 1 < h.num_levels()) {
    // Report one or more levels up (limited accuracy).
    const LevelIndex span = static_cast<LevelIndex>(
        h.num_levels() - 1 - v.level);
    const LevelIndex up = static_cast<LevelIndex>(1 + rng_.Uniform(span));
    v = h.Anc(v, static_cast<LevelIndex>(v.level + up));
  }
  return v;
}

size_t SnapshotReport::degraded_count() const {
  size_t n = 0;
  for (const ParameterAcquisition& p : params) {
    if (!p.has_source) continue;
    if (p.info.provenance != ReadProvenance::kFresh &&
        p.info.provenance != ReadProvenance::kRetried) {
      ++n;
    }
  }
  return n;
}

bool SnapshotReport::fully_fresh() const { return degraded_count() == 0; }

std::string SnapshotReport::ToString(const ContextEnvironment& env) const {
  std::string out = state.ToString(env) + "\n";
  for (const ParameterAcquisition& p : params) {
    out += "  " + env.parameter(p.param_index).name() + " = " +
           env.parameter(p.param_index).hierarchy().value_name(p.value);
    if (p.has_source) {
      out += " [" + p.info.ToString() + "]";
    } else {
      out += " [no source]";
    }
    out += "\n";
  }
  return out;
}

Status CurrentContext::AddSource(std::unique_ptr<ContextSource> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("null context source");
  }
  if (source->param_index() >= env_->size()) {
    return Status::InvalidArgument("source parameter index out of range");
  }
  for (const auto& s : sources_) {
    if (s->param_index() == source->param_index()) {
      return Status::AlreadyExists(
          "parameter '" + env_->parameter(source->param_index()).name() +
          "' already has a source");
    }
  }
  sources_.push_back(std::move(source));
  return Status::OK();
}

StatusOr<ContextState> CurrentContext::Snapshot() {
  return SnapshotWithReport().state;
}

SnapshotReport CurrentContext::SnapshotWithReport() {
  AcquisitionMetrics& metrics = AcquisitionMetrics::Get();
  TraceSpan span("context.snapshot");
  SnapshotReport report;
  report.state = ContextState::AllState(*env_);
  report.params.resize(env_->size());
  for (size_t i = 0; i < env_->size(); ++i) {
    report.params[i].param_index = i;
    report.params[i].value = env_->parameter(i).hierarchy().AllValue();
    report.params[i].info.provenance = ReadProvenance::kAbsent;
    report.params[i].info.attempts = 0;
  }

  for (const auto& source : sources_) {
    const size_t param = source->param_index();
    ParameterAcquisition& acq = report.params[param];
    acq.has_source = true;

    counters_.AddReads();
    metrics.reads.Increment();
    StatusOr<ValueRef> reading = source->ReadWithInfo(&acq.info);
    counters_.AddAttempts(acq.info.attempts);
    metrics.attempts.Increment(acq.info.attempts);
    if (!acq.info.error.ok()) {
      counters_.AddErrors();
      metrics.errors.Increment();
    }

    if (reading.ok() &&
        !env_->parameter(param).hierarchy().Contains(*reading)) {
      // A sensor reporting garbage must not take down query serving:
      // degrade this one parameter to `all` and keep the evidence.
      acq.info.provenance = ReadProvenance::kAbsent;
      acq.info.error = Status::InvalidArgument(
          "source for parameter '" + env_->parameter(param).name() +
          "' produced a value outside its extended domain");
      counters_.AddErrors();
      metrics.errors.Increment();
      reading = acq.info.error;
    }

    if (reading.ok()) {
      acq.value = *reading;
      report.state.set_value(param, *reading);
    } else {
      // Unavailable (or broken) source: the parameter stays `all`.
      if (acq.info.error.ok()) acq.info.error = reading.status();
      if (acq.info.provenance == ReadProvenance::kFresh ||
          acq.info.provenance == ReadProvenance::kRetried) {
        acq.info.provenance = ReadProvenance::kAbsent;
      }
      acq.value = env_->parameter(param).hierarchy().AllValue();
    }

    switch (acq.info.provenance) {
      case ReadProvenance::kFresh:
        counters_.AddFresh();
        metrics.fresh.Increment();
        break;
      case ReadProvenance::kRetried:
        counters_.AddRetried();
        metrics.retried.Increment();
        break;
      case ReadProvenance::kStale:
        counters_.AddStale();
        metrics.stale.Increment();
        break;
      case ReadProvenance::kStaleLifted:
        counters_.AddStaleLifted();
        counters_.AddLiftedLevels(acq.info.lifted_levels);
        metrics.stale_lifted.Increment();
        metrics.lifted_levels.Increment(acq.info.lifted_levels);
        break;
      case ReadProvenance::kBreakerOpen:
        counters_.AddBreakerOpen();
        counters_.AddLiftedLevels(acq.info.lifted_levels);
        metrics.breaker_open.Increment();
        metrics.lifted_levels.Increment(acq.info.lifted_levels);
        break;
      case ReadProvenance::kAbsent:
        counters_.AddAbsent();
        metrics.absent.Increment();
        break;
    }
  }
  if (span.active()) {
    span.Tag("params", static_cast<uint64_t>(env_->size()));
    span.Tag("degraded", static_cast<uint64_t>(report.degraded_count()));
  }
  return report;
}

}  // namespace ctxpref
