#include "context/distance.h"

namespace ctxpref {

const char* DistanceKindToString(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kHierarchy:
      return "Hierarchy";
    case DistanceKind::kJaccard:
      return "Jaccard";
  }
  return "Unknown";
}

double HierarchyStateDistance(const ContextEnvironment& env,
                              const ContextState& s1, const ContextState& s2) {
  assert(s1.size() == env.size() && s2.size() == env.size());
  double sum = 0;
  for (size_t i = 0; i < env.size(); ++i) {
    sum += env.parameter(i).hierarchy().LevelDistance(s1.value(i).level,
                                                      s2.value(i).level);
  }
  return sum;
}

double JaccardStateDistance(const ContextEnvironment& env,
                            const ContextState& s1, const ContextState& s2) {
  assert(s1.size() == env.size() && s2.size() == env.size());
  double sum = 0;
  for (size_t i = 0; i < env.size(); ++i) {
    sum +=
        env.parameter(i).hierarchy().JaccardDistance(s1.value(i), s2.value(i));
  }
  return sum;
}

double StateDistance(DistanceKind kind, const ContextEnvironment& env,
                     const ContextState& s1, const ContextState& s2) {
  switch (kind) {
    case DistanceKind::kHierarchy:
      return HierarchyStateDistance(env, s1, s2);
    case DistanceKind::kJaccard:
      return JaccardStateDistance(env, s1, s2);
  }
  return kInfiniteDistance;
}

}  // namespace ctxpref
