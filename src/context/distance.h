#ifndef CTXPREF_CONTEXT_DISTANCE_H_
#define CTXPREF_CONTEXT_DISTANCE_H_

#include <cstdint>
#include <limits>

#include "context/environment.h"
#include "context/state.h"

namespace ctxpref {

/// Which state-similarity metric context resolution uses to pick among
/// several covering candidate states (paper §4.3).
enum class DistanceKind {
  kHierarchy,  ///< Sum of level distances (Defs. 13-15).
  kJaccard,    ///< Sum of Jaccard value distances (Defs. 16-17).
};

const char* DistanceKindToString(DistanceKind kind);

/// Sentinel for "no path between levels" (paper Def. 14 case 2; arises
/// only when states from different environments are compared, which the
/// API prevents — kept for defensive completeness).
inline constexpr double kInfiniteDistance =
    std::numeric_limits<double>::infinity();

/// Paper Def. 15: distH(s1, s2) = Σ |distH(L1i, L2i)| — the sum over
/// parameters of the number of hierarchy edges between the levels the
/// two components live on. Smaller = the candidate state is expressed
/// at levels nearer the query's; 0 iff the states share all levels.
double HierarchyStateDistance(const ContextEnvironment& env,
                              const ContextState& s1, const ContextState& s2);

/// Paper Def. 17: distJ(s1, s2) = Σ distJ(c1i, c2i), each component
/// distance being 1 − |desc∩| / |desc∪| over detailed-level descendant
/// sets (Def. 16). Favors candidates with small detailed extents
/// ("smallest state in terms of cardinality", §4.3).
double JaccardStateDistance(const ContextEnvironment& env,
                            const ContextState& s1, const ContextState& s2);

/// Dispatches on `kind`.
double StateDistance(DistanceKind kind, const ContextEnvironment& env,
                     const ContextState& s1, const ContextState& s2);

}  // namespace ctxpref

#endif  // CTXPREF_CONTEXT_DISTANCE_H_
