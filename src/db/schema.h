#ifndef CTXPREF_DB_SCHEMA_H_
#define CTXPREF_DB_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "db/value.h"
#include "util/status.h"

namespace ctxpref::db {

/// A named, typed column.
struct Column {
  std::string name;
  ColumnType type;
};

/// An ordered set of columns describing a relation's tuples.
class Schema {
 public:
  Schema() = default;

  /// Errors with InvalidArgument on empty or duplicate column names.
  static StatusOr<Schema> Create(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`; NotFound otherwise.
  StatusOr<size_t> IndexOf(std::string_view name) const;

  std::string ToString() const;

  friend bool operator==(const Schema&, const Schema&);

 private:
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  std::vector<Column> columns_;
};

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_SCHEMA_H_
