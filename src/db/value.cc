#include "db/value.h"

#include "util/string_util.h"

namespace ctxpref::db {

const char* ColumnTypeToString(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kBool:
      return "bool";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ColumnType::kInt64:
      return std::to_string(AsInt64());
    case ColumnType::kDouble:
      return FormatDouble(AsDouble());
    case ColumnType::kString:
      return AsString();
    case ColumnType::kBool:
      return AsBool() ? "true" : "false";
  }
  return "?";
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

StatusOr<CompareOp> ParseCompareOp(std::string_view s) {
  if (s == "=" || s == "==") return CompareOp::kEq;
  if (s == "!=" || s == "<>") return CompareOp::kNe;
  if (s == "<") return CompareOp::kLt;
  if (s == "<=") return CompareOp::kLe;
  if (s == ">") return CompareOp::kGt;
  if (s == ">=") return CompareOp::kGe;
  return Status::Corruption("unknown comparison operator '" + std::string(s) +
                            "'");
}

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.type() != rhs.type()) {
    // Mismatched types: only equality semantics are defined.
    return op == CompareOp::kNe;
  }
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace ctxpref::db
