#ifndef CTXPREF_DB_TUPLE_H_
#define CTXPREF_DB_TUPLE_H_

#include <vector>

#include "db/schema.h"
#include "db/value.h"

namespace ctxpref::db {

/// Row identifier within a relation (position of insertion).
using RowId = uint64_t;

/// A tuple is a plain row of values; the owning `Relation` guarantees
/// it matches the schema.
using Tuple = std::vector<Value>;

/// Formats a tuple against its schema: "{pid: 3, name: Acropolis, ...}".
std::string TupleToString(const Schema& schema, const Tuple& tuple);

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_TUPLE_H_
