#ifndef CTXPREF_DB_VALUE_H_
#define CTXPREF_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.h"

namespace ctxpref::db {

/// Column type of the miniature relational engine used as the substrate
/// under contextual queries (paper §4.4 operates on a relation
/// R(A1, ..., An) via selections σ_{Ai=value}).
enum class ColumnType {
  kInt64,
  kDouble,
  kString,
  kBool,
};

const char* ColumnTypeToString(ColumnType t);

/// A typed scalar value.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}
  explicit Value(bool v) : rep_(v) {}

  ColumnType type() const {
    switch (rep_.index()) {
      case 0:
        return ColumnType::kInt64;
      case 1:
        return ColumnType::kDouble;
      case 2:
        return ColumnType::kString;
      default:
        return ColumnType::kBool;
    }
  }

  int64_t AsInt64() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }

  std::string ToString() const;

  friend bool operator==(const Value&, const Value&) = default;
  /// Total order within one type; across types, orders by type index
  /// (callers should not rely on cross-type ordering).
  friend auto operator<=>(const Value&, const Value&) = default;

 private:
  std::variant<int64_t, double, std::string, bool> rep_;
};

/// Comparison operators θ of attribute clauses (paper Def. 5).
enum class CompareOp {
  kEq,   ///< =
  kNe,   ///< ≠
  kLt,   ///< <
  kLe,   ///< ≤
  kGt,   ///< >
  kGe,   ///< ≥
};

const char* CompareOpToString(CompareOp op);

/// Parses "=", "!=", "<", "<=", ">", ">=".
StatusOr<CompareOp> ParseCompareOp(std::string_view s);

/// Evaluates `lhs op rhs`. Values must have the same type; mismatched
/// types compare unequal (kEq false, kNe true) and fail ordering ops.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_VALUE_H_
