#ifndef CTXPREF_DB_INDEX_H_
#define CTXPREF_DB_INDEX_H_

#include <map>
#include <vector>

#include "db/predicate.h"
#include "db/relation.h"
#include "util/status.h"

namespace ctxpref::db {

/// An equality index over one column: value -> row ids (row order).
/// Rank_CS evaluates every resolved attribute clause as a selection;
/// on the common `A = a` clauses an index turns the O(|R|) scan into a
/// lookup (see `IndexSet` and the `indexes` field of `QueryOptions`).
///
/// The index is a snapshot: it reflects the relation at `Build` time
/// and must be rebuilt after appends (`row_count()` lets callers check
/// staleness cheaply).
class HashIndex {
 public:
  /// Indexes `column_name` of `relation`. NotFound for unknown columns.
  static StatusOr<HashIndex> Build(const Relation& relation,
                                   std::string_view column_name);

  size_t column_index() const { return column_index_; }
  /// Rows in the relation when the index was built.
  size_t row_count() const { return row_count_; }
  /// Distinct values indexed.
  size_t distinct_values() const { return buckets_.size(); }

  /// Row ids whose column equals `value` (empty if none). O(log V).
  const std::vector<RowId>& Lookup(const Value& value) const;

 private:
  HashIndex(size_t column_index, size_t row_count)
      : column_index_(column_index), row_count_(row_count) {}

  size_t column_index_;
  size_t row_count_;
  std::map<Value, std::vector<RowId>> buckets_;
  std::vector<RowId> empty_;
};

/// A set of per-column equality indexes over one relation.
class IndexSet {
 public:
  explicit IndexSet(const Relation* relation) : relation_(relation) {}

  /// Builds (or rebuilds) the index for `column_name`.
  Status AddIndex(std::string_view column_name);

  /// The index covering `column`, or nullptr (also nullptr when the
  /// index is stale relative to the relation).
  const HashIndex* For(size_t column_index) const;

  /// Evaluates `pred` using an index when possible, falling back to a
  /// relation scan. `used_index`, when non-null, reports which path
  /// was taken.
  std::vector<RowId> Select(const Predicate& pred,
                            bool* used_index = nullptr) const;

 private:
  const Relation* relation_;
  std::vector<HashIndex> indexes_;
};

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_INDEX_H_
