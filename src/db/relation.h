#ifndef CTXPREF_DB_RELATION_H_
#define CTXPREF_DB_RELATION_H_

#include <vector>

#include "db/predicate.h"
#include "db/schema.h"
#include "db/tuple.h"
#include "util/status.h"

namespace ctxpref::db {

/// An append-only row-store relation R(A1, ..., An).
///
/// Deliberately minimal: the paper's query machinery needs append,
/// scan, and σ (selection) — `Rank_CS` evaluates the attribute clauses
/// of resolved preferences as selections over R and annotates the
/// qualifying tuples with scores.
class Relation {
 public:
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row. Errors with InvalidArgument on arity or type
  /// mismatch against the schema.
  Status Append(Tuple row);

  /// The row with the given id; ids are dense in [0, size()).
  const Tuple& row(RowId id) const { return rows_[id]; }

  /// σ_pred(R): ids of all rows satisfying `pred`, in row order.
  std::vector<RowId> Select(const Predicate& pred) const;

  /// Ids of all rows satisfying every predicate (conjunction).
  std::vector<RowId> SelectAll(const std::vector<Predicate>& preds) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_RELATION_H_
