#ifndef CTXPREF_DB_RELATION_H_
#define CTXPREF_DB_RELATION_H_

#include <vector>

#include "db/predicate.h"
#include "db/schema.h"
#include "db/tuple.h"
#include "util/status.h"

namespace ctxpref::db {

/// An append-only row-store relation R(A1, ..., An).
///
/// Deliberately minimal: the paper's query machinery needs append,
/// scan, and σ (selection) — `Rank_CS` evaluates the attribute clauses
/// of resolved preferences as selections over R and annotates the
/// qualifying tuples with scores.
class Relation {
 public:
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row. Errors with InvalidArgument on arity or type
  /// mismatch against the schema.
  Status Append(Tuple row);

  /// The row with the given id; ids are dense in [0, size()).
  const Tuple& row(RowId id) const { return rows_[id]; }

  /// σ_pred(R): ids of all rows satisfying `pred`, in row order.
  std::vector<RowId> Select(const Predicate& pred) const;

  /// Ids of all rows satisfying every predicate (conjunction).
  std::vector<RowId> SelectAll(const std::vector<Predicate>& preds) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

/// An attribute-major (columnar) projection of a `Relation`, built once
/// and scanned by `Rank_CS`'s selection loop: each column's values live
/// in one typed contiguous array (strings dictionary-encoded to dense
/// codes), so σ_{A θ a} is a branch-light scan over machine words
/// instead of a per-row walk through `std::variant` tuples.
///
/// Immutable after construction and safe to share across threads. The
/// projection is a snapshot: rows appended to the relation afterwards
/// are not visible — rebuild to pick them up. Predicates passed to
/// `Select` must have been bound against the same schema (which
/// guarantees the constant's type matches the column's).
class ColumnarProjection {
 public:
  explicit ColumnarProjection(const Relation& relation);

  size_t num_rows() const { return num_rows_; }

  /// σ_pred: ids of all rows satisfying `pred`, in row order — the
  /// same contract (and results) as `Relation::Select`.
  std::vector<RowId> Select(const Predicate& pred) const;

 private:
  struct Column {
    ColumnType type = ColumnType::kInt64;
    std::vector<int64_t> i64;       ///< kInt64
    std::vector<double> f64;        ///< kDouble
    std::vector<uint8_t> b8;        ///< kBool (0/1)
    std::vector<uint32_t> codes;    ///< kString: index into dict
    std::vector<std::string> dict;  ///< Sorted unique values.
  };

  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_RELATION_H_
