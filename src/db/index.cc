#include "db/index.h"

namespace ctxpref::db {

StatusOr<HashIndex> HashIndex::Build(const Relation& relation,
                                     std::string_view column_name) {
  StatusOr<size_t> col = relation.schema().IndexOf(column_name);
  if (!col.ok()) return col.status();
  HashIndex index(*col, relation.size());
  for (RowId r = 0; r < relation.size(); ++r) {
    index.buckets_[relation.row(r)[*col]].push_back(r);
  }
  return index;
}

const std::vector<RowId>& HashIndex::Lookup(const Value& value) const {
  auto it = buckets_.find(value);
  return it == buckets_.end() ? empty_ : it->second;
}

Status IndexSet::AddIndex(std::string_view column_name) {
  StatusOr<HashIndex> index = HashIndex::Build(*relation_, column_name);
  if (!index.ok()) return index.status();
  for (HashIndex& existing : indexes_) {
    if (existing.column_index() == index->column_index()) {
      existing = std::move(*index);  // Rebuild.
      return Status::OK();
    }
  }
  indexes_.push_back(std::move(*index));
  return Status::OK();
}

const HashIndex* IndexSet::For(size_t column_index) const {
  for (const HashIndex& index : indexes_) {
    if (index.column_index() == column_index) {
      return index.row_count() == relation_->size() ? &index : nullptr;
    }
  }
  return nullptr;
}

std::vector<RowId> IndexSet::Select(const Predicate& pred,
                                    bool* used_index) const {
  if (pred.op() == CompareOp::kEq) {
    if (const HashIndex* index = For(pred.column_index())) {
      if (used_index != nullptr) *used_index = true;
      return index->Lookup(pred.constant());
    }
  }
  if (used_index != nullptr) *used_index = false;
  return relation_->Select(pred);
}

}  // namespace ctxpref::db
