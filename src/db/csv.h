#ifndef CTXPREF_DB_CSV_H_
#define CTXPREF_DB_CSV_H_

#include <string>
#include <string_view>

#include "db/relation.h"
#include "util/status.h"

namespace ctxpref::db {

/// Loads a relation from CSV text. The first line must be a header
/// whose column names match `schema` (same names, same order); each
/// following line is one row, with values parsed per the column type
/// (int64, double, bool as true/false, string as-is).
///
/// Supported syntax: comma separator, double-quoted fields containing
/// commas or quotes (`""` escapes a quote), \r\n or \n line ends,
/// trailing blank lines. Unquoted fields are trimmed.
///
/// Errors with Corruption on syntax/typing problems (the message names
/// the line) and InvalidArgument on header mismatch.
StatusOr<Relation> LoadCsv(Schema schema, std::string_view text);

/// Serializes `relation` to CSV (header + rows); LoadCsv on the output
/// reconstructs an equal relation. Strings containing commas, quotes
/// or newlines are quoted.
std::string ToCsv(const Relation& relation);

/// File wrappers.
StatusOr<Relation> LoadCsvFile(Schema schema, const std::string& path);
Status WriteCsvFile(const Relation& relation, const std::string& path);

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_CSV_H_
