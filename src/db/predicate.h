#ifndef CTXPREF_DB_PREDICATE_H_
#define CTXPREF_DB_PREDICATE_H_

#include <string>

#include "db/schema.h"
#include "db/tuple.h"
#include "db/value.h"
#include "util/status.h"

namespace ctxpref::db {

/// A selection predicate `A θ a` over one column (the attribute-clause
/// shape of paper Def. 5 and the σ of Rank_CS).
class Predicate {
 public:
  /// Binds `column_name θ constant` against `schema`, checking that the
  /// column exists and the constant's type matches the column's.
  static StatusOr<Predicate> Create(const Schema& schema,
                                    std::string_view column_name,
                                    CompareOp op, Value constant);

  size_t column_index() const { return column_index_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }

  /// True iff `tuple` satisfies the predicate.
  bool Eval(const Tuple& tuple) const {
    return EvalCompare(tuple[column_index_], op_, constant_);
  }

  std::string ToString(const Schema& schema) const;

 private:
  Predicate(size_t column_index, CompareOp op, Value constant)
      : column_index_(column_index), op_(op), constant_(std::move(constant)) {}

  size_t column_index_;
  CompareOp op_;
  Value constant_;
};

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_PREDICATE_H_
