#include "db/relation.h"

#include <algorithm>
#include <cstdint>

namespace ctxpref::db {

Status Relation::Append(Tuple row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema expects " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "value for column '" + schema_.column(i).name + "' has type " +
          ColumnTypeToString(row[i].type()) + ", expected " +
          ColumnTypeToString(schema_.column(i).type));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<RowId> Relation::Select(const Predicate& pred) const {
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (pred.Eval(rows_[id])) out.push_back(id);
  }
  return out;
}

std::vector<RowId> Relation::SelectAll(
    const std::vector<Predicate>& preds) const {
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    bool all = true;
    for (const Predicate& p : preds) {
      if (!p.Eval(rows_[id])) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(id);
  }
  return out;
}

namespace {

/// One pass over a typed column with the comparison hoisted out of the
/// loop: the scan body is a single compare + conditional push.
template <typename T, typename Pred>
void ScanInto(const std::vector<T>& col, Pred pred, std::vector<RowId>& out) {
  for (RowId id = 0; id < col.size(); ++id) {
    if (pred(col[id])) out.push_back(id);
  }
}

template <typename T>
void ScanCompare(const std::vector<T>& col, CompareOp op, T constant,
                 std::vector<RowId>& out) {
  switch (op) {
    case CompareOp::kEq:
      return ScanInto(col, [=](T v) { return v == constant; }, out);
    case CompareOp::kNe:
      return ScanInto(col, [=](T v) { return v != constant; }, out);
    case CompareOp::kLt:
      return ScanInto(col, [=](T v) { return v < constant; }, out);
    case CompareOp::kLe:
      return ScanInto(col, [=](T v) { return v <= constant; }, out);
    case CompareOp::kGt:
      return ScanInto(col, [=](T v) { return v > constant; }, out);
    case CompareOp::kGe:
      return ScanInto(col, [=](T v) { return v >= constant; }, out);
  }
}

}  // namespace

ColumnarProjection::ColumnarProjection(const Relation& relation)
    : num_rows_(relation.size()) {
  const Schema& schema = relation.schema();
  columns_.resize(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    Column& col = columns_[c];
    col.type = schema.column(c).type;
    switch (col.type) {
      case ColumnType::kInt64:
        col.i64.reserve(num_rows_);
        for (RowId id = 0; id < num_rows_; ++id) {
          col.i64.push_back(relation.row(id)[c].AsInt64());
        }
        break;
      case ColumnType::kDouble:
        col.f64.reserve(num_rows_);
        for (RowId id = 0; id < num_rows_; ++id) {
          col.f64.push_back(relation.row(id)[c].AsDouble());
        }
        break;
      case ColumnType::kBool:
        col.b8.reserve(num_rows_);
        for (RowId id = 0; id < num_rows_; ++id) {
          col.b8.push_back(relation.row(id)[c].AsBool() ? 1 : 0);
        }
        break;
      case ColumnType::kString: {
        // Dictionary-encode: codes preserve the value order (the dict
        // is sorted), so ordered comparisons work on codes directly.
        col.dict.reserve(num_rows_);
        for (RowId id = 0; id < num_rows_; ++id) {
          col.dict.push_back(relation.row(id)[c].AsString());
        }
        std::sort(col.dict.begin(), col.dict.end());
        col.dict.erase(std::unique(col.dict.begin(), col.dict.end()),
                       col.dict.end());
        col.codes.reserve(num_rows_);
        for (RowId id = 0; id < num_rows_; ++id) {
          col.codes.push_back(static_cast<uint32_t>(
              std::lower_bound(col.dict.begin(), col.dict.end(),
                               relation.row(id)[c].AsString()) -
              col.dict.begin()));
        }
        break;
      }
    }
  }
}

std::vector<RowId> ColumnarProjection::Select(const Predicate& pred) const {
  const Column& col = columns_[pred.column_index()];
  const Value& constant = pred.constant();
  std::vector<RowId> out;
  switch (col.type) {
    case ColumnType::kInt64:
      ScanCompare(col.i64, pred.op(), constant.AsInt64(), out);
      break;
    case ColumnType::kDouble:
      ScanCompare(col.f64, pred.op(), constant.AsDouble(), out);
      break;
    case ColumnType::kBool:
      ScanCompare(col.b8, pred.op(),
                  static_cast<uint8_t>(constant.AsBool() ? 1 : 0), out);
      break;
    case ColumnType::kString: {
      // Map the constant into code space once, then scan codes. `lb` is
      // the rank the constant would occupy; when it is actually present
      // the comparisons against its own code need the inclusive
      // variants, hence the `present` adjustment.
      const auto lb_it =
          std::lower_bound(col.dict.begin(), col.dict.end(),
                           constant.AsString());
      const uint32_t lb = static_cast<uint32_t>(lb_it - col.dict.begin());
      const bool present =
          lb_it != col.dict.end() && *lb_it == constant.AsString();
      switch (pred.op()) {
        case CompareOp::kEq:
          if (present) ScanCompare(col.codes, CompareOp::kEq, lb, out);
          break;
        case CompareOp::kNe:
          if (present) {
            ScanCompare(col.codes, CompareOp::kNe, lb, out);
          } else {
            out.reserve(num_rows_);
            for (RowId id = 0; id < num_rows_; ++id) out.push_back(id);
          }
          break;
        case CompareOp::kLt:
          ScanCompare(col.codes, CompareOp::kLt, lb, out);
          break;
        case CompareOp::kLe:
          ScanCompare(col.codes, CompareOp::kLt,
                      lb + static_cast<uint32_t>(present ? 1 : 0), out);
          break;
        case CompareOp::kGt:
          ScanCompare(col.codes, CompareOp::kGe,
                      lb + static_cast<uint32_t>(present ? 1 : 0), out);
          break;
        case CompareOp::kGe:
          ScanCompare(col.codes, CompareOp::kGe, lb, out);
          break;
      }
      break;
    }
  }
  return out;
}

}  // namespace ctxpref::db
