#include "db/relation.h"

namespace ctxpref::db {

Status Relation::Append(Tuple row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema expects " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "value for column '" + schema_.column(i).name + "' has type " +
          ColumnTypeToString(row[i].type()) + ", expected " +
          ColumnTypeToString(schema_.column(i).type));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<RowId> Relation::Select(const Predicate& pred) const {
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (pred.Eval(rows_[id])) out.push_back(id);
  }
  return out;
}

std::vector<RowId> Relation::SelectAll(
    const std::vector<Predicate>& preds) const {
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    bool all = true;
    for (const Predicate& p : preds) {
      if (!p.Eval(rows_[id])) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(id);
  }
  return out;
}

}  // namespace ctxpref::db
