#include "db/ranker.h"

#include <algorithm>

namespace ctxpref::db {

const char* CombinePolicyToString(CombinePolicy p) {
  switch (p) {
    case CombinePolicy::kMax:
      return "max";
    case CombinePolicy::kMin:
      return "min";
    case CombinePolicy::kAvg:
      return "avg";
    case CombinePolicy::kWeighted:
      return "weighted";
  }
  return "?";
}

void Ranker::Combine(Entry& e, double score, double weight) {
  switch (policy_) {
    case CombinePolicy::kMax:
      e.combined = std::max(e.combined, score);
      break;
    case CombinePolicy::kMin:
      e.combined = std::min(e.combined, score);
      break;
    case CombinePolicy::kAvg:
    case CombinePolicy::kWeighted:
      break;  // Handled via the weighted sums below.
  }
  e.weighted_sum += score * weight;
  e.weight_sum += weight;
}

void Ranker::AddWeighted(RowId row_id, double score, double weight) {
  if (row_id < present_.size()) {
    // Dense path (ReserveDense): one indexed load, no insertion shift.
    Entry& e = dense_[row_id];
    if (!present_[row_id]) {
      present_[row_id] = 1;
      touched_.push_back(row_id);
      e = Entry{score, score * weight, weight};
      return;
    }
    Combine(e, score, weight);
    return;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), row_id,
      [](const auto& e, RowId id) { return e.first < id; });
  if (it == entries_.end() || it->first != row_id) {
    entries_.insert(it,
                    {row_id, Entry{score, score * weight, weight}});
    return;
  }
  Combine(it->second, score, weight);
}

void Ranker::ReserveDense(size_t num_rows) {
  if (num_rows <= dense_.size()) return;
  dense_.resize(num_rows);
  present_.resize(num_rows, 0);
  // Migrate flat-map entries the dense table now covers, so mixing
  // ReserveDense with earlier Adds cannot double-count a row.
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if (it->first < num_rows) {
      dense_[it->first] = it->second;
      present_[it->first] = 1;
      touched_.push_back(it->first);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void Ranker::Clear() {
  entries_.clear();
  for (const RowId id : touched_) present_[id] = 0;
  touched_.clear();
}

double Ranker::Finalize(const Entry& e) const {
  switch (policy_) {
    case CombinePolicy::kMax:
    case CombinePolicy::kMin:
      return e.combined;
    case CombinePolicy::kAvg:
    case CombinePolicy::kWeighted:
      return e.weight_sum > 0 ? e.weighted_sum / e.weight_sum : 0.0;
  }
  return 0.0;
}

std::vector<ScoredTuple> Ranker::Ranked() const {
  std::vector<ScoredTuple> out;
  out.reserve(size());
  for (const auto& [row_id, e] : entries_) {
    out.push_back(ScoredTuple{row_id, Finalize(e)});
  }
  for (const RowId id : touched_) {
    out.push_back(ScoredTuple{id, Finalize(dense_[id])});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredTuple& a, const ScoredTuple& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.row_id < b.row_id;
            });
  return out;
}

std::vector<ScoredTuple> Ranker::TopK(size_t k) const {
  std::vector<ScoredTuple> ranked = Ranked();
  if (k == 0 || ranked.size() <= k) return ranked;
  // Extend past k while tied with the k-th score.
  size_t end = k;
  const double kth = ranked[k - 1].score;
  while (end < ranked.size() && ranked[end].score == kth) ++end;
  ranked.resize(end);
  return ranked;
}

}  // namespace ctxpref::db
