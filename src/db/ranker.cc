#include "db/ranker.h"

#include <algorithm>

namespace ctxpref::db {

const char* CombinePolicyToString(CombinePolicy p) {
  switch (p) {
    case CombinePolicy::kMax:
      return "max";
    case CombinePolicy::kMin:
      return "min";
    case CombinePolicy::kAvg:
      return "avg";
    case CombinePolicy::kWeighted:
      return "weighted";
  }
  return "?";
}

void Ranker::AddWeighted(RowId row_id, double score, double weight) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), row_id,
      [](const auto& e, RowId id) { return e.first < id; });
  if (it == entries_.end() || it->first != row_id) {
    entries_.insert(it,
                    {row_id, Entry{score, score * weight, weight}});
    return;
  }
  Entry& e = it->second;
  switch (policy_) {
    case CombinePolicy::kMax:
      e.combined = std::max(e.combined, score);
      break;
    case CombinePolicy::kMin:
      e.combined = std::min(e.combined, score);
      break;
    case CombinePolicy::kAvg:
    case CombinePolicy::kWeighted:
      break;  // Handled via the weighted sums below.
  }
  e.weighted_sum += score * weight;
  e.weight_sum += weight;
}

double Ranker::Finalize(const Entry& e) const {
  switch (policy_) {
    case CombinePolicy::kMax:
    case CombinePolicy::kMin:
      return e.combined;
    case CombinePolicy::kAvg:
    case CombinePolicy::kWeighted:
      return e.weight_sum > 0 ? e.weighted_sum / e.weight_sum : 0.0;
  }
  return 0.0;
}

std::vector<ScoredTuple> Ranker::Ranked() const {
  std::vector<ScoredTuple> out;
  out.reserve(entries_.size());
  for (const auto& [row_id, e] : entries_) {
    out.push_back(ScoredTuple{row_id, Finalize(e)});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredTuple& a, const ScoredTuple& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.row_id < b.row_id;
            });
  return out;
}

std::vector<ScoredTuple> Ranker::TopK(size_t k) const {
  std::vector<ScoredTuple> ranked = Ranked();
  if (k == 0 || ranked.size() <= k) return ranked;
  // Extend past k while tied with the k-th score.
  size_t end = k;
  const double kth = ranked[k - 1].score;
  while (end < ranked.size() && ranked[end].score == kth) ++end;
  ranked.resize(end);
  return ranked;
}

}  // namespace ctxpref::db
