#ifndef CTXPREF_DB_RANKER_H_
#define CTXPREF_DB_RANKER_H_

#include <vector>

#include "db/relation.h"
#include "db/tuple.h"

namespace ctxpref::db {

/// How to combine scores when several resolved preferences annotate the
/// same tuple (paper §4.4: "keeping the max (equivalently, avg, min, or
/// some weighted average)").
enum class CombinePolicy {
  kMax,
  kMin,
  kAvg,
  /// Weighted average with weights proportional to insertion order
  /// recency is meaningless here, so kWeighted takes explicit weights
  /// via `Ranker::AddWeighted`; with plain `Add`, behaves like kAvg.
  kWeighted,
};

const char* CombinePolicyToString(CombinePolicy p);

/// A tuple annotated with its combined interest score.
struct ScoredTuple {
  RowId row_id = 0;
  double score = 0.0;

  friend bool operator==(const ScoredTuple&, const ScoredTuple&) = default;
};

/// Accumulates (row, score) annotations, combines duplicates under a
/// policy, and produces a ranked result list (descending score; ties
/// broken by ascending row id for determinism).
class Ranker {
 public:
  explicit Ranker(CombinePolicy policy = CombinePolicy::kMax)
      : policy_(policy) {}

  CombinePolicy policy() const { return policy_; }

  /// Annotates `row_id` with `score` (weight 1).
  void Add(RowId row_id, double score) { AddWeighted(row_id, score, 1.0); }

  /// Annotates with an explicit weight (used by kWeighted / kAvg).
  void AddWeighted(RowId row_id, double score, double weight);

  /// Number of distinct rows annotated so far.
  size_t size() const { return entries_.size(); }

  /// Ranked results: all annotated rows, descending combined score.
  std::vector<ScoredTuple> Ranked() const;

  /// Top-k by score. When the k-th place is tied, *all* tuples with the
  /// k-th score are included (the paper's user study does the same for
  /// its top-20 lists: "when there are ties in the ranking, we consider
  /// all results with the same score").
  std::vector<ScoredTuple> TopK(size_t k) const;

  void Clear() { entries_.clear(); }

 private:
  struct Entry {
    double combined;     // Running max/min.
    double weighted_sum; // Σ w·s for avg/weighted.
    double weight_sum;   // Σ w.
  };

  double Finalize(const Entry& e) const;

  CombinePolicy policy_;
  /// row id -> accumulation; kept sorted by row id (flat map).
  std::vector<std::pair<RowId, Entry>> entries_;
};

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_RANKER_H_
