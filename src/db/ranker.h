#ifndef CTXPREF_DB_RANKER_H_
#define CTXPREF_DB_RANKER_H_

#include <vector>

#include "db/relation.h"
#include "db/tuple.h"

namespace ctxpref::db {

/// How to combine scores when several resolved preferences annotate the
/// same tuple (paper §4.4: "keeping the max (equivalently, avg, min, or
/// some weighted average)").
enum class CombinePolicy {
  kMax,
  kMin,
  kAvg,
  /// Weighted average with weights proportional to insertion order
  /// recency is meaningless here, so kWeighted takes explicit weights
  /// via `Ranker::AddWeighted`; with plain `Add`, behaves like kAvg.
  kWeighted,
};

const char* CombinePolicyToString(CombinePolicy p);

/// A tuple annotated with its combined interest score.
struct ScoredTuple {
  RowId row_id = 0;
  double score = 0.0;

  friend bool operator==(const ScoredTuple&, const ScoredTuple&) = default;
};

/// Accumulates (row, score) annotations, combines duplicates under a
/// policy, and produces a ranked result list (descending score; ties
/// broken by ascending row id for determinism).
class Ranker {
 public:
  explicit Ranker(CombinePolicy policy = CombinePolicy::kMax)
      : policy_(policy) {}

  CombinePolicy policy() const { return policy_; }

  /// Annotates `row_id` with `score` (weight 1).
  void Add(RowId row_id, double score) { AddWeighted(row_id, score, 1.0); }

  /// Annotates with an explicit weight (used by kWeighted / kAvg).
  void AddWeighted(RowId row_id, double score, double weight);

  /// Switches accumulation for row ids in [0, num_rows) to a dense
  /// direct-index table: O(1) per `Add` instead of the sorted flat
  /// map's O(log n) search + O(n) insert. `Rank_CS` calls this with
  /// the relation's row count (row ids are dense there); rows at or
  /// beyond `num_rows` still take the flat-map path, and entries
  /// accumulated before the call are migrated, so results are
  /// identical either way. Never shrinks.
  void ReserveDense(size_t num_rows);

  /// Number of distinct rows annotated so far.
  size_t size() const { return entries_.size() + touched_.size(); }

  /// Ranked results: all annotated rows, descending combined score.
  std::vector<ScoredTuple> Ranked() const;

  /// Top-k by score. When the k-th place is tied, *all* tuples with the
  /// k-th score are included (the paper's user study does the same for
  /// its top-20 lists: "when there are ties in the ranking, we consider
  /// all results with the same score").
  std::vector<ScoredTuple> TopK(size_t k) const;

  void Clear();

 private:
  struct Entry {
    double combined;     // Running max/min.
    double weighted_sum; // Σ w·s for avg/weighted.
    double weight_sum;   // Σ w.
  };

  void Combine(Entry& e, double score, double weight);
  double Finalize(const Entry& e) const;

  CombinePolicy policy_;
  /// row id -> accumulation; kept sorted by row id (flat map). Holds
  /// only rows outside the dense table's range.
  std::vector<std::pair<RowId, Entry>> entries_;
  /// Dense accumulation (`ReserveDense`): direct-indexed entries, a
  /// presence byte per row, and the list of touched rows so results
  /// never scan the whole table.
  std::vector<Entry> dense_;
  std::vector<uint8_t> present_;
  std::vector<RowId> touched_;
};

}  // namespace ctxpref::db

#endif  // CTXPREF_DB_RANKER_H_
