#include "db/tuple.h"

namespace ctxpref::db {

std::string TupleToString(const Schema& schema, const Tuple& tuple) {
  std::string out = "{";
  for (size_t i = 0; i < tuple.size() && i < schema.num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += schema.column(i).name;
    out += ": ";
    out += tuple[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace ctxpref::db
