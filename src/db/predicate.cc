#include "db/predicate.h"

namespace ctxpref::db {

StatusOr<Predicate> Predicate::Create(const Schema& schema,
                                      std::string_view column_name,
                                      CompareOp op, Value constant) {
  StatusOr<size_t> idx = schema.IndexOf(column_name);
  if (!idx.ok()) return idx.status();
  const Column& col = schema.column(*idx);
  if (col.type != constant.type()) {
    return Status::InvalidArgument(
        "predicate constant type " +
        std::string(ColumnTypeToString(constant.type())) +
        " does not match column '" + col.name + "' of type " +
        ColumnTypeToString(col.type));
  }
  return Predicate(*idx, op, std::move(constant));
}

std::string Predicate::ToString(const Schema& schema) const {
  return schema.column(column_index_).name + " " + CompareOpToString(op_) +
         " " + constant_.ToString();
}

}  // namespace ctxpref::db
