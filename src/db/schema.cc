#include "db/schema.h"

#include <set>

namespace ctxpref::db {

StatusOr<Schema> Schema::Create(std::vector<Column> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema has no columns");
  }
  std::set<std::string_view> names;
  for (const Column& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("schema has an unnamed column");
    }
    if (!names.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column '" + c.name + "'");
    }
  }
  return Schema(std::move(columns));
}

StatusOr<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ColumnTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace ctxpref::db
