#include "db/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace ctxpref::db {

namespace {

/// Splits one CSV record into fields, handling quoting. `line` must
/// not contain the record terminator.
StatusOr<std::vector<std::string>> SplitRecord(std::string_view line,
                                               size_t line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty() && Trim(current).empty() == false) {
        return Status::Corruption("csv line " + std::to_string(line_no) +
                                  ": quote inside unquoted field");
      }
      current.clear();
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(was_quoted ? current
                                  : std::string(Trim(current)));
      current.clear();
      was_quoted = false;
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::Corruption("csv line " + std::to_string(line_no) +
                              ": unterminated quote");
  }
  fields.push_back(was_quoted ? current : std::string(Trim(current)));
  return fields;
}

StatusOr<Value> ParseTyped(const std::string& field, ColumnType type,
                           size_t line_no, const std::string& column) {
  auto fail = [&](const char* what) {
    return Status::Corruption("csv line " + std::to_string(line_no) +
                              ", column '" + column + "': expected " + what +
                              ", got '" + field + "'");
  };
  switch (type) {
    case ColumnType::kInt64: {
      int64_t v;
      if (!ParseInt64(field, &v)) return fail("int64");
      return Value(v);
    }
    case ColumnType::kDouble: {
      double v;
      if (!ParseDouble(field, &v)) return fail("double");
      return Value(v);
    }
    case ColumnType::kBool:
      if (field == "true" || field == "1") return Value(true);
      if (field == "false" || field == "0") return Value(false);
      return fail("bool (true/false)");
    case ColumnType::kString:
      return Value(field);
  }
  return fail("known type");
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos ||
         (!s.empty() && (std::isspace(static_cast<unsigned char>(s.front())) ||
                         std::isspace(static_cast<unsigned char>(s.back()))));
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

StatusOr<Relation> LoadCsv(Schema schema, std::string_view text) {
  Relation relation(std::move(schema));
  const Schema& s = relation.schema();

  size_t line_no = 0;
  size_t pos = 0;
  bool saw_header = false;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    ++line_no;
    if (Trim(line).empty()) continue;

    StatusOr<std::vector<std::string>> fields = SplitRecord(line, line_no);
    if (!fields.ok()) return fields.status();

    if (!saw_header) {
      if (fields->size() != s.num_columns()) {
        return Status::InvalidArgument(
            "csv header has " + std::to_string(fields->size()) +
            " columns, schema expects " + std::to_string(s.num_columns()));
      }
      for (size_t i = 0; i < fields->size(); ++i) {
        if ((*fields)[i] != s.column(i).name) {
          return Status::InvalidArgument(
              "csv header column " + std::to_string(i) + " is '" +
              (*fields)[i] + "', schema expects '" + s.column(i).name + "'");
        }
      }
      saw_header = true;
      continue;
    }

    if (fields->size() != s.num_columns()) {
      return Status::Corruption("csv line " + std::to_string(line_no) +
                                ": has " + std::to_string(fields->size()) +
                                " fields, expected " +
                                std::to_string(s.num_columns()));
    }
    Tuple row;
    row.reserve(fields->size());
    for (size_t i = 0; i < fields->size(); ++i) {
      StatusOr<Value> v =
          ParseTyped((*fields)[i], s.column(i).type, line_no,
                     s.column(i).name);
      if (!v.ok()) return v.status();
      row.push_back(std::move(*v));
    }
    CTXPREF_RETURN_IF_ERROR(relation.Append(std::move(row)));
  }
  if (!saw_header) {
    return Status::InvalidArgument("csv input has no header line");
  }
  return relation;
}

std::string ToCsv(const Relation& relation) {
  const Schema& s = relation.schema();
  std::string out;
  for (size_t i = 0; i < s.num_columns(); ++i) {
    if (i > 0) out += ",";
    out += QuoteField(s.column(i).name);
  }
  out += "\n";
  for (RowId r = 0; r < relation.size(); ++r) {
    const Tuple& row = relation.row(r);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += QuoteField(row[i].ToString());
    }
    out += "\n";
  }
  return out;
}

StatusOr<Relation> LoadCsvFile(Schema schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return LoadCsv(std::move(schema), ss.str());
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << ToCsv(relation);
  return out ? Status::OK() : Status::Internal("short write to '" + path + "'");
}

}  // namespace ctxpref::db
