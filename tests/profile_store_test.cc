#include "storage/profile_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "tests/test_util.h"
#include "workload/default_profiles.h"

namespace ctxpref::storage {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::Pref;

class ProfileStoreTest : public ::testing::Test {
 protected:
  EnvironmentPtr env_ = PaperEnv();
};

TEST_F(ProfileStoreTest, CreateAndLookupUsers) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(store.CreateUser("bob"));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.UserIds(), (std::vector<std::string>{"alice", "bob"}));
  StatusOr<Profile*> p = store.GetProfile("alice");
  ASSERT_OK(p.status());
  EXPECT_TRUE((*p)->empty());
  EXPECT_TRUE(store.GetProfile("carol").status().IsNotFound());
}

TEST_F(ProfileStoreTest, ValidatesUserIds) {
  ProfileStore store(env_);
  EXPECT_TRUE(store.CreateUser("").IsInvalidArgument());
  EXPECT_TRUE(store.CreateUser("a/b").IsInvalidArgument());
  EXPECT_TRUE(store.CreateUser("..").IsInvalidArgument());
  ASSERT_OK(store.CreateUser("ok-user_1"));
  EXPECT_TRUE(store.CreateUser("ok-user_1").IsAlreadyExists());
}

TEST_F(ProfileStoreTest, SeedsWithDefaultProfile) {
  ProfileStore store(env_);
  StatusOr<Profile> def = workload::MakeDefaultProfile(
      env_, workload::AgeGroup::kOver50, workload::Sex::kMale,
      workload::Taste::kMainstream);
  ASSERT_OK(def.status());
  const size_t n = def->size();
  ASSERT_OK(store.CreateUser("carol", std::move(*def)));
  StatusOr<Profile*> p = store.GetProfile("carol");
  ASSERT_OK(p.status());
  EXPECT_EQ((*p)->size(), n);
}

TEST_F(ProfileStoreTest, RejectsForeignEnvironmentProfiles) {
  ProfileStore store(env_);
  EnvironmentPtr other = PaperEnv();  // Equal shape, different instance.
  Profile foreign(other);
  EXPECT_TRUE(store.CreateUser("dave", std::move(foreign))
                  .IsInvalidArgument());
}

TEST_F(ProfileStoreTest, TreeIsCachedAndInvalidatedByEdits) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  StatusOr<Profile*> p = store.GetProfile("alice");
  ASSERT_OK((*p)->Insert(Pref(*env_, "location = Plaka", "name", "X", 0.5)));

  StatusOr<const ProfileTree*> t1 = store.GetTree("alice");
  ASSERT_OK(t1.status());
  EXPECT_EQ((*t1)->PathCount(), 1u);
  // Unchanged profile: same tree object.
  StatusOr<const ProfileTree*> t2 = store.GetTree("alice");
  ASSERT_OK(t2.status());
  EXPECT_EQ(*t1, *t2);
  // Edit invalidates.
  ASSERT_OK((*p)->Insert(Pref(*env_, "location = Athens", "name", "Y", 0.5)));
  StatusOr<const ProfileTree*> t3 = store.GetTree("alice");
  ASSERT_OK(t3.status());
  EXPECT_EQ((*t3)->PathCount(), 2u);
}

TEST_F(ProfileStoreTest, RemoveUser) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(store.RemoveUser("alice"));
  EXPECT_TRUE(store.RemoveUser("alice").IsNotFound());
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(ProfileStoreTest, SaveAllAndLoadDirRoundTrip) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ctxpref_store_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(store.CreateUser("bob"));
  StatusOr<Profile*> alice = store.GetProfile("alice");
  ASSERT_OK(
      (*alice)->Insert(Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  StatusOr<Profile*> bob = store.GetProfile("bob");
  ASSERT_OK((*bob)->Insert(
      Pref(*env_, "temperature = good", "type", "park", 0.8)));

  ASSERT_OK(store.SaveAll(dir));
  StatusOr<ProfileStore> loaded = ProfileStore::LoadDir(env_, dir);
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->UserIds(), store.UserIds());
  for (const std::string& id : store.UserIds()) {
    StatusOr<Profile*> orig = store.GetProfile(id);
    StatusOr<Profile*> back = loaded->GetProfile(id);
    ASSERT_OK(back.status());
    EXPECT_EQ((*back)->ToText(), (*orig)->ToText()) << id;
  }
  fs::remove_all(dir);
}

TEST_F(ProfileStoreTest, SaveAllRequiresDirectory) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  EXPECT_TRUE(store.SaveAll("/nonexistent/dir/xyz").IsInvalidArgument());
  EXPECT_TRUE(
      ProfileStore::LoadDir(env_, "/nonexistent/dir/xyz").status().IsNotFound());
}

TEST_F(ProfileStoreTest, LoadDirIgnoresOtherFiles) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ctxpref_store_mixed";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream junk(dir + "/notes.txt");
    junk << "not a profile";
  }
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("solo"));
  ASSERT_OK(store.SaveAll(dir));
  StatusOr<ProfileStore> loaded = ProfileStore::LoadDir(env_, dir);
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->size(), 1u);
  fs::remove_all(dir);
}

TEST_F(ProfileStoreTest, ReloadUserPicksUpOnDiskChanges) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ctxpref_store_reload";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  StatusOr<Profile*> alice = store.GetProfile("alice");
  ASSERT_OK(
      (*alice)->Insert(Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  ASSERT_OK(store.SaveAll(dir));

  // Another store (a "second server") edits alice's file on disk.
  {
    StatusOr<ProfileStore> other = ProfileStore::LoadDir(env_, dir);
    ASSERT_OK(other.status());
    StatusOr<Profile*> p = other->GetProfile("alice");
    ASSERT_OK(
        (*p)->Insert(Pref(*env_, "location = Athens", "name", "Y", 0.7)));
    ASSERT_OK(other->SaveAll(dir));
  }

  ASSERT_OK(store.ReloadUser("alice", dir));
  // The pointer handed out before the reload still serves.
  EXPECT_EQ((*alice)->size(), 2u);
  StatusOr<const ProfileTree*> tree = store.GetTree("alice");
  ASSERT_OK(tree.status());
  EXPECT_EQ((*tree)->PathCount(), 2u);

  EXPECT_TRUE(store.ReloadUser("nobody", dir).IsNotFound());
  fs::remove_all(dir);
}

TEST_F(ProfileStoreTest, FailedReloadLeavesProfileServing) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ctxpref_store_reload_bad";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  StatusOr<Profile*> alice = store.GetProfile("alice");
  ASSERT_OK(
      (*alice)->Insert(Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  const std::string before = (*alice)->ToText();
  ASSERT_OK(store.SaveAll(dir));
  StatusOr<const ProfileTree*> tree_before = store.GetTree("alice");
  ASSERT_OK(tree_before.status());

  // Missing file: reload fails, nothing changes.
  fs::remove(dir + "/alice.profile");
  EXPECT_FALSE(store.ReloadUser("alice", dir).ok());
  EXPECT_EQ((*alice)->ToText(), before);

  // Corrupt file: parse fails *before* the swap, so the in-memory
  // profile — and the tree built from it — keep serving.
  {
    std::ofstream bad(dir + "/alice.profile", std::ios::binary);
    bad << "this is definitely not the binary profile format";
  }
  EXPECT_FALSE(store.ReloadUser("alice", dir).ok());
  EXPECT_EQ((*alice)->ToText(), before);
  StatusOr<const ProfileTree*> tree_after = store.GetTree("alice");
  ASSERT_OK(tree_after.status());
  EXPECT_EQ((*tree_after)->PathCount(), 1u);

  // Truncated-but-valid-header file: also rejected atomically.
  {
    StatusOr<ProfileStore> fresh = ProfileStore::LoadDir(env_, dir);
    // Regardless of how LoadDir reacts, the original store is intact.
    EXPECT_EQ((*store.GetProfile("alice"))->ToText(), before);
    (void)fresh;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ctxpref::storage
