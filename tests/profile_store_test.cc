#include "storage/profile_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "tests/test_util.h"
#include "workload/default_profiles.h"

namespace ctxpref::storage {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::Pref;

class ProfileStoreTest : public ::testing::Test {
 protected:
  /// Inserts one preference through the copy-on-write edit path.
  Status InsertPref(ProfileStore& store, const std::string& user,
                    ContextualPreference pref) {
    return store.UpdateUser(user, [&](Profile& p) {
      return p.Insert(std::move(pref));
    });
  }

  EnvironmentPtr env_ = PaperEnv();
};

TEST_F(ProfileStoreTest, CreateAndLookupUsers) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(store.CreateUser("bob"));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.UserIds(), (std::vector<std::string>{"alice", "bob"}));
  StatusOr<const Profile*> p = store.GetProfile("alice");
  ASSERT_OK(p.status());
  EXPECT_TRUE((*p)->empty());
  EXPECT_TRUE(store.GetProfile("carol").status().IsNotFound());
  EXPECT_TRUE(store.GetSnapshot("carol").status().IsNotFound());
}

TEST_F(ProfileStoreTest, ValidatesUserIds) {
  ProfileStore store(env_);
  EXPECT_TRUE(store.CreateUser("").IsInvalidArgument());
  EXPECT_TRUE(store.CreateUser("a/b").IsInvalidArgument());
  EXPECT_TRUE(store.CreateUser("..").IsInvalidArgument());
  ASSERT_OK(store.CreateUser("ok-user_1"));
  EXPECT_TRUE(store.CreateUser("ok-user_1").IsAlreadyExists());
}

TEST_F(ProfileStoreTest, SeedsWithDefaultProfile) {
  ProfileStore store(env_);
  StatusOr<Profile> def = workload::MakeDefaultProfile(
      env_, workload::AgeGroup::kOver50, workload::Sex::kMale,
      workload::Taste::kMainstream);
  ASSERT_OK(def.status());
  const size_t n = def->size();
  ASSERT_OK(store.CreateUser("carol", std::move(*def)));
  StatusOr<const Profile*> p = store.GetProfile("carol");
  ASSERT_OK(p.status());
  EXPECT_EQ((*p)->size(), n);
}

TEST_F(ProfileStoreTest, RejectsForeignEnvironmentProfiles) {
  ProfileStore store(env_);
  EnvironmentPtr other = PaperEnv();  // Equal shape, different instance.
  Profile foreign(other);
  EXPECT_TRUE(store.CreateUser("dave", std::move(foreign))
                  .IsInvalidArgument());
  ASSERT_OK(store.CreateUser("dave"));
  Profile foreign2(other);
  EXPECT_TRUE(
      store.PublishProfile("dave", std::move(foreign2)).IsInvalidArgument());
}

TEST_F(ProfileStoreTest, SnapshotsAreImmutableAndVersioned) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  StatusOr<SnapshotPtr> s1 = store.GetSnapshot("alice");
  ASSERT_OK(s1.status());
  EXPECT_TRUE((*s1)->profile().empty());
  EXPECT_EQ((*s1)->user_id(), "alice");
  const uint64_t v1 = (*s1)->serving_version();
  EXPECT_GE(v1, 1u);

  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Plaka", "name", "X", 0.5)));

  // The pinned snapshot still serves the pre-edit state; a fresh pin
  // sees the new version under a strictly larger serving version.
  EXPECT_TRUE((*s1)->profile().empty());
  StatusOr<SnapshotPtr> s2 = store.GetSnapshot("alice");
  ASSERT_OK(s2.status());
  EXPECT_EQ((*s2)->profile().size(), 1u);
  EXPECT_GT((*s2)->serving_version(), v1);
  EXPECT_EQ((*s2)->tree().PathCount(), 1u);
}

TEST_F(ProfileStoreTest, ServingVersionsAreUniqueAcrossUsers) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(store.CreateUser("bob"));
  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  StatusOr<SnapshotPtr> a = store.GetSnapshot("alice");
  StatusOr<SnapshotPtr> b = store.GetSnapshot("bob");
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_NE((*a)->serving_version(), (*b)->serving_version());
  EXPECT_EQ(store.serving_version(),
            std::max((*a)->serving_version(), (*b)->serving_version()));
}

TEST_F(ProfileStoreTest, TreeIsRebuiltOnPublish) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Plaka", "name", "X", 0.5)));

  StatusOr<const ProfileTree*> t1 = store.GetTree("alice");
  ASSERT_OK(t1.status());
  EXPECT_EQ((*t1)->PathCount(), 1u);
  // Unchanged profile: same published tree object.
  StatusOr<const ProfileTree*> t2 = store.GetTree("alice");
  ASSERT_OK(t2.status());
  EXPECT_EQ(*t1, *t2);
  // An edit publishes a new snapshot with a freshly built tree.
  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Athens", "name", "Y", 0.5)));
  StatusOr<const ProfileTree*> t3 = store.GetTree("alice");
  ASSERT_OK(t3.status());
  EXPECT_EQ((*t3)->PathCount(), 2u);
  EXPECT_NE(*t1, *t3);
}

TEST_F(ProfileStoreTest, FailedUpdatePublishesNothing) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  StatusOr<SnapshotPtr> before = store.GetSnapshot("alice");
  ASSERT_OK(before.status());

  // The edit mutates its draft and then errors: the mutation must not
  // leak into the published state, and no new version may appear.
  Status failed = store.UpdateUser("alice", [&](Profile& p) {
    Status inserted =
        p.Insert(Pref(*env_, "location = Athens", "name", "Y", 0.7));
    EXPECT_TRUE(inserted.ok());
    return Status::InvalidArgument("changed my mind");
  });
  EXPECT_TRUE(failed.IsInvalidArgument());

  StatusOr<SnapshotPtr> after = store.GetSnapshot("alice");
  ASSERT_OK(after.status());
  EXPECT_EQ(*before, *after);  // Same snapshot object, same version.
  EXPECT_EQ((*after)->profile().size(), 1u);

  EXPECT_TRUE(
      store.UpdateUser("nobody", [](Profile&) { return Status::OK(); })
          .IsNotFound());
}

TEST_F(ProfileStoreTest, PublishInvalidatesAttachedCache) {
  ProfileStore store(env_);
  ContextQueryTree cache(env_, Ordering::Identity(env_->size()));
  store.AttachQueryCache(&cache);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(store.CreateUser("bob"));

  const ContextState state =
      testing::State(*env_, {"Plaka", "good", "friends"});
  StatusOr<SnapshotPtr> alice = store.GetSnapshot("alice");
  StatusOr<SnapshotPtr> bob = store.GetSnapshot("bob");
  ASSERT_OK(alice.status());
  ASSERT_OK(bob.status());
  cache.Put("alice", state, (*alice)->serving_version(), {});
  cache.Put("bob", state, (*bob)->serving_version(), {});
  EXPECT_EQ(cache.size(), 2u);

  // Publishing for alice drops exactly alice's entries.
  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup("bob", state, (*bob)->serving_version()), nullptr);
  EXPECT_EQ(cache.Lookup("alice", state, (*alice)->serving_version()),
            nullptr);

  // Removing bob drops bob's entries too.
  ASSERT_OK(store.RemoveUser("bob"));
  EXPECT_EQ(cache.size(), 0u);
  store.AttachQueryCache(nullptr);
}

TEST_F(ProfileStoreTest, RemoveUser) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  StatusOr<SnapshotPtr> pinned = store.GetSnapshot("alice");
  ASSERT_OK(pinned.status());
  ASSERT_OK(store.RemoveUser("alice"));
  EXPECT_TRUE(store.RemoveUser("alice").IsNotFound());
  EXPECT_EQ(store.size(), 0u);
  // A pinned snapshot outlives its user.
  EXPECT_EQ((*pinned)->user_id(), "alice");
  EXPECT_TRUE((*pinned)->profile().empty());
}

TEST_F(ProfileStoreTest, SaveAllAndLoadDirRoundTrip) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ctxpref_store_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(store.CreateUser("bob"));
  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  ASSERT_OK(InsertPref(store, "bob",
                       Pref(*env_, "temperature = good", "type", "park", 0.8)));

  ASSERT_OK(store.SaveAll(dir));
  StatusOr<ProfileStore> loaded = ProfileStore::LoadDir(env_, dir);
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->UserIds(), store.UserIds());
  for (const std::string& id : store.UserIds()) {
    StatusOr<const Profile*> orig = store.GetProfile(id);
    StatusOr<const Profile*> back = loaded->GetProfile(id);
    ASSERT_OK(back.status());
    EXPECT_EQ((*back)->ToText(), (*orig)->ToText()) << id;
  }
  fs::remove_all(dir);
}

TEST_F(ProfileStoreTest, SaveAllRequiresDirectory) {
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  EXPECT_TRUE(store.SaveAll("/nonexistent/dir/xyz").IsInvalidArgument());
  EXPECT_TRUE(
      ProfileStore::LoadDir(env_, "/nonexistent/dir/xyz").status().IsNotFound());
}

TEST_F(ProfileStoreTest, LoadDirIgnoresOtherFiles) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ctxpref_store_mixed";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream junk(dir + "/notes.txt");
    junk << "not a profile";
  }
  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("solo"));
  ASSERT_OK(store.SaveAll(dir));
  StatusOr<ProfileStore> loaded = ProfileStore::LoadDir(env_, dir);
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->size(), 1u);
  fs::remove_all(dir);
}

TEST_F(ProfileStoreTest, ReloadUserPicksUpOnDiskChanges) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ctxpref_store_reload";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  ASSERT_OK(store.SaveAll(dir));
  StatusOr<SnapshotPtr> pinned = store.GetSnapshot("alice");
  ASSERT_OK(pinned.status());

  // Another store (a "second server") edits alice's file on disk.
  {
    StatusOr<ProfileStore> other = ProfileStore::LoadDir(env_, dir);
    ASSERT_OK(other.status());
    ASSERT_OK(other->UpdateUser("alice", [&](Profile& p) {
      return p.Insert(Pref(*env_, "location = Athens", "name", "Y", 0.7));
    }));
    ASSERT_OK(other->SaveAll(dir));
  }

  ASSERT_OK(store.ReloadUser("alice", dir));
  // The snapshot pinned before the reload still serves the old state…
  EXPECT_EQ((*pinned)->profile().size(), 1u);
  // …while fresh reads see the reloaded profile and a rebuilt tree.
  StatusOr<const Profile*> fresh = store.GetProfile("alice");
  ASSERT_OK(fresh.status());
  EXPECT_EQ((*fresh)->size(), 2u);
  StatusOr<const ProfileTree*> tree = store.GetTree("alice");
  ASSERT_OK(tree.status());
  EXPECT_EQ((*tree)->PathCount(), 2u);

  EXPECT_TRUE(store.ReloadUser("nobody", dir).IsNotFound());
  fs::remove_all(dir);
}

TEST_F(ProfileStoreTest, FailedReloadLeavesProfileServing) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ctxpref_store_reload_bad";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("alice"));
  ASSERT_OK(InsertPref(store, "alice",
                       Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  StatusOr<SnapshotPtr> before = store.GetSnapshot("alice");
  ASSERT_OK(before.status());
  const std::string before_text = (*before)->profile().ToText();
  ASSERT_OK(store.SaveAll(dir));

  // Missing file: reload fails, the snapshot is untouched.
  fs::remove(dir + "/alice.profile");
  EXPECT_FALSE(store.ReloadUser("alice", dir).ok());
  StatusOr<SnapshotPtr> after = store.GetSnapshot("alice");
  ASSERT_OK(after.status());
  EXPECT_EQ(*before, *after);

  // Corrupt file: parse fails *before* the swap, so the published
  // snapshot — profile and tree — keeps serving.
  {
    std::ofstream bad(dir + "/alice.profile", std::ios::binary);
    bad << "this is definitely not the binary profile format";
  }
  EXPECT_FALSE(store.ReloadUser("alice", dir).ok());
  after = store.GetSnapshot("alice");
  ASSERT_OK(after.status());
  EXPECT_EQ(*before, *after);
  EXPECT_EQ((*after)->profile().ToText(), before_text);
  EXPECT_EQ((*after)->tree().PathCount(), 1u);

  // Truncated-but-valid-header file: also rejected atomically.
  {
    StatusOr<ProfileStore> fresh = ProfileStore::LoadDir(env_, dir);
    // Regardless of how LoadDir reacts, the original store is intact.
    EXPECT_EQ((*store.GetProfile("alice"))->ToText(), before_text);
    (void)fresh;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ctxpref::storage
