// Differential oracle tests (ISSUE 5): on random small worlds,
//  (1) Rank_CS (through the profile tree) must equal a brute-force
//      ranker computed from first principles — covering states by
//      Def. 10, minimum-distance matching by Def. 12 with the
//      NearlyEqual tie rule, clause selection over the relation,
//      max-combine — for EVERY extended state of the world, both
//      distance kinds;
//  (2) cached answers served through the copy-on-write store must
//      equal uncached answers across interleaved profile swaps.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "context/descriptor.h"
#include "db/relation.h"
#include "db/schema.h"
#include "preference/flat_profile_tree.h"
#include "preference/profile_tree.h"
#include "preference/query_cache.h"
#include "preference/resolution.h"
#include "storage/profile_store.h"
#include "storage/serving.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ctxpref {
namespace {

/// A tiny two-parameter environment (the exhaustive-test world):
///   place: a,b,c | X(a,b), Y(c) | ALL      (6 extended values)
///   mood:  happy,sad | ALL                  (3 extended values)
EnvironmentPtr TinyEnv() {
  HierarchyBuilder pb("place");
  pb.AddDetailedLevel("Spot", {"a", "b", "c"});
  pb.AddLevel("Zone", {{"X", {"a", "b"}}, {"Y", {"c"}}});
  StatusOr<HierarchyPtr> place = pb.Build();
  EXPECT_TRUE(place.ok());
  StatusOr<HierarchyPtr> mood =
      MakeFlatHierarchy("mood", "Mood", {"happy", "sad"});
  EXPECT_TRUE(mood.ok());
  std::vector<ContextParameter> params;
  params.emplace_back("place", *place);
  params.emplace_back("mood", *mood);
  StatusOr<EnvironmentPtr> env = ContextEnvironment::Create(std::move(params));
  EXPECT_TRUE(env.ok());
  return *env;
}

/// Every extended state of the two-parameter environment.
std::vector<ContextState> AllExtendedStates(const ContextEnvironment& env) {
  std::vector<std::vector<ValueRef>> domains;
  for (size_t i = 0; i < env.size(); ++i) {
    std::vector<ValueRef> values;
    const Hierarchy& h = env.parameter(i).hierarchy();
    for (LevelIndex l = 0; l < h.num_levels(); ++l) {
      for (ValueId id = 0; id < h.level_size(l); ++id) {
        values.push_back(ValueRef{l, id});
      }
    }
    domains.push_back(std::move(values));
  }
  std::vector<ContextState> out;
  for (ValueRef p : domains[0]) {
    for (ValueRef m : domains[1]) {
      out.push_back(ContextState({p, m}));
    }
  }
  return out;
}

constexpr size_t kAttrPool = 10;

/// "v<k>", built with += because GCC 12's -Wrestrict misfires on
/// `literal + std::to_string(...)` at -O2 (breaks -Werror CI builds).
std::string ValueName(size_t k) {
  std::string v("v");
  v += std::to_string(k);
  return v;
}

/// A ten-row relation with one string attribute v0..v9, so every
/// clause `attr = v<k>` selects exactly row k.
db::Relation MakeRelation() {
  StatusOr<db::Schema> schema =
      db::Schema::Create({{"attr", db::ColumnType::kString}});
  EXPECT_TRUE(schema.ok());
  db::Relation relation(std::move(*schema));
  for (size_t k = 0; k < kAttrPool; ++k) {
    EXPECT_OK(relation.Append({db::Value(ValueName(k))}));
  }
  return relation;
}

/// A random conflict-free profile: a subset of world states carries a
/// preference `attr = v<k> : <grid score>`.
Profile RandomProfile(Rng& rng, EnvironmentPtr env,
                      const std::vector<ContextState>& world) {
  Profile profile(env);
  for (const ContextState& s : world) {
    if (!rng.Bernoulli(0.4)) continue;
    StatusOr<CompositeDescriptor> cod = CompositeDescriptor::ForState(*env, s);
    EXPECT_TRUE(cod.ok());
    StatusOr<ContextualPreference> pref = ContextualPreference::Create(
        std::move(*cod),
        AttributeClause{
            "attr", db::CompareOp::kEq,
            db::Value(ValueName(rng.Uniform(kAttrPool)))},
        static_cast<double>(rng.Uniform(21)) * 0.05);
    EXPECT_TRUE(pref.ok());
    EXPECT_OK(profile.Insert(std::move(*pref)));
  }
  return profile;
}

/// Brute-force Rank_CS from the formal definitions, no tree, no cache:
/// per query state, the minimum-distance covering states (NearlyEqual
/// ties kept, exactly the resolution rule) contribute their entries'
/// selected rows at their scores; duplicates combine under max.
std::map<db::RowId, double> BruteForceRank(
    const Profile& profile, const db::Relation& relation,
    const std::vector<ContextState>& query_states, DistanceKind kind) {
  std::map<db::RowId, double> scores;
  const std::vector<Profile::FlatEntry> flat = profile.Flatten();
  for (const ContextState& q : query_states) {
    const std::vector<ContextState> covering = CoveringStates(profile, q);
    if (covering.empty()) continue;
    double min_distance = std::numeric_limits<double>::infinity();
    for (const ContextState& s : covering) {
      min_distance =
          std::min(min_distance, StateDistance(kind, profile.env(), s, q));
    }
    std::vector<ContextState> tied;
    for (const ContextState& s : covering) {
      const double d = StateDistance(kind, profile.env(), s, q);
      if (NearlyEqual(d, min_distance)) tied.push_back(s);
    }
    // Jaccard ties are broken by hierarchy distance, mirroring
    // TieBreakByHierarchyDistance in the resolver.
    if (kind == DistanceKind::kJaccard && tied.size() > 1) {
      double best_h = std::numeric_limits<double>::infinity();
      for (const ContextState& s : tied) {
        best_h = std::min(
            best_h, StateDistance(DistanceKind::kHierarchy, profile.env(), s, q));
      }
      std::vector<ContextState> kept;
      for (const ContextState& s : tied) {
        if (NearlyEqual(StateDistance(DistanceKind::kHierarchy, profile.env(),
                                      s, q),
                        best_h)) {
          kept.push_back(s);
        }
      }
      tied = std::move(kept);
    }
    for (const ContextState& s : tied) {
      for (const Profile::FlatEntry& e : flat) {
        if (!(e.state == s)) continue;
        StatusOr<db::Predicate> pred = db::Predicate::Create(
            relation.schema(), e.clause->attribute, e.clause->op,
            e.clause->value);
        EXPECT_TRUE(pred.ok());
        for (db::RowId row : relation.Select(*pred)) {
          auto [it, inserted] = scores.try_emplace(row, e.score);
          if (!inserted) it->second = std::max(it->second, e.score);
        }
      }
    }
  }
  return scores;
}

std::map<db::RowId, double> AsMap(const QueryResult& result) {
  std::map<db::RowId, double> scores;
  for (const db::ScoredTuple& t : result.tuples) {
    scores.emplace(t.row_id, t.score);
  }
  return scores;
}

class ServingDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServingDifferentialTest, RankCsMatchesBruteForceOverAllStates) {
  EnvironmentPtr env = TinyEnv();
  const std::vector<ContextState> world = AllExtendedStates(*env);
  const db::Relation relation = MakeRelation();
  Rng rng(GetParam());
  Profile profile = RandomProfile(rng, env, world);
  if (profile.empty()) GTEST_SKIP() << "empty draw";

  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  for (DistanceKind kind :
       {DistanceKind::kHierarchy, DistanceKind::kJaccard}) {
    QueryOptions options;
    options.resolution.distance = kind;
    // (a) Every single extended state as the query context.
    for (const ContextState& q : world) {
      StatusOr<CompositeDescriptor> cod =
          CompositeDescriptor::ForState(*env, q);
      ASSERT_OK(cod.status());
      ContextualQuery query;
      query.context = ExtendedDescriptor::FromComposite(std::move(*cod));
      StatusOr<QueryResult> got = RankCS(relation, query, resolver, options);
      ASSERT_OK(got.status());
      EXPECT_EQ(AsMap(*got), BruteForceRank(profile, relation, {q}, kind))
          << "state " << q.ToString(*env) << " kind "
          << DistanceKindToString(kind);
    }
    // (b) Random multi-state extended descriptors (disjunctions).
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<ContextState> states;
      ExtendedDescriptor ecod;
      const size_t disjuncts = 1 + rng.Uniform(3);
      for (size_t d = 0; d < disjuncts; ++d) {
        const ContextState& s = world[rng.Uniform(world.size())];
        StatusOr<CompositeDescriptor> cod =
            CompositeDescriptor::ForState(*env, s);
        ASSERT_OK(cod.status());
        ecod.AddDisjunct(std::move(*cod));
      }
      ContextualQuery query;
      query.context = ecod;
      // The oracle iterates the deduplicated enumeration, like Rank_CS.
      const std::vector<ContextState> enumerated =
          ecod.EnumerateStates(*env);
      StatusOr<QueryResult> got = RankCS(relation, query, resolver, options);
      ASSERT_OK(got.status());
      EXPECT_EQ(AsMap(*got),
                BruteForceRank(profile, relation, enumerated, kind))
          << "trial " << trial << " kind " << DistanceKindToString(kind);
    }
  }
}

TEST_P(ServingDifferentialTest, CachedEqualsUncachedAcrossProfileSwaps) {
  EnvironmentPtr env = TinyEnv();
  const std::vector<ContextState> world = AllExtendedStates(*env);
  const db::Relation relation = MakeRelation();
  Rng rng(GetParam());

  storage::ProfileStore store(env);
  ContextQueryTree cache(env, Ordering::Identity(env->size()),
                         /*capacity=*/64);
  store.AttachQueryCache(&cache);
  ASSERT_OK(store.CreateUser("u", RandomProfile(rng, env, world)));

  for (int swap = 0; swap < 12; ++swap) {
    // Interleave: queries against the current version…
    for (int trial = 0; trial < 8; ++trial) {
      const ContextState& s = world[rng.Uniform(world.size())];
      StatusOr<CompositeDescriptor> cod =
          CompositeDescriptor::ForState(*env, s);
      ASSERT_OK(cod.status());
      ContextualQuery query;
      query.context = ExtendedDescriptor::FromComposite(std::move(*cod));

      // Uncached ground truth from the same pinned snapshot.
      StatusOr<storage::SnapshotPtr> snapshot = store.GetSnapshot("u");
      ASSERT_OK(snapshot.status());
      StatusOr<QueryResult> uncached =
          storage::ServeQuery(**snapshot, relation, query, /*cache=*/nullptr);
      ASSERT_OK(uncached.status());

      // Twice through the cache: a cold miss, then a hit.
      for (int pass = 0; pass < 2; ++pass) {
        StatusOr<QueryResult> cached =
            storage::ServeQuery(**snapshot, relation, query, &cache);
        ASSERT_OK(cached.status());
        EXPECT_EQ(cached->tuples, uncached->tuples)
            << "swap " << swap << " trial " << trial << " pass " << pass;
        ASSERT_EQ(cached->traces.size(), uncached->traces.size());
        for (size_t i = 0; i < cached->traces.size(); ++i) {
          EXPECT_EQ(cached->traces[i].candidates.size(),
                    uncached->traces[i].candidates.size());
        }
      }
      // And against the brute-force oracle, closing the loop.
      EXPECT_EQ(AsMap(*uncached),
                BruteForceRank((*snapshot)->profile(), relation, {s},
                               DistanceKind::kHierarchy));
    }
    // …then a swap to a fresh random profile.
    ASSERT_OK(store.PublishProfile("u", RandomProfile(rng, env, world)));
  }
}

// ---- Flat-vs-pointer differential (ISSUE 7) ------------------------
//
// The arena-flattened tree is a pure layout change, so it must be
// *bit-identical* to the pointer tree: the same Search_CS candidate
// list (same order, same exact double distances, same entries) and the
// same ResolveBest winners, for every query state, both distance
// kinds, exact and non-exact resolution. Bit-exact distance equality
// (not NearlyEqual) is deliberate — it flushes accumulation-order
// drift, the class of bug where both sides are "correct" in isolation
// but disagree on which candidates tie.

void ExpectSameCandidates(const ContextEnvironment& env,
                          const std::vector<CandidatePath>& pointer,
                          const std::vector<CandidatePath>& flat,
                          const std::string& label) {
  ASSERT_EQ(pointer.size(), flat.size()) << label;
  for (size_t i = 0; i < pointer.size(); ++i) {
    EXPECT_TRUE(pointer[i].state == flat[i].state)
        << label << " candidate " << i << ": "
        << pointer[i].state.ToString(env) << " vs "
        << flat[i].state.ToString(env);
    EXPECT_EQ(pointer[i].distance, flat[i].distance)
        << label << " candidate " << i << " ("
        << pointer[i].state.ToString(env) << "): distances not bit-equal";
    ASSERT_EQ(pointer[i].entries.size(), flat[i].entries.size())
        << label << " candidate " << i;
    for (size_t j = 0; j < pointer[i].entries.size(); ++j) {
      EXPECT_TRUE(pointer[i].entries[j].clause == flat[i].entries[j].clause)
          << label << " candidate " << i << " entry " << j;
      EXPECT_EQ(pointer[i].entries[j].score, flat[i].entries[j].score)
          << label << " candidate " << i << " entry " << j;
      EXPECT_EQ(pointer[i].entries[j].ref, flat[i].entries[j].ref)
          << label << " candidate " << i << " entry " << j;
    }
  }
}

TEST_P(ServingDifferentialTest, FlatTreeMatchesPointerTreeExhaustively) {
  EnvironmentPtr env = TinyEnv();
  const std::vector<ContextState> world = AllExtendedStates(*env);
  Rng rng(GetParam() + 17);
  Profile profile = RandomProfile(rng, env, world);
  if (profile.empty()) GTEST_SKIP() << "empty draw";

  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  const FlatProfileTree flat = FlatProfileTree::Build(*tree);
  TreeResolver pointer_resolver(&*tree);
  FlatResolver flat_resolver(&flat);
  const db::Relation relation = MakeRelation();
  const db::ColumnarProjection columns(relation);

  for (DistanceKind kind :
       {DistanceKind::kHierarchy, DistanceKind::kJaccard}) {
    for (bool exact_only : {false, true}) {
      ResolutionOptions ropts;
      ropts.distance = kind;
      ropts.exact_only = exact_only;
      for (const ContextState& q : world) {
        std::string label = q.ToString(*env);
        label += exact_only ? " exact " : " cover ";
        label += DistanceKindToString(kind);
        ExpectSameCandidates(*env, pointer_resolver.SearchCS(q, ropts),
                             flat_resolver.SearchCS(q, ropts),
                             label + " search");
        ExpectSameCandidates(*env, pointer_resolver.ResolveBest(q, ropts),
                             flat_resolver.ResolveBest(q, ropts),
                             label + " best");
        EXPECT_EQ(flat.ExactLookup(q) != FlatProfileTree::kNoLeaf,
                  !pointer_resolver.SearchCS(
                                       q, {.distance = kind,
                                           .exact_only = true})
                       .empty())
            << label << " exact-lookup presence";
      }
    }
    // Full Rank_CS, pointer/row-store vs flat/columnar: layout *and*
    // scan path both swapped, answers still identical.
    QueryOptions options;
    options.resolution.distance = kind;
    QueryOptions flat_options = options;
    flat_options.columns = &columns;
    for (const ContextState& q : world) {
      StatusOr<CompositeDescriptor> cod =
          CompositeDescriptor::ForState(*env, q);
      ASSERT_OK(cod.status());
      ContextualQuery query;
      query.context = ExtendedDescriptor::FromComposite(std::move(*cod));
      StatusOr<QueryResult> via_pointer =
          RankCS(relation, query, pointer_resolver, options);
      StatusOr<QueryResult> via_flat =
          RankCS(relation, query, flat_resolver, flat_options);
      ASSERT_OK(via_pointer.status());
      ASSERT_OK(via_flat.status());
      EXPECT_EQ(via_pointer->tuples, via_flat->tuples)
          << q.ToString(*env) << " kind " << DistanceKindToString(kind);
      ASSERT_EQ(via_pointer->traces.size(), via_flat->traces.size());
      for (size_t i = 0; i < via_pointer->traces.size(); ++i) {
        ExpectSameCandidates(*env, via_pointer->traces[i].candidates,
                             via_flat->traces[i].candidates,
                             q.ToString(*env) + " trace");
      }
    }
  }
}

TEST_P(ServingDifferentialTest, FlatTreeMatchesPointerTreeOnPaperEnv) {
  // The paper's three-parameter environment: deeper hierarchies, so
  // descent covers more levels and interning covers bigger domains
  // than TinyEnv exercises.
  EnvironmentPtr env = ctxpref::testing::PaperEnv();
  Rng rng(GetParam() + 31);
  auto random_state = [&rng, &env]() {
    std::vector<ValueRef> values;
    for (size_t p = 0; p < env->size(); ++p) {
      const Hierarchy& h = env->parameter(p).hierarchy();
      const auto level = static_cast<LevelIndex>(rng.Uniform(h.num_levels()));
      values.push_back(ValueRef{
          level, static_cast<ValueId>(rng.Uniform(h.level_size(level)))});
    }
    return ContextState(std::move(values));
  };

  Profile profile(env);
  std::set<std::string> seen;
  for (int i = 0; i < 48; ++i) {
    ContextState s = random_state();
    if (!seen.insert(s.ToString(*env)).second) continue;
    StatusOr<CompositeDescriptor> cod = CompositeDescriptor::ForState(*env, s);
    ASSERT_OK(cod.status());
    StatusOr<ContextualPreference> pref = ContextualPreference::Create(
        std::move(*cod),
        AttributeClause{"attr", db::CompareOp::kEq,
                        db::Value(ValueName(rng.Uniform(kAttrPool)))},
        static_cast<double>(rng.Uniform(21)) * 0.05);
    ASSERT_OK(pref.status());
    ASSERT_OK(profile.Insert(std::move(*pref)));
  }
  ASSERT_FALSE(profile.empty());

  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  const FlatProfileTree flat = FlatProfileTree::Build(*tree);
  TreeResolver pointer_resolver(&*tree);
  FlatResolver flat_resolver(&flat);

  for (DistanceKind kind :
       {DistanceKind::kHierarchy, DistanceKind::kJaccard}) {
    for (bool exact_only : {false, true}) {
      ResolutionOptions ropts;
      ropts.distance = kind;
      ropts.exact_only = exact_only;
      for (int trial = 0; trial < 200; ++trial) {
        const ContextState q = random_state();
        std::string label = q.ToString(*env);
        label += exact_only ? " exact " : " cover ";
        label += DistanceKindToString(kind);
        ExpectSameCandidates(*env, pointer_resolver.SearchCS(q, ropts),
                             flat_resolver.SearchCS(q, ropts),
                             label + " search");
        ExpectSameCandidates(*env, pointer_resolver.ResolveBest(q, ropts),
                             flat_resolver.ResolveBest(q, ropts),
                             label + " best");
      }
    }
  }
}

// ---- Stale-rung differential (ISSUE 8) -----------------------------
//
// The degradation ladder's bounded-staleness rung promises its answer
// is exactly what a direct ServeQuery pinned at the older snapshot
// would have produced — same tuples, same traces, bit-identical
// scores. Anything weaker would mean the rung's cache-merge path is a
// second ranking implementation that can drift from the real one.

TEST_P(ServingDifferentialTest, StaleAnswersMatchDirectServeAtPinnedVersion) {
  EnvironmentPtr env = TinyEnv();
  const std::vector<ContextState> world = AllExtendedStates(*env);
  const db::Relation relation = MakeRelation();
  Rng rng(GetParam() + 53);

  storage::ProfileStore store(env);
  ContextQueryTree cache(env, Ordering::Identity(env->size()),
                         /*capacity=*/256);
  cache.SetRetainStale(true);
  store.AttachQueryCache(&cache);
  Profile initial = RandomProfile(rng, env, world);
  if (initial.empty()) GTEST_SKIP() << "empty draw";
  ASSERT_OK(store.CreateUser("u", std::move(initial)));

  storage::AdmissionController shed_all(
      storage::AdmissionPolicy{.max_in_flight = 0});

  for (int round = 0; round < 10; ++round) {
    // Warm the cache with a random multi-state query at the current
    // version, keeping that answer's snapshot pinned.
    ExtendedDescriptor ecod;
    const size_t disjuncts = 1 + rng.Uniform(3);
    for (size_t d = 0; d < disjuncts; ++d) {
      StatusOr<CompositeDescriptor> cod = CompositeDescriptor::ForState(
          *env, world[rng.Uniform(world.size())]);
      ASSERT_OK(cod.status());
      ecod.AddDisjunct(std::move(*cod));
    }
    ContextualQuery query;
    query.context = ecod;

    StatusOr<storage::ServedQuery> warm =
        storage::ServeQueryResilient(store, "u", relation, query, &cache);
    ASSERT_OK(warm.status());
    ASSERT_EQ(warm->provenance.via, storage::ServedVia::kFresh);
    const storage::SnapshotPtr pinned = warm->snapshot;

    // Publish a different random profile, then shed the same query: the
    // stale rung serves the retained entries at the pinned version.
    ASSERT_OK(store.PublishProfile("u", RandomProfile(rng, env, world)));
    storage::ServeOptions opts;
    opts.admission = &shed_all;
    StatusOr<storage::ServedQuery> stale =
        storage::ServeQueryResilient(store, "u", relation, query, &cache, opts);
    ASSERT_OK(stale.status());
    ASSERT_EQ(stale->provenance.via, storage::ServedVia::kStale)
        << "round " << round;
    EXPECT_EQ(stale->provenance.served_version, pinned->serving_version());

    StatusOr<QueryResult> direct =
        storage::ServeQuery(*pinned, relation, query, /*cache=*/nullptr);
    ASSERT_OK(direct.status());
    EXPECT_EQ(stale->result.tuples, direct->tuples) << "round " << round;
    ASSERT_EQ(stale->result.traces.size(), direct->traces.size());
    for (size_t i = 0; i < stale->result.traces.size(); ++i) {
      ExpectSameCandidates(*env, direct->traces[i].candidates,
                           stale->result.traces[i].candidates,
                           "round " + std::to_string(round) + " trace");
    }
  }

  // Beyond the staleness window the rung refuses even a cached entry;
  // with truncation off too, the shed surfaces as kUnavailable.
  ContextualQuery query;
  StatusOr<CompositeDescriptor> cod =
      CompositeDescriptor::ForState(*env, world[0]);
  ASSERT_OK(cod.status());
  query.context = ExtendedDescriptor::FromComposite(std::move(*cod));
  ASSERT_OK(storage::ServeQueryResilient(store, "u", relation, query, &cache)
                .status());  // Warm world[0] at the current version…
  for (int i = 0; i < 3; ++i) {  // …then age it past the window below.
    ASSERT_OK(store.PublishProfile("u", RandomProfile(rng, env, world)));
  }
  storage::ServeOptions tight;
  tight.admission = &shed_all;
  tight.max_stale_versions = 2;
  tight.allow_truncated = false;
  StatusOr<storage::ServedQuery> off = storage::ServeQueryResilient(
      store, "u", relation, query, &cache, tight);
  ASSERT_FALSE(off.ok());
  EXPECT_TRUE(off.status().IsUnavailable()) << off.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingDifferentialTest,
                         ::testing::Values(8101, 8102, 8103, 8104));

}  // namespace
}  // namespace ctxpref
