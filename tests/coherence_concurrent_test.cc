// TSan stress for log-based cache coherence (docs/coherence.md):
// N reader threads, each serving through its own cache replica, race a
// writer publishing new profile versions (appending to the coherence
// log) and log-consumer churn (inline drains, a roaming consumer
// thread, and background consume tasks on a ThreadPool). Every answer
// must be consistent with exactly ONE published version — zero torn
// answers — and after quiescing, every replica's clock must cover the
// store and the log must drain empty. Suite names match the
// `|Coherence` term of scripts/check.sh's TSan ctest filter.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "context/parser.h"
#include "preference/replicated_query_cache.h"
#include "storage/profile_store.h"
#include "storage/serving.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"
#include "workload/poi_dataset.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::Pref;

/// Score published for version step `k`: a distinct point on the 0.05
/// grid per step (mod its period), applied to BOTH preferences — so
/// within one version every scored tuple carries the same score, and a
/// mixed-version answer is detectable as two differing scores.
double ScoreForStep(uint64_t k) {
  return 0.05 + static_cast<double>(k % 19) * 0.05;
}

class CoherenceConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(60, 23);
    ASSERT_OK(poi.status());
    poi_ = std::make_unique<workload::PoiDatabase>(std::move(*poi));
    env_ = poi_->env;
    // Two query states, each resolved (and cached) independently; each
    // matches a different preference, so a torn answer would pair a
    // museum score from one version with a park score from another.
    StatusOr<ExtendedDescriptor> ecod = ParseExtendedDescriptor(
        *env_, "location = Plaka or location = Kifisia");
    ASSERT_OK(ecod.status());
    query_.context = *ecod;
  }

  Profile VersionedProfile(uint64_t step) {
    const double s = ScoreForStep(step);
    Profile p(env_);
    EXPECT_OK(
        p.Insert(Pref(*env_, "location = Plaka", "type", "museum", s)));
    EXPECT_OK(
        p.Insert(Pref(*env_, "location = Kifisia", "type", "park", s)));
    return p;
  }

  /// Shared reader body: serve through replica `r`, compare every
  /// tuple's score to the one legal score of the snapshot the answer
  /// claims to come from. `tolerate_not_found` is for the
  /// remove/recreate test, where the user genuinely vanishes.
  void ReadLoop(const storage::ProfileStore& store,
                ReplicatedQueryCache& replicas, size_t r,
                const std::atomic<bool>& stop, std::atomic<uint64_t>& torn,
                std::atomic<uint64_t>& answered, bool tolerate_not_found) {
    while (!stop.load(std::memory_order_relaxed)) {
      StatusOr<storage::ServedQuery> served = storage::ServeQueryReplicated(
          store, "u", poi_->relation, query_, replicas, QueryOptions{},
          /*counter=*/nullptr, r);
      if (!served.ok()) {
        EXPECT_TRUE(tolerate_not_found && served.status().IsNotFound())
            << served.status().ToString();
        continue;
      }
      const double expect =
          served->snapshot->profile().preference(0).score();
      EXPECT_DOUBLE_EQ(
          served->snapshot->profile().preference(1).score(), expect);
      for (const db::ScoredTuple& t : served->result.tuples) {
        if (std::abs(t.score - expect) > 1e-12) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
      answered.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Quiesce checks shared by every mode: once writers stop and every
  /// replica consumes, clocks cover the store and the log is empty.
  void ExpectQuiesced(const storage::ProfileStore& store,
                      ReplicatedQueryCache& replicas) {
    replicas.ConsumeAll();
    for (size_t r = 0; r < replicas.num_replicas(); ++r) {
      EXPECT_GE(replicas.clock(r), store.serving_version()) << "replica " << r;
    }
    EXPECT_EQ(replicas.log().depth(), 0u);
    EXPECT_EQ(replicas.InvalidationLagVersions(), 0u);
  }

  std::unique_ptr<workload::PoiDatabase> poi_;
  EnvironmentPtr env_;
  ContextualQuery query_;
};

// Inline mode: every lookup drains the log itself, while a roaming
// consumer thread drains replicas it does not own — consume
// serialization (the per-replica consume mutex) is under fire from
// both sides, concurrently with writer appends.
TEST_F(CoherenceConcurrentTest, InlineConsumeNeverTearsUnderWriterChurn) {
  storage::ProfileStore store(env_);
  ReplicatedQueryCache::Options ropt;
  ropt.num_replicas = 3;
  ropt.mode = ReplicatedQueryCache::ConsumeMode::kInlineAtLookup;
  ReplicatedQueryCache replicas(env_, Ordering::Identity(env_->size()), ropt);
  store.AttachCoherenceLog(&replicas.log());
  ASSERT_OK(store.CreateUser("u", VersionedProfile(0)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> swaps{0};

  std::thread writer([&] {
    for (uint64_t step = 1; !stop.load(std::memory_order_relaxed); ++step) {
      EXPECT_OK(store.PublishProfile("u", VersionedProfile(step)));
      swaps.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  std::thread roamer([&] {
    size_t r = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      replicas.Consume(r);
      r = (r + 1) % replicas.num_replicas();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (size_t r = 0; r < replicas.num_replicas(); ++r) {
    readers.emplace_back([this, &store, &replicas, r, &stop, &torn,
                          &answered] {
      ReadLoop(store, replicas, r, stop, torn, answered,
               /*tolerate_not_found=*/false);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  roamer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "version-inconsistent answers observed";
  EXPECT_GT(answered.load(), 0u);
  EXPECT_GT(swaps.load(), 0u);
  EXPECT_GT(replicas.Stats().lookups, 0u);
  ExpectQuiesced(store, replicas);
}

// Background mode: appends kick consume tasks onto a real ThreadPool,
// so drains race lookups on other threads and the coverage gate
// genuinely refuses when a replica lags. Refused reads must fall
// through to the miss path — never serve through the stale replica.
TEST_F(CoherenceConcurrentTest, BackgroundConsumersRefuseButNeverLie) {
  storage::ProfileStore store(env_);
  ReplicatedQueryCache::Options ropt;
  ropt.num_replicas = 3;
  ropt.staleness_window = 2;
  ropt.mode = ReplicatedQueryCache::ConsumeMode::kBackground;
  ReplicatedQueryCache replicas(env_, Ordering::Identity(env_->size()), ropt);
  store.AttachCoherenceLog(&replicas.log());
  ASSERT_OK(store.CreateUser("u", VersionedProfile(0)));

  // Destroyed before `replicas` (declared later), so queued consume
  // tasks still have a live cache to drain into while the pool shuts
  // down.
  ThreadPool pool(2);
  replicas.SetBackgroundPool(&pool);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> answered{0};

  std::thread writer([&] {
    for (uint64_t step = 1; !stop.load(std::memory_order_relaxed); ++step) {
      EXPECT_OK(store.PublishProfile("u", VersionedProfile(step)));
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (size_t r = 0; r < replicas.num_replicas(); ++r) {
    readers.emplace_back([this, &store, &replicas, r, &stop, &torn,
                          &answered] {
      ReadLoop(store, replicas, r, stop, torn, answered,
               /*tolerate_not_found=*/false);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (std::thread& t : readers) t.join();
  replicas.SetBackgroundPool(nullptr);

  EXPECT_EQ(torn.load(), 0u) << "version-inconsistent answers observed";
  EXPECT_GT(answered.load(), 0u);
  ExpectQuiesced(store, replicas);
}

// Remove/recreate churn: drop_all records race reads and ordinary
// invalidation records. A reader may see NotFound (the user is gone)
// but never a removed generation's scores under a fresh snapshot.
TEST_F(CoherenceConcurrentTest, RemoveRecreateChurnStaysCoherent) {
  storage::ProfileStore store(env_);
  ReplicatedQueryCache::Options ropt;
  ropt.num_replicas = 2;
  ropt.mode = ReplicatedQueryCache::ConsumeMode::kInlineAtLookup;
  ReplicatedQueryCache replicas(env_, Ordering::Identity(env_->size()), ropt);
  store.AttachCoherenceLog(&replicas.log());
  ASSERT_OK(store.CreateUser("u", VersionedProfile(0)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> removals{0};

  std::thread writer([&] {
    for (uint64_t step = 1; !stop.load(std::memory_order_relaxed); ++step) {
      if (step % 7 == 0) {
        EXPECT_OK(store.RemoveUser("u"));
        EXPECT_OK(store.CreateUser("u", VersionedProfile(step)));
        removals.fetch_add(1, std::memory_order_relaxed);
      } else {
        EXPECT_OK(store.PublishProfile("u", VersionedProfile(step)));
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (size_t r = 0; r < replicas.num_replicas(); ++r) {
    readers.emplace_back([this, &store, &replicas, r, &stop, &torn,
                          &answered] {
      ReadLoop(store, replicas, r, stop, torn, answered,
               /*tolerate_not_found=*/true);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "version-inconsistent answers observed";
  EXPECT_GT(answered.load(), 0u);
  EXPECT_GT(removals.load(), 0u);
  ExpectQuiesced(store, replicas);
}

}  // namespace
}  // namespace ctxpref
