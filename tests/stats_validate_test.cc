#include <gtest/gtest.h>

#include "context/validate.h"
#include "preference/profile_stats.h"
#include "preference/qualitative.h"
#include "tests/test_util.h"
#include "workload/profile_generator.h"
#include "workload/synthetic_hierarchy.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::Pref;

class ProfileStatsTest : public ::testing::Test {
 protected:
  EnvironmentPtr env_ = PaperEnv();
};

TEST_F(ProfileStatsTest, CountsBasics) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka and temperature in "
                          "{warm, hot}", "name", "Acropolis", 0.8)));
  ASSERT_OK(p.Insert(
      Pref(*env_, "accompanying_people = friends", "type", "brewery", 0.9)));
  ProfileStats stats = ComputeProfileStats(p, /*coverage_samples=*/0);
  EXPECT_EQ(stats.num_preferences, 2u);
  EXPECT_EQ(stats.flat_entries, 3u);
  EXPECT_EQ(stats.distinct_states, 3u);
  EXPECT_DOUBLE_EQ(stats.min_score, 0.8);
  EXPECT_DOUBLE_EQ(stats.max_score, 0.9);
  EXPECT_NEAR(stats.mean_score, 0.85, 1e-12);
  // location: Plaka + all -> 2 active values.
  EXPECT_EQ(stats.active_domain[0], 2u);
  // temperature: warm, hot, all -> 3.
  EXPECT_EQ(stats.active_domain[1], 3u);
  // Level histogram: location Region used twice (two Plaka states),
  // ALL once.
  EXPECT_EQ(stats.level_histogram[0][0], 2u);
  EXPECT_EQ(stats.level_histogram[0].back(), 1u);
}

TEST_F(ProfileStatsTest, CoverageBounds) {
  Profile p(env_);
  ProfileStats empty = ComputeProfileStats(p, 100);
  EXPECT_EQ(empty.coverage_samples, 0u);  // Skipped for empty profiles.

  ASSERT_OK(p.Insert(Pref(*env_, "*", "type", "museum", 0.6)));
  ProfileStats full = ComputeProfileStats(p, 200);
  EXPECT_DOUBLE_EQ(full.coverage_estimate, 1.0);  // all-state covers W.

  Profile q(env_);
  ASSERT_OK(q.Insert(Pref(*env_, "location = Plaka and temperature = warm "
                          "and accompanying_people = alone",
                          "name", "X", 0.5)));
  ProfileStats narrow = ComputeProfileStats(q, 500, 3);
  // One detailed state out of 225: coverage well below 5%.
  EXPECT_LT(narrow.coverage_estimate, 0.05);
}

TEST_F(ProfileStatsTest, ReportIsReadable) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka", "name", "X", 0.5)));
  ProfileStats stats = ComputeProfileStats(p, 50);
  std::string report = stats.ToString(*env_);
  EXPECT_NE(report.find("preferences:"), std::string::npos);
  EXPECT_NE(report.find("parameter location"), std::string::npos);
  EXPECT_NE(report.find("coverage:"), std::string::npos);
}

TEST_F(ProfileStatsTest, DeterministicUnderSeed) {
  StatusOr<workload::SyntheticProfile> gen = workload::MakeRealLikeProfile(9);
  ASSERT_OK(gen.status());
  ProfileStats a = ComputeProfileStats(gen->profile, 500, 4);
  ProfileStats b = ComputeProfileStats(gen->profile, 500, 4);
  EXPECT_DOUBLE_EQ(a.coverage_estimate, b.coverage_estimate);
  EXPECT_EQ(a.active_domain, b.active_domain);
}

class ValidateTest : public ::testing::Test {};

TEST_F(ValidateTest, PaperEnvironmentIsSound) {
  EnvironmentPtr env = PaperEnv();
  EXPECT_OK(ValidateEnvironment(*env, /*require_monotone=*/true));
}

TEST_F(ValidateTest, SyntheticHierarchiesAreSound) {
  for (size_t levels : {1u, 2u, 3u}) {
    StatusOr<HierarchyPtr> h =
        workload::MakeSyntheticHierarchy("h", 60, levels, 5);
    ASSERT_OK(h.status());
    EXPECT_OK(ValidateHierarchyInvariants(**h, true)) << levels;
  }
}

TEST_F(ValidateTest, NonMonotoneDetectedOnlyWhenRequired) {
  HierarchyBuilder b("h");
  b.AddDetailedLevel("L0", {"a", "b"});
  b.AddLevel("L1", {{"p", {"b"}}, {"q", {"a"}}});
  b.set_require_monotone(false);
  StatusOr<HierarchyPtr> h = b.Build();
  ASSERT_OK(h.status());
  EXPECT_OK(ValidateHierarchyInvariants(**h, /*require_monotone=*/false));
  EXPECT_TRUE(ValidateHierarchyInvariants(**h, /*require_monotone=*/true)
                  .IsCorruption());
}

// ---- Composition operators ----

class CompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<db::Schema> schema =
        db::Schema::Create({{"type", db::ColumnType::kString},
                            {"cost", db::ColumnType::kString}});
    ASSERT_OK(schema.status());
    relation_ = std::make_unique<db::Relation>(std::move(*schema));
    // (museum, cheap), (museum, pricey), (park, cheap), (park, pricey)
    for (const char* type : {"museum", "park"}) {
      for (const char* cost : {"cheap", "pricey"}) {
        ASSERT_OK(relation_->Append({db::Value(type), db::Value(cost)}));
      }
    }
    env_ = PaperEnv();
    type_pref_ = MakePref("type", "museum", "park");
    cost_pref_ = MakePref("cost", "cheap", "pricey");
  }

  QualitativePreference MakePref(const char* col, const char* better,
                                 const char* worse) {
    StatusOr<CompositeDescriptor> cod = ParseCompositeDescriptor(*env_, "*");
    StatusOr<db::Predicate> b = db::Predicate::Create(
        relation_->schema(), col, db::CompareOp::kEq, db::Value(better));
    StatusOr<db::Predicate> w = db::Predicate::Create(
        relation_->schema(), col, db::CompareOp::kEq, db::Value(worse));
    StatusOr<QualitativePreference> pref =
        QualitativePreference::Create(std::move(*cod), {*b}, {*w});
    EXPECT_OK(pref.status());
    return *pref;
  }

  EnvironmentPtr env_;
  std::unique_ptr<db::Relation> relation_;
  std::optional<QualitativePreference> type_pref_;
  std::optional<QualitativePreference> cost_pref_;
};

TEST_F(CompositionTest, OpinionSigns) {
  // Rows: 0=(museum,cheap) 1=(museum,pricey) 2=(park,cheap) 3=(park,pricey)
  EXPECT_EQ(PreferenceOpinion(*type_pref_, relation_->row(0),
                              relation_->row(2)),
            1);
  EXPECT_EQ(PreferenceOpinion(*type_pref_, relation_->row(2),
                              relation_->row(0)),
            -1);
  EXPECT_EQ(PreferenceOpinion(*type_pref_, relation_->row(0),
                              relation_->row(1)),
            0);
}

TEST_F(CompositionTest, ParetoRequiresNoOpposition) {
  std::vector<const QualitativePreference*> prefs = {&*type_pref_,
                                                     &*cost_pref_};
  // (museum,cheap) Pareto-dominates (park,pricey): better on both.
  EXPECT_TRUE(ParetoDominates(prefs, relation_->row(0), relation_->row(3)));
  // (museum,pricey) vs (park,cheap): opposed -> no domination either way.
  EXPECT_FALSE(ParetoDominates(prefs, relation_->row(1), relation_->row(2)));
  EXPECT_FALSE(ParetoDominates(prefs, relation_->row(2), relation_->row(1)));
  // (museum,cheap) dominates (museum,pricey): tie on type, strict cost.
  EXPECT_TRUE(ParetoDominates(prefs, relation_->row(0), relation_->row(1)));

  std::vector<db::RowId> winners = WinnowWith(
      *relation_, [&](const db::Tuple& a, const db::Tuple& b) {
        return ParetoDominates(prefs, a, b);
      });
  // Pareto-optimal: (museum,cheap) only — it dominates all others.
  EXPECT_EQ(winners, (std::vector<db::RowId>{0}));
}

TEST_F(CompositionTest, PrioritizedFirstOpinionWins) {
  std::vector<const QualitativePreference*> type_first = {&*type_pref_,
                                                          &*cost_pref_};
  // (museum,pricey) vs (park,cheap): type decides -> museum wins.
  EXPECT_TRUE(
      PrioritizedDominates(type_first, relation_->row(1), relation_->row(2)));
  std::vector<const QualitativePreference*> cost_first = {&*cost_pref_,
                                                          &*type_pref_};
  // Cost decides first -> cheap park beats pricey museum.
  EXPECT_TRUE(
      PrioritizedDominates(cost_first, relation_->row(2), relation_->row(1)));

  std::vector<db::RowId> winners = WinnowWith(
      *relation_, [&](const db::Tuple& a, const db::Tuple& b) {
        return PrioritizedDominates(type_first, a, b);
      });
  EXPECT_EQ(winners, (std::vector<db::RowId>{0}));
}

TEST_F(CompositionTest, ParetoIsStricterThanUnionWinnow) {
  // The union semantics (plain Winnow) lets a single strict edge kill
  // a tuple even when another preference opposes it; Pareto does not.
  std::vector<const QualitativePreference*> prefs = {&*type_pref_,
                                                     &*cost_pref_};
  std::vector<db::RowId> union_winners = Winnow(*relation_, prefs);
  std::vector<db::RowId> pareto_winners = WinnowWith(
      *relation_, [&](const db::Tuple& a, const db::Tuple& b) {
        return ParetoDominates(prefs, a, b);
      });
  // Every union winner is a Pareto winner.
  for (db::RowId r : union_winners) {
    EXPECT_TRUE(std::find(pareto_winners.begin(), pareto_winners.end(), r) !=
                pareto_winners.end());
  }
  EXPECT_LE(union_winners.size(), pareto_winners.size());
}

}  // namespace
}  // namespace ctxpref
