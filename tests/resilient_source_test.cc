// Deterministic chaos tests for the resilient context-acquisition
// layer: scripted FaultInjectingSource + FakeClock, fixed seeds. Every
// breaker transition (closed -> open -> half-open -> closed, plus the
// half-open -> open reopen) and every staleness-lift step of the
// degradation ladder is covered, and a threaded stress section keeps
// the TSan build honest.

#include "context/resilient_source.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::State;

class ResilientSourceTest : public ::testing::Test {
 protected:
  EnvironmentPtr env_ = PaperEnv();
  FakeClock clock_;

  ValueRef Loc(const char* name) {
    return *env_->parameter(0).hierarchy().FindAnyLevel(name);
  }
  const Hierarchy& LocH() { return env_->parameter(0).hierarchy(); }

  /// A resilient wrapper over a scripted source for parameter 0.
  /// Returns (resilient, raw pointer to the fault injector).
  std::pair<std::unique_ptr<ResilientSource>, FaultInjectingSource*>
  MakeRig(SourcePolicy policy, ValueRef value) {
    auto fault = std::make_unique<FaultInjectingSource>(0, value, &clock_);
    FaultInjectingSource* raw = fault.get();
    auto src = std::make_unique<ResilientSource>(
        *env_, std::move(fault), policy, &clock_, /*seed=*/42);
    return {std::move(src), raw};
  }
};

/// A policy with round numbers that make the ladder arithmetic obvious.
SourcePolicy TestPolicy() {
  SourcePolicy p;
  p.read_deadline_micros = 10'000;       // 10ms
  p.max_attempts = 3;
  p.backoff_initial_micros = 1'000;
  p.backoff_multiplier = 2.0;
  p.backoff_max_micros = 4'000;
  p.backoff_jitter = 0.5;
  p.failure_threshold = 2;
  p.open_cooldown_micros = 100'000;      // 100ms
  p.half_open_probes_to_close = 1;
  p.stale_ttl_micros = 1'000'000;        // 1s fresh-enough window
  p.lift_window_micros = 1'000'000;      // +1 level per second past TTL
  return p;
}

TEST_F(ResilientSourceTest, FreshReadPassesThrough) {
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  ASSERT_OK(v.status());
  EXPECT_EQ(*v, Loc("Plaka"));
  EXPECT_EQ(info.provenance, ReadProvenance::kFresh);
  EXPECT_EQ(info.attempts, 1u);
  EXPECT_OK(info.error);
  EXPECT_EQ(src->breaker_state(), BreakerState::kClosed);
}

TEST_F(ResilientSourceTest, RetriesWithBackoffThenSucceeds) {
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  fault->FailNext(2);  // Two NotFound, then the script default succeeds.
  const int64_t before = clock_.NowMicros();
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  ASSERT_OK(v.status());
  EXPECT_EQ(*v, Loc("Plaka"));
  EXPECT_EQ(info.provenance, ReadProvenance::kRetried);
  EXPECT_EQ(info.attempts, 3u);
  EXPECT_TRUE(info.error.IsNotFound());  // Last failure overcome.
  EXPECT_EQ(fault->reads(), 3u);
  // Two backoff sleeps advanced the fake clock; with jitter in
  // [0.5, 1.5] of (1ms, 2ms) the total lies in [1.5ms, 4.5ms].
  const int64_t slept = clock_.NowMicros() - before;
  EXPECT_GE(slept, 1'500);
  EXPECT_LE(slept, 4'500);
  EXPECT_EQ(src->breaker_state(), BreakerState::kClosed);
}

TEST_F(ResilientSourceTest, DeadlineExceededCountsAsFailure) {
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  // First attempt is valid but takes 50ms >> the 10ms deadline; the
  // retry answers instantly.
  fault->PushLatency(50'000);
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  ASSERT_OK(v.status());
  EXPECT_EQ(info.provenance, ReadProvenance::kRetried);
  EXPECT_EQ(info.attempts, 2u);
  EXPECT_TRUE(info.error.IsDeadlineExceeded());
}

TEST_F(ResilientSourceTest, OutOfDomainReadingIsRejectedAndRetried) {
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  fault->PushOutOfDomain();
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  ASSERT_OK(v.status());
  EXPECT_EQ(*v, Loc("Plaka"));
  EXPECT_EQ(info.provenance, ReadProvenance::kRetried);
  EXPECT_TRUE(info.error.IsInvalidArgument());
}

TEST_F(ResilientSourceTest, ServesStaleWithinTtl) {
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  ASSERT_OK(src->Read().status());  // Prime last-known-good.
  clock_.Advance(500'000);          // 0.5s < 1s TTL.
  fault->FailNext(3);               // Exhaust the whole retry budget.
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  ASSERT_OK(v.status());
  EXPECT_EQ(*v, Loc("Plaka"));
  EXPECT_EQ(info.provenance, ReadProvenance::kStale);
  EXPECT_EQ(info.lifted_levels, 0);
  EXPECT_GE(info.age_micros, 500'000);
  EXPECT_TRUE(info.error.IsNotFound());
}

TEST_F(ResilientSourceTest, StalenessLiftsOneLevelPerWindowUntilAll) {
  // Ladder: Plaka (Region, level 0) -> Athens (City) -> Greece
  // (Country) -> all. TTL 1s, window 1s: lift k = ceil((age-ttl)/win).
  SourcePolicy policy = TestPolicy();
  policy.failure_threshold = 1'000'000;  // Keep the breaker out of this test.
  auto [src, fault] = MakeRig(policy, Loc("Plaka"));
  ASSERT_OK(src->Read().status());

  struct Expect {
    int64_t advance_to_age;  // Absolute age of the last-known-good value.
    const char* value;
    LevelIndex lifted;
    ReadProvenance provenance;
  };
  const Expect ladder[] = {
      {1'500'000, "Athens", 1, ReadProvenance::kStaleLifted},
      {2'500'000, "Greece", 2, ReadProvenance::kStaleLifted},
      {3'500'000, "all", 3, ReadProvenance::kStaleLifted},
      {9'000'000, "all", 3, ReadProvenance::kStaleLifted},  // Clamped at all.
  };
  int64_t aged = 0;
  for (const Expect& e : ladder) {
    clock_.Advance(e.advance_to_age - aged);
    aged = e.advance_to_age;
    fault->FailNext(3);
    SourceReadInfo info;
    StatusOr<ValueRef> v = src->ReadWithInfo(&info);
    ASSERT_OK(v.status()) << e.value;
    EXPECT_EQ(LocH().value_name(*v), e.value);
    EXPECT_EQ(info.provenance, e.provenance) << e.value;
    EXPECT_EQ(info.lifted_levels, e.lifted) << e.value;
  }
}

TEST_F(ResilientSourceTest, NoLastKnownGoodDegradesToAbsent) {
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  fault->FailNext(3);
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(info.provenance, ReadProvenance::kAbsent);
}

TEST_F(ResilientSourceTest, SeededLastKnownGoodServesBeforeFirstSuccess) {
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  src->SeedLastKnownGood(Loc("Kifisia"), clock_.NowMicros());
  fault->FailNext(3);
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  ASSERT_OK(v.status());
  EXPECT_EQ(*v, Loc("Kifisia"));
  EXPECT_EQ(info.provenance, ReadProvenance::kStale);
}

TEST_F(ResilientSourceTest, BreakerFullCycle) {
  // closed -> open: two consecutive failed logical reads (threshold 2).
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  ASSERT_OK(src->Read().status());  // Prime last-known-good; closed.
  ASSERT_EQ(src->breaker_state(), BreakerState::kClosed);

  fault->FailNext(6);  // Two logical reads x 3 attempts.
  ASSERT_OK(src->Read().status());  // Failure 1 (serves stale).
  EXPECT_EQ(src->breaker_state(), BreakerState::kClosed);
  ASSERT_OK(src->Read().status());  // Failure 2: trips the breaker.
  EXPECT_EQ(src->breaker_state(), BreakerState::kOpen);
  const size_t reads_when_opened = fault->reads();

  // open: short-circuits (no backend probe), serves last-known-good
  // with breaker-open provenance.
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  ASSERT_OK(v.status());
  EXPECT_EQ(*v, Loc("Plaka"));
  EXPECT_EQ(info.provenance, ReadProvenance::kBreakerOpen);
  EXPECT_EQ(info.attempts, 0u);
  EXPECT_TRUE(info.error.IsUnavailable());
  EXPECT_EQ(fault->reads(), reads_when_opened);

  // open -> half-open -> open again: the cooldown elapses, the single
  // probe fails, the breaker reopens and restarts its cooldown.
  clock_.Advance(100'000);
  fault->FailNext(1);
  ASSERT_OK(src->Read().status());  // Probe consumed exactly one read.
  EXPECT_EQ(src->breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(fault->reads(), reads_when_opened + 1);

  // Still open within the restarted cooldown.
  clock_.Advance(50'000);
  StatusOr<ValueRef> blocked = src->ReadWithInfo(&info);
  ASSERT_OK(blocked.status());
  EXPECT_EQ(info.provenance, ReadProvenance::kBreakerOpen);
  EXPECT_EQ(fault->reads(), reads_when_opened + 1);

  // open -> half-open -> closed: cooldown elapses, probe succeeds.
  clock_.Advance(50'000);
  SourceReadInfo probe_info;
  StatusOr<ValueRef> probe = src->ReadWithInfo(&probe_info);
  ASSERT_OK(probe.status());
  EXPECT_EQ(probe_info.provenance, ReadProvenance::kFresh);
  EXPECT_EQ(src->breaker_state(), BreakerState::kClosed);

  // Closed again: full retry budget restored.
  fault->FailNext(2);
  SourceReadInfo again;
  StatusOr<ValueRef> ok = src->ReadWithInfo(&again);
  ASSERT_OK(ok.status());
  EXPECT_EQ(again.provenance, ReadProvenance::kRetried);
  EXPECT_EQ(again.attempts, 3u);
}

TEST_F(ResilientSourceTest, HalfOpenRequiresConfiguredProbeCount) {
  SourcePolicy policy = TestPolicy();
  policy.half_open_probes_to_close = 2;
  auto [src, fault] = MakeRig(policy, Loc("Plaka"));
  ASSERT_OK(src->Read().status());  // Prime last-known-good.
  fault->FailNext(6);
  ASSERT_OK(src->Read().status());  // Failure 1 (stale).
  (void)src->Read();  // Failure 2: trips at threshold 2.
  ASSERT_EQ(src->breaker_state(), BreakerState::kOpen);
  clock_.Advance(100'000);
  ASSERT_OK(src->Read().status());  // Probe 1 of 2 succeeds.
  EXPECT_EQ(src->breaker_state(), BreakerState::kHalfOpen);
  ASSERT_OK(src->Read().status());  // Probe 2 of 2 closes.
  EXPECT_EQ(src->breaker_state(), BreakerState::kClosed);
}

TEST_F(ResilientSourceTest, BreakerOpenAppliesStalenessLadder) {
  auto [src, fault] = MakeRig(TestPolicy(), Loc("Plaka"));
  ASSERT_OK(src->Read().status());
  fault->FailNext(6);
  (void)src->Read();
  (void)src->Read();
  ASSERT_EQ(src->breaker_state(), BreakerState::kOpen);
  // Age the value past TTL + 1 window while the breaker stays open
  // (cooldown is shorter, so re-enter open by failing the probes).
  SourcePolicy p = src->policy();
  ASSERT_LT(p.open_cooldown_micros, p.stale_ttl_micros);
  clock_.Advance(90'000);  // Still within cooldown: no probe.
  SourceReadInfo info;
  StatusOr<ValueRef> v = src->ReadWithInfo(&info);
  ASSERT_OK(v.status());
  EXPECT_EQ(info.provenance, ReadProvenance::kBreakerOpen);
  EXPECT_EQ(info.lifted_levels, 0);

  // Fail the half-open probes to keep it open while the value ages
  // past TTL + one window: the served value lifts even under an open
  // breaker.
  fault->FailNext(100);
  for (int i = 0; i < 25; ++i) {
    clock_.Advance(100'000);
    (void)src->Read();
  }
  ASSERT_EQ(src->breaker_state(), BreakerState::kOpen);
  clock_.Advance(10'000);
  StatusOr<ValueRef> lifted = src->ReadWithInfo(&info);
  ASSERT_OK(lifted.status());
  EXPECT_EQ(info.provenance, ReadProvenance::kBreakerOpen);
  EXPECT_GE(info.lifted_levels, 1);
  EXPECT_TRUE(LocH().IsAncestorOrSelf(*lifted, Loc("Plaka")));
}

TEST_F(ResilientSourceTest, DeterministicUnderFixedSeed) {
  auto run = [&](FakeClock& clock) {
    auto fault = std::make_unique<FaultInjectingSource>(0, Loc("Plaka"),
                                                        &clock);
    FaultInjectingSource* raw = fault.get();
    ResilientSource src(*env_, std::move(fault), TestPolicy(), &clock,
                        /*seed=*/7);
    raw->FailNext(2);
    std::vector<int64_t> times;
    for (int i = 0; i < 5; ++i) {
      (void)src.Read();
      times.push_back(clock.NowMicros());
      clock.Advance(10'000);
    }
    return times;
  };
  FakeClock c1, c2;
  EXPECT_EQ(run(c1), run(c2));  // Identical backoff/jitter schedules.
}

// ---------------------------------------------------------------------
// CurrentContext integration: the availability guarantee.

TEST_F(ResilientSourceTest, SnapshotSurvivesAllSourcesFailing) {
  CurrentContext ctx(env_);
  std::vector<FaultInjectingSource*> faults;
  for (size_t param = 0; param < env_->size(); ++param) {
    auto fault = std::make_unique<FaultInjectingSource>(
        param, env_->parameter(param).hierarchy().AllValue(), &clock_);
    faults.push_back(fault.get());
    ASSERT_OK(ctx.AddSource(std::make_unique<ResilientSource>(
        *env_, std::move(fault), TestPolicy(), &clock_, /*seed=*/param)));
  }
  for (FaultInjectingSource* f : faults) f->FailNext(1000);

  SnapshotReport report = ctx.SnapshotWithReport();
  // Worst case: the all-`all` state, never an error.
  EXPECT_EQ(report.state, ContextState::AllState(*env_));
  ASSERT_EQ(report.params.size(), env_->size());
  EXPECT_EQ(report.degraded_count(), env_->size());
  for (const ParameterAcquisition& p : report.params) {
    EXPECT_TRUE(p.has_source);
    EXPECT_EQ(p.info.provenance, ReadProvenance::kAbsent);
    EXPECT_FALSE(p.info.error.ok());
  }
  // The legacy entry point agrees.
  StatusOr<ContextState> state = ctx.Snapshot();
  ASSERT_OK(state.status());
  EXPECT_EQ(*state, ContextState::AllState(*env_));

  const AcquisitionStats stats = ctx.counters().Snapshot();
  EXPECT_EQ(stats.reads, 2 * env_->size());
  EXPECT_EQ(stats.absent, 2 * env_->size());
  EXPECT_GT(stats.errors, 0u);
}

TEST_F(ResilientSourceTest, SnapshotReportNamesDegradedParameters) {
  CurrentContext ctx(env_);
  // Parameter 0: healthy. Parameter 1: serving stale. Parameter 2: no
  // source at all.
  auto healthy = std::make_unique<FaultInjectingSource>(0, Loc("Plaka"),
                                                        &clock_);
  ASSERT_OK(ctx.AddSource(std::make_unique<ResilientSource>(
      *env_, std::move(healthy), TestPolicy(), &clock_, 1)));

  const Hierarchy& weather = env_->parameter(1).hierarchy();
  auto flaky = std::make_unique<FaultInjectingSource>(
      1, *weather.FindAnyLevel("warm"), &clock_);
  FaultInjectingSource* flaky_raw = flaky.get();
  ASSERT_OK(ctx.AddSource(std::make_unique<ResilientSource>(
      *env_, std::move(flaky), TestPolicy(), &clock_, 2)));

  (void)ctx.Snapshot();  // Prime both last-known-goods.
  flaky_raw->FailNext(3);
  SnapshotReport report = ctx.SnapshotWithReport();

  EXPECT_EQ(report.state, State(*env_, {"Plaka", "warm", "all"}));
  EXPECT_EQ(report.degraded_count(), 1u);
  EXPECT_FALSE(report.fully_fresh());
  EXPECT_EQ(report.params[0].info.provenance, ReadProvenance::kFresh);
  EXPECT_EQ(report.params[1].info.provenance, ReadProvenance::kStale);
  EXPECT_FALSE(report.params[1].info.error.ok());
  EXPECT_FALSE(report.params[2].has_source);
  EXPECT_EQ(report.params[2].info.provenance, ReadProvenance::kAbsent);

  const std::string text = report.ToString(*env_);
  EXPECT_NE(text.find("stale"), std::string::npos);
  EXPECT_NE(text.find("no source"), std::string::npos);
}

// ---------------------------------------------------------------------
// Thread-safety: hammer one resilient source and one CurrentContext
// from several threads. Run under TSan (CTXPREF_SANITIZE=thread) to
// check real interleavings; assertions here are liveness-level.

TEST_F(ResilientSourceTest, ConcurrentReadsAreSafe) {
  SourcePolicy policy = TestPolicy();
  policy.backoff_initial_micros = 0;  // Don't advance the shared clock much.
  policy.backoff_max_micros = 0;
  auto fault = std::make_unique<FaultInjectingSource>(0, Loc("Plaka"),
                                                      &clock_);
  FaultInjectingSource* raw = fault.get();
  ResilientSource src(*env_, std::move(fault), policy, &clock_, 99);
  // A messy script: failures, latency spikes, garbage, successes.
  for (int i = 0; i < 50; ++i) {
    raw->PushNotFound();
    raw->PushOk();
    raw->PushLatency(20'000);
    raw->PushOutOfDomain();
    raw->PushOk();
  }
  constexpr size_t kThreads = 4;
  constexpr size_t kReadsPerThread = 200;
  std::vector<std::jthread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (size_t i = 0; i < kReadsPerThread; ++i) {
        SourceReadInfo info;
        StatusOr<ValueRef> v = src.ReadWithInfo(&info);
        if (v.ok()) {
          EXPECT_TRUE(LocH().IsAncestorOrSelf(*v, Loc("Plaka")));
        }
      }
    });
  }
  workers.clear();  // Join.
  // Liveness only (the breaker may legitimately short-circuit runs of
  // reads under adversarial interleavings); races are TSan's job.
  EXPECT_GT(raw->reads(), 0u);
}

TEST_F(ResilientSourceTest, ConcurrentSnapshotsAreSafe) {
  CurrentContext ctx(env_);
  std::vector<FaultInjectingSource*> faults;
  for (size_t param = 0; param < env_->size(); ++param) {
    auto fault = std::make_unique<FaultInjectingSource>(
        param, env_->parameter(param).hierarchy().AllValue(), &clock_);
    for (int i = 0; i < 100; ++i) {
      if (i % 3 == 0) fault->PushNotFound();
      else fault->PushOk();
    }
    faults.push_back(fault.get());
    SourcePolicy policy = TestPolicy();
    policy.backoff_initial_micros = 0;
    policy.backoff_max_micros = 0;
    ASSERT_OK(ctx.AddSource(std::make_unique<ResilientSource>(
        *env_, std::move(fault), policy, &clock_, param)));
  }
  constexpr size_t kThreads = 4;
  std::vector<std::jthread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (size_t i = 0; i < 100; ++i) {
        SnapshotReport report = ctx.SnapshotWithReport();
        EXPECT_OK(report.state.Validate(*env_));
      }
    });
  }
  workers.clear();  // Join.
  const AcquisitionStats stats = ctx.counters().Snapshot();
  EXPECT_EQ(stats.reads, kThreads * 100 * env_->size());
}

}  // namespace
}  // namespace ctxpref
