#include "preference/contextual_query.h"

#include <gtest/gtest.h>

#include "context/parser.h"
#include "tests/test_util.h"
#include "workload/poi_dataset.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::Pref;
using ::ctxpref::testing::State;

class ContextualQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(40, 3);
    ASSERT_OK(poi.status());
    poi_ = std::make_unique<workload::PoiDatabase>(std::move(*poi));
    env_ = poi_->env;
  }

  /// Finds a row id by POI name.
  db::RowId RowByName(const std::string& name) {
    const size_t col = *poi_->relation.schema().IndexOf("name");
    for (db::RowId r = 0; r < poi_->relation.size(); ++r) {
      if (poi_->relation.row(r)[col].AsString() == name) return r;
    }
    ADD_FAILURE() << "no POI named " << name;
    return 0;
  }

  ContextualQuery QueryFor(const std::string& ecod_text) {
    StatusOr<ExtendedDescriptor> ecod =
        ParseExtendedDescriptor(*env_, ecod_text);
    EXPECT_OK(ecod.status());
    ContextualQuery q;
    q.context = *ecod;
    return q;
  }

  std::unique_ptr<workload::PoiDatabase> poi_;
  EnvironmentPtr env_;
};

TEST_F(ContextualQueryTest, RankCSScoresMatchingTuples) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka and temperature = warm",
                          "name", "Acropolis", 0.8)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  StatusOr<QueryResult> result = RankCS(
      poi_->relation,
      QueryFor("location = Plaka and temperature = warm"), resolver);
  ASSERT_OK(result.status());
  ASSERT_EQ(result->tuples.size(), 1u);
  EXPECT_EQ(result->tuples[0].row_id, RowByName("Acropolis"));
  EXPECT_DOUBLE_EQ(result->tuples[0].score, 0.8);
  ASSERT_EQ(result->traces.size(), 1u);
  EXPECT_EQ(result->traces[0].candidates.size(), 1u);
}

TEST_F(ContextualQueryTest, CoverResolutionAppliesGeneralPreference) {
  Profile p(env_);
  ASSERT_OK(p.Insert(
      Pref(*env_, "accompanying_people = friends", "type", "brewery", 0.9)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  // Query at detailed level: covered by the friends-only preference.
  StatusOr<QueryResult> result = RankCS(
      poi_->relation,
      QueryFor("location = Plaka and temperature = warm and "
               "accompanying_people = friends"),
      resolver);
  ASSERT_OK(result.status());
  ASSERT_FALSE(result->tuples.empty());
  const size_t type_col = *poi_->relation.schema().IndexOf("type");
  for (const db::ScoredTuple& t : result->tuples) {
    EXPECT_EQ(poi_->relation.row(t.row_id)[type_col].AsString(), "brewery");
    EXPECT_DOUBLE_EQ(t.score, 0.9);
  }
}

TEST_F(ContextualQueryTest, DisjunctiveContextUnionsResults) {
  Profile p(env_);
  ASSERT_OK(p.Insert(
      Pref(*env_, "temperature = hot", "type", "park", 0.9)));
  ASSERT_OK(p.Insert(
      Pref(*env_, "temperature = freezing", "type", "museum", 0.8)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  StatusOr<QueryResult> result = RankCS(
      poi_->relation,
      QueryFor("temperature = hot or temperature = freezing"), resolver);
  ASSERT_OK(result.status());
  const size_t type_col = *poi_->relation.schema().IndexOf("type");
  bool saw_park = false, saw_museum = false;
  for (const db::ScoredTuple& t : result->tuples) {
    const std::string& type = poi_->relation.row(t.row_id)[type_col].AsString();
    saw_park |= type == "park";
    saw_museum |= type == "museum";
  }
  EXPECT_TRUE(saw_park);
  EXPECT_TRUE(saw_museum);
  EXPECT_EQ(result->traces.size(), 2u);
}

TEST_F(ContextualQueryTest, CombinePolicyMaxOnDuplicates) {
  Profile p(env_);
  // Two preferences that both apply at (all, hot, friends) and target
  // overlapping tuples (type=park scored differently per context).
  ASSERT_OK(p.Insert(Pref(*env_, "temperature = hot", "type", "park", 0.9)));
  ASSERT_OK(p.Insert(
      Pref(*env_, "accompanying_people = friends", "type", "park", 0.5)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  // The query has two states (via or), one resolving to each pref.
  ContextualQuery q = QueryFor(
      "(temperature = hot) or (accompanying_people = friends)");
  QueryOptions max_opts;
  max_opts.combine = db::CombinePolicy::kMax;
  StatusOr<QueryResult> result = RankCS(poi_->relation, q, resolver, max_opts);
  ASSERT_OK(result.status());
  ASSERT_FALSE(result->tuples.empty());
  for (const db::ScoredTuple& t : result->tuples) {
    EXPECT_DOUBLE_EQ(t.score, 0.9);
  }

  QueryOptions avg_opts;
  avg_opts.combine = db::CombinePolicy::kAvg;
  StatusOr<QueryResult> avg = RankCS(poi_->relation, q, resolver, avg_opts);
  ASSERT_OK(avg.status());
  for (const db::ScoredTuple& t : avg->tuples) {
    EXPECT_DOUBLE_EQ(t.score, 0.7);
  }
}

TEST_F(ContextualQueryTest, SelectionsRestrictEligibleTuples) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "*", "type", "park", 0.9)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  ContextualQuery q = QueryFor("temperature = hot");
  StatusOr<db::Predicate> sel = db::Predicate::Create(
      poi_->relation.schema(), "location", db::CompareOp::kEq,
      db::Value("Plaka"));
  ASSERT_OK(sel.status());
  q.selections.push_back(*sel);

  StatusOr<QueryResult> result = RankCS(poi_->relation, q, resolver);
  ASSERT_OK(result.status());
  const size_t loc_col = *poi_->relation.schema().IndexOf("location");
  for (const db::ScoredTuple& t : result->tuples) {
    EXPECT_EQ(poi_->relation.row(t.row_id)[loc_col].AsString(), "Plaka");
  }
}

TEST_F(ContextualQueryTest, EmptyContextUsesAllState) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "*", "type", "museum", 0.6)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  ContextualQuery q;  // No context at all.
  StatusOr<QueryResult> result = RankCS(poi_->relation, q, resolver);
  ASSERT_OK(result.status());
  EXPECT_FALSE(result->tuples.empty());
}

TEST_F(ContextualQueryTest, NoApplicablePreferenceYieldsEmpty) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Perama", "type", "park", 0.9)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  StatusOr<QueryResult> result =
      RankCS(poi_->relation, QueryFor("location = Plaka"), resolver);
  ASSERT_OK(result.status());
  EXPECT_TRUE(result->tuples.empty());
  ASSERT_EQ(result->traces.size(), 1u);
  EXPECT_TRUE(result->traces[0].candidates.empty());
}

TEST_F(ContextualQueryTest, TopKCapsResults) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "*", "type", "park", 0.9)));
  ASSERT_OK(p.Insert(Pref(*env_, "*", "type", "museum", 0.8)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  QueryOptions options;
  options.top_k = 3;
  StatusOr<QueryResult> result =
      RankCS(poi_->relation, QueryFor("temperature = hot"), resolver, options);
  ASSERT_OK(result.status());
  // Top-3 extends through the tie at the 3rd score (all parks are 0.9).
  ASSERT_GE(result->tuples.size(), 3u);
  const double third = result->tuples[2].score;
  for (size_t i = 3; i < result->tuples.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->tuples[i].score, third);
  }
}

TEST_F(ContextualQueryTest, TreeAndSequentialBackendsAgree) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "temperature = hot", "type", "park", 0.9)));
  ASSERT_OK(p.Insert(
      Pref(*env_, "accompanying_people = friends", "type", "brewery", 0.7)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  SequentialStore store = SequentialStore::Build(p);

  ContextualQuery q = QueryFor(
      "location = Plaka and temperature = hot and "
      "accompanying_people = friends");
  StatusOr<QueryResult> a = RankCS(poi_->relation, q, resolver);
  StatusOr<QueryResult> b = RankCS(poi_->relation, q, store);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_EQ(a->tuples, b->tuples);
}

TEST_F(ContextualQueryTest, UnknownClauseAttributeFailsCleanly) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "*", "nonexistent_column", "x", 0.5)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  StatusOr<QueryResult> result =
      RankCS(poi_->relation, QueryFor("temperature = hot"), resolver);
  EXPECT_TRUE(result.status().IsNotFound());
}

}  // namespace
}  // namespace ctxpref
