#include <gtest/gtest.h>

#include <set>

#include "preference/ordering.h"
#include "preference/profile_tree.h"
#include "preference/sequential_store.h"
#include "tests/test_util.h"
#include "workload/default_profiles.h"
#include "workload/poi_dataset.h"
#include "workload/profile_generator.h"
#include "workload/query_generator.h"
#include "workload/synthetic_hierarchy.h"
#include "workload/user_sim.h"

namespace ctxpref::workload {
namespace {

TEST(SyntheticHierarchyTest, BuildsExpectedLevelSizes) {
  StatusOr<HierarchyPtr> h = MakeSyntheticHierarchy("loc", 100, 3, 5);
  ASSERT_OK(h.status());
  EXPECT_EQ((*h)->num_levels(), 4);  // 3 declared + ALL.
  EXPECT_EQ((*h)->level_size(0), 100u);
  EXPECT_EQ((*h)->level_size(1), 20u);
  EXPECT_EQ((*h)->level_size(2), 4u);
  EXPECT_EQ((*h)->level_size(3), 1u);
}

TEST(SyntheticHierarchyTest, AncDescConsistency) {
  StatusOr<HierarchyPtr> h = MakeSyntheticHierarchy("x", 50, 2, 8);
  ASSERT_OK(h.status());
  for (ValueId id = 0; id < 50; ++id) {
    ValueRef v{0, id};
    ValueRef parent = (*h)->Anc(v, 1);
    // Contiguous grouping: parent index is id / fan.
    EXPECT_EQ(parent.id, id / 8);
    std::vector<ValueRef> kids = (*h)->Desc(parent, 0);
    EXPECT_TRUE(std::find(kids.begin(), kids.end(), v) != kids.end());
  }
}

TEST(SyntheticHierarchyTest, RejectsDegenerateShapes) {
  EXPECT_TRUE(
      MakeSyntheticHierarchy("x", 10, 0, 2).status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeSyntheticHierarchy("x", 0, 1, 2).status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeSyntheticHierarchy("x", 10, 3, 1).status().IsInvalidArgument());
  // 4 values with fan 8 collapse to 1 at level 1; a further level
  // cannot exist.
  EXPECT_TRUE(
      MakeSyntheticHierarchy("x", 4, 3, 8).status().IsInvalidArgument());
}

TEST(ProfileGeneratorTest, HitsRequestedSize) {
  SyntheticProfileSpec spec;
  spec.params = {{"a", 50, 2, 8, 0.0}, {"b", 100, 3, 5, 0.0},
                 {"c", 20, 2, 4, 0.0}};
  spec.num_preferences = 500;
  spec.seed = 4;
  StatusOr<SyntheticProfile> gen = GenerateSyntheticProfile(spec);
  ASSERT_OK(gen.status());
  EXPECT_EQ(gen->profile.size(), 500u);
  EXPECT_EQ(gen->env->size(), 3u);
}

TEST(ProfileGeneratorTest, ZipfShrinksActiveDomains) {
  SyntheticProfileSpec uniform;
  uniform.params = {{"a", 200, 2, 8, 0.0}};
  uniform.num_preferences = 300;
  uniform.omit_probability = 0.0;
  uniform.lift_probability = 0.0;
  uniform.seed = 5;
  SyntheticProfileSpec zipf = uniform;
  zipf.params[0].zipf_a = 2.0;
  StatusOr<SyntheticProfile> u = GenerateSyntheticProfile(uniform);
  StatusOr<SyntheticProfile> z = GenerateSyntheticProfile(zipf);
  ASSERT_OK(u.status());
  ASSERT_OK(z.status());
  EXPECT_GT(ActiveDomainSizes(u->profile)[0],
            ActiveDomainSizes(z->profile)[0]);
}

TEST(ProfileGeneratorTest, RealLikeProfileMatchesPaperShape) {
  StatusOr<SyntheticProfile> gen = MakeRealLikeProfile(7);
  ASSERT_OK(gen.status());
  EXPECT_EQ(gen->profile.size(), 522u);  // Paper §5.2.
  ASSERT_EQ(gen->env->size(), 3u);
  EXPECT_EQ(gen->env->parameter(0).hierarchy().level_size(0), 4u);
  EXPECT_EQ(gen->env->parameter(1).hierarchy().level_size(0), 17u);
  EXPECT_EQ(gen->env->parameter(2).hierarchy().level_size(0), 100u);
}

TEST(QueryGeneratorTest, ExactQueriesAlwaysHaveExactMatches) {
  StatusOr<SyntheticProfile> gen = MakeRealLikeProfile(8);
  ASSERT_OK(gen.status());
  SequentialStore store = SequentialStore::Build(gen->profile);
  for (const ContextState& q : ExactQueryBatch(gen->profile, 50, 99)) {
    EXPECT_FALSE(store.SearchExact(q).empty()) << q.ToString(*gen->env);
  }
}

TEST(QueryGeneratorTest, RandomQueriesAreValidStates) {
  EnvironmentPtr env = testing::PaperEnv();
  for (const ContextState& q : RandomQueryBatch(*env, 100, 42, 0.5)) {
    EXPECT_OK(q.Validate(*env));
  }
}

TEST(QueryGeneratorTest, BatchesAreDeterministic) {
  EnvironmentPtr env = testing::PaperEnv();
  EXPECT_EQ(RandomQueryBatch(*env, 20, 7), RandomQueryBatch(*env, 20, 7));
}

TEST(PoiDatasetTest, EnvironmentMatchesFig2) {
  EnvironmentPtr env = testing::PaperEnv();
  const Hierarchy& loc = env->parameter(0).hierarchy();
  EXPECT_EQ(loc.num_levels(), 4);
  EXPECT_EQ(loc.level_name(0), "Region");
  EXPECT_EQ(loc.level_name(2), "Country");
  const Hierarchy& temp = env->parameter(1).hierarchy();
  EXPECT_EQ(temp.num_levels(), 3);
  // good groups {mild, warm, hot}.
  EXPECT_EQ(temp.DetailedDescendantCount(*temp.Find(1, "good")), 3u);
  EXPECT_EQ(temp.DetailedDescendantCount(*temp.Find(1, "bad")), 2u);
  const Hierarchy& comp = env->parameter(2).hierarchy();
  EXPECT_EQ(comp.num_levels(), 2);
}

TEST(PoiDatasetTest, DatabaseHasRequestedSizeAndLandmarks) {
  StatusOr<PoiDatabase> poi = MakePoiDatabase(80, 1);
  ASSERT_OK(poi.status());
  EXPECT_EQ(poi->relation.size(), 80u);
  StatusOr<db::Predicate> pred =
      db::Predicate::Create(poi->relation.schema(), "name", db::CompareOp::kEq,
                            db::Value("Acropolis"));
  ASSERT_OK(pred.status());
  EXPECT_EQ(poi->relation.Select(*pred).size(), 1u);
}

TEST(PoiDatasetTest, LocationsComeFromTheHierarchy) {
  StatusOr<PoiDatabase> poi = MakePoiDatabase(60, 2);
  ASSERT_OK(poi.status());
  const Hierarchy& loc = poi->env->parameter(0).hierarchy();
  const size_t col = *poi->relation.schema().IndexOf("location");
  for (db::RowId r = 0; r < poi->relation.size(); ++r) {
    EXPECT_OK(loc.Find(0, poi->relation.row(r)[col].AsString()).status());
  }
}

TEST(DefaultProfilesTest, AllTwelveBuildAndDiffer) {
  EnvironmentPtr env = testing::PaperEnv();
  StatusOr<std::vector<Profile>> profiles = AllDefaultProfiles(env);
  ASSERT_OK(profiles.status());
  ASSERT_EQ(profiles->size(), 12u);
  std::set<std::string> texts;
  for (const Profile& p : *profiles) {
    EXPECT_GE(p.size(), 10u);
    texts.insert(p.ToText());
  }
  EXPECT_EQ(texts.size(), 12u);  // All distinct.
}

TEST(DefaultProfilesTest, DefaultProfilesIndexCleanly) {
  EnvironmentPtr env = testing::PaperEnv();
  StatusOr<std::vector<Profile>> profiles = AllDefaultProfiles(env);
  ASSERT_OK(profiles.status());
  for (const Profile& p : *profiles) {
    EXPECT_OK(ProfileTree::Build(p).status());
  }
}

TEST(UserStudyTest, SmokeRunProducesSaneRows) {
  UserStudyConfig config;
  config.num_users = 3;
  config.num_pois = 60;
  config.queries_per_class = 5;
  config.seed = 77;
  StatusOr<std::vector<UserStudyRow>> rows = RunUserStudy(config);
  ASSERT_OK(rows.status());
  ASSERT_EQ(rows->size(), 3u);
  for (const UserStudyRow& r : *rows) {
    EXPECT_GT(r.num_updates, 0);
    EXPECT_GT(r.update_minutes, 5.0);
    EXPECT_LT(r.update_minutes, 60.0);
    for (double pct : {r.exact_pct, r.one_cover_pct,
                       r.multi_cover_hierarchy_pct,
                       r.multi_cover_jaccard_pct}) {
      // Negative = class had no measurable queries for this profile.
      EXPECT_GE(pct, -1.0);
      EXPECT_LE(pct, 100.0);
    }
    // The exact class always has samples (drawn from stored states).
    EXPECT_GE(r.exact_pct, 0.0);
  }
}

TEST(UserStudyTest, SensorDropoutDegradesGracefully) {
  UserStudyConfig config;
  config.num_users = 2;
  config.num_pois = 40;
  config.queries_per_class = 3;
  config.seed = 77;
  StatusOr<std::vector<UserStudyRow>> clean = RunUserStudy(config);
  ASSERT_OK(clean.status());
  config.sensor_dropout = 0.4;
  StatusOr<std::vector<UserStudyRow>> flaky = RunUserStudy(config);
  ASSERT_OK(flaky.status());
  // Same config rerun: the rig is deterministic too.
  StatusOr<std::vector<UserStudyRow>> flaky2 = RunUserStudy(config);
  ASSERT_OK(flaky2.status());
  ASSERT_EQ(flaky->size(), 2u);
  for (size_t i = 0; i < flaky->size(); ++i) {
    const UserStudyRow& r = (*flaky)[i];
    // The study still completes and reports: degraded sensing costs
    // precision, it never takes the pipeline down.
    EXPECT_GE(r.exact_pct, 0.0);
    EXPECT_LE(r.exact_pct, 100.0);
    EXPECT_GT(r.degraded_param_pct, 0.0);
    EXPECT_LE(r.degraded_param_pct, 100.0);
    EXPECT_DOUBLE_EQ((*clean)[i].degraded_param_pct, 0.0);
    EXPECT_DOUBLE_EQ(r.exact_pct, (*flaky2)[i].exact_pct);
    EXPECT_DOUBLE_EQ(r.degraded_param_pct, (*flaky2)[i].degraded_param_pct);
  }
}

TEST(UserStudyTest, Deterministic) {
  UserStudyConfig config;
  config.num_users = 2;
  config.num_pois = 40;
  config.queries_per_class = 3;
  config.seed = 11;
  StatusOr<std::vector<UserStudyRow>> a = RunUserStudy(config);
  StatusOr<std::vector<UserStudyRow>> b = RunUserStudy(config);
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].num_updates, (*b)[i].num_updates);
    EXPECT_DOUBLE_EQ((*a)[i].exact_pct, (*b)[i].exact_pct);
  }
}

TEST(GroundTruthTest, ScoresAreInRangeAndContextSensitive) {
  EnvironmentPtr env = testing::PaperEnv();
  StatusOr<PoiDatabase> poi = MakePoiDatabase(50, 3);
  ASSERT_OK(poi.status());
  GroundTruth gt(*env, 42);
  ContextState warm = testing::State(*env, {"Plaka", "hot", "friends"});
  ContextState cold = testing::State(*env, {"Plaka", "freezing", "friends"});
  bool any_difference = false;
  for (db::RowId r = 0; r < poi->relation.size(); ++r) {
    const double sw = gt.Score(*env, poi->relation, r, warm);
    const double sc = gt.Score(*env, poi->relation, r, cold);
    EXPECT_GE(sw, 0.0);
    EXPECT_LE(sw, 1.0);
    any_difference |= (sw != sc);
  }
  EXPECT_TRUE(any_difference);
}

TEST(GroundTruthTest, OpenAirPrefersWarmth) {
  EnvironmentPtr env = testing::PaperEnv();
  GroundTruth gt(*env, 7);
  // Affinity for open-air must rise from freezing (0) to hot (4).
  EXPECT_GT(gt.OpenAirAffinity(true, 4), gt.OpenAirAffinity(true, 0));
  EXPECT_GT(gt.OpenAirAffinity(false, 0), gt.OpenAirAffinity(false, 4));
}

}  // namespace
}  // namespace ctxpref::workload
