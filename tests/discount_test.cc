#include <gtest/gtest.h>

#include <cmath>

#include "context/parser.h"
#include "preference/contextual_query.h"
#include "preference/profile_tree.h"
#include "tests/test_util.h"
#include "workload/poi_dataset.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::Pref;

TEST(ApplyDiscountTest, Formulas) {
  EXPECT_DOUBLE_EQ(ApplyDiscount(ScoreDiscount::kNone, 0.8, 5.0), 0.8);
  EXPECT_DOUBLE_EQ(ApplyDiscount(ScoreDiscount::kInverseDistance, 0.8, 0.0),
                   0.8);
  EXPECT_DOUBLE_EQ(ApplyDiscount(ScoreDiscount::kInverseDistance, 0.8, 1.0),
                   0.4);
  EXPECT_DOUBLE_EQ(ApplyDiscount(ScoreDiscount::kExponential, 0.8, 0.0), 0.8);
  EXPECT_DOUBLE_EQ(ApplyDiscount(ScoreDiscount::kExponential, 0.8, 2.0), 0.2);
}

TEST(ApplyDiscountTest, MonotoneInDistance) {
  for (ScoreDiscount d :
       {ScoreDiscount::kInverseDistance, ScoreDiscount::kExponential}) {
    double prev = 1.0;
    for (double dist = 0.0; dist <= 6.0; dist += 0.5) {
      double v = ApplyDiscount(d, 1.0, dist);
      EXPECT_LE(v, prev);
      EXPECT_GT(v, 0.0);
      prev = v;
    }
  }
}

TEST(ApplyDiscountTest, ToString) {
  EXPECT_STREQ(ScoreDiscountToString(ScoreDiscount::kNone), "none");
  EXPECT_STREQ(ScoreDiscountToString(ScoreDiscount::kInverseDistance),
               "inverse-distance");
  EXPECT_STREQ(ScoreDiscountToString(ScoreDiscount::kExponential),
               "exponential");
}

class DiscountedRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(50, 23);
    ASSERT_OK(poi.status());
    poi_ = std::make_unique<workload::PoiDatabase>(std::move(*poi));
    env_ = poi_->env;
  }
  std::unique_ptr<workload::PoiDatabase> poi_;
  EnvironmentPtr env_;
};

TEST_F(DiscountedRankTest, ExactMatchKeepsFullScore) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka and temperature = warm",
                          "name", "Acropolis", 0.8)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  ContextualQuery q;
  q.context = ExtendedDescriptor::FromComposite(*ParseCompositeDescriptor(
      *env_, "location = Plaka and temperature = warm"));
  QueryOptions options;
  options.discount = ScoreDiscount::kInverseDistance;
  StatusOr<QueryResult> result = RankCS(poi_->relation, q, resolver, options);
  ASSERT_OK(result.status());
  ASSERT_EQ(result->tuples.size(), 1u);
  EXPECT_DOUBLE_EQ(result->tuples[0].score, 0.8);  // Distance 0: undimmed.
}

TEST_F(DiscountedRankTest, DistantCoverIsDimmed) {
  Profile p(env_);
  ASSERT_OK(p.Insert(
      Pref(*env_, "accompanying_people = friends", "type", "brewery", 0.9)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  // Query at detailed level: the friends preference covers at
  // hierarchy distance 3 + 2 = 5 (location all, temperature all).
  ContextualQuery q;
  q.context = ExtendedDescriptor::FromComposite(*ParseCompositeDescriptor(
      *env_,
      "location = Plaka and temperature = warm and "
      "accompanying_people = friends"));

  QueryOptions plain;
  StatusOr<QueryResult> undimmed = RankCS(poi_->relation, q, resolver, plain);
  ASSERT_OK(undimmed.status());
  ASSERT_FALSE(undimmed->tuples.empty());
  EXPECT_DOUBLE_EQ(undimmed->tuples[0].score, 0.9);

  QueryOptions dimmed;
  dimmed.discount = ScoreDiscount::kInverseDistance;
  StatusOr<QueryResult> result = RankCS(poi_->relation, q, resolver, dimmed);
  ASSERT_OK(result.status());
  ASSERT_EQ(result->tuples.size(), undimmed->tuples.size());
  EXPECT_DOUBLE_EQ(result->tuples[0].score, 0.9 / (1.0 + 5.0));
}

TEST_F(DiscountedRankTest, DiscountReordersMixedDistanceAnswers) {
  Profile p(env_);
  // Near-exact weak preference vs. distant strong one.
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka and temperature = warm",
                          "type", "cafeteria", 0.6)));
  ASSERT_OK(p.Insert(Pref(*env_, "*", "type", "brewery", 0.9)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  // Two query states (via or): one exact for the cafeteria pref, one
  // (Perama) resolved only by the all-state brewery pref.
  ContextualQuery q;
  q.context = *ParseExtendedDescriptor(
      *env_,
      "(location = Plaka and temperature = warm) or (location = Perama)");

  const size_t type_col = *poi_->relation.schema().IndexOf("type");
  auto top_type = [&](const QueryOptions& options) {
    StatusOr<QueryResult> result =
        RankCS(poi_->relation, q, resolver, options);
    EXPECT_OK(result.status());
    EXPECT_FALSE(result->tuples.empty());
    return poi_->relation.row(result->tuples.front().row_id)[type_col]
        .AsString();
  };

  QueryOptions plain;
  EXPECT_EQ(top_type(plain), "brewery");  // 0.9 undimmed wins.
  QueryOptions dimmed;
  dimmed.discount = ScoreDiscount::kExponential;
  // Brewery applies at distance 6 (all,all,all vs detailed Perama...):
  // 0.9·2^-6 ≈ 0.014; cafeteria exact keeps 0.6 and wins.
  EXPECT_EQ(top_type(dimmed), "cafeteria");
}

}  // namespace
}  // namespace ctxpref
