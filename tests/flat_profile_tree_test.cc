// Arena build edge cases (ISSUE 7 satellite): the flat tree must agree
// with the pointer tree on the degenerate shapes the fuzzers rarely
// draw — an empty profile, a single-state profile, a chain hierarchy
// whose ancestor extents equal their children's (the DESIGN.md
// Property-3 erratum, where every Jaccard distance along the chain
// ties), and ref-counted duplicate leaf entries across removal and
// rebuild.

#include "preference/flat_profile_tree.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "context/environment.h"
#include "context/hierarchy.h"
#include "db/value.h"
#include "preference/ordering.h"
#include "preference/profile_tree.h"
#include "preference/resolution.h"
#include "tests/test_util.h"

namespace ctxpref {
namespace {

EnvironmentPtr TwoFlatEnv() {
  StatusOr<HierarchyPtr> mood =
      MakeFlatHierarchy("mood", "Mood", {"happy", "sad"});
  EXPECT_TRUE(mood.ok());
  StatusOr<HierarchyPtr> day = MakeFlatHierarchy("day", "Day", {"work", "off"});
  EXPECT_TRUE(day.ok());
  std::vector<ContextParameter> params;
  params.emplace_back("mood", *mood);
  params.emplace_back("day", *day);
  StatusOr<EnvironmentPtr> env = ContextEnvironment::Create(std::move(params));
  EXPECT_TRUE(env.ok());
  return *env;
}

/// A chain hierarchy with one value per level: City {athens} under
/// Country {greece} under ALL. Every ancestor's detailed extent is
/// {athens}, so all Jaccard distances along the chain are 0 — the
/// Property-3 degenerate case.
EnvironmentPtr ChainEnv() {
  HierarchyBuilder pb("place");
  pb.AddDetailedLevel("City", {"athens"});
  pb.AddLevel("Country", {{"greece", {"athens"}}});
  StatusOr<HierarchyPtr> place = pb.Build();
  EXPECT_TRUE(place.ok());
  StatusOr<HierarchyPtr> mood =
      MakeFlatHierarchy("mood", "Mood", {"happy", "sad"});
  EXPECT_TRUE(mood.ok());
  std::vector<ContextParameter> params;
  params.emplace_back("place", *place);
  params.emplace_back("mood", *mood);
  StatusOr<EnvironmentPtr> env = ContextEnvironment::Create(std::move(params));
  EXPECT_TRUE(env.ok());
  return *env;
}

AttributeClause Clause(const std::string& value) {
  return AttributeClause{"attr", db::CompareOp::kEq, db::Value(value)};
}

void ExpectParity(const ProfileTree& tree, const FlatProfileTree& flat,
                  const ContextState& query, DistanceKind kind) {
  TreeResolver pointer_resolver(&tree);
  FlatResolver flat_resolver(&flat);
  ResolutionOptions ropts;
  ropts.distance = kind;
  for (const bool exact_only : {false, true}) {
    ropts.exact_only = exact_only;
    const std::vector<CandidatePath> pointer =
        pointer_resolver.ResolveBest(query, ropts);
    const std::vector<CandidatePath> via_flat =
        flat_resolver.ResolveBest(query, ropts);
    ASSERT_EQ(pointer.size(), via_flat.size());
    for (size_t i = 0; i < pointer.size(); ++i) {
      EXPECT_TRUE(pointer[i].state == via_flat[i].state);
      EXPECT_EQ(pointer[i].distance, via_flat[i].distance);
      ASSERT_EQ(pointer[i].entries.size(), via_flat[i].entries.size());
      for (size_t j = 0; j < pointer[i].entries.size(); ++j) {
        EXPECT_TRUE(pointer[i].entries[j].clause ==
                    via_flat[i].entries[j].clause);
        EXPECT_EQ(pointer[i].entries[j].score, via_flat[i].entries[j].score);
        EXPECT_EQ(pointer[i].entries[j].ref, via_flat[i].entries[j].ref);
      }
    }
  }
}

TEST(FlatProfileTreeTest, EmptyProfileBuildsEmptyArena) {
  EnvironmentPtr env = TwoFlatEnv();
  ProfileTree tree(env, Ordering::Identity(env->size()));
  const FlatProfileTree flat = FlatProfileTree::Build(tree);

  EXPECT_EQ(flat.PathCount(), 0u);
  EXPECT_EQ(flat.CellCount(), 0u);
  EXPECT_EQ(flat.NodeCount(), tree.NodeCount());
  EXPECT_EQ(flat.LeafEntryCount(), 0u);
  EXPECT_EQ(flat.num_clauses(), 0u);
  EXPECT_GT(flat.MeasuredByteSize(), 0u);

  const ContextState q({ValueRef{0, 0}, ValueRef{0, 1}});
  EXPECT_EQ(flat.ExactLookup(q), FlatProfileTree::kNoLeaf);
  FlatResolver resolver(&flat);
  EXPECT_TRUE(resolver.SearchCS(q).empty());
  EXPECT_TRUE(resolver.ResolveBest(q).empty());
  for (DistanceKind kind :
       {DistanceKind::kHierarchy, DistanceKind::kJaccard}) {
    ExpectParity(tree, flat, q, kind);
  }
}

TEST(FlatProfileTreeTest, SingleStateProfileRoundTrips) {
  EnvironmentPtr env = TwoFlatEnv();
  ProfileTree tree(env, Ordering::Identity(env->size()));
  const ContextState s({ValueRef{0, 0}, ValueRef{0, 1}});  // (happy, off)
  ASSERT_OK(tree.InsertState(s, Clause("v1"), 0.75));
  const FlatProfileTree flat = FlatProfileTree::Build(tree);

  EXPECT_EQ(flat.PathCount(), 1u);
  EXPECT_EQ(flat.CellCount(), tree.CellCount());
  EXPECT_EQ(flat.NodeCount(), tree.NodeCount());
  EXPECT_EQ(flat.LeafEntryCount(), 1u);
  EXPECT_EQ(flat.num_clauses(), 1u);

  const uint32_t leaf = flat.ExactLookup(s);
  ASSERT_NE(leaf, FlatProfileTree::kNoLeaf);
  const std::vector<ProfileTree::LeafEntry> entries = flat.EntriesOf(leaf);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].clause == Clause("v1"));
  EXPECT_EQ(entries[0].score, 0.75);
  EXPECT_EQ(entries[0].ref, 1u);

  // The exact query resolves to the stored state at distance 0; a
  // different detailed state resolves to nothing (flat hierarchies
  // only share the ALL ancestor, which is not stored).
  FlatResolver resolver(&flat);
  const std::vector<CandidatePath> best = resolver.ResolveBest(s);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_TRUE(best[0].state == s);
  EXPECT_EQ(best[0].distance, 0.0);
  for (DistanceKind kind :
       {DistanceKind::kHierarchy, DistanceKind::kJaccard}) {
    ExpectParity(tree, flat, s, kind);
    ExpectParity(tree, flat, ContextState({ValueRef{0, 1}, ValueRef{0, 0}}),
                 kind);
  }
}

TEST(FlatProfileTreeTest, DegenerateChainHierarchyJaccardTieBreak) {
  EnvironmentPtr env = ChainEnv();
  ProfileTree tree(env, Ordering::Identity(env->size()));
  const ValueRef athens{0, 0};
  const ValueRef greece{1, 0};
  const ValueRef all_place{2, 0};
  const ValueRef happy{0, 0};
  ASSERT_OK(tree.InsertState(ContextState({athens, happy}), Clause("exact"),
                             0.5));
  ASSERT_OK(tree.InsertState(ContextState({greece, happy}), Clause("country"),
                             0.6));
  ASSERT_OK(tree.InsertState(ContextState({all_place, happy}), Clause("all"),
                             0.7));
  const FlatProfileTree flat = FlatProfileTree::Build(tree);

  // Jaccard: all three stored states are at distance 0 from the
  // detailed query (equal extents along the chain — the Property-3
  // erratum), so the hierarchy-distance tie-break must pick the exact
  // state alone. Flat and pointer must agree on all of it.
  const ContextState q({athens, happy});
  FlatResolver resolver(&flat);
  ResolutionOptions jaccard;
  jaccard.distance = DistanceKind::kJaccard;
  ASSERT_EQ(resolver.SearchCS(q, jaccard).size(), 3u);
  const std::vector<CandidatePath> best = resolver.ResolveBest(q, jaccard);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_TRUE(best[0].state == q);
  ASSERT_EQ(best[0].entries.size(), 1u);
  EXPECT_TRUE(best[0].entries[0].clause == Clause("exact"));
  for (DistanceKind kind :
       {DistanceKind::kHierarchy, DistanceKind::kJaccard}) {
    ExpectParity(tree, flat, q, kind);
    ExpectParity(tree, flat, ContextState({greece, happy}), kind);
    ExpectParity(tree, flat, ContextState({all_place, ValueRef{1, 0}}), kind);
  }
}

TEST(FlatProfileTreeTest, DuplicateRefCountedEntrySurvivesRemovalAndRebuild) {
  EnvironmentPtr env = TwoFlatEnv();
  ProfileTree tree(env, Ordering::Identity(env->size()));
  const ContextState s({ValueRef{0, 1}, ValueRef{0, 0}});  // (sad, work)
  // Two identical insertions dedup into one ref-counted entry.
  ASSERT_OK(tree.InsertState(s, Clause("v2"), 0.4));
  ASSERT_OK(tree.InsertState(s, Clause("v2"), 0.4));
  {
    const FlatProfileTree flat = FlatProfileTree::Build(tree);
    EXPECT_EQ(flat.LeafEntryCount(), 1u);
    const uint32_t leaf = flat.ExactLookup(s);
    ASSERT_NE(leaf, FlatProfileTree::kNoLeaf);
    ASSERT_EQ(flat.EntriesOf(leaf).size(), 1u);
    EXPECT_EQ(flat.EntriesOf(leaf)[0].ref, 2u);
  }
  // One removal only decrements the refcount: the entry must survive
  // the rebuild.
  ASSERT_OK(tree.RemoveState(s, Clause("v2"), 0.4));
  {
    const FlatProfileTree flat = FlatProfileTree::Build(tree);
    EXPECT_EQ(flat.PathCount(), 1u);
    const uint32_t leaf = flat.ExactLookup(s);
    ASSERT_NE(leaf, FlatProfileTree::kNoLeaf);
    ASSERT_EQ(flat.EntriesOf(leaf).size(), 1u);
    EXPECT_EQ(flat.EntriesOf(leaf)[0].ref, 1u);
    ExpectParity(tree, flat, s, DistanceKind::kHierarchy);
  }
  // The second removal erases the entry and prunes the path.
  ASSERT_OK(tree.RemoveState(s, Clause("v2"), 0.4));
  {
    const FlatProfileTree flat = FlatProfileTree::Build(tree);
    EXPECT_EQ(flat.PathCount(), 0u);
    EXPECT_EQ(flat.LeafEntryCount(), 0u);
    EXPECT_EQ(flat.ExactLookup(s), FlatProfileTree::kNoLeaf);
    ExpectParity(tree, flat, s, DistanceKind::kHierarchy);
  }
}

}  // namespace
}  // namespace ctxpref
