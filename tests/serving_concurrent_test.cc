// Concurrency regression test for the stale-cache bug: a writer
// publishes new profile versions while readers rank through the
// serving layer's shared `ContextQueryTree`. Every answer must be
// consistent with exactly ONE published profile version — never a mix
// of per-state cache entries from different versions, and never a
// retired version's scores under a fresh snapshot. Runs in the CI
// TSan job (suite name matches scripts/check.sh's tsan filter).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "context/parser.h"
#include "storage/profile_store.h"
#include "storage/serving.h"
#include "tests/test_util.h"
#include "util/deadline.h"
#include "workload/poi_dataset.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::Pref;

/// Score published for version step `k`: a distinct point on the 0.05
/// grid per step (mod its period), applied to BOTH preferences — so
/// within one version every scored tuple carries the same score, and a
/// mixed-version answer is detectable as two differing scores.
double ScoreForStep(uint64_t k) {
  return 0.05 + static_cast<double>(k % 19) * 0.05;
}

/// "u<n>", built with += because GCC 12's -Wrestrict misfires on
/// `literal + std::to_string(...)` at -O2 (breaks -Werror CI builds).
std::string UserName(int u) {
  std::string id("u");
  id += std::to_string(u);
  return id;
}

class ServingConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(60, 23);
    ASSERT_OK(poi.status());
    poi_ = std::make_unique<workload::PoiDatabase>(std::move(*poi));
    env_ = poi_->env;
    // Two query states, each resolved (and cached) independently; each
    // matches a different preference, so a torn answer would pair a
    // museum score from one version with a park score from another.
    StatusOr<ExtendedDescriptor> ecod = ParseExtendedDescriptor(
        *env_, "location = Plaka or location = Kifisia");
    ASSERT_OK(ecod.status());
    query_.context = *ecod;
  }

  Profile VersionedProfile(uint64_t step) {
    const double s = ScoreForStep(step);
    Profile p(env_);
    EXPECT_OK(
        p.Insert(Pref(*env_, "location = Plaka", "type", "museum", s)));
    EXPECT_OK(
        p.Insert(Pref(*env_, "location = Kifisia", "type", "park", s)));
    return p;
  }

  std::unique_ptr<workload::PoiDatabase> poi_;
  EnvironmentPtr env_;
  ContextualQuery query_;
};

TEST_F(ServingConcurrentTest, AnswersConsistentWithOnePublishedVersion) {
  storage::ProfileStore store(env_);
  ContextQueryTree cache(env_, Ordering::Identity(env_->size()),
                         /*capacity=*/256, /*num_shards=*/4);
  store.AttachQueryCache(&cache);
  ASSERT_OK(store.CreateUser("u", VersionedProfile(0)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> swaps{0};

  std::thread writer([&] {
    for (uint64_t step = 1; !stop.load(std::memory_order_relaxed); ++step) {
      Status published =
          store.PublishProfile("u", VersionedProfile(step));
      EXPECT_OK(published);
      swaps.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        StatusOr<storage::ServedQuery> served =
            storage::ServeQuery(store, "u", poi_->relation, query_, &cache);
        ASSERT_OK(served.status());
        // The snapshot the answer claims to come from fixes the one
        // legal score; every tuple must carry exactly it.
        const double expect =
            served->snapshot->profile().preference(0).score();
        EXPECT_DOUBLE_EQ(
            served->snapshot->profile().preference(1).score(), expect);
        for (const db::ScoredTuple& t : served->result.tuples) {
          if (std::abs(t.score - expect) > 1e-12) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "version-inconsistent answers observed";
  EXPECT_GT(answered.load(), 0u);
  EXPECT_GT(swaps.load(), 0u);
  // The serving path actually exercised the cache.
  EXPECT_GT(cache.Stats().lookups, 0u);
}

TEST_F(ServingConcurrentTest, ResilientServingUnderOverloadStaysUntorn) {
  // ISSUE 8 stress: readers go through the full overload ladder
  // (admission, real-clock deadlines, stale and truncated fallbacks)
  // while a writer churns versions and an invalidator races the stale
  // rung's cache lookups. Whatever rung answers, every tuple must be
  // consistent with the ONE version the answer's provenance names.
  storage::ProfileStore store(env_);
  ContextQueryTree cache(env_, Ordering::Identity(env_->size()),
                         /*capacity=*/256, /*num_shards=*/4);
  cache.SetRetainStale(true);
  store.AttachQueryCache(&cache);
  ASSERT_OK(store.CreateUser("u", VersionedProfile(1)));
  // One user, one sequential writer: serving version == publish step,
  // so the expected score of ANY version is ScoreForStep(version).
  ASSERT_EQ(store.serving_version(), 1u);

  storage::AdmissionController admission(
      storage::AdmissionPolicy{.max_in_flight = 2});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> shed{0};

  std::thread writer([&] {
    for (uint64_t step = 2; !stop.load(std::memory_order_relaxed); ++step) {
      EXPECT_OK(store.PublishProfile("u", VersionedProfile(step)));
      std::this_thread::yield();
    }
  });
  // Invalidation churn: entries vanish at arbitrary moments, racing
  // the stale rung's LookupAtOrBefore.
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.InvalidateUser("u");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        storage::ServeOptions opts;
        opts.admission = &admission;
        // Every third request runs on a nearly-spent real-clock
        // budget, so expiry races evaluation at every cancellation
        // point (front door, state loop, truncated rung).
        if (++i % 3 == 0) {
          opts.query.deadline = util::Deadline::AfterMicros(5);
        }
        StatusOr<storage::ServedQuery> served = storage::ServeQueryResilient(
            store, "u", poi_->relation, query_, &cache, opts);
        if (!served.ok()) {
          // The ladder converts overload to kUnavailable, never to an
          // error class that looks like a bug.
          EXPECT_TRUE(served.status().IsUnavailable())
              << served.status().ToString();
          shed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const double expect = ScoreForStep(served->provenance.served_version);
        for (const db::ScoredTuple& t : served->result.tuples) {
          if (std::abs(t.score - expect) > 1e-12) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (served->provenance.via != storage::ServedVia::kFresh) {
          degraded.fetch_add(1, std::memory_order_relaxed);
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  invalidator.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "version-inconsistent answers observed";
  EXPECT_GT(answered.load(), 0u);
  // Outcome mix is timing-dependent; just prove the ladder was used at
  // all (3 readers vs 2 slots sheds or degrades some requests) without
  // pinning which rung absorbed them.
  EXPECT_GT(answered.load() + shed.load(), degraded.load());
  EXPECT_GT(cache.Stats().lookups, 0u);
}

TEST_F(ServingConcurrentTest, PinnedSnapshotsSurviveChurnAndRemoval) {
  storage::ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("u", VersionedProfile(0)));
  StatusOr<storage::SnapshotPtr> pinned = store.GetSnapshot("u");
  ASSERT_OK(pinned.status());
  const double pinned_score = (*pinned)->profile().preference(0).score();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t step = 1; !stop.load(std::memory_order_relaxed); ++step) {
      EXPECT_OK(store.PublishProfile("u", VersionedProfile(step)));
    }
  });

  // The reader keeps ranking against its pinned version: same score
  // every time, no matter how fast the writer churns.
  for (int i = 0; i < 50; ++i) {
    StatusOr<QueryResult> result =
        storage::ServeQuery(**pinned, poi_->relation, query_);
    ASSERT_OK(result.status());
    for (const db::ScoredTuple& t : result->tuples) {
      EXPECT_DOUBLE_EQ(t.score, pinned_score);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  // Removal doesn't tear the pin either.
  ASSERT_OK(store.RemoveUser("u"));
  EXPECT_DOUBLE_EQ((*pinned)->profile().preference(0).score(), pinned_score);
}

TEST_F(ServingConcurrentTest, ConcurrentWritersToDistinctUsersProceed) {
  storage::ProfileStore store(env_);
  ContextQueryTree cache(env_, Ordering::Identity(env_->size()));
  store.AttachQueryCache(&cache);
  constexpr int kUsers = 4;
  for (int u = 0; u < kUsers; ++u) {
    ASSERT_OK(store.CreateUser(UserName(u), VersionedProfile(0)));
  }

  std::vector<std::thread> writers;
  for (int u = 0; u < kUsers; ++u) {
    writers.emplace_back([&, u] {
      const std::string id = UserName(u);
      for (uint64_t step = 1; step <= 25; ++step) {
        EXPECT_OK(store.UpdateUser(id, [&](Profile& p) {
          const double s = ScoreForStep(step);
          // UpdateScore reinserts the rescored preference at the back,
          // so updating index 0 twice touches both preferences.
          CTXPREF_RETURN_IF_ERROR(p.UpdateScore(0, s));
          return p.UpdateScore(0, s);
        }));
        StatusOr<storage::ServedQuery> served = storage::ServeQuery(
            store, id, poi_->relation, query_, &cache);
        EXPECT_OK(served.status());
      }
    });
  }
  for (std::thread& t : writers) t.join();

  // Every user converged to the last published score.
  for (int u = 0; u < kUsers; ++u) {
    StatusOr<storage::SnapshotPtr> snap =
        store.GetSnapshot(UserName(u));
    ASSERT_OK(snap.status());
    EXPECT_DOUBLE_EQ((*snap)->profile().preference(0).score(),
                     ScoreForStep(25));
  }
}

}  // namespace
}  // namespace ctxpref
