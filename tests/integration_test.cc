// End-to-end integration: the full production pipeline a deployment
// would run — context model from a spec file, user profiles in a
// store, data from CSV, indexed Rank_CS with caching, explanations,
// standing queries, and persistence round trips — all in one scenario.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "context/parser.h"
#include "context/source.h"
#include "db/csv.h"
#include "db/index.h"
#include "preference/continuous.h"
#include "preference/explain.h"
#include "preference/profile_stats.h"
#include "preference/query_cache.h"
#include "storage/env_spec.h"
#include "storage/profile_store.h"
#include "storage/serving.h"
#include "tests/test_util.h"
#include "workload/default_profiles.h"
#include "workload/poi_dataset.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::Pref;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ctxpref_integration";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(IntegrationTest, FullPipeline) {
  // ---- 1. Context model: write a spec file, load it back.
  StatusOr<EnvironmentPtr> built = workload::MakePaperEnvironment();
  ASSERT_OK(built.status());
  const std::string spec_path = dir_ + "/env.spec";
  ASSERT_OK(storage::WriteEnvironmentSpecFile(**built, spec_path));
  StatusOr<EnvironmentPtr> env = storage::ReadEnvironmentSpecFile(spec_path);
  ASSERT_OK(env.status());

  // ---- 2. Database: generate POIs, round-trip through CSV.
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(120, 42);
  ASSERT_OK(poi.status());
  const std::string csv_path = dir_ + "/pois.csv";
  ASSERT_OK(db::WriteCsvFile(poi->relation, csv_path));
  StatusOr<db::Schema> schema = workload::MakePoiSchema();
  ASSERT_OK(schema.status());
  StatusOr<db::Relation> relation =
      db::LoadCsvFile(std::move(*schema), csv_path);
  ASSERT_OK(relation.status());
  ASSERT_EQ(relation->size(), poi->relation.size());

  db::IndexSet indexes(&*relation);
  ASSERT_OK(indexes.AddIndex("type"));
  ASSERT_OK(indexes.AddIndex("name"));

  // ---- 3. Users: default profiles in a store; one user edits.
  storage::ProfileStore store(*env);
  StatusOr<std::vector<Profile>> defaults = workload::AllDefaultProfiles(*env);
  ASSERT_OK(defaults.status());
  int user_num = 0;
  for (Profile& p : *defaults) {
    ASSERT_OK(store.CreateUser("user" + std::to_string(user_num++),
                               std::move(p)));
  }
  ASSERT_EQ(store.size(), 12u);

  // Edits go through the copy-on-write path: the draft is mutated off
  // to the side and published as a new snapshot.
  ASSERT_OK(store.UpdateUser("user0", [&](Profile& p) {
    CTXPREF_RETURN_IF_ERROR(p.InsertWithPolicy(
        Pref(**env, "temperature = good", "open_air", "x", 0.0),
        ConflictPolicy::kKeepExisting));  // Silently dropped (conflict).
    return p.Insert(Pref(
        **env, "location = Kolonaki and accompanying_people = friends",
        "type", "gallery", 0.95));
  }));
  StatusOr<const Profile*> alice = store.GetProfile("user0");
  ASSERT_OK(alice.status());

  ProfileStats stats = ComputeProfileStats(**alice, 300);
  EXPECT_GT(stats.num_preferences, 10u);
  EXPECT_GT(stats.coverage_estimate, 0.5);  // Defaults are broad.

  // ---- 4. Query with index + cache; explanations line up.
  StatusOr<const ProfileTree*> tree = store.GetTree("user0");
  ASSERT_OK(tree.status());
  TreeResolver resolver(*tree);
  ContextQueryTree cache(*env, Ordering::Identity((*env)->size()), 32);

  StatusOr<ExtendedDescriptor> ecod = ParseExtendedDescriptor(
      **env,
      "location = Kolonaki and temperature = warm and "
      "accompanying_people = friends");
  ASSERT_OK(ecod.status());
  ContextualQuery query;
  query.context = *ecod;
  QueryOptions options;
  options.top_k = 10;
  options.indexes = &indexes;

  StatusOr<QueryResult> direct = RankCS(*relation, query, resolver, options);
  ASSERT_OK(direct.status());
  ASSERT_FALSE(direct->tuples.empty());

  StatusOr<QueryResult> cached1 = CachedRankCS(*relation, query, resolver,
                                               **alice, cache, options);
  StatusOr<QueryResult> cached2 = CachedRankCS(*relation, query, resolver,
                                               **alice, cache, options);
  ASSERT_OK(cached1.status());
  ASSERT_OK(cached2.status());
  EXPECT_EQ(cached1->tuples, direct->tuples);
  EXPECT_EQ(cached2->tuples, direct->tuples);
  EXPECT_GE(cache.hits(), 1u);

  // The serving layer answers the same query by pinning user0's
  // current snapshot; its cache entries are tagged with the snapshot's
  // serving version, so they never mix with the Profile&-overload ones
  // above.
  StatusOr<storage::ServedQuery> served =
      storage::ServeQuery(store, "user0", *relation, query, &cache, options);
  ASSERT_OK(served.status());
  EXPECT_EQ(served->result.tuples, direct->tuples);
  EXPECT_EQ(served->snapshot->user_id(), "user0");

  // The top tuple has at least one contribution whose clause it
  // satisfies, and the text names the matched state.
  const db::RowId top = direct->tuples.front().row_id;
  std::vector<Contribution> why = ExplainTuple(*direct, *relation, top);
  ASSERT_FALSE(why.empty());
  std::string text = ExplainTupleText(*direct, *relation, **env, top);
  EXPECT_NE(text.find("covering query"), std::string::npos);

  // ---- 5. A standing query follows context changes.
  ContinuousQueryEngine engine(&*relation, *alice);
  size_t updates = 0;
  ASSERT_OK(engine
                .RegisterCurrentContext(
                    {}, options,
                    [&](size_t, const QueryResult&) { ++updates; })
                .status());
  StatusOr<ContextState> s1 =
      ContextState::FromNames(**env, {"Kolonaki", "warm", "friends"});
  ASSERT_OK(s1.status());
  ASSERT_OK(engine.OnContext(*s1).status());
  StatusOr<ContextState> s2 =
      ContextState::FromNames(**env, {"Perama", "freezing", "alone"});
  ASSERT_OK(engine.OnContext(*s2).status());
  EXPECT_GE(updates, 2u);

  // ---- 6. Persist everything; reload; same answers.
  ASSERT_OK(store.SaveAll(dir_));
  StatusOr<storage::ProfileStore> reloaded =
      storage::ProfileStore::LoadDir(*env, dir_);
  ASSERT_OK(reloaded.status());
  ASSERT_EQ(reloaded->size(), 12u);
  StatusOr<const ProfileTree*> reloaded_tree = reloaded->GetTree("user0");
  ASSERT_OK(reloaded_tree.status());
  TreeResolver reloaded_resolver(*reloaded_tree);
  StatusOr<QueryResult> after =
      RankCS(*relation, query, reloaded_resolver, options);
  ASSERT_OK(after.status());
  EXPECT_EQ(after->tuples, direct->tuples);
}

TEST_F(IntegrationTest, SensorsToRankedAnswer) {
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(80, 7);
  ASSERT_OK(poi.status());
  const ContextEnvironment& env = *poi->env;
  StatusOr<Profile> profile = workload::MakeDefaultProfile(
      poi->env, workload::AgeGroup::kOver50, workload::Sex::kFemale,
      workload::Taste::kMainstream);
  ASSERT_OK(profile.status());
  StatusOr<ProfileTree> tree = ProfileTree::Build(*profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  // Coarse sensors (the paper's §4.1 limited-accuracy case).
  CurrentContext current(poi->env);
  const Hierarchy& loc = env.parameter(0).hierarchy();
  ASSERT_OK(current.AddSource(std::make_unique<NoisySensorSource>(
      env, 0, *loc.Find(0, "Plaka"), /*coarseness=*/1.0, /*dropout=*/0.0,
      /*seed=*/5)));
  StatusOr<ContextState> sensed = current.Snapshot();
  ASSERT_OK(sensed.status());
  EXPECT_GT(sensed->value(0).level, 0);  // Definitely coarse.

  StatusOr<CompositeDescriptor> cod =
      CompositeDescriptor::ForState(env, *sensed);
  ASSERT_OK(cod.status());
  ContextualQuery query;
  query.context = ExtendedDescriptor::FromComposite(std::move(*cod));
  StatusOr<QueryResult> result = RankCS(poi->relation, query, resolver);
  ASSERT_OK(result.status());
  // A coarse context still resolves (covering states exist: the
  // default profile has city/country/all-level preferences).
  EXPECT_FALSE(result->traces.empty());
}

}  // namespace
}  // namespace ctxpref
