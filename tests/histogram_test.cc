// util/histogram.h: bucket boundary arithmetic, percentile math, and
// concurrent recording of the lock-free latency histogram.

#include "util/histogram.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ctxpref {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds [0, 2); every later bucket i holds [2^i, 2^(i+1)).
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(2), 1u);
  EXPECT_EQ(LatencyHistogram::BucketFor(3), 1u);
  EXPECT_EQ(LatencyHistogram::BucketFor(4), 2u);
  EXPECT_EQ(LatencyHistogram::BucketFor(7), 2u);
  EXPECT_EQ(LatencyHistogram::BucketFor(8), 3u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1023), 9u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1024), 10u);
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(b);
    EXPECT_EQ(LatencyHistogram::BucketFor(lo), b) << "bucket " << b;
    if (b + 1 < HistogramSnapshot::kNumBuckets) {
      const uint64_t hi = LatencyHistogram::BucketUpperBound(b);
      EXPECT_EQ(LatencyHistogram::BucketFor(hi - 1), b) << "bucket " << b;
      EXPECT_EQ(LatencyHistogram::BucketFor(hi), b + 1) << "bucket " << b;
    }
  }
}

TEST(HistogramTest, LastBucketIsOpenEnded) {
  constexpr size_t kLast = HistogramSnapshot::kNumBuckets - 1;
  EXPECT_EQ(LatencyHistogram::BucketFor(UINT64_MAX), kLast);
  LatencyHistogram h;
  h.Record(UINT64_MAX);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.counts[kLast], 1u);
  EXPECT_EQ(snap.count, 1u);
}

TEST(HistogramTest, EmptySnapshot) {
  LatencyHistogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_nanos, 0u);
  EXPECT_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, CountAndSum) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(100);
  h.Record(1000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum_nanos, 1110u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 370.0);
}

TEST(HistogramTest, PercentileSingleBucket) {
  // All samples land in bucket [64, 128); every percentile must come
  // from that bucket's range.
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(100);
  HistogramSnapshot snap = h.Snapshot();
  for (double p : {0.01, 0.5, 0.95, 0.99}) {
    const double v = snap.Percentile(p);
    EXPECT_GE(v, 64.0) << "p" << p;
    EXPECT_LE(v, 128.0) << "p" << p;
  }
}

TEST(HistogramTest, PercentileSplitsAcrossBuckets) {
  // 90 fast samples in [64, 128), 10 slow in [65536, 131072): the p50
  // must sit in the fast bucket, the p99 in the slow one.
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(100'000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_LE(snap.Percentile(0.5), 128.0);
  EXPECT_GE(snap.Percentile(0.95), 65536.0);
  EXPECT_GE(snap.Percentile(0.99), 65536.0);
}

TEST(HistogramTest, PercentileIsMonotoneInP) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 4096; v *= 2) {
    for (int i = 0; i < 16; ++i) h.Record(v);
  }
  HistogramSnapshot snap = h.Snapshot();
  double prev = 0.0;
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double v = snap.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(HistogramTest, PercentileClampsP) {
  LatencyHistogram h;
  h.Record(100);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Percentile(-1.0), snap.Percentile(0.0));
  EXPECT_EQ(snap.Percentile(2.0), snap.Percentile(1.0));
}

TEST(HistogramTest, Reset) {
  LatencyHistogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_nanos, 0u);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&h, t] {
        for (int i = 0; i < kPerThread; ++i) {
          h.Record(static_cast<uint64_t>(t * 1000 + i % 1000));
        }
      });
    }
  }
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace ctxpref
