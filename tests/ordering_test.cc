#include "preference/ordering.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::Pref;

TEST(OrderingTest, IdentityAndPermutation) {
  Ordering id = Ordering::Identity(3);
  EXPECT_EQ(id.size(), 3u);
  EXPECT_EQ(id.param_at_level(1), 1u);
  StatusOr<Ordering> perm = Ordering::FromPermutation({2, 0, 1});
  ASSERT_OK(perm.status());
  EXPECT_EQ(perm->param_at_level(0), 2u);
}

TEST(OrderingTest, RejectsNonPermutations) {
  EXPECT_TRUE(Ordering::FromPermutation({0, 0, 1}).status().IsInvalidArgument());
  EXPECT_TRUE(Ordering::FromPermutation({0, 3, 1}).status().IsInvalidArgument());
}

TEST(OrderingTest, ToStringUsesParameterNames) {
  EnvironmentPtr env = PaperEnv();
  Ordering o = *Ordering::FromPermutation({2, 1, 0});
  EXPECT_EQ(o.ToString(*env), "(accompanying_people, temperature, location)");
}

TEST(OrderingTest, MaxCellEstimateMatchesPaperFormula) {
  // m1·(1 + m2·(1 + m3)): (2, 3, 4) -> 2·(1 + 3·(1+4)) = 32.
  EXPECT_EQ(MaxCellEstimate({2, 3, 4}), 32u);
  // Single parameter: just m1.
  EXPECT_EQ(MaxCellEstimate({7}), 7u);
  // The paper's guideline: ascending domains minimize the estimate.
  EXPECT_LT(MaxCellEstimate({2, 3, 4}), MaxCellEstimate({4, 3, 2}));
  EXPECT_LT(MaxCellEstimate({2, 4, 3}), MaxCellEstimate({3, 4, 2}));
}

TEST(OrderingTest, AllOrderingsEnumeratesFactorial) {
  StatusOr<std::vector<Ordering>> all = AllOrderings(3);
  ASSERT_OK(all.status());
  EXPECT_EQ(all->size(), 6u);
  EXPECT_TRUE(AllOrderings(10).status().IsInvalidArgument());
}

TEST(OrderingTest, ActiveDomainSizesCountDistinctValues) {
  EnvironmentPtr env = PaperEnv();
  Profile p(env);
  ASSERT_OK(p.Insert(Pref(*env, "location = Plaka", "name", "X", 0.5)));
  ASSERT_OK(p.Insert(Pref(*env, "location = Kifisia", "name", "Y", 0.5)));
  ASSERT_OK(p.Insert(
      Pref(*env, "accompanying_people = friends", "name", "Z", 0.5)));
  std::vector<uint64_t> active = ActiveDomainSizes(p);
  // location: Plaka, Kifisia, all -> 3. temperature: all only -> 1.
  // companions: friends, all -> 2.
  EXPECT_EQ(active, (std::vector<uint64_t>{3, 1, 2}));
}

TEST(OrderingTest, GreedyMatchesExhaustiveOnPaperShape) {
  EnvironmentPtr env = PaperEnv();
  Profile p(env);
  // Touch many locations, few temperatures, one companion value.
  for (const char* region :
       {"Plaka", "Kifisia", "Monastiraki", "Kolonaki", "Exarchia"}) {
    ASSERT_OK(p.Insert(Pref(*env, std::string("location = ") + region, "name",
                            region, 0.5)));
  }
  ASSERT_OK(p.Insert(Pref(*env, "temperature = warm", "name", "W", 0.5)));
  ASSERT_OK(p.Insert(
      Pref(*env, "accompanying_people = friends", "name", "F", 0.5)));

  Ordering greedy = GreedyOrdering(p);
  StatusOr<Ordering> best = OptimalOrderingByEstimate(p);
  ASSERT_OK(best.status());
  EXPECT_EQ(greedy, *best);
  // Location (largest active domain) must sit at the last level.
  EXPECT_EQ(greedy.param_at_level(2), 0u);
}

}  // namespace
}  // namespace ctxpref
