#include "util/random.h"

#include <gtest/gtest.h>

#include <map>

namespace ctxpref {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(15);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfTest, AZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(19);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02) << "value " << k;
  }
}

TEST(ZipfTest, SkewFavorsSmallIndices) {
  ZipfDistribution zipf(100, 1.5);
  Rng rng(21);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  // P(0) for zipf(1.5, n=100) is ~0.39; the tail is thin.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], 15000);
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfDistribution zipf(5, 3.5);
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Sample(rng), 5u);
}

TEST(ZipfTest, HigherSkewConcentratesMore) {
  Rng rng1(25), rng2(25);
  ZipfDistribution mild(50, 0.5), steep(50, 3.0);
  int mild_zero = 0, steep_zero = 0;
  for (int i = 0; i < 20000; ++i) {
    mild_zero += (mild.Sample(rng1) == 0);
    steep_zero += (steep.Sample(rng2) == 0);
  }
  EXPECT_GT(steep_zero, mild_zero * 2);
}

}  // namespace
}  // namespace ctxpref
