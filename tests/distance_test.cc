#include "context/distance.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::State;

class DistanceTest : public ::testing::Test {
 protected:
  EnvironmentPtr env_ = PaperEnv();
};

TEST_F(DistanceTest, HierarchyDistanceZeroForSameLevels) {
  ContextState a = State(*env_, {"Plaka", "warm", "friends"});
  ContextState b = State(*env_, {"Perama", "cold", "alone"});
  // Same levels everywhere: distance 0 even though values differ —
  // the hierarchy distance measures level displacement (Def. 15).
  EXPECT_DOUBLE_EQ(HierarchyStateDistance(*env_, a, b), 0.0);
}

TEST_F(DistanceTest, HierarchyDistanceSumsLevelGaps) {
  ContextState q = State(*env_, {"Plaka", "warm", "friends"});
  // Athens: 1 level up; good: 1 level up; all: 1 level up.
  ContextState s = State(*env_, {"Athens", "good", "all"});
  EXPECT_DOUBLE_EQ(HierarchyStateDistance(*env_, s, q), 3.0);
  // Greece is 2 up.
  ContextState g = State(*env_, {"Greece", "warm", "friends"});
  EXPECT_DOUBLE_EQ(HierarchyStateDistance(*env_, g, q), 2.0);
}

TEST_F(DistanceTest, HierarchyDistanceIsSymmetric) {
  ContextState a = State(*env_, {"Athens", "good", "all"});
  ContextState b = State(*env_, {"Plaka", "warm", "friends"});
  EXPECT_DOUBLE_EQ(HierarchyStateDistance(*env_, a, b),
                   HierarchyStateDistance(*env_, b, a));
}

TEST_F(DistanceTest, JaccardDistanceZeroIffSameValues) {
  ContextState a = State(*env_, {"Plaka", "warm", "friends"});
  EXPECT_DOUBLE_EQ(JaccardStateDistance(*env_, a, a), 0.0);
}

TEST_F(DistanceTest, JaccardDistancePerComponentBounds) {
  ContextState a = State(*env_, {"Plaka", "warm", "friends"});
  ContextState b = State(*env_, {"Perama", "cold", "alone"});
  // Disjoint per component -> 1 each -> n total.
  EXPECT_DOUBLE_EQ(JaccardStateDistance(*env_, a, b), 3.0);
}

TEST_F(DistanceTest, JaccardMatchesHandComputation) {
  ContextState q = State(*env_, {"Plaka", "warm", "friends"});
  ContextState s = State(*env_, {"Athens", "good", "all"});
  // location: Athens ⊃ Plaka: 1 - 1/8 (Athens has 8 regions).
  // temperature: good ⊃ warm: 1 - 1/3. companion: all ⊃ friends: 1 - 1/3.
  const double expected = (1.0 - 1.0 / 8.0) + (2.0 / 3.0) + (2.0 / 3.0);
  EXPECT_NEAR(JaccardStateDistance(*env_, s, q), expected, 1e-12);
}

TEST_F(DistanceTest, StateDistanceDispatch) {
  ContextState q = State(*env_, {"Plaka", "warm", "friends"});
  ContextState s = State(*env_, {"Greece", "warm", "friends"});
  EXPECT_DOUBLE_EQ(StateDistance(DistanceKind::kHierarchy, *env_, s, q),
                   HierarchyStateDistance(*env_, s, q));
  EXPECT_DOUBLE_EQ(StateDistance(DistanceKind::kJaccard, *env_, s, q),
                   JaccardStateDistance(*env_, s, q));
}

TEST_F(DistanceTest, KindToString) {
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kHierarchy), "Hierarchy");
  EXPECT_STREQ(DistanceKindToString(DistanceKind::kJaccard), "Jaccard");
}

// ---- Paper Property 1: for v1 at L1, v2 = anc(v1) at L2, v3 = anc(v2)
// at L3, distJ(v3, v1) >= distJ(v2, v1). ----
TEST_F(DistanceTest, Property1JaccardMonotoneUpTheHierarchy) {
  const Hierarchy& loc = env_->parameter(0).hierarchy();
  ValueRef plaka = *loc.Find(0, "Plaka");
  ValueRef athens = loc.Anc(plaka, 1);
  ValueRef greece = loc.Anc(plaka, 2);
  ValueRef all = loc.AllValue();
  EXPECT_GE(loc.JaccardDistance(greece, plaka),
            loc.JaccardDistance(athens, plaka));
  EXPECT_GE(loc.JaccardDistance(all, plaka),
            loc.JaccardDistance(greece, plaka));
}

// ---- Paper Property 2: for s2, s3 both covering s1 with s3 covering
// s2, distH(s3, s1) > distH(s2, s1). ----
TEST_F(DistanceTest, Property2HierarchyCompatibleWithCovers) {
  ContextState s1 = State(*env_, {"Plaka", "warm", "friends"});
  ContextState s2 = State(*env_, {"Athens", "warm", "friends"});
  ContextState s3 = State(*env_, {"Greece", "good", "friends"});
  ASSERT_TRUE(s2.Covers(*env_, s1));
  ASSERT_TRUE(s3.Covers(*env_, s1));
  ASSERT_TRUE(s3.Covers(*env_, s2));
  EXPECT_GT(HierarchyStateDistance(*env_, s3, s1),
            HierarchyStateDistance(*env_, s2, s1));
}

// ---- Paper Property 3: same statement for the Jaccard distance. ----
TEST_F(DistanceTest, Property3JaccardCompatibleWithCovers) {
  ContextState s1 = State(*env_, {"Plaka", "warm", "friends"});
  ContextState s2 = State(*env_, {"Athens", "warm", "friends"});
  ContextState s3 = State(*env_, {"Greece", "good", "friends"});
  EXPECT_GT(JaccardStateDistance(*env_, s3, s1),
            JaccardStateDistance(*env_, s2, s1));
}

}  // namespace
}  // namespace ctxpref
