// Tests for the scenario-config parser: strict rejection of malformed
// input, defaults, and the Format -> Parse round-trip contract.

#include "harness/scenario_config.h"

#include <gtest/gtest.h>

#include <string>

namespace ctxpref::harness {
namespace {

TEST(ScenarioConfigTest, DefaultsParseFromEmptyText) {
  StatusOr<ScenarioConfig> cfg = ParseScenarioConfig("");
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(*cfg, ScenarioConfig{});
}

TEST(ScenarioConfigTest, ParsesKeysCommentsAndBlankLines) {
  StatusOr<ScenarioConfig> cfg = ParseScenarioConfig(
      "# a scenario\n"
      "name = flash_crowd-2\n"
      "\n"
      "users = 8          # inline comment\n"
      "profile_skew = zipf\n"
      "profile_zipf_a = 1.5\n"
      "exact_fraction = 0.25\n"
      "distance = jaccard\n"
      "deadline_micros = 5000\n"
      "cache_hit_service_micros = 100\n"
      "seed = 7\n"
      "ablation.cache = off\n"
      "ablation.shed = on\n");
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(cfg->name, "flash_crowd-2");
  EXPECT_EQ(cfg->users, 8u);
  EXPECT_EQ(cfg->profile_skew, SkewKind::kZipf);
  EXPECT_DOUBLE_EQ(cfg->exact_fraction, 0.25);
  EXPECT_EQ(cfg->distance, DistanceKind::kJaccard);
  EXPECT_EQ(cfg->deadline_micros, 5000);
  EXPECT_EQ(cfg->cache_hit_service_micros, 100);
  EXPECT_EQ(cfg->seed, 7u);
  EXPECT_FALSE(cfg->ablation.cache);
  EXPECT_TRUE(cfg->ablation.shed);
  EXPECT_TRUE(cfg->ablation.parallel);  // Untouched flags stay on.
}

TEST(ScenarioConfigTest, RejectsUnknownKey) {
  StatusOr<ScenarioConfig> cfg = ParseScenarioConfig("uzers = 4\n");
  ASSERT_FALSE(cfg.ok());
  EXPECT_TRUE(cfg.status().IsInvalidArgument());
  EXPECT_NE(cfg.status().message().find("unknown key"), std::string::npos)
      << cfg.status().ToString();
  EXPECT_NE(cfg.status().message().find("line 1"), std::string::npos);
}

TEST(ScenarioConfigTest, RejectsBadEnumValue) {
  StatusOr<ScenarioConfig> cfg =
      ParseScenarioConfig("profile_skew = gaussian\n");
  ASSERT_FALSE(cfg.ok());
  EXPECT_TRUE(cfg.status().IsInvalidArgument());
  EXPECT_NE(cfg.status().message().find("uniform|zipf"), std::string::npos);

  cfg = ParseScenarioConfig("distance = euclidean\n");
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().message().find("hierarchy|jaccard"),
            std::string::npos);
}

TEST(ScenarioConfigTest, RejectsNegativeRate) {
  StatusOr<ScenarioConfig> cfg =
      ParseScenarioConfig("update_rate = -0.1\n");
  ASSERT_FALSE(cfg.ok());
  EXPECT_TRUE(cfg.status().IsInvalidArgument());
  EXPECT_NE(cfg.status().message().find(">= 0"), std::string::npos);
}

TEST(ScenarioConfigTest, RejectsProbabilityAboveOne) {
  StatusOr<ScenarioConfig> cfg =
      ParseScenarioConfig("sensor_dropout = 1.5\n");
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().message().find("probability"), std::string::npos);
}

TEST(ScenarioConfigTest, RejectsDuplicateKey) {
  StatusOr<ScenarioConfig> cfg =
      ParseScenarioConfig("users = 4\nusers = 8\n");
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().message().find("duplicate key"), std::string::npos);
  EXPECT_NE(cfg.status().message().find("line 2"), std::string::npos);
}

TEST(ScenarioConfigTest, RejectsZeroWherePositiveRequired) {
  EXPECT_FALSE(ParseScenarioConfig("users = 0\n").ok());
  EXPECT_FALSE(ParseScenarioConfig("ops = 0\n").ok());
  EXPECT_FALSE(ParseScenarioConfig("service_micros = 0\n").ok());
  // cache_capacity and deadline_micros legitimately allow 0.
  EXPECT_TRUE(ParseScenarioConfig("cache_capacity = 0\n").ok());
  EXPECT_TRUE(ParseScenarioConfig("deadline_micros = 0\n").ok());
}

TEST(ScenarioConfigTest, RejectsBadName) {
  EXPECT_FALSE(ParseScenarioConfig("name = has space\n").ok());
  EXPECT_FALSE(ParseScenarioConfig("name = semi;colon\n").ok());
}

TEST(ScenarioConfigTest, RejectsUnknownAblationFlag) {
  StatusOr<ScenarioConfig> cfg =
      ParseScenarioConfig("ablation.warp_drive = on\n");
  ASSERT_FALSE(cfg.ok());
  EXPECT_NE(cfg.status().message().find("unknown ablation flag"),
            std::string::npos);
}

TEST(ScenarioConfigTest, RejectsAblationValueOtherThanOnOff) {
  EXPECT_FALSE(ParseScenarioConfig("ablation.cache = true\n").ok());
}

TEST(ScenarioConfigTest, FormatParsesBackToEqualConfig) {
  StatusOr<ScenarioConfig> cfg = ParseScenarioConfig(
      "name = roundtrip\n"
      "users = 3\n"
      "pois = 123\n"
      "profile_skew = zipf\n"
      "profile_zipf_a = 1.25\n"
      "lift_probability = 0.45\n"
      "ops = 777\n"
      "user_zipf_a = 0.9\n"
      "exact_fraction = 0.33\n"
      "states_per_query = 2\n"
      "update_rate = 0.05\n"
      "sensor_dropout = 0.2\n"
      "distance = jaccard\n"
      "arrival_rate_qps = 1500\n"
      "deadline_micros = 4000\n"
      "service_micros = 900\n"
      "degraded_service_micros = 90\n"
      "cache_hit_service_micros = 50\n"
      "max_in_flight = 32\n"
      "cache_capacity = 256\n"
      "flash_crowd_fraction = 0.1\n"
      "outage_fraction = 0.15\n"
      "migration_fraction = 0.2\n"
      "threads = 2\n"
      "seed = 12345\n"
      "ablation.cow = off\n"
      "ablation.tie_break = off\n");
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  StatusOr<ScenarioConfig> again =
      ParseScenarioConfig(FormatScenarioConfig(*cfg));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*again, *cfg);
}

TEST(ScenarioConfigTest, FormatOfDefaultsRoundTrips) {
  const ScenarioConfig defaults;
  StatusOr<ScenarioConfig> again =
      ParseScenarioConfig(FormatScenarioConfig(defaults));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*again, defaults);
}

TEST(ScenarioConfigTest, LoadReportsNotFoundForMissingFile) {
  StatusOr<ScenarioConfig> cfg =
      LoadScenarioConfig("/nonexistent/scenario.cfg");
  ASSERT_FALSE(cfg.ok());
  EXPECT_TRUE(cfg.status().IsNotFound());
}

TEST(AblationFlagsTest, SetGetAndNamesAgreeWithDeclaration) {
  AblationFlags flags;
  const std::vector<std::string>& names = AblationFlags::Names();
  EXPECT_GE(names.size(), 7u);
  for (const std::string& name : names) {
    StatusOr<bool> on = flags.Get(name);
    ASSERT_TRUE(on.ok()) << name;
    EXPECT_TRUE(*on) << name << " should default to on";
    ASSERT_TRUE(flags.Set(name, false).ok()) << name;
    EXPECT_FALSE(*flags.Get(name)) << name;
  }
  EXPECT_FALSE(flags.Set("nonsense", true).ok());
  EXPECT_FALSE(flags.Get("nonsense").ok());
}

}  // namespace
}  // namespace ctxpref::harness
