#include "preference/sequential_store.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::Pref;
using ::ctxpref::testing::State;

class SequentialStoreTest : public ::testing::Test {
 protected:
  Profile MakeProfile() {
    Profile p(env_);
    EXPECT_OK(p.Insert(Pref(*env_, "location = Plaka and temperature = warm",
                            "name", "Acropolis", 0.8)));
    EXPECT_OK(p.Insert(
        Pref(*env_, "accompanying_people = friends", "type", "brewery", 0.9)));
    EXPECT_OK(p.Insert(Pref(*env_, "location = Athens", "type", "museum", 0.7)));
    return p;
  }

  EnvironmentPtr env_ = PaperEnv();
};

TEST_F(SequentialStoreTest, GroupsStatesAndCounts) {
  Profile p = MakeProfile();
  SequentialStore store = SequentialStore::Build(p);
  EXPECT_EQ(store.num_groups(), 3u);
  EXPECT_EQ(store.CellCount(), 3u * 3u);  // 3 states × 3 parameters.
  EXPECT_EQ(store.LeafEntryCount(), 3u);
  EXPECT_EQ(store.ByteSize(), 9 * ProfileTree::kSerialValueBytes +
                                  3 * ProfileTree::kLeafEntryBytes);
}

TEST_F(SequentialStoreTest, SharedStateGroupsOnce) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka", "name", "Acropolis", 0.8)));
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka", "type", "museum", 0.6)));
  SequentialStore store = SequentialStore::Build(p);
  EXPECT_EQ(store.num_groups(), 1u);
  EXPECT_EQ(store.LeafEntryCount(), 2u);
  EXPECT_EQ(store.group(0).entries.size(), 2u);
}

TEST_F(SequentialStoreTest, ExactSearchStopsEarly) {
  Profile p = MakeProfile();
  SequentialStore store = SequentialStore::Build(p);
  // The first stored group is (Plaka, warm, all): matching it costs
  // exactly 3 cell comparisons.
  AccessCounter counter;
  std::vector<CandidatePath> hits =
      store.SearchExact(State(*env_, {"Plaka", "warm", "all"}), &counter);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].distance, 0.0);
  EXPECT_EQ(counter.cells(), 3u);

  // A miss scans all groups (with early exit per group).
  counter.Reset();
  EXPECT_TRUE(
      store.SearchExact(State(*env_, {"Perama", "cold", "alone"}), &counter)
          .empty());
  EXPECT_GE(counter.cells(), 3u);          // At least one per group.
  EXPECT_LE(counter.cells(), 3u * 3u);     // At most full compares.
}

TEST_F(SequentialStoreTest, CoveringSearchScansEverything) {
  Profile p = MakeProfile();
  SequentialStore store = SequentialStore::Build(p);
  AccessCounter counter;
  std::vector<CandidatePath> covering = store.SearchCovering(
      State(*env_, {"Plaka", "warm", "friends"}), {}, &counter);
  // All three stored states cover (Plaka, warm, friends).
  EXPECT_EQ(covering.size(), 3u);
  EXPECT_EQ(counter.cells(), 9u);  // Full scan, all components compared.
}

TEST_F(SequentialStoreTest, ResolveBestMatchesTreeSemantics) {
  Profile p = MakeProfile();
  SequentialStore store = SequentialStore::Build(p);
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  for (auto names : std::vector<std::vector<std::string>>{
           {"Plaka", "warm", "friends"},
           {"Kifisia", "hot", "family"},
           {"Perama", "cold", "alone"},
           {"Plaka", "warm", "all"}}) {
    ContextState q = State(*env_, names);
    for (DistanceKind kind :
         {DistanceKind::kHierarchy, DistanceKind::kJaccard}) {
      ResolutionOptions options;
      options.distance = kind;
      std::vector<CandidatePath> a = store.ResolveBest(q, options);
      std::vector<CandidatePath> b = resolver.ResolveBest(q, options);
      ASSERT_EQ(a.size(), b.size()) << q.ToString(*env_);
      // Compare as sets of states (traversal orders differ).
      for (const CandidatePath& c : a) {
        bool found = false;
        for (const CandidatePath& d : b) {
          if (c.state == d.state) {
            EXPECT_DOUBLE_EQ(c.distance, d.distance);
            EXPECT_EQ(c.entries.size(), d.entries.size());
            found = true;
          }
        }
        EXPECT_TRUE(found) << c.state.ToString(*env_);
      }
    }
  }
}

TEST_F(SequentialStoreTest, ExactOnlyOptionUsesExactScan) {
  Profile p = MakeProfile();
  SequentialStore store = SequentialStore::Build(p);
  ResolutionOptions exact;
  exact.exact_only = true;
  EXPECT_TRUE(
      store.ResolveBest(State(*env_, {"Plaka", "warm", "friends"}), exact)
          .empty());
  EXPECT_EQ(
      store.ResolveBest(State(*env_, {"Plaka", "warm", "all"}), exact).size(),
      1u);
}

TEST_F(SequentialStoreTest, AddDeduplicatesIdenticalEntries) {
  SequentialStore store(env_);
  ContextState s = State(*env_, {"Plaka", "all", "all"});
  AttributeClause clause{"name", db::CompareOp::kEq, db::Value("Acropolis")};
  store.Add(s, clause, 0.8);
  store.Add(s, clause, 0.8);
  EXPECT_EQ(store.num_groups(), 1u);
  EXPECT_EQ(store.LeafEntryCount(), 1u);
}

}  // namespace
}  // namespace ctxpref
