// Deterministic overload-injection chaos tests (ISSUE 8): a seeded
// `util::Rng` plus a `util::FakeClock` script latency spikes in the
// resolver, pool-thread stalls, and burst arrivals against the
// serving path's overload ladder — deadline propagation, admission
// sheds, bounded-staleness fallback, truncated answers, kUnavailable —
// and check that every answer carries a correct `ServingProvenance`
// and that no answer is ever torn across profile versions. Runs in the
// CI TSan job (suite name matches scripts/check.sh's tsan filter).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "context/parser.h"
#include "storage/admission.h"
#include "storage/profile_store.h"
#include "storage/serving.h"
#include "tests/test_util.h"
#include "util/clock.h"
#include "util/deadline.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/poi_dataset.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::Pref;

/// Score published for version step `k`: a distinct point on the 0.05
/// grid per step, applied to BOTH preferences — so within one version
/// every scored tuple carries the same score, and a torn (mixed-
/// version) answer is detectable as two differing scores.
double ScoreForStep(uint64_t k) {
  return 0.05 + static_cast<double>(k % 19) * 0.05;
}

class OverloadChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(60, 23);
    ASSERT_OK(poi.status());
    poi_ = std::make_unique<workload::PoiDatabase>(std::move(*poi));
    env_ = poi_->env;
    // Two query states, resolved (and cached) independently — the
    // stale rung must join them at ONE consistent version.
    StatusOr<ExtendedDescriptor> ecod = ParseExtendedDescriptor(
        *env_, "location = Plaka or location = Kifisia");
    ASSERT_OK(ecod.status());
    query_.context = *ecod;
  }

  Profile VersionedProfile(uint64_t step) {
    const double s = ScoreForStep(step);
    Profile p(env_);
    EXPECT_OK(p.Insert(Pref(*env_, "location = Plaka", "type", "museum", s)));
    EXPECT_OK(p.Insert(Pref(*env_, "location = Kifisia", "type", "park", s)));
    return p;
  }

  std::unique_ptr<workload::PoiDatabase> poi_;
  EnvironmentPtr env_;
  ContextualQuery query_;
};

// ---- Deadline propagation ------------------------------------------

TEST_F(OverloadChaosTest, ResolverLatencySpikeTripsRankCsDeadline) {
  util::FakeClock clock;
  StatusOr<storage::SnapshotPtr> snap = [&] {
    storage::ProfileStore store(env_);
    EXPECT_OK(store.CreateUser("u", VersionedProfile(1)));
    return store.GetSnapshot("u");
  }();
  ASSERT_OK(snap.status());
  TreeResolver resolver(&(*snap)->tree());

  // A chaos resolver: every resolution costs a scripted 100us latency
  // spike on the fake clock.
  std::atomic<int> resolves{0};
  ResolveFn slow_resolve = [&](const ContextState& s,
                               const ResolutionOptions& opts,
                               AccessCounter* c) {
    clock.Advance(100);
    resolves.fetch_add(1);
    return resolver.ResolveBest(s, opts, c);
  };

  // Generous budget: both states complete.
  QueryOptions options;
  options.deadline = util::Deadline::AfterMicros(10'000, &clock);
  StatusOr<QueryResult> ok_result =
      RankCS(poi_->relation, query_, *env_, slow_resolve, options);
  ASSERT_OK(ok_result.status());
  EXPECT_EQ(resolves.load(), 2);

  // Budget smaller than one spike: the first state's resolution burns
  // it, so the candidate-level cancellation point must abort with
  // partial-work accounting before the second state is ever resolved.
  resolves.store(0);
  options.deadline = util::Deadline::AfterMicros(50, &clock);
  StatusOr<QueryResult> cut =
      RankCS(poi_->relation, query_, *env_, slow_resolve, options);
  ASSERT_FALSE(cut.ok());
  EXPECT_TRUE(cut.status().IsDeadlineExceeded()) << cut.status().ToString();
  EXPECT_LT(resolves.load(), 2) << "second state must not be resolved";
  EXPECT_NE(cut.status().message().find("/2 states"), std::string::npos)
      << "partial-work accounting missing: " << cut.status().ToString();
}

TEST_F(OverloadChaosTest, PoolStallDropsExpiredStateTasksAtDequeue) {
  util::FakeClock clock;
  storage::ProfileStore store(env_);
  ContextQueryTree cache(env_, Ordering::Identity(env_->size()),
                         /*capacity=*/64);
  store.AttachQueryCache(&cache);
  ASSERT_OK(store.CreateUser("u", VersionedProfile(1)));
  StatusOr<storage::SnapshotPtr> snap = store.GetSnapshot("u");
  ASSERT_OK(snap.status());

  ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/8);
  // Park the pool's only worker — the injected "pool-thread stall".
  std::atomic<bool> gate{false};
  pool.Submit([&] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
  });

  QueryOptions options;
  options.pool = &pool;
  options.deadline = util::Deadline::AfterMicros(1'000, &clock);

  StatusOr<QueryResult> result = Status::Internal("not served yet");
  std::thread server([&] {
    result = storage::ServeQuery(**snap, poi_->relation, query_, &cache,
                                 options);
  });
  // Wait until both state tasks queue behind the stalled worker, then
  // let the deadline pass before releasing it.
  while (pool.GetWindowStats().submitted < 3) std::this_thread::yield();
  clock.Advance(2'000);
  gate.store(true, std::memory_order_release);
  server.join();

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // Both state tasks were dropped at dequeue — their bodies never ran.
  EXPECT_EQ(pool.GetWindowStats().expired_dropped, 2u);
  EXPECT_EQ(pool.GetWindowStats().executed, 1u);  // Just the stall task.
}

// ---- Admission + the degradation ladder ----------------------------

TEST_F(OverloadChaosTest, CapacityShedFallsBackToStaleThenTruncated) {
  storage::ProfileStore store(env_);
  ContextQueryTree cache(env_, Ordering::Identity(env_->size()),
                         /*capacity=*/64);
  cache.SetRetainStale(true);
  store.AttachQueryCache(&cache);
  ASSERT_OK(store.CreateUser("u", VersionedProfile(1)));

  // Warm the cache at the current version, then publish a new one; in
  // retain-stale mode the old entries survive the publish.
  StatusOr<storage::ServedQuery> warm = storage::ServeQueryResilient(
      store, "u", poi_->relation, query_, &cache);
  ASSERT_OK(warm.status());
  EXPECT_EQ(warm->provenance.via, storage::ServedVia::kFresh);
  EXPECT_EQ(warm->provenance.ToString(), "fresh");
  const uint64_t warm_version = warm->provenance.served_version;
  const storage::SnapshotPtr old_snapshot = warm->snapshot;
  ASSERT_OK(store.PublishProfile("u", VersionedProfile(2)));

  // A zero-capacity controller sheds everything at the front door.
  storage::AdmissionController admission(
      storage::AdmissionPolicy{.max_in_flight = 0});
  storage::ServeOptions opts;
  opts.admission = &admission;

  StatusOr<storage::ServedQuery> stale = storage::ServeQueryResilient(
      store, "u", poi_->relation, query_, &cache, opts);
  ASSERT_OK(stale.status());
  EXPECT_EQ(stale->provenance.via, storage::ServedVia::kStale);
  EXPECT_EQ(stale->provenance.served_version, warm_version);
  EXPECT_EQ(stale->provenance.ToString(),
            "stale-v" + std::to_string(warm_version));
  EXPECT_EQ(stale->provenance.admission,
            storage::AdmissionDecision::kShedCapacity);
  // Differential: the stale answer must be bit-identical to a direct
  // serve pinned at that older snapshot.
  StatusOr<QueryResult> direct =
      storage::ServeQuery(*old_snapshot, poi_->relation, query_);
  ASSERT_OK(direct.status());
  EXPECT_EQ(stale->result.tuples, direct->tuples);

  // With the stale rung disabled the same shed lands on the truncated
  // rung: first state only, bounded top-k, still a real answer.
  storage::ServeOptions no_stale = opts;
  no_stale.allow_stale = false;
  no_stale.truncated_top_k = 3;
  StatusOr<storage::ServedQuery> truncated = storage::ServeQueryResilient(
      store, "u", poi_->relation, query_, &cache, no_stale);
  ASSERT_OK(truncated.status());
  EXPECT_EQ(truncated->provenance.via, storage::ServedVia::kTruncated);
  EXPECT_EQ(truncated->provenance.ToString(), "truncated");
  // One state's matches only, at the CURRENT version. All its tuples
  // tie (one preference score), so TopK's keep-ties rule can exceed
  // the nominal bound — the warm two-state answer still dominates it.
  EXPECT_LT(truncated->result.tuples.size(), warm->result.tuples.size());
  EXPECT_EQ(truncated->result.traces.size(), 1u) << "first state only";
  for (const db::ScoredTuple& t : truncated->result.tuples) {
    EXPECT_DOUBLE_EQ(t.score, ScoreForStep(2));
  }

  // And with the whole ladder off, the shed is surfaced as
  // kUnavailable (with a shed provenance in the message).
  storage::ServeOptions nothing = opts;
  nothing.allow_stale = false;
  nothing.allow_truncated = false;
  StatusOr<storage::ServedQuery> shed = storage::ServeQueryResilient(
      store, "u", poi_->relation, query_, &cache, nothing);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();

  const storage::AdmissionController::Stats stats = admission.GetStats();
  EXPECT_EQ(stats.shed_capacity_total, 3u);
  EXPECT_EQ(stats.admitted_total, 0u);
}

TEST_F(OverloadChaosTest, MaintenanceSliceShedsWithoutTouchingInteractive) {
  storage::AdmissionController admission(storage::AdmissionPolicy{
      .max_in_flight = 8, .maintenance_max_in_flight = 1});

  storage::AdmissionController::Ticket m1 =
      admission.Admit(storage::QueryPriority::kMaintenance);
  EXPECT_TRUE(m1.admitted());
  storage::AdmissionController::Ticket m2 =
      admission.Admit(storage::QueryPriority::kMaintenance);
  EXPECT_FALSE(m2.admitted());
  EXPECT_EQ(m2.decision(), storage::AdmissionDecision::kShedMaintenance);
  // Interactive traffic is untouched by the exhausted maintenance
  // slice.
  storage::AdmissionController::Ticket i1 =
      admission.Admit(storage::QueryPriority::kInteractive);
  EXPECT_TRUE(i1.admitted());

  // Releasing the maintenance slot (RAII) frees the slice.
  { storage::AdmissionController::Ticket moved = std::move(m1); }
  EXPECT_FALSE(m1.admitted()) << "moved-from ticket holds nothing";
  storage::AdmissionController::Ticket m3 =
      admission.Admit(storage::QueryPriority::kMaintenance);
  EXPECT_TRUE(m3.admitted());

  const storage::AdmissionController::Stats stats = admission.GetStats();
  EXPECT_EQ(stats.admitted_total, 3u);
  EXPECT_EQ(stats.shed_maintenance_total, 1u);
  EXPECT_EQ(stats.in_flight, 2u);
  EXPECT_EQ(stats.in_flight_highwater, 2u);
}

TEST_F(OverloadChaosTest, ExpiredDeadlineShedsAtTheFrontDoor) {
  util::FakeClock clock;
  storage::ProfileStore store(env_);
  ASSERT_OK(store.CreateUser("u", VersionedProfile(1)));
  storage::AdmissionController admission;

  storage::ServeOptions opts;
  opts.admission = &admission;
  opts.allow_stale = false;     // No cache attached anyway.
  opts.allow_truncated = false; // Isolate the front-door path.
  opts.query.deadline = util::Deadline::AfterMicros(100, &clock);
  clock.Advance(200);

  StatusOr<storage::ServedQuery> served = storage::ServeQueryResilient(
      store, "u", poi_->relation, query_, nullptr, opts);
  ASSERT_FALSE(served.ok());
  EXPECT_TRUE(served.status().IsUnavailable());
  EXPECT_EQ(admission.GetStats().shed_deadline_total, 1u);
  EXPECT_EQ(admission.GetStats().admitted_total, 0u)
      << "an expired request must not consume a slot";
}

TEST_F(OverloadChaosTest, StaleRungRefusesTornMixedVersionJoins) {
  // Force the pathological case: state A cached at v_new, state B only
  // at v_old. The stale rung must refuse the mixed join (fall to
  // truncated) rather than stitch two versions into one answer.
  storage::ProfileStore store(env_);
  ContextQueryTree cache(env_, Ordering::Identity(env_->size()),
                         /*capacity=*/64);
  cache.SetRetainStale(true);
  store.AttachQueryCache(&cache);
  ASSERT_OK(store.CreateUser("u", VersionedProfile(1)));

  // Warm BOTH states at v1 via the two-state query.
  ASSERT_OK(storage::ServeQueryResilient(store, "u", poi_->relation, query_,
                                         &cache)
                .status());
  ASSERT_OK(store.PublishProfile("u", VersionedProfile(2)));

  // Re-warm ONLY the first state (single-state query) at v2.
  StatusOr<ExtendedDescriptor> first_only =
      ParseExtendedDescriptor(*env_, "location = Plaka");
  ASSERT_OK(first_only.status());
  ContextualQuery first_query;
  first_query.context = *first_only;
  StatusOr<storage::ServedQuery> rewarm = storage::ServeQueryResilient(
      store, "u", poi_->relation, first_query, &cache);
  ASSERT_OK(rewarm.status());
  ASSERT_EQ(rewarm->provenance.via, storage::ServedVia::kFresh);

  // Shed the two-state query. First state hits at v2, second only has
  // v1 ⇒ no consistent version ⇒ truncated, never a v1+v2 mix.
  storage::AdmissionController admission(
      storage::AdmissionPolicy{.max_in_flight = 0});
  storage::ServeOptions opts;
  opts.admission = &admission;
  StatusOr<storage::ServedQuery> served = storage::ServeQueryResilient(
      store, "u", poi_->relation, query_, &cache, opts);
  ASSERT_OK(served.status());
  EXPECT_EQ(served->provenance.via, storage::ServedVia::kTruncated);
  // Whatever was served is internally consistent: one score everywhere.
  for (const db::ScoredTuple& t : served->result.tuples) {
    EXPECT_DOUBLE_EQ(t.score, ScoreForStep(2));
  }
}

// ---- The seeded burst harness --------------------------------------

TEST_F(OverloadChaosTest, SeededBurstsServeUntornAnswersWithProvenance) {
  Rng rng(20260808);
  util::FakeClock clock;
  storage::ProfileStore store(env_);
  ContextQueryTree cache(env_, Ordering::Identity(env_->size()),
                         /*capacity=*/256, /*num_shards=*/4);
  cache.SetRetainStale(true);
  store.AttachQueryCache(&cache);
  uint64_t step = 1;
  ASSERT_OK(store.CreateUser("u", VersionedProfile(step)));

  storage::AdmissionController admission(
      storage::AdmissionPolicy{.max_in_flight = 4});
  // Version → the published score at that serving version, for the
  // torn-answer check on stale serves.
  std::map<uint64_t, double> score_at_version;
  score_at_version[store.serving_version()] = ScoreForStep(step);

  uint64_t fresh = 0, stale = 0, truncated = 0, unavailable = 0;
  for (int i = 0; i < 400; ++i) {
    // Burst arrivals: occasionally the clock jumps (a latency spike
    // elsewhere in the server), so some in-flight budgets die.
    clock.Advance(rng.Uniform(200));
    const uint64_t action = rng.Uniform(10);
    if (action == 0) {
      // Publish churn.
      ++step;
      ASSERT_OK(store.PublishProfile("u", VersionedProfile(step)));
      score_at_version[store.serving_version()] = ScoreForStep(step);
      continue;
    }
    // Scripted overload: sometimes pre-fill the admission slots so the
    // request is shed at the door, sometimes hand out a budget that is
    // already (or nearly) dead.
    std::vector<storage::AdmissionController::Ticket> hogs;
    if (action <= 3) {
      for (int h = 0; h < 4; ++h) {
        hogs.push_back(
            admission.Admit(storage::QueryPriority::kInteractive));
      }
    }
    storage::ServeOptions opts;
    opts.admission = &admission;
    opts.max_stale_versions = 8;
    opts.query.deadline = util::Deadline::AfterMicros(
        action == 4 ? 0 : 10'000, &clock);
    StatusOr<storage::ServedQuery> served = storage::ServeQueryResilient(
        store, "u", poi_->relation, query_, &cache, opts);
    if (!served.ok()) {
      ASSERT_TRUE(served.status().IsUnavailable())
          << served.status().ToString();
      ++unavailable;
      continue;
    }
    const storage::ServingProvenance& prov = served->provenance;
    // Every answer must be internally consistent with ONE published
    // version — the one its provenance names.
    ASSERT_TRUE(score_at_version.count(prov.served_version))
        << "provenance names an unknown version " << prov.served_version;
    const double expect = score_at_version[prov.served_version];
    for (const db::ScoredTuple& t : served->result.tuples) {
      ASSERT_DOUBLE_EQ(t.score, expect)
          << "torn answer at iteration " << i << " provenance "
          << prov.ToString();
    }
    switch (prov.via) {
      case storage::ServedVia::kFresh:
        ++fresh;
        EXPECT_EQ(prov.served_version, prov.current_version);
        EXPECT_EQ(prov.admission, storage::AdmissionDecision::kAdmitted);
        break;
      case storage::ServedVia::kStale:
        ++stale;
        // == is legal: a shed request whose cache entries are at the
        // pinned version serves them without re-evaluating.
        EXPECT_LE(prov.served_version, prov.current_version);
        EXPECT_GE(prov.served_version + opts.max_stale_versions,
                  prov.current_version);
        break;
      case storage::ServedVia::kTruncated:
        ++truncated;
        EXPECT_EQ(served->result.traces.size(), 1u);
        break;
      case storage::ServedVia::kShed:
        FAIL() << "kShed must pair with a kUnavailable status";
    }
  }
  // The scripted mix exercised every rung.
  EXPECT_GT(fresh, 0u);
  EXPECT_GT(stale, 0u);
  EXPECT_GT(unavailable + truncated, 0u);
  EXPECT_EQ(admission.GetStats().in_flight, 0u) << "tickets all returned";
}

}  // namespace
}  // namespace ctxpref
