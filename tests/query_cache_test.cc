#include "preference/query_cache.h"

#include <gtest/gtest.h>

#include "context/parser.h"
#include "tests/test_util.h"
#include "workload/poi_dataset.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::Pref;
using ::ctxpref::testing::State;

class QueryCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(30, 5);
    ASSERT_OK(poi.status());
    poi_ = std::make_unique<workload::PoiDatabase>(std::move(*poi));
    env_ = poi_->env;
  }

  /// `num_shards` = 1 keeps a single LRU domain so eviction order is
  /// exact; multi-shard behavior is covered by the dedicated tests.
  ContextQueryTree MakeCache(size_t capacity = 0, size_t num_shards = 1) {
    return ContextQueryTree(env_, Ordering::Identity(env_->size()), capacity,
                            num_shards);
  }

  std::unique_ptr<workload::PoiDatabase> poi_;
  EnvironmentPtr env_;
};

TEST_F(QueryCacheTest, PutThenLookupHits) {
  ContextQueryTree cache = MakeCache();
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  cache.Put(s, 1, {{3, 0.9}, {5, 0.7}});
  std::shared_ptr<const ContextQueryTree::Entry> hit = cache.Lookup(s, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->tuples.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(QueryCacheTest, MissOnAbsentState) {
  ContextQueryTree cache = MakeCache();
  EXPECT_EQ(cache.Lookup(State(*env_, {"Plaka", "warm", "friends"}), 1),
            nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(QueryCacheTest, StaleVersionInvalidatesOnTouch) {
  ContextQueryTree cache = MakeCache();
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  cache.Put(s, 1, {{3, 0.9}});
  EXPECT_EQ(cache.Lookup(s, 2), nullptr);  // Profile moved to version 2.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  // A stale drop is an invalidation, not just a miss.
  EXPECT_EQ(cache.invalidations(), 1u);
  // Re-populate at the new version.
  cache.Put(s, 2, {{3, 0.9}});
  EXPECT_NE(cache.Lookup(s, 2), nullptr);
}

TEST_F(QueryCacheTest, StatsSnapshotAggregatesAllCounters) {
  ContextQueryTree cache = MakeCache(/*capacity=*/1);
  ContextState a = State(*env_, {"Plaka", "warm", "friends"});
  ContextState b = State(*env_, {"Kifisia", "hot", "family"});
  cache.Put(a, 1, {{1, 0.5}});
  EXPECT_NE(cache.Lookup(a, 1), nullptr);  // hit
  EXPECT_EQ(cache.Lookup(b, 1), nullptr);  // miss
  cache.Put(b, 1, {{2, 0.5}});             // evicts a
  cache.Put(a, 2, {{1, 0.5}});             // evicts b
  EXPECT_EQ(cache.Lookup(a, 3), nullptr);  // stale drop: miss + invalidation

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.size, 0u);
  // The legacy accessors are views of the same snapshot.
  EXPECT_EQ(cache.hits(), stats.hits);
  EXPECT_EQ(cache.misses(), stats.misses);
  EXPECT_EQ(cache.evictions(), stats.evictions);
  EXPECT_EQ(cache.invalidations(), stats.invalidations);
  EXPECT_EQ(cache.size(), stats.size);
}

TEST_F(QueryCacheTest, PutOverwritesInPlace) {
  ContextQueryTree cache = MakeCache();
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  cache.Put(s, 1, {{3, 0.9}});
  cache.Put(s, 1, {{4, 0.8}});
  EXPECT_EQ(cache.size(), 1u);
  std::shared_ptr<const ContextQueryTree::Entry> hit = cache.Lookup(s, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->tuples[0].row_id, 4u);
}

TEST_F(QueryCacheTest, LookupSnapshotSurvivesOverwrite) {
  ContextQueryTree cache = MakeCache();
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  cache.Put(s, 1, {{3, 0.9}});
  std::shared_ptr<const ContextQueryTree::Entry> snapshot = cache.Lookup(s, 1);
  ASSERT_NE(snapshot, nullptr);
  cache.Put(s, 1, {{4, 0.8}});
  cache.InvalidateAll();
  // The reader's snapshot is unaffected by the concurrent-style churn.
  EXPECT_EQ(snapshot->tuples[0].row_id, 3u);
}

TEST_F(QueryCacheTest, LruEvictionBeyondCapacity) {
  ContextQueryTree cache = MakeCache(/*capacity=*/2, /*num_shards=*/1);
  ContextState a = State(*env_, {"Plaka", "warm", "friends"});
  ContextState b = State(*env_, {"Kifisia", "hot", "family"});
  ContextState c = State(*env_, {"Perama", "cold", "alone"});
  cache.Put(a, 1, {{1, 0.5}});
  cache.Put(b, 1, {{2, 0.5}});
  // Touch `a` so `b` is the LRU victim.
  EXPECT_NE(cache.Lookup(a, 1), nullptr);
  cache.Put(c, 1, {{3, 0.5}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Lookup(a, 1), nullptr);
  EXPECT_EQ(cache.Lookup(b, 1), nullptr);  // Evicted.
  EXPECT_NE(cache.Lookup(c, 1), nullptr);
}

TEST_F(QueryCacheTest, ShardedCacheKeepsStatesSeparate) {
  ContextQueryTree cache = MakeCache(/*capacity=*/0, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 8u);
  std::vector<ContextState> states = {
      State(*env_, {"Plaka", "warm", "friends"}),
      State(*env_, {"Kifisia", "hot", "family"}),
      State(*env_, {"Perama", "cold", "alone"}),
      State(*env_, {"Plaka", "hot", "alone"}),
      State(*env_, {"Kifisia", "cold", "friends"}),
  };
  for (size_t i = 0; i < states.size(); ++i) {
    cache.Put(states[i], 1, {{static_cast<db::RowId>(i), 0.5}});
  }
  EXPECT_EQ(cache.size(), states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    std::shared_ptr<const ContextQueryTree::Entry> hit =
        cache.Lookup(states[i], 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->tuples[0].row_id, i);
  }
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(QueryCacheTest, ShardCountClampedToSmallCapacity) {
  // With capacity < num_shards, an unclamped split would give every
  // shard a budget of 1 and let the global bound balloon to
  // num_shards; the constructor clamps the shard count instead.
  ContextQueryTree cache = MakeCache(/*capacity=*/2, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 2u);
  std::vector<ContextState> states = {
      State(*env_, {"Plaka", "warm", "friends"}),
      State(*env_, {"Kifisia", "hot", "family"}),
      State(*env_, {"Perama", "cold", "alone"}),
      State(*env_, {"Plaka", "hot", "alone"}),
      State(*env_, {"Kifisia", "cold", "friends"}),
  };
  for (size_t i = 0; i < states.size(); ++i) {
    cache.Put(states[i], 1, {{static_cast<db::RowId>(i), 0.5}});
  }
  // capacity 2 over 2 clamped shards = 1 per shard, no rounding
  // overshoot: the global bound is exactly the requested capacity.
  EXPECT_LE(cache.size(), 2u);
}

TEST_F(QueryCacheTest, InvalidateAllDropsEverything) {
  ContextQueryTree cache = MakeCache();
  cache.Put(State(*env_, {"Plaka", "warm", "friends"}), 1, {{1, 0.5}});
  cache.Put(State(*env_, {"Kifisia", "hot", "family"}), 1, {{2, 0.5}});
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(State(*env_, {"Plaka", "warm", "friends"}), 1),
            nullptr);
}

TEST_F(QueryCacheTest, UsersAreIsolatedNamespaces) {
  ContextQueryTree cache = MakeCache();
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  cache.Put("alice", s, 1, {{1, 0.9}});
  cache.Put("bob", s, 1, {{2, 0.4}});
  // Same state, same version — but each user sees only their entry.
  std::shared_ptr<const ContextQueryTree::Entry> alice =
      cache.Lookup("alice", s, 1);
  std::shared_ptr<const ContextQueryTree::Entry> bob =
      cache.Lookup("bob", s, 1);
  ASSERT_NE(alice, nullptr);
  ASSERT_NE(bob, nullptr);
  EXPECT_EQ(alice->tuples[0].row_id, 1);
  EXPECT_EQ(bob->tuples[0].row_id, 2);
  // The anonymous (single-user sugar) namespace is a third user.
  EXPECT_EQ(cache.Lookup(s, 1), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(QueryCacheTest, InvalidateUserDropsOnlyThatUser) {
  ContextQueryTree cache = MakeCache(/*capacity=*/0, /*num_shards=*/4);
  ContextState a = State(*env_, {"Plaka", "warm", "friends"});
  ContextState b = State(*env_, {"Kifisia", "hot", "family"});
  cache.Put("alice", a, 1, {{1, 0.5}});
  cache.Put("alice", b, 1, {{2, 0.5}});
  cache.Put("bob", a, 1, {{3, 0.5}});
  ASSERT_EQ(cache.size(), 3u);

  EXPECT_EQ(cache.InvalidateUser("alice"), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("alice", a, 1), nullptr);
  EXPECT_EQ(cache.Lookup("alice", b, 1), nullptr);
  EXPECT_NE(cache.Lookup("bob", a, 1), nullptr);
  // Eager drops count as invalidations.
  EXPECT_GE(cache.invalidations(), 2u);
  // Invalidating an unknown user is a no-op.
  EXPECT_EQ(cache.InvalidateUser("carol"), 0u);
}

TEST_F(QueryCacheTest, EvictionAccountsPerUserEntries) {
  ContextQueryTree cache = MakeCache(/*capacity=*/2);
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  cache.Put("alice", s, 1, {{1, 0.5}});
  cache.Put("bob", s, 1, {{2, 0.5}});
  cache.Put("carol", s, 1, {{3, 0.5}});  // Evicts alice (LRU).
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup("alice", s, 1), nullptr);
  EXPECT_NE(cache.Lookup("bob", s, 1), nullptr);
  EXPECT_NE(cache.Lookup("carol", s, 1), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST_F(QueryCacheTest, VersionTagsAreScopedPerUser) {
  ContextQueryTree cache = MakeCache();
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  cache.Put("alice", s, 7, {{1, 0.5}});
  cache.Put("bob", s, 9, {{2, 0.5}});
  // Bob's newer version does not disturb alice's tag, and a stale
  // lookup drops only the touched user's entry.
  EXPECT_NE(cache.Lookup("alice", s, 7), nullptr);
  EXPECT_EQ(cache.Lookup("alice", s, 8), nullptr);  // stale drop
  EXPECT_NE(cache.Lookup("bob", s, 9), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(QueryCacheTest, LookupCountsCellAccesses) {
  ContextQueryTree cache = MakeCache();
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  cache.Put(s, 1, {{1, 0.5}});
  AccessCounter counter;
  cache.Lookup(s, 1, &counter);
  EXPECT_EQ(counter.cells(), 3u);  // One cell per level, single-path trie.
}

TEST_F(QueryCacheTest, CachedRankCSMatchesUncachedAndHits) {
  Profile profile(env_);
  ASSERT_OK(profile.Insert(
      Pref(*env_, "temperature = hot", "type", "park", 0.9)));
  ASSERT_OK(profile.Insert(
      Pref(*env_, "accompanying_people = friends", "type", "brewery", 0.7)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  ContextQueryTree cache = MakeCache(16);

  StatusOr<ExtendedDescriptor> ecod = ParseExtendedDescriptor(
      *env_,
      "location = Plaka and temperature = hot and "
      "accompanying_people = friends");
  ASSERT_OK(ecod.status());
  ContextualQuery q;
  q.context = *ecod;

  StatusOr<QueryResult> uncached = RankCS(poi_->relation, q, resolver);
  ASSERT_OK(uncached.status());

  StatusOr<QueryResult> first =
      CachedRankCS(poi_->relation, q, resolver, profile, cache);
  ASSERT_OK(first.status());
  EXPECT_EQ(first->tuples, uncached->tuples);
  EXPECT_EQ(cache.hits(), 0u);

  StatusOr<QueryResult> second =
      CachedRankCS(poi_->relation, q, resolver, profile, cache);
  ASSERT_OK(second.status());
  EXPECT_EQ(second->tuples, uncached->tuples);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(QueryCacheTest, CacheHitProducesIdenticalTrace) {
  Profile profile(env_);
  ASSERT_OK(profile.Insert(
      Pref(*env_, "temperature = hot", "type", "park", 0.9)));
  ASSERT_OK(profile.Insert(
      Pref(*env_, "accompanying_people = friends", "type", "brewery", 0.7)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  ContextQueryTree cache = MakeCache(16);

  StatusOr<ExtendedDescriptor> ecod = ParseExtendedDescriptor(
      *env_, "temperature = hot and accompanying_people = friends");
  ASSERT_OK(ecod.status());
  ContextualQuery q;
  q.context = *ecod;

  StatusOr<QueryResult> miss =
      CachedRankCS(poi_->relation, q, resolver, profile, cache);
  ASSERT_OK(miss.status());
  StatusOr<QueryResult> hit =
      CachedRankCS(poi_->relation, q, resolver, profile, cache);
  ASSERT_OK(hit.status());
  EXPECT_GE(cache.hits(), 1u);

  // Resolution provenance must not be lost on the cached path.
  ASSERT_EQ(hit->traces.size(), miss->traces.size());
  for (size_t i = 0; i < miss->traces.size(); ++i) {
    EXPECT_EQ(hit->traces[i].query_state, miss->traces[i].query_state);
    ASSERT_EQ(hit->traces[i].candidates.size(),
              miss->traces[i].candidates.size());
    EXPECT_FALSE(miss->traces[i].candidates.empty())
        << "trace " << i << " resolved no candidates; test is vacuous";
    for (size_t c = 0; c < miss->traces[i].candidates.size(); ++c) {
      const CandidatePath& m = miss->traces[i].candidates[c];
      const CandidatePath& h = hit->traces[i].candidates[c];
      EXPECT_EQ(h.state, m.state);
      EXPECT_EQ(h.distance, m.distance);
      ASSERT_EQ(h.entries.size(), m.entries.size());
      for (size_t e = 0; e < m.entries.size(); ++e) {
        EXPECT_EQ(h.entries[e].clause, m.entries[e].clause);
        EXPECT_EQ(h.entries[e].score, m.entries[e].score);
      }
    }
  }
}

TEST_F(QueryCacheTest, CachedRankCSRespectsProfileVersion) {
  Profile profile(env_);
  ASSERT_OK(profile.Insert(
      Pref(*env_, "temperature = hot", "type", "park", 0.9)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  ContextQueryTree cache = MakeCache(16);

  StatusOr<ExtendedDescriptor> ecod =
      ParseExtendedDescriptor(*env_, "temperature = hot");
  ContextualQuery q;
  q.context = *ecod;

  ASSERT_OK(
      CachedRankCS(poi_->relation, q, resolver, profile, cache).status());
  // Mutate the profile: the cached state is now stale.
  ASSERT_OK(profile.Insert(
      Pref(*env_, "temperature = hot", "type", "museum", 0.8)));
  StatusOr<ProfileTree> tree2 = ProfileTree::Build(profile);
  ASSERT_OK(tree2.status());
  TreeResolver resolver2(&*tree2);
  StatusOr<QueryResult> fresh =
      CachedRankCS(poi_->relation, q, resolver2, profile, cache);
  ASSERT_OK(fresh.status());
  // The new museum preference must show up (stale entry not served).
  const size_t type_col = *poi_->relation.schema().IndexOf("type");
  bool saw_museum = false;
  for (const db::ScoredTuple& t : fresh->tuples) {
    saw_museum |=
        poi_->relation.row(t.row_id)[type_col].AsString() == "museum";
  }
  EXPECT_TRUE(saw_museum);
  EXPECT_GE(cache.invalidations(), 1u);
}

TEST_F(QueryCacheTest, CachedRankCSAppliesSelectionsPostCache) {
  Profile profile(env_);
  ASSERT_OK(profile.Insert(Pref(*env_, "*", "type", "park", 0.9)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  ContextQueryTree cache = MakeCache(16);

  StatusOr<ExtendedDescriptor> ecod =
      ParseExtendedDescriptor(*env_, "temperature = hot");
  ContextualQuery unrestricted;
  unrestricted.context = *ecod;
  ASSERT_OK(CachedRankCS(poi_->relation, unrestricted, resolver, profile,
                         cache)
                .status());

  // Same context state, now with a selection: served from cache but
  // filtered.
  ContextualQuery restricted = unrestricted;
  StatusOr<db::Predicate> sel = db::Predicate::Create(
      poi_->relation.schema(), "location", db::CompareOp::kEq,
      db::Value("Plaka"));
  ASSERT_OK(sel.status());
  restricted.selections.push_back(*sel);
  StatusOr<QueryResult> result =
      CachedRankCS(poi_->relation, restricted, resolver, profile, cache);
  ASSERT_OK(result.status());
  EXPECT_GE(cache.hits(), 1u);
  const size_t loc_col = *poi_->relation.schema().IndexOf("location");
  for (const db::ScoredTuple& t : result->tuples) {
    EXPECT_EQ(poi_->relation.row(t.row_id)[loc_col].AsString(), "Plaka");
  }
}

TEST_F(QueryCacheTest, CachedRankCSRejectsNonAssociativePolicies) {
  Profile profile(env_);
  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  ContextQueryTree cache = MakeCache();
  ContextualQuery q;
  QueryOptions options;
  options.combine = db::CombinePolicy::kAvg;
  EXPECT_TRUE(CachedRankCS(poi_->relation, q, resolver, profile, cache,
                           options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ctxpref
