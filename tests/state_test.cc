#include "context/state.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::State;

class StateTest : public ::testing::Test {
 protected:
  EnvironmentPtr env_ = PaperEnv();
};

TEST_F(StateTest, EnvironmentBasics) {
  EXPECT_EQ(env_->size(), 3u);
  EXPECT_EQ(env_->parameter(0).name(), "location");
  EXPECT_EQ(*env_->IndexOf("temperature"), 1u);
  EXPECT_TRUE(env_->IndexOf("nope").status().IsNotFound());
  // World: 15 regions × 5 conditions × 3 companions.
  EXPECT_EQ(env_->WorldSize(), 15u * 5u * 3u);
  // Extended world: (15+3+1+1) × (5+2+1) × (3+1).
  EXPECT_EQ(env_->ExtendedWorldSize(), 20u * 8u * 4u);
}

TEST_F(StateTest, EnvironmentRejectsDuplicatesAndEmpty) {
  StatusOr<HierarchyPtr> h = MakeFlatHierarchy("h", "L", {"x"});
  std::vector<ContextParameter> dup;
  dup.emplace_back("p", *h);
  dup.emplace_back("p", *h);
  EXPECT_TRUE(
      ContextEnvironment::Create(std::move(dup)).status().IsInvalidArgument());
  EXPECT_TRUE(ContextEnvironment::Create({}).status().IsInvalidArgument());
}

TEST_F(StateTest, FromNamesResolvesAnyLevel) {
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  EXPECT_TRUE(s.IsDetailed());
  EXPECT_EQ(s.ToString(*env_), "(Plaka, warm, friends)");

  ContextState g = State(*env_, {"Greece", "good", "all"});
  EXPECT_FALSE(g.IsDetailed());
  EXPECT_EQ(g.ToString(*env_), "(Greece, good, all)");
}

TEST_F(StateTest, FromNamesErrors) {
  EXPECT_TRUE(ContextState::FromNames(*env_, {"Plaka", "warm"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ContextState::FromNames(*env_, {"Mars", "warm", "friends"})
                  .status()
                  .IsNotFound());
}

TEST_F(StateTest, AllStateIsTop) {
  ContextState all = ContextState::AllState(*env_);
  EXPECT_EQ(all.ToString(*env_), "(all, all, all)");
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  EXPECT_TRUE(all.Covers(*env_, s));
  EXPECT_FALSE(s.Covers(*env_, all));
}

TEST_F(StateTest, CoversMatchesPaperSemantics) {
  // (Greece, warm, friends) covers (Plaka, warm, friends).
  ContextState greece = State(*env_, {"Greece", "warm", "friends"});
  ContextState plaka = State(*env_, {"Plaka", "warm", "friends"});
  EXPECT_TRUE(greece.Covers(*env_, plaka));
  EXPECT_FALSE(plaka.Covers(*env_, greece));

  // (Athens, good, all) covers (Plaka, warm, friends): each component
  // is an ancestor.
  ContextState athens_good = State(*env_, {"Athens", "good", "all"});
  EXPECT_TRUE(athens_good.Covers(*env_, plaka));

  // (Athens, good, all) does NOT cover (Perama, warm, friends):
  // Perama is in Ioannina.
  ContextState perama = State(*env_, {"Perama", "warm", "friends"});
  EXPECT_FALSE(athens_good.Covers(*env_, perama));

  // Incomparable pair from the paper's §4.2 example: (Greece, warm, ·)
  // and (Athens, good, ·) — neither covers the other.
  ContextState greece_warm = State(*env_, {"Greece", "warm", "all"});
  ContextState athens_good2 = State(*env_, {"Athens", "good", "all"});
  EXPECT_FALSE(greece_warm.Covers(*env_, athens_good2));
  EXPECT_FALSE(athens_good2.Covers(*env_, greece_warm));
}

TEST_F(StateTest, CoversIsReflexive) {
  for (auto names : std::vector<std::vector<std::string>>{
           {"Plaka", "warm", "friends"},
           {"Athens", "good", "all"},
           {"all", "all", "all"}}) {
    ContextState s = State(*env_, names);
    EXPECT_TRUE(s.Covers(*env_, s)) << s.ToString(*env_);
  }
}

TEST_F(StateTest, CoversSetSemantics) {
  std::vector<ContextState> s1 = {State(*env_, {"Athens", "all", "all"}),
                                  State(*env_, {"Ioannina", "all", "all"})};
  std::vector<ContextState> s2 = {State(*env_, {"Plaka", "warm", "friends"}),
                                  State(*env_, {"Perama", "cold", "alone"})};
  EXPECT_TRUE(CoversSet(*env_, s1, s2));
  // Remove the Ioannina cover: Perama is uncovered.
  s1.pop_back();
  EXPECT_FALSE(CoversSet(*env_, s1, s2));
  // Empty covered set is trivially covered.
  EXPECT_TRUE(CoversSet(*env_, s1, {}));
  EXPECT_FALSE(CoversSet(*env_, {}, s2));
}

TEST_F(StateTest, ValidateChecksArityAndDomains) {
  ContextState s = State(*env_, {"Plaka", "warm", "friends"});
  EXPECT_OK(s.Validate(*env_));
  ContextState bad(std::vector<ValueRef>{ValueRef{0, 999}, ValueRef{0, 0},
                                         ValueRef{0, 0}});
  EXPECT_TRUE(bad.Validate(*env_).IsInvalidArgument());
  ContextState short_state(std::vector<ValueRef>{ValueRef{0, 0}});
  EXPECT_TRUE(short_state.Validate(*env_).IsInvalidArgument());
}

TEST_F(StateTest, EqualityAndHash) {
  ContextState a = State(*env_, {"Plaka", "warm", "friends"});
  ContextState b = State(*env_, {"Plaka", "warm", "friends"});
  ContextState c = State(*env_, {"Plaka", "hot", "friends"});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ContextStateHash hash;
  EXPECT_EQ(hash(a), hash(b));
  // Not strictly required, but a sanity check against degenerate hashing.
  EXPECT_NE(hash(a), hash(c));
}

}  // namespace
}  // namespace ctxpref
