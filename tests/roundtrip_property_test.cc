// Property-based round-trip tests (ISSUE 5): thousands of seeded
// random hierarchies, descriptors, and profiles, asserting
//   Parse(ToString(x)) == x      for parameter/composite/extended
//                                descriptors,
//   FromText(ToText(p)) == p     for the profile text format, and
//   Deserialize(Serialize(p)) == p  for the binary profile_io format.
// Every failure message carries the seed, so a red run is a one-line
// local repro.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "context/descriptor.h"
#include "context/parser.h"
#include "storage/profile_io.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "workload/profile_generator.h"
#include "workload/synthetic_hierarchy.h"

namespace ctxpref {
namespace {

/// "p<i>", built with += because GCC 12's -Wrestrict misfires on
/// `literal + std::to_string(...)` at -O2 (breaks -Werror CI builds).
std::string ParamName(size_t i) {
  std::string name("p");
  name += std::to_string(i);
  return name;
}

/// A random environment of 1–3 synthetic linear hierarchies. Synthetic
/// value names ("p0.1.3") are unique across levels, so text round
/// trips cannot be defeated by name aliasing.
EnvironmentPtr RandomEnv(Rng& rng) {
  const size_t num_params = 1 + rng.Uniform(3);
  std::vector<ContextParameter> params;
  for (size_t i = 0; i < num_params; ++i) {
    const size_t detailed = 3 + rng.Uniform(10);       // 3..12
    const size_t fan = 2 + rng.Uniform(3);             // 2..4
    // Levels beyond what the detailed domain supports would collapse;
    // 1–2 declared levels always fit detailed >= 3 with fan >= 2.
    const size_t levels = 1 + rng.Uniform(2);
    StatusOr<HierarchyPtr> h = workload::MakeSyntheticHierarchy(
        ParamName(i), detailed, levels, fan);
    EXPECT_TRUE(h.ok()) << h.status().ToString();
    params.emplace_back(ParamName(i), *h);
  }
  StatusOr<EnvironmentPtr> env = ContextEnvironment::Create(std::move(params));
  EXPECT_TRUE(env.ok()) << env.status().ToString();
  return *env;
}

/// A uniformly random extended-domain value of parameter `p` (any
/// level, including ALL).
ValueRef RandomValue(Rng& rng, const ContextEnvironment& env, size_t p) {
  const Hierarchy& h = env.parameter(p).hierarchy();
  const LevelIndex level =
      static_cast<LevelIndex>(rng.Uniform(h.num_levels()));
  return ValueRef{level, static_cast<ValueId>(rng.Uniform(h.level_size(level)))};
}

/// A random parameter descriptor of any kind over parameter `p`.
ParameterDescriptor RandomParameterDescriptor(Rng& rng,
                                              const ContextEnvironment& env,
                                              size_t p) {
  const Hierarchy& h = env.parameter(p).hierarchy();
  switch (rng.Uniform(3)) {
    case 0: {
      StatusOr<ParameterDescriptor> d =
          ParameterDescriptor::Equals(env, p, RandomValue(rng, env, p));
      EXPECT_TRUE(d.ok()) << d.status().ToString();
      return *d;
    }
    case 1: {
      std::vector<ValueRef> values;
      const size_t n = 1 + rng.Uniform(3);
      for (size_t i = 0; i < n; ++i) {
        values.push_back(RandomValue(rng, env, p));
      }
      StatusOr<ParameterDescriptor> d =
          ParameterDescriptor::Set(env, p, std::move(values));
      EXPECT_TRUE(d.ok()) << d.status().ToString();
      return *d;
    }
    default: {
      // Range endpoints live on one level, lo <= hi in domain order.
      const LevelIndex level =
          static_cast<LevelIndex>(rng.Uniform(h.num_levels()));
      const size_t size = h.level_size(level);
      ValueId a = static_cast<ValueId>(rng.Uniform(size));
      ValueId b = static_cast<ValueId>(rng.Uniform(size));
      if (b < a) std::swap(a, b);
      StatusOr<ParameterDescriptor> d = ParameterDescriptor::Range(
          env, p, ValueRef{level, a}, ValueRef{level, b});
      EXPECT_TRUE(d.ok()) << d.status().ToString();
      return *d;
    }
  }
}

/// A random composite descriptor: each parameter included with
/// p = 2/3 (an empty draw yields the empty descriptor, also a valid
/// round-trip subject).
CompositeDescriptor RandomComposite(Rng& rng, const ContextEnvironment& env) {
  std::vector<ParameterDescriptor> parts;
  for (size_t p = 0; p < env.size(); ++p) {
    if (rng.Bernoulli(2.0 / 3.0)) {
      parts.push_back(RandomParameterDescriptor(rng, env, p));
    }
  }
  StatusOr<CompositeDescriptor> cod =
      CompositeDescriptor::Create(env, std::move(parts));
  EXPECT_TRUE(cod.ok()) << cod.status().ToString();
  return *cod;
}

/// Structural equality for descriptors (they define no operator==):
/// same parameter, same denoted context in the same stable order. Kind
/// is deliberately NOT compared — the parser may legally read back
/// "p in {a, b}" for a range denoting {a, b}; Def. 2 semantics live in
/// Context(cod), which must survive exactly.
bool SameDenotation(const ParameterDescriptor& a,
                    const ParameterDescriptor& b) {
  return a.param_index() == b.param_index() && a.ContextOf() == b.ContextOf();
}

bool SameDenotation(const CompositeDescriptor& a,
                    const CompositeDescriptor& b) {
  if (a.parts().size() != b.parts().size()) return false;
  for (size_t i = 0; i < a.parts().size(); ++i) {
    if (!SameDenotation(a.parts()[i], b.parts()[i])) return false;
  }
  return true;
}

class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripPropertyTest, DescriptorTextRoundTrips) {
  const uint64_t base_seed = GetParam();
  constexpr int kCases = 1500;
  for (int c = 0; c < kCases; ++c) {
    const uint64_t seed = base_seed * 1'000'000 + c;
    Rng rng(seed);
    EnvironmentPtr env = RandomEnv(rng);

    // Composite: Parse(ToString(cod)) denotes the same states.
    CompositeDescriptor cod = RandomComposite(rng, *env);
    const std::string text = cod.ToString(*env);
    StatusOr<CompositeDescriptor> back = ParseCompositeDescriptor(*env, text);
    ASSERT_OK(back.status()) << "seed " << seed << " text '" << text << "'";
    EXPECT_TRUE(SameDenotation(cod, *back))
        << "seed " << seed << "\n  wrote '" << text << "'\n  read  '"
        << back->ToString(*env) << "'";
    // The reparse is a fixed point: printing again yields byte-equal
    // text (canonical form).
    EXPECT_EQ(back->ToString(*env), text) << "seed " << seed;
    // And the denoted state set survives.
    EXPECT_EQ(back->EnumerateStates(*env), cod.EnumerateStates(*env))
        << "seed " << seed;

    // Extended: disjunction of 1–3 composites.
    ExtendedDescriptor ecod;
    const size_t disjuncts = 1 + rng.Uniform(3);
    for (size_t d = 0; d < disjuncts; ++d) {
      ecod.AddDisjunct(RandomComposite(rng, *env));
    }
    const std::string etext = ecod.ToString(*env);
    StatusOr<ExtendedDescriptor> eback = ParseExtendedDescriptor(*env, etext);
    ASSERT_OK(eback.status()) << "seed " << seed << " text '" << etext << "'";
    ASSERT_EQ(eback->disjuncts().size(), ecod.disjuncts().size())
        << "seed " << seed << " text '" << etext << "'";
    for (size_t d = 0; d < disjuncts; ++d) {
      EXPECT_TRUE(SameDenotation(ecod.disjuncts()[d], eback->disjuncts()[d]))
          << "seed " << seed << " disjunct " << d << " text '" << etext
          << "'";
    }
    EXPECT_EQ(eback->EnumerateStates(*env), ecod.EnumerateStates(*env))
        << "seed " << seed;
  }
}

TEST_P(RoundTripPropertyTest, ProfileTextAndBinaryRoundTrip) {
  const uint64_t base_seed = GetParam();
  constexpr int kCases = 120;  // Profiles are heavier than descriptors.
  for (int c = 0; c < kCases; ++c) {
    const uint64_t seed = base_seed * 1'000'000 + c;
    Rng rng(seed);

    workload::SyntheticProfileSpec spec;
    const size_t num_params = 1 + rng.Uniform(3);
    for (size_t p = 0; p < num_params; ++p) {
      workload::SyntheticParam param;
      param.name = ParamName(p);
      param.detailed_size = 4 + rng.Uniform(9);  // 4..12
      param.num_levels = 1 + rng.Uniform(2);
      param.fan = 2 + rng.Uniform(3);
      param.zipf_a = rng.Bernoulli(0.5) ? 0.0 : 1.5;
      spec.params.push_back(param);
    }
    spec.num_preferences = 3 + rng.Uniform(38);  // 3..40
    spec.lift_probability = rng.NextDouble() * 0.5;
    spec.omit_probability = rng.NextDouble() * 0.2;
    spec.clause_pool = 5 + rng.Uniform(30);
    spec.seed = seed;

    StatusOr<workload::SyntheticProfile> gen =
        workload::GenerateSyntheticProfile(spec);
    ASSERT_OK(gen.status()) << "seed " << seed;
    const Profile& profile = gen->profile;

    // Binary: Deserialize(Serialize(p)) == p, preference for
    // preference.
    const std::string bytes = storage::SerializeProfile(profile);
    StatusOr<Profile> bin =
        storage::DeserializeProfile(gen->env, bytes);
    ASSERT_OK(bin.status()) << "seed " << seed;
    ASSERT_EQ(bin->size(), profile.size()) << "seed " << seed;
    for (size_t i = 0; i < profile.size(); ++i) {
      EXPECT_TRUE(bin->preference(i) == profile.preference(i))
          << "seed " << seed << " preference " << i;
    }
    // Serialization is deterministic: a second trip is byte-identical.
    EXPECT_EQ(storage::SerializeProfile(*bin), bytes) << "seed " << seed;

    // Text: FromText(ToText(p)) == p.
    const std::string text = profile.ToText();
    StatusOr<Profile> txt = Profile::FromText(gen->env, text);
    ASSERT_OK(txt.status()) << "seed " << seed;
    ASSERT_EQ(txt->size(), profile.size()) << "seed " << seed;
    for (size_t i = 0; i < profile.size(); ++i) {
      EXPECT_TRUE(txt->preference(i) == profile.preference(i))
          << "seed " << seed << " preference " << i << "\n"
          << profile.preference(i).ToString(*gen->env);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Values(7001, 7002, 7003));

}  // namespace
}  // namespace ctxpref
