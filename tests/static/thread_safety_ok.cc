// Positive control for the thread-safety compile-fail test: the same
// shape as thread_safety_bad.cc but with correct locking. Must compile
// clean under -Wthread-safety -Werror=thread-safety — otherwise a
// failure of the negative snippet would prove nothing (the flags could
// simply be rejecting everything).

#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    ctxpref::util::MutexLock lock(mu_);
    ++count_;
  }

  int Get() const EXCLUDES(mu_) {
    ctxpref::util::MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable ctxpref::util::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Get();
}
