#!/bin/sh
# Proves the -Wthread-safety gate has teeth:
#   1. thread_safety_ok.cc (correct locking) must compile clean, and
#   2. thread_safety_bad.cc (unguarded write to a GUARDED_BY field)
#      must be rejected with a thread-safety diagnostic.
# Clang-only analysis, so on machines without clang++ this exits 77 —
# ctest's SKIP_RETURN_CODE — instead of failing.
#
# Usage: thread_safety_compile_test.sh <repo-root>
set -u

repo_root="${1:?usage: $0 <repo-root>}"
here="$repo_root/tests/static"

cxx=""
for candidate in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
                 clang++-17 clang++-16 clang++-15 clang++-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    cxx="$candidate"
    break
  fi
done
if [ -z "$cxx" ]; then
  echo "SKIP: no clang++ on PATH; thread-safety analysis needs clang" >&2
  exit 77
fi

flags="-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety"
err_log="$(mktemp)"
trap 'rm -f "$err_log"' EXIT

# Positive control first: if correct code does not compile, a rejection
# of the bad snippet would prove nothing.
if ! $cxx $flags -I "$repo_root/src" "$here/thread_safety_ok.cc" \
    2>"$err_log"; then
  echo "FAIL: positive control thread_safety_ok.cc was rejected:" >&2
  cat "$err_log" >&2
  exit 1
fi

if $cxx $flags -I "$repo_root/src" "$here/thread_safety_bad.cc" \
    2>"$err_log"; then
  echo "FAIL: thread_safety_bad.cc compiled — -Werror=thread-safety is" \
       "not rejecting unguarded access to a GUARDED_BY field" >&2
  exit 1
fi

# Rejection must come from the analysis, not some unrelated error.
if ! grep -q "thread-safety" "$err_log"; then
  echo "FAIL: thread_safety_bad.cc failed for a reason other than" \
       "thread-safety analysis:" >&2
  cat "$err_log" >&2
  exit 1
fi

echo "OK: -Werror=thread-safety rejects the unguarded access ($cxx)"
exit 0
