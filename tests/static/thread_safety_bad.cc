// Negative snippet for the thread-safety compile-fail test: writes a
// GUARDED_BY field without holding its mutex. Clang with
// -Werror=thread-safety must REJECT this translation unit; if it ever
// compiles, the analysis gate is not enforcing. Never built by the
// normal targets — only tests/static/thread_safety_compile_test.sh
// feeds it to clang with -fsyntax-only.

#include "util/mutex.h"

namespace {

class Counter {
 public:
  // BUG (deliberate): touches count_ with mu_ not held.
  void Increment() { ++count_; }

 private:
  ctxpref::util::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
