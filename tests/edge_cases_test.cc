// Edge-shape coverage: degenerate and extreme context models and
// profiles that the mainline suites do not reach.

#include <gtest/gtest.h>

#include "context/validate.h"
#include "preference/contextual_query.h"
#include "preference/profile_tree.h"
#include "preference/resolution.h"
#include "preference/sequential_store.h"
#include "tests/test_util.h"
#include "workload/poi_dataset.h"
#include "workload/synthetic_hierarchy.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::Pref;

TEST(EdgeCaseTest, SingleValueSingleParameterWorld) {
  StatusOr<HierarchyPtr> h = MakeFlatHierarchy("only", "L", {"v"});
  ASSERT_OK(h.status());
  std::vector<ContextParameter> params;
  params.emplace_back("only", *h);
  StatusOr<EnvironmentPtr> env = ContextEnvironment::Create(std::move(params));
  ASSERT_OK(env.status());
  EXPECT_EQ((*env)->WorldSize(), 1u);
  EXPECT_EQ((*env)->ExtendedWorldSize(), 2u);
  EXPECT_OK(ValidateEnvironment(**env, true));

  Profile p(*env);
  ASSERT_OK(p.Insert(Pref(**env, "only = v", "attr", "x", 0.5)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  EXPECT_EQ(tree->CellCount(), 1u);
  EXPECT_EQ(tree->PathCount(), 1u);

  TreeResolver resolver(&*tree);
  StatusOr<ContextState> q = ContextState::FromNames(**env, {"v"});
  ASSERT_OK(q.status());
  std::vector<CandidatePath> best = resolver.ResolveBest(*q);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_DOUBLE_EQ(best[0].distance, 0.0);
}

TEST(EdgeCaseTest, DeepChainHierarchy) {
  // 6 declared levels over 64 values, fan 2: L0..L5 sizes 64..2, + ALL.
  StatusOr<HierarchyPtr> h = workload::MakeSyntheticHierarchy("deep", 64, 6, 2);
  ASSERT_OK(h.status());
  EXPECT_EQ((*h)->num_levels(), 7);
  EXPECT_OK(ValidateHierarchyInvariants(**h, true));
  // anc composition across the whole chain.
  ValueRef bottom{0, 63};
  ValueRef top = (*h)->Anc(bottom, 6);
  EXPECT_EQ(top, (*h)->AllValue());
  EXPECT_EQ((*h)->Desc((*h)->AllValue(), 0).size(), 64u);
  // Level distance spans the chain.
  EXPECT_EQ((*h)->LevelDistance(0, 6), 6u);
  // Jaccard shrinks stepwise up the chain.
  double prev = -1.0;
  for (LevelIndex l = 1; l <= 6; ++l) {
    double d = (*h)->JaccardDistance((*h)->Anc(bottom, l), bottom);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(EdgeCaseTest, ManyParameterEnvironment) {
  // Six parameters: orderings beyond the paper's three-parameter world.
  std::vector<ContextParameter> params;
  for (int i = 0; i < 6; ++i) {
    StatusOr<HierarchyPtr> h = workload::MakeSyntheticHierarchy(
        "p" + std::to_string(i), 4 + 2 * i, 2, 3);
    ASSERT_OK(h.status());
    params.emplace_back("p" + std::to_string(i), *h);
  }
  StatusOr<EnvironmentPtr> env = ContextEnvironment::Create(std::move(params));
  ASSERT_OK(env.status());

  Profile p(*env);
  for (int k = 0; k < 20; ++k) {
    std::vector<ParameterDescriptor> parts;
    StatusOr<ParameterDescriptor> pd = ParameterDescriptor::Equals(
        **env, static_cast<size_t>(k % 6),
        ValueRef{0, static_cast<ValueId>(k % 4)});
    ASSERT_OK(pd.status());
    parts.push_back(std::move(*pd));
    StatusOr<CompositeDescriptor> cod =
        CompositeDescriptor::Create(**env, std::move(parts));
    ASSERT_OK(cod.status());
    StatusOr<ContextualPreference> pref = ContextualPreference::Create(
        std::move(*cod),
        AttributeClause{"a", db::CompareOp::kEq,
                        db::Value("v" + std::to_string(k))},
        0.5);
    ASSERT_OK(pref.status());
    ASSERT_OK(p.Insert(std::move(*pref)));
  }
  // Greedy ordering still sorts by active domain; the tree matches the
  // sequential baseline on a few queries.
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  EXPECT_EQ(tree->ordering().size(), 6u);
  SequentialStore store = SequentialStore::Build(p);
  TreeResolver resolver(&*tree);
  ContextState all = ContextState::AllState(**env);
  EXPECT_EQ(resolver.SearchCS(all).size(), store.SearchCovering(all).size());
}

TEST(EdgeCaseTest, BoundaryScoresZeroAndOne) {
  EnvironmentPtr env = testing::PaperEnv();
  Profile p(env);
  ASSERT_OK(p.Insert(Pref(*env, "location = Plaka", "type", "museum", 0.0)));
  ASSERT_OK(p.Insert(Pref(*env, "location = Plaka", "type", "park", 1.0)));
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(40, 3);
  ASSERT_OK(poi.status());
  // Same env shape; rebuild against the POI env for querying.
  Profile q(poi->env);
  ASSERT_OK(q.Insert(Pref(*poi->env, "location = Plaka", "type", "museum", 0.0)));
  ASSERT_OK(q.Insert(Pref(*poi->env, "location = Plaka", "type", "park", 1.0)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(q);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  ContextualQuery query;
  StatusOr<CompositeDescriptor> cod = CompositeDescriptor::ForState(
      *poi->env,
      *ContextState::FromNames(*poi->env, {"Plaka", "warm", "friends"}));
  ASSERT_OK(cod.status());
  query.context = ExtendedDescriptor::FromComposite(std::move(*cod));
  StatusOr<QueryResult> result = RankCS(poi->relation, query, resolver);
  ASSERT_OK(result.status());
  // Parks at 1.0 on top, museums at 0.0 at the bottom — both present.
  ASSERT_FALSE(result->tuples.empty());
  EXPECT_DOUBLE_EQ(result->tuples.front().score, 1.0);
  EXPECT_DOUBLE_EQ(result->tuples.back().score, 0.0);
}

TEST(EdgeCaseTest, DescriptorCoveringWholeDetailedDomain) {
  EnvironmentPtr env = testing::PaperEnv();
  const Hierarchy& temp = env->parameter(1).hierarchy();
  // Range spanning the whole Conditions level = 5 states.
  StatusOr<ParameterDescriptor> pd = ParameterDescriptor::Range(
      *env, 1, ValueRef{0, 0},
      ValueRef{0, static_cast<ValueId>(temp.level_size(0) - 1)});
  ASSERT_OK(pd.status());
  std::vector<ParameterDescriptor> parts;
  parts.push_back(std::move(*pd));
  StatusOr<CompositeDescriptor> cod =
      CompositeDescriptor::Create(*env, std::move(parts));
  ASSERT_OK(cod.status());
  EXPECT_EQ(cod->NumStates(), 5u);
  StatusOr<ContextualPreference> pref = ContextualPreference::Create(
      std::move(*cod),
      AttributeClause{"type", db::CompareOp::kEq, db::Value("park")}, 0.7);
  ASSERT_OK(pref.status());
  Profile p(env);
  ASSERT_OK(p.Insert(std::move(*pref)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  EXPECT_EQ(tree->PathCount(), 5u);
  // Every detailed weather resolves to exactly one covering state.
  TreeResolver resolver(&*tree);
  for (const char* w : {"freezing", "cold", "mild", "warm", "hot"}) {
    std::vector<CandidatePath> best = resolver.ResolveBest(
        *ContextState::FromNames(*env, {"Plaka", w, "friends"}));
    ASSERT_EQ(best.size(), 1u) << w;
  }
}

TEST(EdgeCaseTest, QueryAtAllStateOnlyMatchesAllPreferences) {
  EnvironmentPtr env = testing::PaperEnv();
  Profile p(env);
  ASSERT_OK(p.Insert(Pref(*env, "location = Plaka", "type", "museum", 0.5)));
  ASSERT_OK(p.Insert(Pref(*env, "*", "type", "park", 0.6)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  // The (all, all, all) query is only covered by the all-state pref:
  // (Plaka, all, all) does NOT cover it (Plaka is below all).
  std::vector<CandidatePath> found =
      resolver.SearchCS(ContextState::AllState(*env));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].state, ContextState::AllState(*env));
  EXPECT_DOUBLE_EQ(found[0].distance, 0.0);
}

TEST(EdgeCaseTest, EmptyProfileResolvesToNothingEverywhere) {
  EnvironmentPtr env = testing::PaperEnv();
  Profile p(env);
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  EXPECT_EQ(tree->CellCount(), 0u);
  TreeResolver resolver(&*tree);
  EXPECT_TRUE(resolver.SearchCS(ContextState::AllState(*env)).empty());
  SequentialStore store = SequentialStore::Build(p);
  EXPECT_TRUE(store.SearchCovering(ContextState::AllState(*env)).empty());
}

TEST(EdgeCaseTest, MaxCellEstimateHandlesDegenerateSizes) {
  EXPECT_EQ(MaxCellEstimate({}), 0u);
  EXPECT_EQ(MaxCellEstimate({1}), 1u);
  EXPECT_EQ(MaxCellEstimate({1, 1, 1}), 3u);
}

TEST(EdgeCaseTest, TreeWithIdentityAndReverseOrderingsAgreeOnSemantics) {
  EnvironmentPtr env = testing::PaperEnv();
  Profile p(env);
  ASSERT_OK(p.Insert(Pref(*env, "location = Athens and temperature = good",
                          "type", "museum", 0.8)));
  StatusOr<ProfileTree> forward =
      ProfileTree::Build(p, Ordering::Identity(3));
  StatusOr<ProfileTree> reverse =
      ProfileTree::Build(p, *Ordering::FromPermutation({2, 1, 0}));
  ASSERT_OK(forward.status());
  ASSERT_OK(reverse.status());
  TreeResolver f(&*forward), r(&*reverse);
  ContextState q =
      *ContextState::FromNames(*env, {"Plaka", "warm", "friends"});
  std::vector<CandidatePath> a = f.ResolveBest(q);
  std::vector<CandidatePath> b = r.ResolveBest(q);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].state, b[0].state);
}

}  // namespace
}  // namespace ctxpref
