#include "context/descriptor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::State;

class DescriptorTest : public ::testing::Test {
 protected:
  EnvironmentPtr env_ = PaperEnv();
  const Hierarchy& loc() { return env_->parameter(0).hierarchy(); }
  const Hierarchy& temp() { return env_->parameter(1).hierarchy(); }
  const Hierarchy& comp() { return env_->parameter(2).hierarchy(); }
};

TEST_F(DescriptorTest, EqualsDescriptor) {
  ValueRef plaka = *loc().Find(0, "Plaka");
  StatusOr<ParameterDescriptor> pd =
      ParameterDescriptor::Equals(*env_, 0, plaka);
  ASSERT_OK(pd.status());
  EXPECT_EQ(pd->kind(), ParameterDescriptor::Kind::kEquals);
  ASSERT_EQ(pd->ContextOf().size(), 1u);
  EXPECT_EQ(pd->ContextOf()[0], plaka);
  EXPECT_EQ(pd->ToString(*env_), "location = Plaka");
}

TEST_F(DescriptorTest, EqualsRejectsBadValueAndParam) {
  EXPECT_TRUE(ParameterDescriptor::Equals(*env_, 0, ValueRef{0, 99})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParameterDescriptor::Equals(*env_, 7, ValueRef{0, 0})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DescriptorTest, SetDescriptorDeduplicates) {
  ValueRef warm = *temp().Find(0, "warm");
  ValueRef hot = *temp().Find(0, "hot");
  StatusOr<ParameterDescriptor> pd =
      ParameterDescriptor::Set(*env_, 1, {warm, hot, warm});
  ASSERT_OK(pd.status());
  EXPECT_EQ(pd->ContextOf().size(), 2u);
  EXPECT_EQ(pd->ToString(*env_), "temperature in {warm, hot}");
}

TEST_F(DescriptorTest, SetRejectsEmpty) {
  EXPECT_TRUE(
      ParameterDescriptor::Set(*env_, 1, {}).status().IsInvalidArgument());
}

TEST_F(DescriptorTest, SetMayMixLevels) {
  ValueRef warm = *temp().Find(0, "warm");
  ValueRef bad = *temp().Find(1, "bad");
  StatusOr<ParameterDescriptor> pd =
      ParameterDescriptor::Set(*env_, 1, {warm, bad});
  ASSERT_OK(pd.status());
  EXPECT_EQ(pd->ContextOf().size(), 2u);
}

TEST_F(DescriptorTest, RangeExpandsToPaperSemantics) {
  // temperature ∈ [mild, hot] = {mild, warm, hot} (paper Def. 1 example).
  ValueRef mild = *temp().Find(0, "mild");
  ValueRef hot = *temp().Find(0, "hot");
  StatusOr<ParameterDescriptor> pd =
      ParameterDescriptor::Range(*env_, 1, mild, hot);
  ASSERT_OK(pd.status());
  ASSERT_EQ(pd->ContextOf().size(), 3u);
  EXPECT_EQ(temp().value_name(pd->ContextOf()[0]), "mild");
  EXPECT_EQ(temp().value_name(pd->ContextOf()[1]), "warm");
  EXPECT_EQ(temp().value_name(pd->ContextOf()[2]), "hot");
  EXPECT_EQ(pd->ToString(*env_), "temperature in [mild, hot]");
}

TEST_F(DescriptorTest, RangeRejectsCrossLevelAndEmpty) {
  ValueRef mild = *temp().Find(0, "mild");
  ValueRef good = *temp().Find(1, "good");
  EXPECT_TRUE(ParameterDescriptor::Range(*env_, 1, mild, good)
                  .status()
                  .IsInvalidArgument());
  ValueRef hot = *temp().Find(0, "hot");
  EXPECT_TRUE(ParameterDescriptor::Range(*env_, 1, hot, mild)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DescriptorTest, SingleValueRange) {
  ValueRef warm = *temp().Find(0, "warm");
  StatusOr<ParameterDescriptor> pd =
      ParameterDescriptor::Range(*env_, 1, warm, warm);
  ASSERT_OK(pd.status());
  EXPECT_EQ(pd->ContextOf().size(), 1u);
}

TEST_F(DescriptorTest, CompositeRejectsDuplicateParameter) {
  ValueRef warm = *temp().Find(0, "warm");
  ValueRef hot = *temp().Find(0, "hot");
  std::vector<ParameterDescriptor> parts;
  parts.push_back(*ParameterDescriptor::Equals(*env_, 1, warm));
  parts.push_back(*ParameterDescriptor::Equals(*env_, 1, hot));
  EXPECT_TRUE(CompositeDescriptor::Create(*env_, std::move(parts))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DescriptorTest, PaperExampleCartesianProduct) {
  // (location = Plaka ∧ temperature ∈ {warm, hot} ∧ people = friends)
  // -> states (Plaka, warm, friends), (Plaka, hot, friends) (§3.1).
  std::vector<ParameterDescriptor> parts;
  parts.push_back(
      *ParameterDescriptor::Equals(*env_, 0, *loc().Find(0, "Plaka")));
  parts.push_back(*ParameterDescriptor::Set(
      *env_, 1, {*temp().Find(0, "warm"), *temp().Find(0, "hot")}));
  parts.push_back(
      *ParameterDescriptor::Equals(*env_, 2, *comp().Find(0, "friends")));
  StatusOr<CompositeDescriptor> cod =
      CompositeDescriptor::Create(*env_, std::move(parts));
  ASSERT_OK(cod.status());
  EXPECT_EQ(cod->NumStates(), 2u);
  std::vector<ContextState> states = cod->EnumerateStates(*env_);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0], State(*env_, {"Plaka", "warm", "friends"}));
  EXPECT_EQ(states[1], State(*env_, {"Plaka", "hot", "friends"}));
}

TEST_F(DescriptorTest, MissingParametersBecomeAll) {
  // (temperature = warm): location and people default to all (Def. 4).
  std::vector<ParameterDescriptor> parts;
  parts.push_back(
      *ParameterDescriptor::Equals(*env_, 1, *temp().Find(0, "warm")));
  StatusOr<CompositeDescriptor> cod =
      CompositeDescriptor::Create(*env_, std::move(parts));
  ASSERT_OK(cod.status());
  std::vector<ContextState> states = cod->EnumerateStates(*env_);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0], State(*env_, {"all", "warm", "all"}));
}

TEST_F(DescriptorTest, EmptyDescriptorDenotesAllState) {
  CompositeDescriptor empty;
  EXPECT_TRUE(empty.empty());
  std::vector<ContextState> states = empty.EnumerateStates(*env_);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0], ContextState::AllState(*env_));
  EXPECT_EQ(empty.ToString(*env_), "<empty>");
}

TEST_F(DescriptorTest, ExtendedDescriptorUnionsAndDeduplicates) {
  // Two disjuncts with one shared state.
  std::vector<ParameterDescriptor> p1;
  p1.push_back(*ParameterDescriptor::Set(
      *env_, 1, {*temp().Find(0, "warm"), *temp().Find(0, "hot")}));
  std::vector<ParameterDescriptor> p2;
  p2.push_back(*ParameterDescriptor::Set(
      *env_, 1, {*temp().Find(0, "hot"), *temp().Find(0, "mild")}));
  ExtendedDescriptor ecod;
  ecod.AddDisjunct(*CompositeDescriptor::Create(*env_, std::move(p1)));
  ecod.AddDisjunct(*CompositeDescriptor::Create(*env_, std::move(p2)));
  std::vector<ContextState> states = ecod.EnumerateStates(*env_);
  EXPECT_EQ(states.size(), 3u);  // warm, hot, mild — hot deduplicated.
}

TEST_F(DescriptorTest, ExtendedDescriptorToString) {
  ExtendedDescriptor empty;
  EXPECT_EQ(empty.ToString(*env_), "<empty>");
  EXPECT_TRUE(empty.EnumerateStates(*env_).empty());
}

TEST_F(DescriptorTest, NumStatesMatchesEnumerationOnBigProduct) {
  std::vector<ParameterDescriptor> parts;
  parts.push_back(*ParameterDescriptor::Range(
      *env_, 1, *temp().Find(0, "freezing"), *temp().Find(0, "hot")));
  parts.push_back(*ParameterDescriptor::Set(
      *env_, 2,
      {*comp().Find(0, "friends"), *comp().Find(0, "family"),
       *comp().Find(0, "alone")}));
  StatusOr<CompositeDescriptor> cod =
      CompositeDescriptor::Create(*env_, std::move(parts));
  ASSERT_OK(cod.status());
  EXPECT_EQ(cod->NumStates(), 15u);
  EXPECT_EQ(cod->EnumerateStates(*env_).size(), 15u);
}

}  // namespace
}  // namespace ctxpref
