// util::ThreadPool under the overload features of ISSUE 8: bounded-
// queue TrySubmit outcomes, deadline-expired task dropping at dequeue,
// FIFO vs LIFO dequeue order, and the reset-able per-window stats
// behind the `ctxpref_thread_pool_queue_highwater` gauge. Runs in the
// CI TSan job (suite name matches scripts/check.sh's tsan filter).

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/deadline.h"
#include "util/metrics.h"

namespace ctxpref {
namespace {

/// Busy-wait gate: lets a test park the pool's only worker inside a
/// task until the interesting queue state is set up.
class Gate {
 public:
  void Open() { open_.store(true, std::memory_order_release); }
  void Await() const {
    while (!open_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<bool> open_{false};
};

TEST(ThreadPoolTest, SubmitResultToStringCoversAllOutcomes) {
  EXPECT_STREQ(SubmitResultToString(SubmitResult::kAccepted), "accepted");
  EXPECT_STREQ(SubmitResultToString(SubmitResult::kRejectedFull),
               "rejected-full");
  EXPECT_STREQ(SubmitResultToString(SubmitResult::kRejectedShutdown),
               "rejected-shutdown");
}

TEST(ThreadPoolTest, TrySubmitRejectsWhenQueueFull) {
  ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/2);
  Gate gate;
  std::atomic<int> ran{0};
  Gate worker_parked;
  // Park the worker, then fill the queue to capacity.
  pool.Submit([&] {
    worker_parked.Open();
    gate.Await();
    ran.fetch_add(1);
  });
  worker_parked.Await();
  EXPECT_EQ(pool.TrySubmit([&] { ran.fetch_add(1); }),
            SubmitResult::kAccepted);
  EXPECT_EQ(pool.TrySubmit([&] { ran.fetch_add(1); }),
            SubmitResult::kAccepted);
  // Queue now holds 2 of 2; further admission is refused, and the
  // refused task never runs.
  EXPECT_EQ(pool.TrySubmit([&] { ran.fetch_add(100); }),
            SubmitResult::kRejectedFull);
  gate.Open();
  pool.Wait();
  EXPECT_EQ(ran.load(), 3);

  const ThreadPool::WindowStats stats = pool.GetWindowStats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.rejected_full, 1u);
  EXPECT_EQ(stats.expired_dropped, 0u);
  EXPECT_EQ(stats.queue_highwater, 2u);
}

TEST(ThreadPoolTest, ExpiredQueuedTaskIsDroppedNotRun) {
  util::FakeClock clock;
  ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/4);
  Gate gate;
  Gate worker_parked;
  std::atomic<int> body_ran{0};
  std::atomic<int> expired_ran{0};
  pool.Submit([&] {
    worker_parked.Open();
    gate.Await();
  });
  worker_parked.Await();
  // Deadline 100us out on the fake clock; it will pass while the task
  // sits behind the parked worker.
  pool.Submit([&] { body_ran.fetch_add(1); },
              util::Deadline::AfterMicros(100, &clock),
              /*on_expired=*/[&] { expired_ran.fetch_add(1); });
  // A second task whose deadline stays alive must still run.
  pool.Submit([&] { body_ran.fetch_add(10); },
              util::Deadline::AfterMicros(1'000'000, &clock));
  clock.Advance(500);
  gate.Open();
  pool.Wait();

  EXPECT_EQ(body_ran.load(), 10) << "expired task body must not run";
  EXPECT_EQ(expired_ran.load(), 1);
  const ThreadPool::WindowStats stats = pool.GetWindowStats();
  EXPECT_EQ(stats.expired_dropped, 1u);
  EXPECT_EQ(stats.executed, 2u);  // The parked task + the alive one.
}

TEST(ThreadPoolTest, LifoServesNewestFirstUnderBacklog) {
  for (DequeueOrder order : {DequeueOrder::kFifo, DequeueOrder::kLifo}) {
    ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/8, order);
    Gate gate;
    Gate worker_parked;
    std::vector<int> executed;
    std::atomic<int> done{0};
    pool.Submit([&] {
      worker_parked.Open();
      gate.Await();
    });
    worker_parked.Await();
    for (int i = 0; i < 3; ++i) {
      // Single worker: bodies run one at a time, so `executed` needs
      // no lock of its own.
      pool.Submit([&executed, &done, i] {
        executed.push_back(i);
        done.fetch_add(1);
      });
    }
    gate.Open();
    pool.Wait();
    ASSERT_EQ(done.load(), 3);
    if (order == DequeueOrder::kLifo) {
      EXPECT_EQ(executed, (std::vector<int>{2, 1, 0}));
    } else {
      EXPECT_EQ(executed, (std::vector<int>{0, 1, 2}));
    }
  }
}

TEST(ThreadPoolTest, WindowStatsResetKeepsCurrentDepthAsHighwater) {
  ThreadPool pool(/*num_threads=*/2, /*queue_capacity=*/16);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();
  const ThreadPool::WindowStats before = pool.GetWindowStats();
  EXPECT_EQ(before.submitted, 8u);
  EXPECT_EQ(before.executed, 8u);

  pool.ResetWindowStats();
  const ThreadPool::WindowStats after = pool.GetWindowStats();
  EXPECT_EQ(after.submitted, 0u);
  EXPECT_EQ(after.executed, 0u);
  EXPECT_EQ(after.queue_highwater, 0u) << "idle pool resets to empty depth";

  // The window is live again after the reset.
  pool.Submit([] {});
  pool.Wait();
  EXPECT_EQ(pool.GetWindowStats().submitted, 1u);
}

TEST(ThreadPoolTest, HighwaterGaugeTracksQueueDepth) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge(
      "ctxpref_thread_pool_queue_highwater",
      "Max observed queued-task count, any pool "
      "(approximate; monotone until registry reset)");
  gauge.Reset();
  ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/8);
  Gate gate;
  Gate worker_parked;
  pool.Submit([&] {
    worker_parked.Open();
    gate.Await();
  });
  worker_parked.Await();
  for (int i = 0; i < 5; ++i) {
    pool.Submit([] {});
  }
  gate.Open();
  pool.Wait();
  EXPECT_GE(gauge.value(), 5);
  EXPECT_EQ(pool.GetWindowStats().queue_highwater, 5u);
}

TEST(ThreadPoolTest, BlockingSubmitHonorsDeadlineDropAtDequeueToo) {
  // The blocking Submit overload carries deadlines the same way
  // TrySubmit does — CachedRankCS uses this form.
  util::FakeClock clock;
  ThreadPool pool(/*num_threads=*/1, /*queue_capacity=*/2);
  Gate gate;
  Gate worker_parked;
  std::atomic<int> outcome{0};
  pool.Submit([&] {
    worker_parked.Open();
    gate.Await();
  });
  worker_parked.Await();
  pool.Submit([&] { outcome.store(1); },
              util::Deadline::AfterMicros(10, &clock),
              [&] { outcome.store(2); });
  clock.Advance(11);
  gate.Open();
  pool.Wait();
  EXPECT_EQ(outcome.load(), 2);
}

}  // namespace
}  // namespace ctxpref
