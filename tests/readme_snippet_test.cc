// Keeps the README honest: the quickstart, resilience, serving,
// overload, and observability snippets, almost verbatim (error
// handling via ASSERT instead of *-deref), must compile and behave as
// the README claims.

#include <gtest/gtest.h>

#include <fstream>

#include "context/parser.h"
#include "harness/scenario_config.h"
#include "harness/workload_runner.h"
#include "context/resilient_source.h"
#include "preference/contextual_query.h"
#include "preference/explain.h"
#include "preference/profile_tree.h"
#include "preference/query_cache.h"
#include "preference/replicated_query_cache.h"
#include "storage/admission.h"
#include "storage/profile_store.h"
#include "storage/serving.h"
#include "tests/test_util.h"
#include "util/deadline.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/trace.h"
#include "workload/poi_dataset.h"

namespace ctxpref {
namespace {

TEST(ReadmeSnippetTest, QuickstartWorksAsAdvertised) {
  // 1. A context environment.
  StatusOr<EnvironmentPtr> env_or = workload::MakePaperEnvironment();
  ASSERT_OK(env_or.status());
  EnvironmentPtr env = *env_or;

  // 2. A profile of contextual preferences.
  Profile profile(env);
  StatusOr<CompositeDescriptor> cod = ParseCompositeDescriptor(
      *env, "location = Plaka and temperature in {warm, hot}");
  ASSERT_OK(cod.status());
  StatusOr<ContextualPreference> pref = ContextualPreference::Create(
      std::move(*cod),
      {"name", db::CompareOp::kEq, db::Value("Acropolis")}, 0.8);
  ASSERT_OK(pref.status());
  Status st = profile.Insert(std::move(*pref));
  ASSERT_OK(st);

  // Conflicting re-insert is rejected, as the README promises.
  StatusOr<CompositeDescriptor> cod2 = ParseCompositeDescriptor(
      *env, "location = Plaka and temperature = warm");
  ASSERT_OK(cod2.status());
  StatusOr<ContextualPreference> conflicting = ContextualPreference::Create(
      std::move(*cod2),
      {"name", db::CompareOp::kEq, db::Value("Acropolis")}, 0.2);
  ASSERT_OK(conflicting.status());
  EXPECT_TRUE(profile.Insert(std::move(*conflicting)).IsConflict());

  // 3. Index it.
  StatusOr<ProfileTree> tree_or = ProfileTree::Build(profile);
  ASSERT_OK(tree_or.status());
  ProfileTree tree = std::move(*tree_or);
  TreeResolver resolver(&tree);

  // 4. Resolve a query context.
  StatusOr<ContextState> now =
      ContextState::FromNames(*env, {"Plaka", "hot", "friends"});
  ASSERT_OK(now.status());
  std::vector<CandidatePath> best = resolver.ResolveBest(*now);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0].state.ToString(*env), "(Plaka, hot, all)");

  // 5. Run the full contextual query over a relation.
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(60, 1);
  ASSERT_OK(poi.status());
  // The README's own profile targets the Acropolis landmark; rebuild
  // the same profile against the POI environment instance.
  Profile poi_profile(poi->env);
  StatusOr<CompositeDescriptor> cod3 = ParseCompositeDescriptor(
      *poi->env, "location = Plaka and temperature in {warm, hot}");
  ASSERT_OK(cod3.status());
  StatusOr<ContextualPreference> pref3 = ContextualPreference::Create(
      std::move(*cod3),
      {"name", db::CompareOp::kEq, db::Value("Acropolis")}, 0.8);
  ASSERT_OK(pref3.status());
  ASSERT_OK(poi_profile.Insert(std::move(*pref3)));
  StatusOr<ProfileTree> poi_tree = ProfileTree::Build(poi_profile);
  ASSERT_OK(poi_tree.status());
  TreeResolver poi_resolver(&*poi_tree);

  ContextualQuery q;
  StatusOr<CompositeDescriptor> qcod = ParseCompositeDescriptor(
      *poi->env, "location = Plaka and temperature = hot");
  ASSERT_OK(qcod.status());
  q.context = ExtendedDescriptor::FromComposite(std::move(*qcod));
  QueryOptions options;
  options.top_k = 20;
  StatusOr<QueryResult> result =
      RankCS(poi->relation, q, poi_resolver, options);
  ASSERT_OK(result.status());
  ASSERT_EQ(result->tuples.size(), 1u);
  const size_t name_col = *poi->relation.schema().IndexOf("name");
  EXPECT_EQ(poi->relation.row(result->tuples[0].row_id)[name_col].AsString(),
            "Acropolis");
  EXPECT_DOUBLE_EQ(result->tuples[0].score, 0.8);
}

TEST(ReadmeSnippetTest, ResilienceSnippetWorksAsAdvertised) {
  StatusOr<EnvironmentPtr> env_or = workload::MakePaperEnvironment();
  ASSERT_OK(env_or.status());
  EnvironmentPtr env = *env_or;

  // The README wires a flaky sensor through a ResilientSource; here
  // the sensor is scripted (and the clock fake) so the promised
  // stale-serving behavior is actually demonstrated.
  const Hierarchy& weather = env->parameter(1).hierarchy();
  FakeClock clock;
  auto flaky_sensor = std::make_unique<FaultInjectingSource>(
      1, *weather.Find(0, "warm"), &clock);
  FaultInjectingSource* raw = flaky_sensor.get();

  CurrentContext current(env);
  SourcePolicy policy;
  policy.stale_ttl_micros = 3'000'000;
  policy.lift_window_micros = 3'000'000;
  ASSERT_OK(current.AddSource(std::make_unique<ResilientSource>(
      *env, std::move(flaky_sensor), policy, &clock, /*seed=*/42)));

  SnapshotReport report = current.SnapshotWithReport();
  EXPECT_TRUE(report.fully_fresh());
  ASSERT_OK(report.state.Validate(*env));  // Always a usable state.

  // Backend goes down past the TTL: snapshot still serves, the value
  // lifts toward `all`, and the explanation names the degradation.
  raw->FailNext(12);
  clock.Advance(4'000'000);
  report = current.SnapshotWithReport();
  ASSERT_OK(report.state.Validate(*env));
  EXPECT_FALSE(report.fully_fresh());
  EXPECT_EQ(report.params[1].info.provenance, ReadProvenance::kStaleLifted);
  std::string text = ExplainAcquisition(*env, report);
  EXPECT_NE(text.find("stale-lifted-1"), std::string::npos);
}

TEST(ReadmeSnippetTest, ServingSnippetWorksAsAdvertised) {
  // "Serving profiles under updates": the README's store + cache +
  // ServeQuery flow, against the POI environment so the query
  // actually ranks tuples.
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(60, 1);
  ASSERT_OK(poi.status());
  EnvironmentPtr env = poi->env;
  const db::Relation& relation = poi->relation;

  Profile profile(env);
  StatusOr<CompositeDescriptor> cod = ParseCompositeDescriptor(
      *env, "location = Plaka and temperature in {warm, hot}");
  ASSERT_OK(cod.status());
  StatusOr<ContextualPreference> pref = ContextualPreference::Create(
      std::move(*cod),
      {"name", db::CompareOp::kEq, db::Value("Acropolis")}, 0.8);
  ASSERT_OK(pref.status());
  ASSERT_OK(profile.Insert(std::move(*pref)));

  ContextualQuery query;
  StatusOr<CompositeDescriptor> qcod = ParseCompositeDescriptor(
      *env, "location = Plaka and temperature = hot");
  ASSERT_OK(qcod.status());
  query.context = ExtendedDescriptor::FromComposite(std::move(*qcod));

  // --- the README snippet, ASSERTs in place of *-deref ---
  storage::ProfileStore store(env);
  ContextQueryTree cache(env, Ordering::Identity(env->size()));
  store.AttachQueryCache(&cache);          // publishes invalidate per user

  ASSERT_OK(store.CreateUser("alice", std::move(profile)));
  ASSERT_OK(store.UpdateUser("alice", [&](Profile& p) {  // copy-on-write
    return p.UpdateScore(0, 0.95);
  }));

  StatusOr<storage::ServedQuery> served =
      storage::ServeQuery(store, "alice", relation, query, &cache);
  ASSERT_OK(served.status());
  EXPECT_EQ(served->snapshot->user_id(), "alice");
  // --- end snippet ---

  // The served answer reflects the post-update score, and the version
  // it claims is the store's current serving version.
  ASSERT_EQ(served->result.tuples.size(), 1u);
  EXPECT_DOUBLE_EQ(served->result.tuples[0].score, 0.95);
  StatusOr<storage::SnapshotPtr> current = store.GetSnapshot("alice");
  ASSERT_OK(current.status());
  EXPECT_EQ(served->snapshot->serving_version(),
            (*current)->serving_version());
  // A second serve hits the cache.
  const uint64_t hits_before = cache.Stats().hits;
  ASSERT_OK(
      storage::ServeQuery(store, "alice", relation, query, &cache).status());
  EXPECT_GT(cache.Stats().hits, hits_before);
}

TEST(ReadmeSnippetTest, ReplicatedCacheSnippetWorksAsAdvertised) {
  // "Replicated query caches": the README's coherence-log flow —
  // attach, publish-appends, serve through a replica, observe lag.
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(60, 1);
  ASSERT_OK(poi.status());
  EnvironmentPtr env = poi->env;
  const db::Relation& relation = poi->relation;

  Profile profile(env);
  StatusOr<CompositeDescriptor> cod = ParseCompositeDescriptor(
      *env, "location = Plaka and temperature in {warm, hot}");
  ASSERT_OK(cod.status());
  StatusOr<ContextualPreference> pref = ContextualPreference::Create(
      std::move(*cod),
      {"name", db::CompareOp::kEq, db::Value("Acropolis")}, 0.8);
  ASSERT_OK(pref.status());
  ASSERT_OK(profile.Insert(std::move(*pref)));

  ContextualQuery query;
  StatusOr<CompositeDescriptor> qcod = ParseCompositeDescriptor(
      *env, "location = Plaka and temperature = hot");
  ASSERT_OK(qcod.status());
  query.context = ExtendedDescriptor::FromComposite(std::move(*qcod));

  // --- the README snippet, ASSERTs in place of *-deref ---
  storage::ProfileStore store(env);
  ReplicatedQueryCache::Options ropt;
  ropt.num_replicas = 4;                   // one per serving thread
  ReplicatedQueryCache replicas(env, Ordering::Identity(env->size()),
                                ropt);
  store.AttachCoherenceLog(&replicas.log());  // publishes append, not
                                              // invalidate

  ASSERT_OK(store.CreateUser("alice", std::move(profile)));

  StatusOr<storage::ServedQuery> served = storage::ServeQueryReplicated(
      store, "alice", relation, query, replicas);
  ASSERT_OK(served.status());
  EXPECT_EQ(served->snapshot->user_id(), "alice");

  // Only the serving replica consumed inline; drain the rest.
  replicas.ConsumeAll();
  EXPECT_EQ(replicas.InvalidationLagVersions(), 0u);
  // --- end snippet ---

  // The inline consume covered the pinned version, so the serve
  // populated this thread's replica: a second serve hits it.
  const size_t r = replicas.ReplicaForThisThread();
  EXPECT_TRUE(replicas.Covers(r, served->snapshot->serving_version()));
  const uint64_t hits_before = replicas.Stats().hits;
  ASSERT_OK(storage::ServeQueryReplicated(store, "alice", relation, query,
                                          replicas)
                .status());
  EXPECT_GT(replicas.Stats().hits, hits_before);
  // And a publish flows through the log, not the eager hook: the lag
  // gauge closes again once the replicas consume.
  ASSERT_OK(store.PublishProfile("alice", Profile(env)));
  EXPECT_GT(replicas.log().max_appended(), 0u);
  replicas.ConsumeAll();
  EXPECT_EQ(replicas.InvalidationLagVersions(), 0u);
}

TEST(ReadmeSnippetTest, OverloadSnippetWorksAsAdvertised) {
  // "Serving under overload": the README's admission + deadline +
  // ServeQueryResilient flow. Setup mirrors the serving snippet.
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(60, 1);
  ASSERT_OK(poi.status());
  EnvironmentPtr env = poi->env;
  const db::Relation& relation = poi->relation;

  Profile profile(env);
  StatusOr<CompositeDescriptor> cod = ParseCompositeDescriptor(
      *env, "location = Plaka and temperature in {warm, hot}");
  ASSERT_OK(cod.status());
  StatusOr<ContextualPreference> pref = ContextualPreference::Create(
      std::move(*cod),
      {"name", db::CompareOp::kEq, db::Value("Acropolis")}, 0.8);
  ASSERT_OK(pref.status());
  ASSERT_OK(profile.Insert(std::move(*pref)));

  ContextualQuery query;
  StatusOr<CompositeDescriptor> qcod = ParseCompositeDescriptor(
      *env, "location = Plaka and temperature = hot");
  ASSERT_OK(qcod.status());
  query.context = ExtendedDescriptor::FromComposite(std::move(*qcod));

  storage::ProfileStore store(env);
  ContextQueryTree cache(env, Ordering::Identity(env->size()));
  store.AttachQueryCache(&cache);
  ASSERT_OK(store.CreateUser("alice", std::move(profile)));

  // --- the README snippet, ASSERTs in place of Log/assert ---
  storage::AdmissionController admission(
      {.max_in_flight = 64, .maintenance_max_in_flight = 16});
  cache.SetRetainStale(true);   // keep old versions for the stale rung

  storage::ServeOptions opts;
  opts.admission = &admission;
  opts.query.deadline = util::Deadline::AfterMicros(20'000);  // 20 ms

  StatusOr<storage::ServedQuery> served = storage::ServeQueryResilient(
      store, "alice", relation, query, &cache, opts);
  ASSERT_OK(served.status());
  // "fresh", "stale-v<N>", or "truncated" — never a torn answer.
  EXPECT_EQ(served->provenance.ToString(), "fresh");
  // --- end snippet ---

  // Overload maps to kUnavailable, as the README's else-branch claims:
  // a full house with every fallback rung disabled sheds the request.
  storage::AdmissionController full_house({.max_in_flight = 0});
  storage::ServeOptions no_fallback;
  no_fallback.admission = &full_house;
  no_fallback.allow_stale = false;
  no_fallback.allow_truncated = false;
  StatusOr<storage::ServedQuery> shed = storage::ServeQueryResilient(
      store, "alice", relation, query, &cache, no_fallback);
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();

  // And with the stale rung allowed, the same full house serves the
  // cached answer instead — the ladder in one assertion.
  storage::ServeOptions with_stale;
  with_stale.admission = &full_house;
  StatusOr<storage::ServedQuery> stale = storage::ServeQueryResilient(
      store, "alice", relation, query, &cache, with_stale);
  ASSERT_OK(stale.status());
  EXPECT_EQ(stale->provenance.via, storage::ServedVia::kStale);
  EXPECT_EQ(stale->result.tuples, served->result.tuples);
}

TEST(ReadmeSnippetTest, ObservabilitySnippetWorksAsAdvertised) {
  // Query setup mirrors the quickstart's step 5.
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(60, 1);
  ASSERT_OK(poi.status());
  Profile profile(poi->env);
  StatusOr<CompositeDescriptor> cod = ParseCompositeDescriptor(
      *poi->env, "location = Plaka and temperature in {warm, hot}");
  ASSERT_OK(cod.status());
  StatusOr<ContextualPreference> pref = ContextualPreference::Create(
      std::move(*cod),
      {"name", db::CompareOp::kEq, db::Value("Acropolis")}, 0.8);
  ASSERT_OK(pref.status());
  ASSERT_OK(profile.Insert(std::move(*pref)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);
  ContextualQuery q;
  StatusOr<CompositeDescriptor> qcod = ParseCompositeDescriptor(
      *poi->env, "location = Plaka and temperature = hot");
  ASSERT_OK(qcod.status());
  q.context = ExtendedDescriptor::FromComposite(std::move(*qcod));
  QueryOptions options;
  options.top_k = 20;

  // The README snippet, with the flag restored afterward so other
  // tests keep the process-wide default.
  const bool prev_timing = MetricsRegistry::TimingEnabled();
  MetricsRegistry::SetTimingEnabled(true);   // opt into latency clocks
  TraceRecorder recorder(/*capacity=*/4096);
  recorder.Install();

  StatusOr<QueryResult> result = RankCS(poi->relation, q, resolver, options);

  recorder.Uninstall();
  MetricsRegistry::SetTimingEnabled(prev_timing);
  ASSERT_OK(result.status());

  // The rendered trace shows the spans the README's comment promises,
  // with rank_cs.state indented under rank_cs.
  std::string trace = ExplainTrace(recorder.Events());
  EXPECT_EQ(trace.rfind("rank_cs", 0), 0u) << trace;
  EXPECT_NE(trace.find("\n  rank_cs.state"), std::string::npos) << trace;
  EXPECT_NE(trace.find("resolve"), std::string::npos) << trace;
  EXPECT_NE(trace.find("scored="), std::string::npos) << trace;

  std::string prom = MetricsRegistry::Global().PrometheusText();
  std::string json = MetricsRegistry::Global().Json();
  EXPECT_NE(prom.find("ctxpref_rank_cs_queries_total"), std::string::npos);
  EXPECT_NE(prom.find("ctxpref_rank_cs_latency_ns_bucket"), std::string::npos);
  EXPECT_NE(json.find("\"ctxpref_rank_cs_latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
}

// The README "Static analysis" snippet, verbatim: an annotated,
// ranked mutex guarding two counters.
class HitCounter {
 public:
  // EXCLUDES documents (and Clang enforces) "call without mu_ held".
  void Record(bool hit) EXCLUDES(mu_) {
    ctxpref::util::MutexLock lock(mu_);
    ++lookups_;
    if (hit) ++hits_;
  }
  double HitRate() const EXCLUDES(mu_) {
    ctxpref::util::MutexLock lock(mu_);
    return lookups_ == 0 ? 0.0 : static_cast<double>(hits_) / lookups_;
  }

 private:
  // Ranked: acquiring this while holding any same-or-higher-ranked
  // lock aborts in debug builds. Unannotated access to the fields
  // below is a compile error under -Wthread-safety.
  mutable ctxpref::util::Mutex mu_{
      ctxpref::util::LockRank::kCacheShard, "HitCounter.mu"};
  uint64_t lookups_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
};

TEST(ReadmeSnippetTest, StaticAnalysisSnippetWorksAsAdvertised) {
  HitCounter counter;
  counter.Record(true);
  counter.Record(false);
  EXPECT_DOUBLE_EQ(counter.HitRate(), 0.5);
}

TEST(ReadmeSnippetTest, ScenarioHarnessSnippetWorksAsAdvertised) {
  // The README loads scenarios/cache_heavy.cfg; tests run from the
  // build tree, so write a scaled-down equivalent (same shape: pure
  // cache-friendly query stream, hits modeled cheaper) to disk first.
  const std::string path = ::testing::TempDir() + "/readme_cache_heavy.cfg";
  {
    std::ofstream out(path);
    out << "name = readme_cache_heavy\n"
           "users = 2\n"
           "pois = 120\n"
           "profile_size = 20\n"
           "ops = 300\n"
           "exact_fraction = 1.0\n"
           "states_per_query = 1\n"
           "update_rate = 0.0\n"
           "top_k = 5\n"
           "service_micros = 1000\n"
           "cache_hit_service_micros = 100\n"
           "seed = 11\n";
  }

  // --- the README snippet, ASSERTs in place of assert ---
  StatusOr<harness::ScenarioConfig> cfg = harness::LoadScenarioConfig(path);
  ASSERT_OK(cfg.status());  // Typos, bad enums, bad rates all reject.

  harness::WorkloadRunner runner(*cfg);
  StatusOr<harness::ScenarioResult> on = runner.Run("cache_on");
  ASSERT_OK(on.status());

  cfg->ablation.cache = false;         // Same workload, cache ablated.
  StatusOr<harness::ScenarioResult> off =
      harness::WorkloadRunner(*cfg).Run("cache_off");
  ASSERT_OK(off.status());

  // The cache must be invisible in the answers (CRC over every served
  // tuple) and visible in the deterministic virtual cost.
  EXPECT_EQ(on->result_crc, off->result_crc);
  EXPECT_LT(on->virtual_micros, off->virtual_micros);
  // --- end snippet ---

  // And the rejection the snippet's comment promises:
  EXPECT_FALSE(harness::ParseScenarioConfig("uzers = 2\n").ok());
}

}  // namespace
}  // namespace ctxpref
