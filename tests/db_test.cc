#include <gtest/gtest.h>

#include "db/predicate.h"
#include "db/ranker.h"
#include "db/relation.h"
#include "db/schema.h"
#include "db/value.h"
#include "tests/test_util.h"

namespace ctxpref::db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{5}).type(), ColumnType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ColumnType::kDouble);
  EXPECT_EQ(Value("x").type(), ColumnType::kString);
  EXPECT_EQ(Value(true).type(), ColumnType::kBool);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("x").AsString(), "x");
  EXPECT_TRUE(Value(true).AsBool());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value(0.85).ToString(), "0.85");
  EXPECT_EQ(Value("abc").ToString(), "abc");
  EXPECT_EQ(Value(false).ToString(), "false");
}

TEST(ValueTest, CompareWithinType) {
  EXPECT_TRUE(EvalCompare(Value(int64_t{3}), CompareOp::kLt, Value(int64_t{5})));
  EXPECT_TRUE(EvalCompare(Value("abc"), CompareOp::kEq, Value("abc")));
  EXPECT_TRUE(EvalCompare(Value(1.5), CompareOp::kGe, Value(1.5)));
  EXPECT_FALSE(EvalCompare(Value("a"), CompareOp::kGt, Value("b")));
  EXPECT_TRUE(EvalCompare(Value("a"), CompareOp::kNe, Value("b")));
}

TEST(ValueTest, MismatchedTypesOnlyNeIsTrue) {
  EXPECT_FALSE(EvalCompare(Value(int64_t{1}), CompareOp::kEq, Value("1")));
  EXPECT_TRUE(EvalCompare(Value(int64_t{1}), CompareOp::kNe, Value("1")));
  EXPECT_FALSE(EvalCompare(Value(int64_t{1}), CompareOp::kLt, Value(1.0)));
}

TEST(ValueTest, ParseCompareOp) {
  EXPECT_EQ(*ParseCompareOp("="), CompareOp::kEq);
  EXPECT_EQ(*ParseCompareOp("=="), CompareOp::kEq);
  EXPECT_EQ(*ParseCompareOp("!="), CompareOp::kNe);
  EXPECT_EQ(*ParseCompareOp("<>"), CompareOp::kNe);
  EXPECT_EQ(*ParseCompareOp("<="), CompareOp::kLe);
  EXPECT_EQ(*ParseCompareOp(">="), CompareOp::kGe);
  EXPECT_TRUE(ParseCompareOp("~").status().IsCorruption());
}

TEST(SchemaTest, CreateAndLookup) {
  StatusOr<Schema> schema = Schema::Create(
      {{"id", ColumnType::kInt64}, {"name", ColumnType::kString}});
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->num_columns(), 2u);
  EXPECT_EQ(*schema->IndexOf("name"), 1u);
  EXPECT_TRUE(schema->IndexOf("xyz").status().IsNotFound());
  EXPECT_EQ(schema->ToString(), "(id:int64, name:string)");
}

TEST(SchemaTest, RejectsDuplicatesEmptyAndUnnamed) {
  EXPECT_TRUE(Schema::Create({}).status().IsInvalidArgument());
  EXPECT_TRUE(Schema::Create({{"a", ColumnType::kInt64},
                              {"a", ColumnType::kInt64}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      Schema::Create({{"", ColumnType::kInt64}}).status().IsInvalidArgument());
}

class RelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<Schema> schema = Schema::Create({{"id", ColumnType::kInt64},
                                              {"type", ColumnType::kString},
                                              {"score", ColumnType::kDouble}});
    ASSERT_OK(schema.status());
    relation_ = std::make_unique<Relation>(std::move(*schema));
    ASSERT_OK(relation_->Append(
        {Value(int64_t{1}), Value("museum"), Value(0.5)}));
    ASSERT_OK(relation_->Append(
        {Value(int64_t{2}), Value("park"), Value(0.9)}));
    ASSERT_OK(relation_->Append(
        {Value(int64_t{3}), Value("museum"), Value(0.7)}));
  }
  std::unique_ptr<Relation> relation_;
};

TEST_F(RelationTest, AppendValidatesArityAndTypes) {
  EXPECT_TRUE(relation_->Append({Value(int64_t{4})}).IsInvalidArgument());
  EXPECT_TRUE(relation_->Append({Value("4"), Value("x"), Value(0.1)})
                  .IsInvalidArgument());
  EXPECT_EQ(relation_->size(), 3u);
}

TEST_F(RelationTest, SelectByEquality) {
  StatusOr<Predicate> pred = Predicate::Create(relation_->schema(), "type",
                                               CompareOp::kEq, Value("museum"));
  ASSERT_OK(pred.status());
  std::vector<RowId> rows = relation_->Select(*pred);
  EXPECT_EQ(rows, (std::vector<RowId>{0, 2}));
  EXPECT_EQ(pred->ToString(relation_->schema()), "type = museum");
}

TEST_F(RelationTest, SelectByOrdering) {
  StatusOr<Predicate> pred = Predicate::Create(relation_->schema(), "score",
                                               CompareOp::kGt, Value(0.6));
  ASSERT_OK(pred.status());
  EXPECT_EQ(relation_->Select(*pred), (std::vector<RowId>{1, 2}));
}

TEST_F(RelationTest, SelectAllConjunction) {
  std::vector<Predicate> preds;
  preds.push_back(*Predicate::Create(relation_->schema(), "type",
                                     CompareOp::kEq, Value("museum")));
  preds.push_back(*Predicate::Create(relation_->schema(), "score",
                                     CompareOp::kGe, Value(0.6)));
  EXPECT_EQ(relation_->SelectAll(preds), (std::vector<RowId>{2}));
  EXPECT_EQ(relation_->SelectAll({}).size(), 3u);
}

TEST_F(RelationTest, PredicateCreateValidates) {
  EXPECT_TRUE(Predicate::Create(relation_->schema(), "nope", CompareOp::kEq,
                                Value("x"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(Predicate::Create(relation_->schema(), "type", CompareOp::kEq,
                                Value(int64_t{1}))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(RelationTest, TupleToString) {
  EXPECT_EQ(TupleToString(relation_->schema(), relation_->row(0)),
            "{id: 1, type: museum, score: 0.5}");
}

TEST(RankerTest, MaxCombinesDuplicates) {
  Ranker r(CombinePolicy::kMax);
  r.Add(1, 0.5);
  r.Add(1, 0.9);
  r.Add(2, 0.7);
  std::vector<ScoredTuple> ranked = r.Ranked();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], (ScoredTuple{1, 0.9}));
  EXPECT_EQ(ranked[1], (ScoredTuple{2, 0.7}));
}

TEST(RankerTest, MinAndAvgPolicies) {
  Ranker mn(CombinePolicy::kMin);
  mn.Add(1, 0.5);
  mn.Add(1, 0.9);
  EXPECT_DOUBLE_EQ(mn.Ranked()[0].score, 0.5);

  Ranker avg(CombinePolicy::kAvg);
  avg.Add(1, 0.5);
  avg.Add(1, 0.9);
  EXPECT_DOUBLE_EQ(avg.Ranked()[0].score, 0.7);
}

TEST(RankerTest, WeightedPolicy) {
  Ranker w(CombinePolicy::kWeighted);
  w.AddWeighted(1, 1.0, 3.0);
  w.AddWeighted(1, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(w.Ranked()[0].score, 0.75);
}

TEST(RankerTest, TiesBrokenByRowId) {
  Ranker r(CombinePolicy::kMax);
  r.Add(5, 0.7);
  r.Add(2, 0.7);
  r.Add(9, 0.9);
  std::vector<ScoredTuple> ranked = r.Ranked();
  EXPECT_EQ(ranked[0].row_id, 9u);
  EXPECT_EQ(ranked[1].row_id, 2u);
  EXPECT_EQ(ranked[2].row_id, 5u);
}

TEST(RankerTest, TopKExtendsThroughTies) {
  // Paper §5.1: "when there are ties in the ranking, we consider all
  // results with the same score".
  Ranker r(CombinePolicy::kMax);
  r.Add(1, 0.9);
  r.Add(2, 0.7);
  r.Add(3, 0.7);
  r.Add(4, 0.7);
  r.Add(5, 0.1);
  std::vector<ScoredTuple> top2 = r.TopK(2);
  ASSERT_EQ(top2.size(), 4u);  // 0.9 + all three 0.7s.
  std::vector<ScoredTuple> top1 = r.TopK(1);
  EXPECT_EQ(top1.size(), 1u);
  EXPECT_EQ(r.TopK(0).size(), 5u);  // 0 = all.
  EXPECT_EQ(r.TopK(99).size(), 5u);
}

TEST(RankerTest, ClearResets) {
  Ranker r(CombinePolicy::kMax);
  r.Add(1, 0.9);
  r.Clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.Ranked().empty());
}

TEST(RankerTest, PolicyToString) {
  EXPECT_STREQ(CombinePolicyToString(CombinePolicy::kMax), "max");
  EXPECT_STREQ(CombinePolicyToString(CombinePolicy::kAvg), "avg");
}

}  // namespace
}  // namespace ctxpref::db
