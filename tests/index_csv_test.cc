#include <gtest/gtest.h>

#include "db/csv.h"
#include "db/index.h"
#include "preference/contextual_query.h"
#include "preference/profile_tree.h"
#include "tests/test_util.h"
#include "workload/poi_dataset.h"

namespace ctxpref::db {
namespace {

using ::ctxpref::testing::Pref;

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StatusOr<Schema> schema = Schema::Create({{"id", ColumnType::kInt64},
                                              {"type", ColumnType::kString}});
    ASSERT_OK(schema.status());
    relation_ = std::make_unique<Relation>(std::move(*schema));
    const char* types[] = {"museum", "park", "museum", "zoo", "park",
                           "museum"};
    for (int64_t i = 0; i < 6; ++i) {
      ASSERT_OK(relation_->Append({Value(i), Value(types[i])}));
    }
  }
  std::unique_ptr<Relation> relation_;
};

TEST_F(IndexTest, LookupMatchesScan) {
  StatusOr<HashIndex> index = HashIndex::Build(*relation_, "type");
  ASSERT_OK(index.status());
  EXPECT_EQ(index->distinct_values(), 3u);
  EXPECT_EQ(index->row_count(), 6u);
  for (const char* t : {"museum", "park", "zoo", "absent"}) {
    StatusOr<Predicate> pred =
        Predicate::Create(relation_->schema(), "type", CompareOp::kEq,
                          Value(t));
    ASSERT_OK(pred.status());
    EXPECT_EQ(index->Lookup(Value(t)), relation_->Select(*pred)) << t;
  }
}

TEST_F(IndexTest, BuildRejectsUnknownColumn) {
  EXPECT_TRUE(HashIndex::Build(*relation_, "nope").status().IsNotFound());
}

TEST_F(IndexTest, IndexSetSelectsViaIndexForEquality) {
  IndexSet indexes(&*relation_);
  ASSERT_OK(indexes.AddIndex("type"));
  StatusOr<Predicate> eq = Predicate::Create(relation_->schema(), "type",
                                             CompareOp::kEq, Value("park"));
  bool used = false;
  EXPECT_EQ(indexes.Select(*eq, &used), relation_->Select(*eq));
  EXPECT_TRUE(used);
  // Non-equality predicates fall back to scans.
  StatusOr<Predicate> ne = Predicate::Create(relation_->schema(), "type",
                                             CompareOp::kNe, Value("park"));
  EXPECT_EQ(indexes.Select(*ne, &used), relation_->Select(*ne));
  EXPECT_FALSE(used);
  // Unindexed columns too.
  StatusOr<Predicate> id_eq = Predicate::Create(relation_->schema(), "id",
                                                CompareOp::kEq,
                                                Value(int64_t{3}));
  EXPECT_EQ(indexes.Select(*id_eq, &used), relation_->Select(*id_eq));
  EXPECT_FALSE(used);
}

TEST_F(IndexTest, StaleIndexIsBypassed) {
  IndexSet indexes(&*relation_);
  ASSERT_OK(indexes.AddIndex("type"));
  ASSERT_OK(relation_->Append({Value(int64_t{6}), Value("park")}));
  EXPECT_EQ(indexes.For(1), nullptr);  // Stale.
  StatusOr<Predicate> eq = Predicate::Create(relation_->schema(), "type",
                                             CompareOp::kEq, Value("park"));
  bool used = true;
  std::vector<RowId> rows = indexes.Select(*eq, &used);
  EXPECT_FALSE(used);                      // Fell back to the scan...
  EXPECT_EQ(rows, relation_->Select(*eq)); // ...with correct results.
  ASSERT_OK(indexes.AddIndex("type"));     // Rebuild.
  EXPECT_NE(indexes.For(1), nullptr);
}

TEST_F(IndexTest, RankCSWithIndexesMatchesWithout) {
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(100, 9);
  ASSERT_OK(poi.status());
  Profile profile(poi->env);
  ASSERT_OK(profile.Insert(Pref(*poi->env, "accompanying_people = friends",
                                "type", "brewery", 0.9)));
  ASSERT_OK(profile.Insert(
      Pref(*poi->env, "temperature = hot", "type", "park", 0.8)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(profile);
  ASSERT_OK(tree.status());
  TreeResolver resolver(&*tree);

  StatusOr<ExtendedDescriptor> ecod = ParseExtendedDescriptor(
      *poi->env,
      "temperature = hot and accompanying_people = friends");
  ASSERT_OK(ecod.status());
  ContextualQuery q;
  q.context = *ecod;

  IndexSet indexes(&poi->relation);
  ASSERT_OK(indexes.AddIndex("type"));
  QueryOptions indexed;
  indexed.indexes = &indexes;

  StatusOr<QueryResult> plain = RankCS(poi->relation, q, resolver);
  StatusOr<QueryResult> fast = RankCS(poi->relation, q, resolver, indexed);
  ASSERT_OK(plain.status());
  ASSERT_OK(fast.status());
  EXPECT_EQ(plain->tuples, fast->tuples);
}

// ---------------------------------------------------------------------

class CsvTest : public ::testing::Test {
 protected:
  Schema MakeSchema() {
    StatusOr<Schema> schema = Schema::Create({{"id", ColumnType::kInt64},
                                              {"name", ColumnType::kString},
                                              {"score", ColumnType::kDouble},
                                              {"open", ColumnType::kBool}});
    EXPECT_OK(schema.status());
    return *schema;
  }
};

TEST_F(CsvTest, LoadsTypedRows) {
  const char* csv =
      "id,name,score,open\n"
      "1, Acropolis , 0.8, true\n"
      "2,Museum,0.5,false\n";
  StatusOr<Relation> r = LoadCsv(MakeSchema(), csv);
  ASSERT_OK(r.status());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ(r->row(0)[0].AsInt64(), 1);
  EXPECT_EQ(r->row(0)[1].AsString(), "Acropolis");  // Trimmed.
  EXPECT_DOUBLE_EQ(r->row(0)[2].AsDouble(), 0.8);
  EXPECT_TRUE(r->row(0)[3].AsBool());
}

TEST_F(CsvTest, QuotedFieldsKeepCommasAndQuotes) {
  const char* csv =
      "id,name,score,open\n"
      "1,\"White Tower, Thessaloniki\",0.9,true\n"
      "2,\"say \"\"hi\"\"\",0.1,false\n";
  StatusOr<Relation> r = LoadCsv(MakeSchema(), csv);
  ASSERT_OK(r.status());
  EXPECT_EQ(r->row(0)[1].AsString(), "White Tower, Thessaloniki");
  EXPECT_EQ(r->row(1)[1].AsString(), "say \"hi\"");
}

TEST_F(CsvTest, CrlfAndBlankLines) {
  const char* csv =
      "id,name,score,open\r\n"
      "1,A,0.5,true\r\n"
      "\n"
      "2,B,0.6,false\n"
      "\n";
  StatusOr<Relation> r = LoadCsv(MakeSchema(), csv);
  ASSERT_OK(r.status());
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(CsvTest, HeaderValidation) {
  EXPECT_TRUE(
      LoadCsv(MakeSchema(), "id,name\n").status().IsInvalidArgument());
  EXPECT_TRUE(LoadCsv(MakeSchema(), "id,nom,score,open\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(LoadCsv(MakeSchema(), "").status().IsInvalidArgument());
}

TEST_F(CsvTest, TypingAndArityErrorsNameTheLine) {
  Status st = LoadCsv(MakeSchema(),
                      "id,name,score,open\n"
                      "1,A,0.5,true\n"
                      "x,B,0.6,false\n")
                  .status();
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("line 3"), std::string::npos);
  EXPECT_TRUE(LoadCsv(MakeSchema(),
                      "id,name,score,open\n"
                      "1,A,0.5\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(LoadCsv(MakeSchema(),
                      "id,name,score,open\n"
                      "1,\"unterminated,0.5,true\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(LoadCsv(MakeSchema(),
                      "id,name,score,open\n"
                      "1,A,0.5,maybe\n")
                  .status()
                  .IsCorruption());
}

TEST_F(CsvTest, RoundTrip) {
  StatusOr<Relation> r = LoadCsv(
      MakeSchema(),
      "id,name,score,open\n"
      "1,\"White Tower, Thessaloniki\",0.9,true\n"
      "2,plain,0.25,false\n");
  ASSERT_OK(r.status());
  std::string csv = ToCsv(*r);
  StatusOr<Relation> again = LoadCsv(MakeSchema(), csv);
  ASSERT_OK(again.status());
  ASSERT_EQ(again->size(), r->size());
  for (RowId i = 0; i < r->size(); ++i) {
    EXPECT_EQ(again->row(i), r->row(i)) << i;
  }
}

TEST_F(CsvTest, PoiDatabaseRoundTripsThroughCsv) {
  StatusOr<workload::PoiDatabase> poi = workload::MakePoiDatabase(50, 21);
  ASSERT_OK(poi.status());
  std::string csv = ToCsv(poi->relation);
  StatusOr<Schema> schema = workload::MakePoiSchema();
  ASSERT_OK(schema.status());
  StatusOr<Relation> again = LoadCsv(std::move(*schema), csv);
  ASSERT_OK(again.status());
  ASSERT_EQ(again->size(), poi->relation.size());
  for (RowId i = 0; i < again->size(); ++i) {
    EXPECT_EQ(again->row(i), poi->relation.row(i)) << i;
  }
}

}  // namespace
}  // namespace ctxpref::db
