#include <gtest/gtest.h>

#include "preference/profile.h"
#include "preference/tree_dot.h"
#include "tests/test_util.h"

namespace ctxpref {
namespace {

using ::ctxpref::testing::PaperEnv;
using ::ctxpref::testing::Pref;

class ConflictPolicyTest : public ::testing::Test {
 protected:
  EnvironmentPtr env_ = PaperEnv();
};

TEST_F(ConflictPolicyTest, RejectMatchesPlainInsert) {
  Profile p(env_);
  ASSERT_OK(p.InsertWithPolicy(
      Pref(*env_, "location = Plaka", "name", "Acropolis", 0.8),
      ConflictPolicy::kReject));
  Status st = p.InsertWithPolicy(
      Pref(*env_, "location = Plaka", "name", "Acropolis", 0.3),
      ConflictPolicy::kReject);
  EXPECT_TRUE(st.IsConflict());
  EXPECT_DOUBLE_EQ(p.preference(0).score(), 0.8);
}

TEST_F(ConflictPolicyTest, KeepExistingDropsNewSilently) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka", "name", "Acropolis", 0.8)));
  EXPECT_OK(p.InsertWithPolicy(
      Pref(*env_, "location = Plaka", "name", "Acropolis", 0.3),
      ConflictPolicy::kKeepExisting));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p.preference(0).score(), 0.8);
  // Duplicates are OK no-ops too.
  EXPECT_OK(p.InsertWithPolicy(
      Pref(*env_, "location = Plaka", "name", "Acropolis", 0.8),
      ConflictPolicy::kKeepExisting));
  EXPECT_EQ(p.size(), 1u);
}

TEST_F(ConflictPolicyTest, OverwriteRescoresConflicts) {
  Profile p(env_);
  // States overlap at (Plaka, warm, all) — a genuine Def. 6 conflict.
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka and temperature in "
                          "{warm, hot}", "name", "Acropolis", 0.8)));
  EXPECT_OK(p.InsertWithPolicy(
      Pref(*env_, "location = Plaka and temperature = warm", "name",
           "Acropolis", 0.3),
      ConflictPolicy::kOverwrite));
  // The old preference got rescored to 0.3; the new one is in.
  ASSERT_EQ(p.size(), 2u);
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.preference(i).score(), 0.3) << i;
  }
}

TEST_F(ConflictPolicyTest, OverwriteHandlesMultipleConflicts) {
  Profile p(env_);
  ASSERT_OK(p.Insert(
      Pref(*env_, "temperature = warm", "type", "park", 0.9)));
  ASSERT_OK(p.Insert(
      Pref(*env_, "temperature = hot", "type", "park", 0.7)));
  // Overlaps (all, warm, all) with the first and (all, hot, all) with
  // the second: conflicts with both.
  EXPECT_OK(p.InsertWithPolicy(
      Pref(*env_, "temperature in {warm, hot}", "type", "park", 0.5),
      ConflictPolicy::kOverwrite));
  ASSERT_EQ(p.size(), 3u);
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.preference(i).score(), 0.5) << i;
  }
  // The profile is still conflict-free: the tree accepts it.
  EXPECT_OK(ProfileTree::Build(p).status());
}

TEST_F(ConflictPolicyTest, OverwriteWithoutConflictJustInserts) {
  Profile p(env_);
  EXPECT_OK(p.InsertWithPolicy(
      Pref(*env_, "location = Plaka", "name", "Acropolis", 0.8),
      ConflictPolicy::kOverwrite));
  EXPECT_EQ(p.size(), 1u);
}

TEST_F(ConflictPolicyTest, OverwriteDuplicateIsNoOp) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka", "name", "Acropolis", 0.8)));
  EXPECT_OK(p.InsertWithPolicy(
      Pref(*env_, "location = Plaka", "name", "Acropolis", 0.8),
      ConflictPolicy::kOverwrite));
  EXPECT_EQ(p.size(), 1u);
}

class TreeDotTest : public ::testing::Test {
 protected:
  EnvironmentPtr env_ = PaperEnv();
};

TEST_F(TreeDotTest, EmitsWellFormedDot) {
  Profile p(env_);
  ASSERT_OK(p.Insert(Pref(*env_, "location = Plaka and temperature in "
                          "{warm, hot}", "name", "Acropolis", 0.8)));
  ASSERT_OK(p.Insert(
      Pref(*env_, "accompanying_people = friends", "type", "brewery", 0.9)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  std::string dot = ProfileTreeToDot(*tree);

  EXPECT_NE(dot.find("digraph profile_tree {"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  // Edge labels carry the keys; leaves carry clauses.
  EXPECT_NE(dot.find("label=\"Plaka\""), std::string::npos);
  EXPECT_NE(dot.find("type = brewery"), std::string::npos);
  // One DOT node per tree node.
  size_t node_count = 0;
  for (size_t pos = dot.find("  n"); pos != std::string::npos;
       pos = dot.find("  n", pos + 1)) {
    if (dot.compare(pos, 3, "  n") == 0 &&
        dot.find(" [", pos) == dot.find_first_of(" [", pos + 3)) {
      // Counting declarations (lines with [shape=...]).
    }
    ++node_count;
  }
  EXPECT_GT(node_count, tree->NodeCount());  // Declarations + edges.

  // Balanced braces and quotes.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '"') % 2, 0);
}

TEST_F(TreeDotTest, EscapesSpecialCharacters) {
  Profile p(env_);
  StatusOr<CompositeDescriptor> cod = ParseCompositeDescriptor(*env_, "*");
  StatusOr<ContextualPreference> pref = ContextualPreference::Create(
      std::move(*cod),
      AttributeClause{"name", db::CompareOp::kEq,
                      db::Value("say \"hi\"")},
      0.5);
  ASSERT_OK(pref.status());
  ASSERT_OK(p.Insert(std::move(*pref)));
  StatusOr<ProfileTree> tree = ProfileTree::Build(p);
  ASSERT_OK(tree.status());
  std::string dot = ProfileTreeToDot(*tree);
  EXPECT_NE(dot.find("\\\"hi\\\""), std::string::npos);
}

}  // namespace
}  // namespace ctxpref
